#include "core/failure.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

FailureManager::FailureManager(CoolingPlant &cooling_,
                               PowerHierarchy &power_,
                               const DatacenterLayout &layout_)
    : cooling(cooling_), power(power_), layout(layout_)
{
    aisleFrac.resize(layout.aisleCount(), 1.0);
    upsFrac.resize(layout.upsCount(), 1.0);
}

void
FailureManager::applyAisle(AisleId id)
{
    const double frac = aisleFrac[id.index];
    if (frac >= 1.0)
        cooling.restoreAhu(id);
    else
        cooling.failAhu(id, frac);
}

void
FailureManager::applyUps(UpsId id)
{
    const double frac = upsFrac[id.index];
    if (frac >= 1.0)
        power.restoreUps(id);
    else
        power.failUps(id, frac);
}

void
FailureManager::triggerThermalEmergency(double remaining_frac)
{
    for (const Aisle &aisle : layout.aisles())
        failAisle(aisle.id, remaining_frac);
}

void
FailureManager::triggerPowerEmergency(double remaining_frac)
{
    failUps(UpsId(0), remaining_frac);
}

void
FailureManager::failAisle(AisleId id, double remaining_frac)
{
    tapas_assert(id.index < aisleFrac.size(), "unknown aisle %u",
                 id.index);
    tapas_assert(remaining_frac > 0.0 && remaining_frac <= 1.0,
                 "derating fraction must be in (0,1]");
    aisleFrac[id.index] =
        std::min(aisleFrac[id.index], remaining_frac);
    applyAisle(id);
}

void
FailureManager::failUps(UpsId id, double remaining_frac)
{
    tapas_assert(id.index < upsFrac.size(), "unknown UPS %u",
                 id.index);
    tapas_assert(remaining_frac > 0.0 && remaining_frac <= 1.0,
                 "derating fraction must be in (0,1]");
    upsFrac[id.index] = std::min(upsFrac[id.index], remaining_frac);
    applyUps(id);
}

void
FailureManager::setAisleDerate(AisleId id, double frac)
{
    tapas_assert(id.index < aisleFrac.size(), "unknown aisle %u",
                 id.index);
    tapas_assert(frac > 0.0, "derate fraction must be positive");
    aisleFrac[id.index] = std::min(frac, 1.0);
    applyAisle(id);
}

void
FailureManager::setUpsDerate(UpsId id, double frac)
{
    tapas_assert(id.index < upsFrac.size(), "unknown UPS %u",
                 id.index);
    tapas_assert(frac > 0.0, "derate fraction must be positive");
    upsFrac[id.index] = std::min(frac, 1.0);
    applyUps(id);
}

void
FailureManager::clearAll()
{
    for (const Aisle &aisle : layout.aisles()) {
        aisleFrac[aisle.id.index] = 1.0;
        cooling.restoreAhu(aisle.id);
    }
    for (const Ups &ups : layout.upses()) {
        upsFrac[ups.id.index] = 1.0;
        power.restoreUps(ups.id);
    }
}

double
FailureManager::aisleDerate(AisleId id) const
{
    tapas_assert(id.index < aisleFrac.size(), "unknown aisle %u",
                 id.index);
    return aisleFrac[id.index];
}

double
FailureManager::upsDerate(UpsId id) const
{
    tapas_assert(id.index < upsFrac.size(), "unknown UPS %u",
                 id.index);
    return upsFrac[id.index];
}

EmergencyKind
FailureManager::active() const
{
    const bool thermal = cooling.anyFailure();
    const bool electric = power.anyFailure();
    if (thermal && electric)
        return EmergencyKind::Both;
    if (thermal)
        return EmergencyKind::Thermal;
    if (electric)
        return EmergencyKind::Power;
    return EmergencyKind::None;
}

void
FailureManager::checkpointState(Archive &ar)
{
    const std::size_t aisles = aisleFrac.size();
    const std::size_t upses = upsFrac.size();
    ar.podVector(aisleFrac);
    ar.podVector(upsFrac);
    if (ar.writing())
        return;
    if (aisleFrac.size() != aisles || upsFrac.size() != upses) {
        ar.fail();
        aisleFrac.assign(aisles, 1.0);
        upsFrac.assign(upses, 1.0);
        return;
    }
    // Push the restored fractions through the plant objects so the
    // cooling/power derate state matches the checkpoint exactly.
    for (const Aisle &aisle : layout.aisles())
        applyAisle(aisle.id);
    for (const Ups &ups : layout.upses())
        applyUps(ups.id);
}

} // namespace tapas
