#include "core/failure.hh"

namespace tapas {

FailureManager::FailureManager(CoolingPlant &cooling_,
                               PowerHierarchy &power_,
                               const DatacenterLayout &layout_)
    : cooling(cooling_), power(power_), layout(layout_)
{
}

void
FailureManager::triggerThermalEmergency(double remaining_frac)
{
    for (const Aisle &aisle : layout.aisles())
        cooling.failAhu(aisle.id, remaining_frac);
}

void
FailureManager::triggerPowerEmergency(double remaining_frac)
{
    power.failUps(UpsId(0), remaining_frac);
}

void
FailureManager::failAisle(AisleId id, double remaining_frac)
{
    cooling.failAhu(id, remaining_frac);
}

void
FailureManager::failUps(UpsId id, double remaining_frac)
{
    power.failUps(id, remaining_frac);
}

void
FailureManager::clearAll()
{
    for (const Aisle &aisle : layout.aisles())
        cooling.restoreAhu(aisle.id);
    for (const Ups &ups : layout.upses())
        power.restoreUps(ups.id);
}

EmergencyKind
FailureManager::active() const
{
    const bool thermal = cooling.anyFailure();
    const bool electric = power.anyFailure();
    if (thermal && electric)
        return EmergencyKind::Both;
    if (thermal)
        return EmergencyKind::Thermal;
    if (electric)
        return EmergencyKind::Power;
    return EmergencyKind::None;
}

} // namespace tapas
