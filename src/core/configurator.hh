/**
 * @file
 * Instance configuration (paper Section 4.3).
 *
 * Given per-instance limits (server power, hottest-GPU temperature,
 * airflow) the configurator picks the configuration that maximizes
 * goodput with quality as the binding priority: quality-affecting
 * knobs (model size, quantization) are a last resort, engaged only
 * when the quality floor is relaxed during emergencies. Frequency and
 * batch changes are free; model/TP/quant changes carry the reload
 * blackout the engine enforces.
 */

#ifndef TAPAS_CORE_CONFIGURATOR_HH
#define TAPAS_CORE_CONFIGURATOR_HH

#include <vector>

#include "core/context.hh"
#include "llm/perf.hh"

namespace tapas {

/** Operating limits for one SaaS instance. */
struct InstanceLimits
{
    /** Whole-server power cap, watts. */
    double maxServerPowerW = 1e12;
    /** Hottest-GPU temperature cap. */
    double maxGpuTempC = 82.0;
    /** Server airflow cap, CFM. */
    double maxAirflowCfm = 1e12;
    /** Predicted inlet temperature used for projections. */
    double inletC = 25.0;
};

/** Result of a configuration decision. */
struct ConfigDecision
{
    ConfigProfile profile;
    /** True when the decision differs from the current config. */
    bool changed = false;
    /** True when no configuration satisfied the limits (the best
     *  effort lowest-impact config is returned anyway). */
    bool infeasible = false;
};

/** Chooses instance configurations within limits. */
class InstanceConfigurator
{
  public:
    InstanceConfigurator(const PerfModel &perf,
                         const TapasPolicyConfig &config);

    /**
     * Operating-point memo for one demand level, keyed by candidate
     * index in the sorted profile space. The candidate walk's
     * operating point is a pure function of (candidate, demand), so
     * a caller scoring several instances at the same demand (the
     * controller groups instances by demand for exactly this) can
     * hand the same cache to consecutive choose() calls and skip
     * the re-evaluation; results are bit-identical by construction.
     * A demand change resets the cache automatically.
     */
    struct OpCache
    {
        double demandTps = -1.0;
        std::vector<char> valid;
        std::vector<PerfModel::OperatingPoint> ops;
    };

    /**
     * Choose the best configuration.
     *
     * @param server the hosting server (for fitted projections)
     * @param profiles fitted profile bank
     * @param limits operating limits to respect
     * @param demand_tps current token demand on the instance
     * @param quality_floor minimum acceptable model quality
     * @param current the instance's active profile
     * @param cache optional cross-instance operating-point memo
     */
    ConfigDecision choose(ServerId server,
                          const ProfileBank &profiles,
                          const InstanceLimits &limits,
                          double demand_tps, double quality_floor,
                          const ConfigProfile &current,
                          OpCache *cache = nullptr) const;

    /** Whether a profile satisfies the limits at a given demand. */
    bool feasible(ServerId server, const ProfileBank &profiles,
                  const InstanceLimits &limits,
                  const ConfigProfile &profile,
                  double demand_tps) const;

    const std::vector<ConfigProfile> &profileSpace() const
    { return space; }

  private:
    const PerfModel &perf;
    TapasPolicyConfig cfg;
    std::vector<ConfigProfile> space;

    /**
     * Limit checks with the operating point already evaluated; lets
     * choose() share one operatingPointAt() per candidate between
     * feasibility and power ranking (the step loop's hottest call).
     */
    bool feasibleAt(ServerId server, const ProfileBank &profiles,
                    const InstanceLimits &limits,
                    const ConfigProfile &profile,
                    const PerfModel::OperatingPoint &op) const;

    /**
     * Normalized server heat at a candidate operating point (the
     * airflow models are fitted against this load definition).
     */
    double heatFractionOf(const ConfigProfile &profile,
                          const PerfModel::OperatingPoint &op) const;
};

} // namespace tapas

#endif // TAPAS_CORE_CONFIGURATOR_HH
