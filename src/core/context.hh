/**
 * @file
 * Shared read-only views and policy configuration passed from the
 * cluster simulator into the TAPAS decision components.
 */

#ifndef TAPAS_CORE_CONTEXT_HH
#define TAPAS_CORE_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/profiles.hh"
#include "workload/vmtrace.hh"

namespace tapas {

/** Summary of a placed VM as decision components see it. */
struct PlacedVmView
{
    VmId id;
    VmKind kind = VmKind::IaaS;
    ServerId server;
    EndpointId endpoint;
    CustomerId customer;
    /** Predicted peak load of this VM (history templates or 1.0). */
    double predictedPeakLoad = 1.0;
    /** Current observed load fraction. */
    double currentLoad = 0.0;
};

/** Snapshot of cluster state for placement and risk decisions. */
struct ClusterView
{
    const DatacenterLayout *layout = nullptr;
    const CoolingPlant *cooling = nullptr;
    const PowerHierarchy *power = nullptr;
    /** Fitted profiles; null for profile-oblivious baselines. */
    const ProfileBank *profiles = nullptr;

    SimTime now = 0;
    double outsideC = 20.0;
    double dcLoadFrac = 0.5;

    /** Current per-server load fractions, indexed by server id. */
    std::vector<double> serverLoads;
    /** All currently placed VMs, ordered by ascending VM id. */
    std::vector<PlacedVmView> vms;
    /** Per-server occupancy (each GPU VM takes a whole server). */
    std::vector<bool> occupied;

    /**
     * Snapshot epoch of the load/time state this view reflects. The
     * owning simulator bumps its epoch counter whenever the
     * observable snapshot moves (step boundary, post-load update,
     * telemetry-digest refresh) and lazily re-syncs the maintained
     * view on the next access; the debug cross-check validates that
     * a consumed view is at the owner's current epoch before
     * comparing contents against a fresh rebuild.
     */
    std::uint64_t snapshotEpoch = 0;

    /**
     * Staleness guard for the single maintained view: the owner
     * bumps *ownerGeneration and restamps this view on every refresh
     * or membership mutation, so a detached copy (or a reference
     * held across a rebuild, the old makeView() hazard) trips
     * assertFresh() at the next consumer entry. Standalone views
     * (tests, benches) leave ownerGeneration null and always pass.
     */
    const std::uint64_t *ownerGeneration = nullptr;
    std::uint64_t stampedGeneration = 0;

    void
    assertFresh() const
    {
        tapas_assert(!ownerGeneration ||
                         *ownerGeneration == stampedGeneration,
                     "stale ClusterView: generation %llu read after "
                     "invalidation (owner is at %llu)",
                     static_cast<unsigned long long>(
                         stampedGeneration),
                     static_cast<unsigned long long>(
                         *ownerGeneration));
    }
};

/** Tunable policy parameters of TAPAS (Section 4.5 defaults). */
struct TapasPolicyConfig
{
    /** Enable thermal/power-aware VM placement. */
    bool placeEnabled = true;
    /** Enable risk-aware request routing. */
    bool routeEnabled = true;
    /** Enable instance reconfiguration. */
    bool configEnabled = true;

    /** Keep predicted hottest GPU this far below throttle. */
    double gpuTempMarginC = 8.0;
    /** Row power headroom fraction kept in reserve when routing. */
    double rowPowerMarginFrac = 0.04;
    /** Aisle airflow headroom fraction kept in reserve. */
    double airflowMarginFrac = 0.04;
    /** Projected TTFT above this fraction of the TTFT SLO makes a
     *  VM a performance risk the router filters. */
    double perfRiskLoad = 0.80;
    /** Projected-TTFT bar (fraction of the TTFT SLO) under which
     *  the energy policy keeps concentrating load onto a VM. */
    double concentrationCeiling = 0.50;
    /** Risk cache refresh period (paper: 5 minutes). */
    SimTime riskRefreshPeriod = 5 * kMinute;
    /** Model-reload blackout applied on instance reconfigs. */
    double reloadDelayS = 12.0;
    /** Minimum power gain that justifies a free (freq/batch)
     *  reconfig. */
    double hysteresisGain = 1.05;
    /** Minimum power gain that justifies a model-reload reconfig
     *  (TP/model/quant changes black the instance out). */
    double reloadHysteresisGain = 1.20;
    /** Minimum time between reload-requiring reconfigs of one
     *  instance, except emergency downgrades (prevents blackout
     *  oscillation at feasibility boundaries). */
    SimTime reloadDwell = 30 * kMinute;
    /** Quality floor during normal operation (no quality impact). */
    double normalQualityFloor = 0.999;
    /** Quality floor during emergencies (Table 2 last resort). */
    double emergencyQualityFloor = 0.60;

    // --- Sensor-fault quarantine (graceful degradation). ---

    /**
     * Cross-check the observed per-GPU power sum against the power
     * reconstructed from the server's load fraction each risk
     * refresh, and quarantine servers whose sensors diverge. In a
     * healthy run the two agree exactly (the load IS the normalized
     * GPU power), so enabling this on a fault-free run changes no
     * decision. Off by default (historical behavior).
     */
    bool sensorQuarantineEnabled = false;
    /** Relative divergence tolerance on the reconstructed power. */
    double sensorEnvelopeFrac = 0.05;
    /** Absolute tolerance floor, watts (sensor noise scale). */
    double sensorEnvelopeFloorW = 150.0;
    /** Consecutive diverging refreshes before quarantine. */
    int sensorQuarantineAfter = 2;
    /** Consecutive healthy refreshes before release. */
    int sensorRecoverAfter = 3;
    /**
     * Extra thermal margin applied to quarantined servers: with its
     * sensors untrusted the controller predicts from the last known
     * good power snapshot and keeps this much more distance to the
     * throttle point.
     */
    double quarantineExtraMarginC = 4.0;

    /** Enable periodic SaaS migration (Section 4.1 extension). */
    bool migrationEnabled = false;
    /** How often the migration planner runs. */
    SimTime migrationPeriod = kHour;
    /** Traffic-cutover blackout applied to a migrating instance. */
    double migrationDelayS = 30.0;
    /** Max moves per planning round. */
    int migrationMaxMoves = 2;
};

} // namespace tapas

#endif // TAPAS_CORE_CONTEXT_HH
