/**
 * @file
 * LLM inference request routing (paper Section 4.2).
 *
 * BaselineRouter is the traditional latency-oriented least-loaded
 * policy. TapasRouter first filters VMs whose servers carry thermal,
 * power, airflow, or performance risk, then applies the paper's
 * three-stage policy: (1) KV-cache affinity for repeat customers,
 * (2) energy-saving load concentration, (3) performance spread.
 */

#ifndef TAPAS_CORE_ROUTER_HH
#define TAPAS_CORE_ROUTER_HH

#include <unordered_map>
#include <vector>

#include "core/context.hh"
#include "core/risk.hh"
#include "llm/engine.hh"
#include "llm/request.hh"

namespace tapas {

class Archive;

/** One routable VM of an endpoint. */
struct RouteCandidate
{
    VmId vm;
    ServerId server;
    /** The VM's serving engine (load/accepting state). */
    InferenceEngine *engine = nullptr;
};

/** Routing policy interface. */
class RequestRouter
{
  public:
    virtual ~RequestRouter() = default;

    /**
     * Pick a VM for the request from the endpoint's candidates.
     * Returns an invalid VmId when nothing can accept (caller
     * re-queues the request).
     */
    virtual VmId route(const Request &request,
                       const std::vector<RouteCandidate> &candidates,
                       const RiskAssessor *risk) = 0;

    virtual const char *name() const = 0;

    /**
     * Serialize/restore router-internal state (checkpointing).
     * Stateless policies keep the default no-op.
     */
    virtual void checkpointState(Archive &) {}

  protected:
    /** Load-balancing horizon for engine load estimates, seconds. */
    static constexpr double kLoadHorizonS = 30.0;
};

/** Least-outstanding-load routing, risk-oblivious. */
class BaselineRouter : public RequestRouter
{
  public:
    VmId route(const Request &request,
               const std::vector<RouteCandidate> &candidates,
               const RiskAssessor *risk) override;

    const char *name() const override { return "baseline"; }
};

/** TAPAS risk-filtered, affinity/concentration/spread routing. */
class TapasRouter : public RequestRouter
{
  public:
    explicit TapasRouter(const TapasPolicyConfig &config)
        : cfg(config)
    {}

    VmId route(const Request &request,
               const std::vector<RouteCandidate> &candidates,
               const RiskAssessor *risk) override;

    const char *name() const override { return "tapas"; }

    /** Affinity table size (for tests). */
    std::size_t affinityEntries() const { return affinity.size(); }

    /** Serialize/restore the KV-cache affinity table. */
    void checkpointState(Archive &ar) override;

  private:
    // ckpt-skip(constant): policy flags fixed at construction
    TapasPolicyConfig cfg;
    /** customer -> VM that served them last (KV-cache residency). */
    std::unordered_map<std::uint32_t, VmId> affinity;
};

} // namespace tapas

#endif // TAPAS_CORE_ROUTER_HH
