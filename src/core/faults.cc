#include "core/faults.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "telemetry/history.hh"

namespace tapas {

namespace {

/** Stream salts: one independent Rng per (kind, component). */
constexpr std::uint64_t kEngineSalt = 0x777;
constexpr std::uint64_t kAhuSalt = 0x777A41;
constexpr std::uint64_t kUpsSalt = 0x777B50;
constexpr std::uint64_t kChillerSalt = 0x777C60;
constexpr std::uint64_t kSensorSalt = 0x777D70;
constexpr std::uint64_t kNoiseSalt = 0x777E42;

SensorFaultKind
sensorKindFromIndex(std::int64_t i)
{
    switch (i) {
    case 0: return SensorFaultKind::Dropped;
    case 1: return SensorFaultKind::StuckAt;
    case 2: return SensorFaultKind::BiasDrift;
    default: return SensorFaultKind::NoiseBurst;
    }
}

} // namespace

FaultEngine::FaultEngine(const FaultPlan &plan,
                         const DatacenterLayout &layout_,
                         SimTime horizon, std::uint64_t seed)
    : layout(layout_)
{
    const std::uint64_t engine_seed = mixSeed(seed, kEngineSalt);
    noiseSeed = mixSeed(engine_seed, kNoiseSalt);

    aisleInstances.resize(layout.aisleCount());
    upsInstances.resize(layout.upsCount());
    serverInstances.resize(layout.serverCount());
    activeSensor.assign(layout.serverCount(), -1);
    aisleDirty.assign(layout.aisleCount(), 0);
    upsDirty.assign(layout.upsCount(), 0);

    // Stochastic renewal processes: one independent counter-derived
    // stream per component instance, so the timeline is identical
    // regardless of evaluation order, thread count, or which other
    // processes are enabled.
    for (std::size_t a = 0; a < layout.aisleCount(); ++a) {
        materializeProcess(plan.ahu, FaultKind::Ahu,
                           static_cast<std::uint32_t>(a), horizon,
                           mixSeed(engine_seed, mixSeed(kAhuSalt, a)),
                           plan);
    }
    for (std::size_t u = 0; u < layout.upsCount(); ++u) {
        materializeProcess(plan.ups, FaultKind::Ups,
                           static_cast<std::uint32_t>(u), horizon,
                           mixSeed(engine_seed, mixSeed(kUpsSalt, u)),
                           plan);
    }
    materializeProcess(plan.chiller, FaultKind::Chiller, 0, horizon,
                       mixSeed(engine_seed, kChillerSalt), plan);
    for (std::size_t s = 0; s < layout.serverCount(); ++s) {
        materializeProcess(
            plan.sensor, FaultKind::Sensor,
            static_cast<std::uint32_t>(s), horizon,
            mixSeed(engine_seed, mixSeed(kSensorSalt, s)), plan);
    }

    for (const ScriptedFault &fault : plan.scripted)
        expandScripted(fault, horizon);

    events.reserve(instances.size() * 2);
    for (std::size_t i = 0; i < instances.size(); ++i) {
        const std::uint32_t idx = static_cast<std::uint32_t>(i);
        events.push_back({instances[i].at, idx, true});
        events.push_back({instances[i].until, idx, false});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.start != b.start)
                      return a.start; // starts before ends
                  return a.instance < b.instance;
              });
}

void
FaultEngine::addInstance(const FaultInstance &inst)
{
    if (inst.until <= inst.at)
        return;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(instances.size());
    switch (inst.kind) {
    case FaultKind::Ahu:
        tapas_assert(inst.target < aisleInstances.size(),
                     "fault targets unknown aisle %u", inst.target);
        aisleInstances[inst.target].push_back(idx);
        break;
    case FaultKind::Ups:
        tapas_assert(inst.target < upsInstances.size(),
                     "fault targets unknown UPS %u", inst.target);
        upsInstances[inst.target].push_back(idx);
        break;
    case FaultKind::Chiller:
        chillerInstances.push_back(idx);
        break;
    case FaultKind::Sensor:
        tapas_assert(inst.target < serverInstances.size(),
                     "fault targets unknown server %u", inst.target);
        serverInstances[inst.target].push_back(idx);
        hasSensorFaults = true;
        break;
    }
    instances.push_back(inst);
}

void
FaultEngine::materializeProcess(const FaultProcess &proc,
                                FaultKind kind, std::uint32_t target,
                                SimTime horizon,
                                std::uint64_t stream_seed,
                                const FaultPlan &plan)
{
    if (proc.mtbfS <= 0.0 || proc.mttrS <= 0.0)
        return;
    tapas_assert(kind == FaultKind::Sensor ||
                     (proc.remainingFrac > 0.0 &&
                      proc.remainingFrac <= 1.0),
                 "fault process remainingFrac must be in (0,1]");

    Rng rng(stream_seed);
    double t = rng.exponential(1.0 / proc.mtbfS);
    while (t < static_cast<double>(horizon)) {
        const double down = rng.exponential(1.0 / proc.mttrS);

        FaultInstance inst;
        inst.at = static_cast<SimTime>(std::llround(t));
        inst.until = static_cast<SimTime>(std::llround(t + down));
        inst.kind = kind;
        inst.target = target;
        inst.remainingFrac = proc.remainingFrac;
        if (kind == FaultKind::Sensor) {
            inst.sensor =
                sensorKindFromIndex(rng.uniformInt(0, 3));
            const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
            inst.driftCPerHour = sign * plan.sensorDriftCPerHour;
            inst.driftWPerHour = sign * plan.sensorDriftWPerHour;
            inst.noiseSigmaC = plan.sensorNoiseSigmaC;
            inst.noiseSigmaW = plan.sensorNoiseSigmaW;
        }
        addInstance(inst);

        t += down;
        t += rng.exponential(1.0 / proc.mtbfS);
    }
}

void
FaultEngine::expandScripted(const ScriptedFault &fault,
                            SimTime horizon)
{
    (void)horizon; // scripted windows may outlive the horizon
    if (fault.until <= fault.at)
        return;
    tapas_assert(fault.kind == FaultKind::Sensor ||
                     (fault.remainingFrac > 0.0 &&
                      fault.remainingFrac <= 1.0),
                 "scripted fault remainingFrac must be in (0,1]");

    FaultInstance base;
    base.at = fault.at;
    base.until = fault.until;
    base.kind = fault.kind;
    base.remainingFrac = fault.remainingFrac;
    base.sensor = fault.sensor;
    base.driftCPerHour = fault.driftCPerHour;
    base.driftWPerHour = fault.driftWPerHour;
    base.noiseSigmaC = fault.noiseSigmaC;
    base.noiseSigmaW = fault.noiseSigmaW;

    std::size_t fanout = 1;
    switch (fault.kind) {
    case FaultKind::Ahu: fanout = layout.aisleCount(); break;
    case FaultKind::Ups: fanout = layout.upsCount(); break;
    case FaultKind::Chiller: fanout = 1; break;
    case FaultKind::Sensor: fanout = layout.serverCount(); break;
    }
    if (fault.target >= 0 || fault.kind == FaultKind::Chiller) {
        base.target = fault.kind == FaultKind::Chiller
            ? 0
            : static_cast<std::uint32_t>(fault.target);
        addInstance(base);
        return;
    }
    for (std::size_t i = 0; i < fanout; ++i) {
        base.target = static_cast<std::uint32_t>(i);
        addInstance(base);
    }
}

double
FaultEngine::chillerFloor() const
{
    double frac = 1.0;
    for (std::uint32_t idx : chillerInstances) {
        if (instances[idx].active)
            frac = std::min(frac, instances[idx].remainingFrac);
    }
    return frac;
}

void
FaultEngine::applyAisle(std::uint32_t aisle,
                        FailureManager &mgr) const
{
    double frac = chillerFloor();
    for (std::uint32_t idx : aisleInstances[aisle]) {
        if (instances[idx].active)
            frac = std::min(frac, instances[idx].remainingFrac);
    }
    mgr.setAisleDerate(AisleId(aisle), frac);
}

void
FaultEngine::applyUps(std::uint32_t ups, FailureManager &mgr) const
{
    double frac = 1.0;
    for (std::uint32_t idx : upsInstances[ups]) {
        if (instances[idx].active)
            frac = std::min(frac, instances[idx].remainingFrac);
    }
    mgr.setUpsDerate(UpsId(ups), frac);
}

double
FaultEngine::composedAisleDerate(AisleId id) const
{
    double frac = chillerFloor();
    for (std::uint32_t idx : aisleInstances[id.index]) {
        if (instances[idx].active)
            frac = std::min(frac, instances[idx].remainingFrac);
    }
    return frac;
}

double
FaultEngine::composedUpsDerate(UpsId id) const
{
    double frac = 1.0;
    for (std::uint32_t idx : upsInstances[id.index]) {
        if (instances[idx].active)
            frac = std::min(frac, instances[idx].remainingFrac);
    }
    return frac;
}

void
FaultEngine::advanceTo(SimTime now, FailureManager &mgr)
{
    if (cursor >= events.size() || events[cursor].time > now)
        return;

    dirtyAisles.clear();
    dirtyUpses.clear();
    bool chiller_changed = false;

    while (cursor < events.size() && events[cursor].time <= now) {
        const Event &ev = events[cursor++];
        FaultInstance &inst = instances[ev.instance];
        inst.active = ev.start;
        if (ev.start)
            ++startCount;
        else
            ++endCount;

        switch (inst.kind) {
        case FaultKind::Ahu:
            if (!aisleDirty[inst.target]) {
                aisleDirty[inst.target] = 1;
                dirtyAisles.push_back(inst.target);
            }
            activeComponentFaults += ev.start ? 1 : -1;
            break;
        case FaultKind::Ups:
            if (!upsDirty[inst.target]) {
                upsDirty[inst.target] = 1;
                dirtyUpses.push_back(inst.target);
            }
            activeComponentFaults += ev.start ? 1 : -1;
            break;
        case FaultKind::Chiller:
            chiller_changed = true;
            activeComponentFaults += ev.start ? 1 : -1;
            break;
        case FaultKind::Sensor: {
            activeSensorFaults += ev.start ? 1 : -1;
            // Recompute the server's representative active fault
            // (first active by instance index: deterministic under
            // overlap).
            std::int32_t found = -1;
            for (std::uint32_t idx : serverInstances[inst.target]) {
                if (instances[idx].active) {
                    found = static_cast<std::int32_t>(idx);
                    break;
                }
            }
            activeSensor[inst.target] = found;
            break;
        }
        }
    }

    if (chiller_changed) {
        // The chiller floor feeds every aisle's composition.
        for (std::size_t a = 0; a < aisleInstances.size(); ++a)
            applyAisle(static_cast<std::uint32_t>(a), mgr);
        for (std::uint32_t a : dirtyAisles)
            aisleDirty[a] = 0;
        dirtyAisles.clear();
    } else {
        for (std::uint32_t a : dirtyAisles) {
            applyAisle(a, mgr);
            aisleDirty[a] = 0;
        }
        dirtyAisles.clear();
    }
    for (std::uint32_t u : dirtyUpses) {
        applyUps(u, mgr);
        upsDirty[u] = 0;
    }
    dirtyUpses.clear();
}

FaultEngine::FaultInstance *
FaultEngine::activeSensorInstance(ServerId id)
{
    if (id.index >= activeSensor.size())
        return nullptr; // servers added after engine construction
    const std::int32_t idx = activeSensor[id.index];
    return idx < 0 ? nullptr : &instances[idx];
}

bool
FaultEngine::sensorFaultActive(ServerId id) const
{
    return id.index < activeSensor.size() &&
        activeSensor[id.index] >= 0;
}

SensorFaultKind
FaultEngine::sensorFaultKind(ServerId id) const
{
    tapas_assert(sensorFaultActive(id),
                 "no active sensor fault on server %u", id.index);
    return instances[activeSensor[id.index]].sensor;
}

void
FaultEngine::corruptObservedGpuPower(ServerId id, SimTime now,
                                     double *gpu_w, int gpus)
{
    FaultInstance *inst = activeSensorInstance(id);
    if (!inst)
        return;
    switch (inst->sensor) {
    case SensorFaultKind::Dropped:
    case SensorFaultKind::StuckAt:
        // A dropped feed leaves the observer holding the last value
        // it saw — observationally the same as stuck-at on this path.
        if (!inst->haveFrozenGpuW) {
            inst->frozenGpuW.assign(gpu_w, gpu_w + gpus);
            inst->haveFrozenGpuW = true;
        }
        tapas_assert(inst->frozenGpuW.size() ==
                         static_cast<std::size_t>(gpus),
                     "GPU count changed under a stuck sensor");
        std::copy(inst->frozenGpuW.begin(), inst->frozenGpuW.end(),
                  gpu_w);
        break;
    case SensorFaultKind::BiasDrift: {
        const double hours =
            static_cast<double>(now - inst->at) / 3600.0;
        // Total server-level drift spread evenly across the GPUs so
        // the observed sum drifts by driftWPerHour per hour.
        const double per_gpu =
            inst->driftWPerHour * hours / std::max(1, gpus);
        for (int g = 0; g < gpus; ++g)
            gpu_w[g] = std::max(0.0, gpu_w[g] + per_gpu);
        break;
    }
    case SensorFaultKind::NoiseBurst: {
        Rng rng(mixSeed(noiseSeed,
                        mixSeed(id.index,
                                static_cast<std::uint64_t>(now))));
        const double per_gpu_sigma =
            inst->noiseSigmaW / std::max(1, gpus);
        for (int g = 0; g < gpus; ++g) {
            gpu_w[g] = std::max(
                0.0,
                gpu_w[g] + rng.gaussianFast(0.0, per_gpu_sigma));
        }
        break;
    }
    }
}

bool
FaultEngine::corruptSample(ServerId id, SimTime now,
                           ServerSample &sample)
{
    FaultInstance *inst = activeSensorInstance(id);
    if (!inst)
        return true;
    switch (inst->sensor) {
    case SensorFaultKind::Dropped:
        return false;
    case SensorFaultKind::StuckAt:
        if (!inst->haveFrozenSample) {
            inst->frozenInletC = sample.inletC;
            inst->frozenHottestGpuC = sample.hottestGpuC;
            inst->frozenPowerW = sample.serverPowerW;
            inst->frozenGpuLoad = sample.gpuLoad;
            inst->haveFrozenSample = true;
        }
        // Server-local channels freeze; the plant-level channels
        // (outside temperature, dc load) come from other sensors.
        sample.inletC = inst->frozenInletC;
        sample.hottestGpuC = inst->frozenHottestGpuC;
        sample.serverPowerW = inst->frozenPowerW;
        sample.gpuLoad = inst->frozenGpuLoad;
        return true;
    case SensorFaultKind::BiasDrift: {
        const double hours =
            static_cast<double>(now - inst->at) / 3600.0;
        sample.inletC += static_cast<float>(
            inst->driftCPerHour * hours);
        sample.hottestGpuC += static_cast<float>(
            inst->driftCPerHour * hours);
        sample.serverPowerW = std::max(
            0.0f,
            sample.serverPowerW +
                static_cast<float>(inst->driftWPerHour * hours));
        return true;
    }
    case SensorFaultKind::NoiseBurst: {
        Rng rng(mixSeed(noiseSeed + 1,
                        mixSeed(id.index,
                                static_cast<std::uint64_t>(now))));
        sample.inletC += static_cast<float>(
            rng.gaussianFast(0.0, inst->noiseSigmaC));
        sample.hottestGpuC += static_cast<float>(
            rng.gaussianFast(0.0, inst->noiseSigmaC));
        sample.serverPowerW = std::max(
            0.0f,
            sample.serverPowerW +
                static_cast<float>(
                    rng.gaussianFast(0.0, inst->noiseSigmaW)));
        return true;
    }
    }
    return true;
}

void
FaultEngine::checkpointState(Archive &ar)
{
    std::size_t instance_count = instances.size();
    ar.count(instance_count);
    if (!ar.writing() && instance_count != instances.size()) {
        // The timeline is rebuilt from (plan, layout, horizon,
        // seed) at construction; a different instance count means
        // the checkpoint came from a different configuration.
        ar.fail();
        return;
    }
    for (FaultInstance &inst : instances) {
        ar.value(inst.active);
        ar.value(inst.haveFrozenGpuW);
        ar.podVector(inst.frozenGpuW);
        ar.value(inst.haveFrozenSample);
        ar.value(inst.frozenInletC);
        ar.value(inst.frozenHottestGpuC);
        ar.value(inst.frozenPowerW);
        ar.value(inst.frozenGpuLoad);
    }
    ar.count(cursor);
    ar.podVector(activeSensor);
    ar.count(activeComponentFaults);
    ar.count(activeSensorFaults);
    ar.count(startCount);
    ar.count(endCount);
    if (!ar.writing() && cursor > events.size())
        ar.fail();
}

} // namespace tapas
