/**
 * @file
 * Stochastic fault-injection engine (ROADMAP item 6's compound
 * emergencies, paper Sections 4.4/5.4 generalized).
 *
 * A FaultPlan describes component fault processes — per-aisle AHU
 * groups, per-UPS units, a plant-wide chiller, and per-server sensor
 * faults — either as seeded-stochastic MTBF/MTTR renewal processes or
 * as scripted (start, end) windows, freely mixed. The FaultEngine
 * materializes the full fault timeline deterministically at
 * construction (every stream is a counter-derived Rng off
 * SimConfig::seed, so results are independent of thread count and
 * replication order) and replays it as the simulation advances:
 *
 *  - Component faults derate the cooling/power plants through
 *    FailureManager's absolute setters. Overlapping faults on one
 *    component compose by minimum; repairs restore exact design
 *    capacity.
 *  - Sensor faults corrupt only the *observation* path (the GPU-power
 *    vector handed to the risk assessor and the telemetry samples),
 *    never the ground-truth physics: dropped samples, stuck-at
 *    readings, bias drift, and noise bursts.
 *
 * Compound emergencies (chiller derate during a heat wave at diurnal
 * peak) are just a plan plus a WeatherConfig — see
 * bench/bench_fault_drill.cc and examples/failure_drill.cpp.
 */

#ifndef TAPAS_CORE_FAULTS_HH
#define TAPAS_CORE_FAULTS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "core/failure.hh"
#include "dcsim/layout.hh"

namespace tapas {

class Archive;
struct ServerSample;

/** Component class a fault applies to. */
enum class FaultKind
{
    /** One aisle's AHU group (airflow derate). */
    Ahu,
    /** One UPS unit (row power budget derate). */
    Ups,
    /** Plant-wide chiller capacity (derates every aisle). */
    Chiller,
    /** One server's sensor/telemetry path (no physics effect). */
    Sensor,
};

/** How a faulty sensor misbehaves. */
enum class SensorFaultKind
{
    /** Samples never arrive (telemetry gap; risk sees last value). */
    Dropped,
    /** Readings freeze at the value seen at fault onset. */
    StuckAt,
    /** Readings drift linearly away from truth over time. */
    BiasDrift,
    /** Readings pick up heavy gaussian noise. */
    NoiseBurst,
};

/** One scripted fault window [at, until). */
struct ScriptedFault
{
    SimTime at = 0;
    SimTime until = 0;
    FaultKind kind = FaultKind::Ahu;
    /** Aisle/UPS/server index; -1 = every instance of the class. */
    int target = -1;
    /** Remaining capacity fraction for component faults. */
    double remainingFrac = 0.9;
    /** Sensor misbehavior for FaultKind::Sensor windows. */
    SensorFaultKind sensor = SensorFaultKind::StuckAt;
    /** Drift slopes for BiasDrift (sign is honored as given). */
    double driftCPerHour = 0.5;
    double driftWPerHour = 40.0;
    /** Noise sigmas for NoiseBurst. */
    double noiseSigmaC = 2.0;
    double noiseSigmaW = 120.0;
};

/** A renewal fault process: exponential up-times and repair times. */
struct FaultProcess
{
    /** Mean time between failures, seconds; 0 disables the process. */
    double mtbfS = 0.0;
    /** Mean time to repair, seconds. */
    double mttrS = 2.0 * static_cast<double>(kHour);
    /** Remaining capacity fraction while failed (component kinds). */
    double remainingFrac = 0.9;
};

/** Full fault-injection description for one run. */
struct FaultPlan
{
    /** Independent per-aisle AHU fault processes. */
    FaultProcess ahu;
    /** Independent per-UPS fault processes. */
    FaultProcess ups;
    /** One plant-wide chiller derate process. */
    FaultProcess chiller;
    /** Independent per-server sensor fault processes; each episode
     *  draws its misbehavior kind uniformly and its drift sign by a
     *  fair coin from the same seeded stream. */
    FaultProcess sensor;

    /** Episode parameters for stochastic sensor faults. */
    double sensorDriftCPerHour = 0.5;
    double sensorDriftWPerHour = 40.0;
    double sensorNoiseSigmaC = 2.0;
    double sensorNoiseSigmaW = 120.0;

    /** Scripted windows, applied alongside the processes. */
    std::vector<ScriptedFault> scripted;

    bool
    any() const
    {
        return ahu.mtbfS > 0.0 || ups.mtbfS > 0.0 ||
            chiller.mtbfS > 0.0 || sensor.mtbfS > 0.0 ||
            !scripted.empty();
    }
};

/**
 * Deterministic replay of a materialized fault timeline. Construction
 * expands the plan into concrete fault instances and a sorted event
 * list; advanceTo() is called once per step and applies component
 * state changes through the FailureManager. Sensor corruption is
 * queried by the observation paths (risk refresh, telemetry
 * recording) — the engine never touches ground truth.
 */
class FaultEngine
{
  public:
    FaultEngine(const FaultPlan &plan, const DatacenterLayout &layout,
                SimTime horizon, std::uint64_t seed);

    /** Process every fault transition with time <= now. */
    void advanceTo(SimTime now, FailureManager &mgr);

    /** Any AHU/UPS/chiller fault currently active. */
    bool anyComponentFaultActive() const
    { return activeComponentFaults > 0; }

    /** Any sensor fault currently active. */
    bool anySensorFaultActive() const
    { return activeSensorFaults > 0; }

    /** The materialized timeline contains sensor faults at all
     *  (gates the observation-copy hot path off when it cannot
     *  matter). */
    bool planHasSensorFaults() const { return hasSensorFaults; }

    bool sensorFaultActive(ServerId id) const;

    /** Kind of the active sensor fault on a server (active only). */
    SensorFaultKind sensorFaultKind(ServerId id) const;

    /**
     * Corrupt the observed per-GPU power slice of a server in place
     * (risk-assessor observation path). No-op when the server's
     * sensor is healthy.
     */
    void corruptObservedGpuPower(ServerId id, SimTime now,
                                 double *gpu_w, int gpus);

    /**
     * Corrupt a telemetry sample in place. Returns false when the
     * sample is dropped entirely (the caller skips recording).
     */
    bool corruptSample(ServerId id, SimTime now,
                       ServerSample &sample);

    // --- Introspection (tests, benches, reports). ---
    std::size_t instanceCount() const { return instances.size(); }
    std::size_t startsProcessed() const { return startCount; }
    std::size_t endsProcessed() const { return endCount; }
    std::size_t activeComponentCount() const
    { return activeComponentFaults; }
    std::size_t activeSensorCount() const
    { return activeSensorFaults; }

    /** Engine-composed derate views (min over active faults). */
    double composedAisleDerate(AisleId id) const;
    double composedUpsDerate(UpsId id) const;

    /** Facility-wide cooling floor from active chiller derates
     *  (1.0 when the chiller plant is healthy). */
    double chillerFloor() const;

    /**
     * Serialize/restore the replay state: timeline cursor, per-
     * instance active flags and stuck-at snapshots, and the active
     * counters. The materialized timeline itself is rebuilt
     * deterministically by the constructor from (plan, layout,
     * horizon, seed); a count mismatch fails the archive.
     */
    void checkpointState(Archive &ar);

  private:
    /** One concrete fault with a fixed [at, until) window. */
    struct FaultInstance
    {
        SimTime at = 0;
        SimTime until = 0;
        FaultKind kind = FaultKind::Ahu;
        /** Aisle/UPS/server index (chiller: 0). */
        std::uint32_t target = 0;
        double remainingFrac = 1.0;
        SensorFaultKind sensor = SensorFaultKind::StuckAt;
        double driftCPerHour = 0.0;
        double driftWPerHour = 0.0;
        double noiseSigmaC = 0.0;
        double noiseSigmaW = 0.0;
        bool active = false;

        // Lazily captured stuck-at snapshots, one per observation
        // path (risk refresh and telemetry tick run on different
        // cadences).
        bool haveFrozenGpuW = false;
        std::vector<double> frozenGpuW;
        bool haveFrozenSample = false;
        float frozenInletC = 0.0f;
        float frozenHottestGpuC = 0.0f;
        float frozenPowerW = 0.0f;
        float frozenGpuLoad = 0.0f;
    };

    struct Event
    {
        SimTime time = 0;
        std::uint32_t instance = 0;
        bool start = false;
    };

    // ckpt-skip(constant): layout wiring bound at construction
    const DatacenterLayout &layout;
    // ckpt-skip(constant): fixed seed input; the timeline it drove
    // is rebuilt by the constructor
    std::uint64_t noiseSeed = 0;

    std::vector<FaultInstance> instances;
    std::vector<Event> events;
    std::size_t cursor = 0;

    /** Per-component instance index lists (composition scans),
     *  rebuilt with the timeline by the constructor. */
    // ckpt-skip(derived): index over instances
    std::vector<std::vector<std::uint32_t>> aisleInstances;
    // ckpt-skip(derived): index over instances
    std::vector<std::vector<std::uint32_t>> upsInstances;
    // ckpt-skip(derived): index over instances
    std::vector<std::uint32_t> chillerInstances;
    // ckpt-skip(derived): index over instances
    std::vector<std::vector<std::uint32_t>> serverInstances;

    /** Active sensor instance per server, -1 = healthy. */
    std::vector<std::int32_t> activeSensor;

    std::size_t activeComponentFaults = 0;
    std::size_t activeSensorFaults = 0;
    std::size_t startCount = 0;
    std::size_t endCount = 0;
    // ckpt-skip(derived): set while materializing the timeline
    bool hasSensorFaults = false;

    // Dirty-component scratch for advanceTo.
    std::vector<std::uint32_t> dirtyAisles; // ckpt-skip(scratch): per-advance
    std::vector<std::uint32_t> dirtyUpses;  // ckpt-skip(scratch): per-advance
    std::vector<char> aisleDirty;           // ckpt-skip(scratch): per-advance
    std::vector<char> upsDirty;             // ckpt-skip(scratch): per-advance

    void addInstance(const FaultInstance &inst);
    void materializeProcess(const FaultProcess &proc, FaultKind kind,
                            std::uint32_t target, SimTime horizon,
                            std::uint64_t stream_seed,
                            const FaultPlan &plan);
    void expandScripted(const ScriptedFault &fault, SimTime horizon);
    void applyAisle(std::uint32_t aisle, FailureManager &mgr) const;
    void applyUps(std::uint32_t ups, FailureManager &mgr) const;
    FaultInstance *activeSensorInstance(ServerId id);
};

} // namespace tapas

#endif // TAPAS_CORE_FAULTS_HH
