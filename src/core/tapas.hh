/**
 * @file
 * TapasController: the facade wiring placement, routing, risk, and
 * instance configuration together (paper Fig. 17). The three policy
 * flags in TapasPolicyConfig produce the eight variants of the
 * paper's ablation (Baseline, Place, Route, Config, and their
 * combinations).
 */

#ifndef TAPAS_CORE_TAPAS_HH
#define TAPAS_CORE_TAPAS_HH

#include <memory>
#include <vector>

#include "core/allocator.hh"
#include "core/configurator.hh"
#include "core/context.hh"
#include "core/risk.hh"
#include "core/router.hh"
#include "llm/engine.hh"

namespace tapas {

class Archive;

/** Handle to one SaaS instance for the configuration pass. */
struct SaasInstanceRef
{
    VmId id;
    ServerId server;
    InferenceEngine *engine = nullptr;
    /** Current token demand routed to this instance, tokens/s. */
    double demandTps = 0.0;
};

/** Central TAPAS orchestration object. */
class TapasController
{
  public:
    TapasController(const TapasPolicyConfig &config,
                    const DatacenterLayout &layout,
                    CoolingPlant &cooling, PowerHierarchy &power,
                    const ProfileBank *profiles,
                    const PerfModel *perf);

    const TapasPolicyConfig &config() const { return cfg; }

    VmAllocator &allocator() { return *alloc; }
    RequestRouter &router() { return *route; }

    /** Risk cache; null when routing is baseline. */
    RiskAssessor *riskAssessor() { return risk.get(); }

    /** Refresh the risk cache if due (5-minute cadence). */
    void maybeRefreshRisk(const ClusterView &view,
                          const std::vector<double> &gpu_power_w);

    /**
     * Whether the next maybeRefreshRisk() would actually recompute.
     * Lets the simulator skip building the cluster view entirely on
     * steps where the cache is still fresh.
     */
    bool
    riskRefreshDue(SimTime now) const
    {
        return risk && risk->refreshDue(now);
    }

    /**
     * Run the instance-configuration pass over all SaaS instances:
     * derive per-instance limits from row/aisle budgets (after
     * subtracting unreconfigurable IaaS draw) and issue reconfigs.
     * No-op when the config policy is disabled.
     */
    void configurePass(const ClusterView &view,
                       const std::vector<SaasInstanceRef> &instances);

    /**
     * Whether power capping should spare SaaS and hit IaaS first
     * (TAPAS semantics) versus uniform capping (baseline).
     */
    bool capIaasFirst() const
    { return cfg.routeEnabled || cfg.configEnabled; }

    /** Count of reconfigs issued so far (metrics). */
    std::uint64_t reconfigsIssued() const { return reconfigCount; }

    /**
     * Serialize/restore controller decision state: reload dwell
     * gates, the reconfig counter, router affinity, and the risk
     * cache. The allocator and configurator are stateless between
     * passes (scratch only) and do not travel.
     */
    void checkpointState(Archive &ar);

  private:
    // ckpt-skip(constant): policy flags fixed at construction
    TapasPolicyConfig cfg;
    // ckpt-skip(constant): plant wiring bound at construction
    const DatacenterLayout &layout;
    CoolingPlant &cooling;      // ckpt-skip(constant): plant wiring
    PowerHierarchy &power;      // ckpt-skip(constant): plant wiring
    // ckpt-skip(constant): model pointers bound at construction
    const ProfileBank *profiles;
    const PerfModel *perf;      // ckpt-skip(constant): model pointer

    /** Sentinel for lastReloadAt: this VM has never reloaded. */
    static constexpr SimTime kNeverReloaded = -1;
    /** Last reload-requiring reconfig per VM (dwell gating), dense
     *  by VM id index; kNeverReloaded = no reload yet. Sized before
     *  the configure-pass hot region so the dwell bookkeeping in
     *  the pass itself never allocates (a map node insert there was
     *  a per-step heap hit the A3 binary pass flagged). */
    std::vector<SimTime> lastReloadAt;

    /** Reusable configurePass scratch (per-row/aisle accumulators
     *  and fleet-wide batched-prediction buffers; the pass runs
     *  nearly every step). Contents are dead between passes, only
     *  the capacity persists. */
    std::vector<double> rowFixedScratch;    // ckpt-skip(scratch): per-pass
    std::vector<int> rowSaasScratch;        // ckpt-skip(scratch): per-pass
    std::vector<double> aisleFixedScratch;  // ckpt-skip(scratch): per-pass
    std::vector<int> aisleSaasScratch;      // ckpt-skip(scratch): per-pass
    std::vector<char> saasServerScratch;    // ckpt-skip(scratch): per-pass
    std::vector<double> fixedLoadScratch;   // ckpt-skip(scratch): per-pass
    std::vector<double> fixedPowerScratch;  // ckpt-skip(scratch): per-pass
    std::vector<double> fixedAirflowScratch; // ckpt-skip(scratch): per-pass
    std::vector<double> inletScratch;       // ckpt-skip(scratch): per-pass
    std::vector<double> zeroPowerScratch;   // ckpt-skip(scratch): per-pass
    std::vector<double> zeroAirflowScratch; // ckpt-skip(scratch): per-pass
    /** Per-row/per-aisle effective provisions, hoisted out of the
     *  per-instance limit computation (one call per row/aisle per
     *  pass instead of one per instance). */
    std::vector<double> rowProvisionScratch;   // ckpt-skip(scratch): per-pass
    std::vector<double> aisleProvisionScratch; // ckpt-skip(scratch): per-pass
    /** Instances sorted by demand so equal-demand runs share the
     *  configurator's operating-point memo (instance order does not
     *  affect decisions: each is independent). */
    // ckpt-skip(scratch): rebuilt from the caller's list each pass
    std::vector<SaasInstanceRef> sortedInstancesScratch;
    // ckpt-skip(scratch): per-pass operating-point memo
    InstanceConfigurator::OpCache opCacheScratch;

    // ckpt-skip(constant): rebuilt from policy flags at construction
    std::unique_ptr<VmAllocator> alloc;
    std::unique_ptr<RequestRouter> route;
    std::unique_ptr<RiskAssessor> risk;
    // ckpt-skip(constant): stateless between passes, rebuilt at
    // construction from policy flags
    std::unique_ptr<InstanceConfigurator> configurator;
    std::uint64_t reconfigCount = 0;
};

} // namespace tapas

#endif // TAPAS_CORE_TAPAS_HH
