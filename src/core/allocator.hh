/**
 * @file
 * VM placement policies (paper Section 4.1).
 *
 * BaselineAllocator models the traditional rule-based allocator
 * (Protean-style packing, thermal/power-oblivious). TapasAllocator
 * implements the three TAPAS rules: a validator that filters aisles
 * and rows whose predicted peak airflow/power would exceed
 * provisioning (Eqs. 3-4), a temperature preference (IaaS to cool
 * servers, SaaS to warm servers), and an IaaS/SaaS balance
 * preference, with headroom-based tie-breaking.
 */

#ifndef TAPAS_CORE_ALLOCATOR_HH
#define TAPAS_CORE_ALLOCATOR_HH

#include <optional>
#include <vector>

#include "core/context.hh"

namespace tapas {

/** A VM awaiting placement. */
struct PlacementRequest
{
    VmId id;
    VmKind kind = VmKind::IaaS;
    EndpointId endpoint;
    CustomerId customer;
    /** Predicted peak load of the VM (templates; 1.0 = assume peak). */
    double predictedPeakLoad = 1.0;
};

/** Placement policy interface. */
class VmAllocator
{
  public:
    virtual ~VmAllocator() = default;

    /**
     * Choose a server for the VM, or nullopt when the cluster has no
     * acceptable server (caller queues the VM).
     */
    virtual std::optional<ServerId>
    place(const PlacementRequest &request,
          const ClusterView &view) = 0;

    virtual const char *name() const = 0;
};

/** Packing-first, thermal/power-oblivious placement. */
class BaselineAllocator : public VmAllocator
{
  public:
    std::optional<ServerId> place(const PlacementRequest &request,
                                  const ClusterView &view) override;

    const char *name() const override { return "baseline"; }
};

/** TAPAS rule-pipeline placement. */
class TapasAllocator : public VmAllocator
{
  public:
    explicit TapasAllocator(const TapasPolicyConfig &config)
        : cfg(config)
    {}

    std::optional<ServerId> place(const PlacementRequest &request,
                                  const ClusterView &view) override;

    const char *name() const override { return "tapas"; }

    /**
     * Heat/load level the configurator can always push a SaaS
     * instance down to; budget validators count SaaS at this
     * controllable floor because TAPAS reclaims that slack at
     * runtime (Section 4.4: oversubscription leverages the slack
     * TAPAS creates).
     */
    static constexpr double kSaasControllableLoad = 0.45;

    /**
     * Per-server predicted peak loads from the placed VM views,
     * SaaS counted at the controllable floor (the accounting every
     * budget validator shares — allocator admission, migration
     * donor ranking, and the what-if helpers below).
     */
    static void peakLoadByServer(const ClusterView &view,
                                 std::vector<double> &out);

    /**
     * Predicted peak airflow demand of an aisle (CFM), including an
     * optional extra VM at the given server.
     */
    static double predictedAisleAirflow(const ClusterView &view,
                                        AisleId aisle,
                                        ServerId extra_server,
                                        double extra_peak_load);

    /** Predicted peak power demand of a row (W), incl. optional VM. */
    static double predictedRowPower(const ClusterView &view,
                                    RowId row, ServerId extra_server,
                                    double extra_peak_load);

  private:
    TapasPolicyConfig cfg;

    /** Reusable placement scratch (place() runs per arriving VM and
     *  per waiting-queue retry; batched predictor passes write into
     *  these instead of allocating per call). */
    std::vector<double> peaksScratch;
    std::vector<double> aisleBaseScratch;
    std::vector<double> rowBaseScratch;
    std::vector<double> airflowZeroScratch;
    std::vector<double> airflowReqScratch;
    std::vector<double> powerZeroScratch;
    std::vector<double> powerReqScratch;
    std::vector<double> inletScratch;
    std::vector<double> perGpuWScratch;
    std::vector<double> hottestScratch;
    std::vector<int> rowIaasScratch;
    std::vector<int> rowSaasScratch;
};

} // namespace tapas

#endif // TAPAS_CORE_ALLOCATOR_HH
