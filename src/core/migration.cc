#include "core/migration.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

void
MigrationPlanner::rowPeakPowers(const ClusterView &view)
{
    const DatacenterLayout &layout = *view.layout;
    // Shared per-server peak accounting (SaaS at the controllable
    // floor), unoccupied servers zeroed, one fleet-wide batched
    // power pass, then a per-row accumulation — the same values
    // TapasAllocator::predictedRowPower produces row by row, without
    // the per-row fleet walks.
    TapasAllocator::peakLoadByServer(view, peaksScratch);
    for (std::size_t s = 0; s < peaksScratch.size(); ++s) {
        if (!view.occupied[s])
            peaksScratch[s] = 0.0;
    }
    powerScratch.resize(layout.serverCount());
    view.profiles->predictPowerBatch(peaksScratch.data(),
                                     layout.serverCount(),
                                     powerScratch.data());
    rowPowerScratch.assign(layout.rowCount(), 0.0);
    for (const Server &server : layout.servers()) {
        rowPowerScratch[server.row.index] +=
            powerScratch[server.id.index];
    }
}

std::optional<MigrationPlan>
MigrationPlanner::planOne(ClusterView &view)
{
    tapas_assert(view.profiles, "migration planning needs profiles");
    view.assertFresh();
    const DatacenterLayout &layout = *view.layout;

    // Rank rows by predicted peak power utilization.
    rowPeakPowers(view);
    RowId donor;
    double worst_util = 0.0;
    for (const Row &row : layout.rows()) {
        const double demand = rowPowerScratch[row.id.index];
        const double budget =
            view.power->effectiveRowProvision(row.id).value();
        if (budget <= 0.0)
            continue;
        const double util = demand / budget;
        if (util > worst_util) {
            worst_util = util;
            donor = row.id;
        }
    }
    if (!donor.valid())
        return std::nullopt;
    const double donor_before = rowPowerScratch[donor.index];

    // Candidate: the SaaS VM with the highest predicted peak in the
    // donor row (moving it relieves the most pressure).
    const PlacedVmView *candidate_ref = nullptr;
    for (const PlacedVmView &vm : view.vms) {
        if (vm.kind != VmKind::SaaS)
            continue;
        if (!(layout.server(vm.server).row == donor))
            continue;
        if (!candidate_ref ||
            vm.predictedPeakLoad >
                candidate_ref->predictedPeakLoad) {
            candidate_ref = &vm;
        }
    }
    if (!candidate_ref)
        return std::nullopt;

    // Overlay: lift the candidate out of the view in place (the
    // erase position is remembered so a rejected what-if restores
    // the entry exactly — same index, same field values).
    const PlacedVmView candidate = *candidate_ref;
    const std::size_t at = static_cast<std::size_t>(
        candidate_ref - view.vms.data());
    view.occupied[candidate.server.index] = false;
    view.vms.erase(view.vms.begin() +
                   static_cast<std::ptrdiff_t>(at));

    auto undo = [&]() {
        view.vms.insert(view.vms.begin() +
                            static_cast<std::ptrdiff_t>(at),
                        candidate);
        view.occupied[candidate.server.index] = true;
    };

    PlacementRequest request;
    request.id = candidate.id;
    request.kind = VmKind::SaaS;
    request.endpoint = candidate.endpoint;
    request.predictedPeakLoad = candidate.predictedPeakLoad;

    const auto target = alloc.place(request, view);
    // A move within the same row relieves nothing.
    if (!target.has_value() ||
        layout.server(*target).row == donor) {
        undo();
        return std::nullopt;
    }

    // Donor-row relief, evaluated on the lifted-out overlay state.
    rowPeakPowers(view);
    const double donor_after = rowPowerScratch[donor.index];
    if (donor_after >= donor_before) {
        undo();
        return std::nullopt;
    }

    // Accept: apply the move to the view (the entry keeps its index,
    // so ascending-id order is preserved).
    PlacedVmView moved = candidate;
    moved.server = *target;
    view.vms.insert(view.vms.begin() +
                        static_cast<std::ptrdiff_t>(at),
                    moved);
    view.occupied[target->index] = true;

    MigrationPlan plan;
    plan.vm = candidate.id;
    plan.from = candidate.server;
    plan.to = *target;
    plan.donorRowPeakW = donor_before;
    plan.donorRowAfterW = donor_after;
    return plan;
}

std::vector<MigrationPlan>
MigrationPlanner::plan(ClusterView &view, int max_moves)
{
    std::vector<MigrationPlan> out;
    for (int i = 0; i < max_moves; ++i) {
        const auto move = planOne(view);
        if (!move.has_value())
            break;
        out.push_back(*move);
    }
    return out;
}

} // namespace tapas
