#include "core/migration.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

std::optional<MigrationPlan>
MigrationPlanner::planOne(const ClusterView &view)
{
    tapas_assert(view.profiles, "migration planning needs profiles");
    const DatacenterLayout &layout = *view.layout;

    // Rank rows by predicted peak power utilization.
    RowId donor;
    double worst_util = 0.0;
    for (const Row &row : layout.rows()) {
        const double demand = TapasAllocator::predictedRowPower(
            view, row.id, ServerId(), 0.0);
        const double budget =
            view.power->effectiveRowProvision(row.id).value();
        if (budget <= 0.0)
            continue;
        const double util = demand / budget;
        if (util > worst_util) {
            worst_util = util;
            donor = row.id;
        }
    }
    if (!donor.valid())
        return std::nullopt;

    // Candidate: the SaaS VM with the highest predicted peak in the
    // donor row (moving it relieves the most pressure).
    const PlacedVmView *candidate = nullptr;
    for (const PlacedVmView &vm : view.vms) {
        if (vm.kind != VmKind::SaaS)
            continue;
        if (!(layout.server(vm.server).row == donor))
            continue;
        if (!candidate ||
            vm.predictedPeakLoad > candidate->predictedPeakLoad) {
            candidate = &vm;
        }
    }
    if (!candidate)
        return std::nullopt;

    // Re-place through the allocator on a view with the VM removed.
    ClusterView without = view;
    without.occupied[candidate->server.index] = false;
    without.vms.erase(
        std::remove_if(without.vms.begin(), without.vms.end(),
                       [&](const PlacedVmView &vm) {
                           return vm.id == candidate->id;
                       }),
        without.vms.end());

    PlacementRequest request;
    request.id = candidate->id;
    request.kind = VmKind::SaaS;
    request.endpoint = candidate->endpoint;
    request.predictedPeakLoad = candidate->predictedPeakLoad;

    TapasAllocator allocator(cfg);
    const auto target = allocator.place(request, without);
    if (!target.has_value())
        return std::nullopt;
    // A move within the same row relieves nothing.
    if (layout.server(*target).row == donor)
        return std::nullopt;

    MigrationPlan plan;
    plan.vm = candidate->id;
    plan.from = candidate->server;
    plan.to = *target;
    plan.donorRowPeakW = TapasAllocator::predictedRowPower(
        view, donor, ServerId(), 0.0);
    plan.donorRowAfterW = TapasAllocator::predictedRowPower(
        without, donor, ServerId(), 0.0);
    if (plan.donorRowAfterW >= plan.donorRowPeakW)
        return std::nullopt;
    return plan;
}

std::vector<MigrationPlan>
MigrationPlanner::plan(const ClusterView &view, int max_moves)
{
    std::vector<MigrationPlan> out;
    ClusterView working = view;
    for (int i = 0; i < max_moves; ++i) {
        const auto move = planOne(working);
        if (!move.has_value())
            break;
        out.push_back(*move);
        // Apply the move to the working view for the next round.
        working.occupied[move->from.index] = false;
        working.occupied[move->to.index] = true;
        for (PlacedVmView &vm : working.vms) {
            if (vm.id == move->vm)
                vm.server = move->to;
        }
    }
    return out;
}

} // namespace tapas
