#include "core/allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

std::optional<ServerId>
BaselineAllocator::place(const PlacementRequest &request,
                         const ClusterView &view)
{
    (void)request;
    const DatacenterLayout &layout = *view.layout;

    // Protean-style packing: prefer the emptiest tail of the most
    // utilized racks so VMs concentrate, leaving whole racks free.
    std::optional<ServerId> best;
    int best_score = -1;
    for (const Server &server : layout.servers()) {
        if (view.occupied[server.id.index])
            continue;
        int occupied_in_rack = 0;
        for (ServerId sibling : layout.rack(server.rack).servers) {
            if (view.occupied[sibling.index])
                ++occupied_in_rack;
        }
        if (occupied_in_rack > best_score) {
            best_score = occupied_in_rack;
            best = server.id;
        }
    }
    return best;
}

namespace {

/**
 * Heat/load level the configurator can always push a SaaS instance
 * down to; budget validators count SaaS at this controllable floor
 * because TAPAS reclaims that slack at runtime (Section 4.4:
 * oversubscription leverages the slack TAPAS creates).
 */
constexpr double kSaasControllableLoad = 0.45;

/** Per-server predicted peak load map from the placed VM views. */
std::vector<double>
peakLoadByServer(const ClusterView &view)
{
    std::vector<double> peaks(view.layout->serverCount(), 0.0);
    for (const PlacedVmView &vm : view.vms) {
        double peak = vm.predictedPeakLoad;
        if (vm.kind == VmKind::SaaS)
            peak = std::min(peak, kSaasControllableLoad);
        peaks[vm.server.index] = peak;
    }
    return peaks;
}

} // namespace

double
TapasAllocator::predictedAisleAirflow(const ClusterView &view,
                                      AisleId aisle,
                                      ServerId extra_server,
                                      double extra_peak_load)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    const std::vector<double> peaks = peakLoadByServer(view);
    double total = 0.0;
    for (ServerId sid : view.layout->aisle(aisle).servers) {
        double load = peaks[sid.index];
        if (extra_server.valid() && sid == extra_server)
            load = std::max(load, extra_peak_load);
        total += view.profiles->predictServerAirflowCfm(sid, load);
    }
    return total;
}

double
TapasAllocator::predictedRowPower(const ClusterView &view, RowId row,
                                  ServerId extra_server,
                                  double extra_peak_load)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    const std::vector<double> peaks = peakLoadByServer(view);
    double total = 0.0;
    for (ServerId sid : view.layout->row(row).servers) {
        double load = peaks[sid.index];
        const bool is_occupied = view.occupied[sid.index];
        if (extra_server.valid() && sid == extra_server)
            load = std::max(load, extra_peak_load);
        else if (!is_occupied)
            load = 0.0;
        total += view.profiles->predictServerPowerW(sid, load);
    }
    return total;
}

std::optional<ServerId>
TapasAllocator::place(const PlacementRequest &request,
                      const ClusterView &view)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    const DatacenterLayout &layout = *view.layout;
    const ProfileBank &profiles = *view.profiles;

    // Pre-compute per-row VM mix for the balance rule.
    std::vector<int> row_iaas(layout.rowCount(), 0);
    std::vector<int> row_saas(layout.rowCount(), 0);
    for (const PlacedVmView &vm : view.vms) {
        const RowId row = layout.server(vm.server).row;
        if (vm.kind == VmKind::IaaS) {
            ++row_iaas[row.index];
        } else {
            ++row_saas[row.index];
        }
    }

    std::optional<ServerId> best;
    double best_score = -1e18;
    // Soft fallback: the thermal margin is a preference, not a
    // physical limit; if no server clears it, place on the coolest
    // projection rather than starving the VM.
    std::optional<ServerId> fallback;
    double fallback_hottest = 1e18;

    // Precompute aggregate peak demands once; per candidate only the
    // candidate's own delta changes (keeps place() linear).
    const std::vector<double> peaks = peakLoadByServer(view);
    std::vector<double> aisle_base(layout.aisleCount(), 0.0);
    std::vector<double> row_base(layout.rowCount(), 0.0);
    for (const Server &server : layout.servers()) {
        const double peak = view.occupied[server.id.index]
            ? peaks[server.id.index]
            : 0.0;
        aisle_base[server.aisle.index] +=
            profiles.predictServerAirflowCfm(server.id, peak);
        row_base[server.row.index] +=
            profiles.predictServerPowerW(server.id, peak);
    }

    for (const Server &server : layout.servers()) {
        if (view.occupied[server.id.index])
            continue;

        // --- Validator rule: Eq. 3 (airflow) and Eq. 4 (power).
        // SaaS requests count at their controllable floor. ---
        const double request_peak = request.kind == VmKind::SaaS
            ? std::min(request.predictedPeakLoad,
                       kSaasControllableLoad)
            : request.predictedPeakLoad;
        const double aisle_demand =
            aisle_base[server.aisle.index] -
            profiles.predictServerAirflowCfm(server.id, 0.0) +
            profiles.predictServerAirflowCfm(server.id,
                                             request_peak);
        const double aisle_budget =
            view.cooling->effectiveProvision(server.aisle).value();
        if (aisle_demand > aisle_budget)
            continue;

        const double row_demand =
            row_base[server.row.index] -
            profiles.predictServerPowerW(server.id, 0.0) +
            profiles.predictServerPowerW(server.id, request_peak);
        const double row_budget =
            view.power->effectiveRowProvision(server.row).value();
        if (row_demand > row_budget)
            continue;

        // Project the hottest GPU at the VM's predicted peak via the
        // fitted Eq. 2 (hot-summer inlet assumption) and refuse any
        // server that would flirt with the throttle point.
        const ServerSpec &spec = layout.specOf(server.id);
        // Design-day conservatism: a placement lives for weeks, so
        // project against a hot afternoon at high datacenter load.
        const double inlet = profiles.predictInletC(
            server.id, std::max(view.outsideC, 34.0), 1.0);
        const double per_gpu_w = spec.gpuIdlePower.value() +
            (spec.gpuMaxPower.value() - spec.gpuIdlePower.value()) *
                request.predictedPeakLoad;
        const double hottest =
            profiles.predictHottestGpuC(server.id, inlet, per_gpu_w);
        const double throttle = spec.throttleTemp.value();
        if (hottest > throttle - cfg.gpuTempMarginC) {
            if (hottest < fallback_hottest) {
                fallback_hottest = hottest;
                fallback = server.id;
            }
            continue;
        }
        // Thermal headroom score: the paper's "place hotter IaaS VMs
        // in cooler servers" selects the lowest projected peak GPU
        // temperature; SaaS tolerates warmth (it can be reconfigured
        // or rerouted away later).
        const double headroom_frac =
            std::clamp((throttle - hottest) / 25.0, 0.0, 1.0);
        const double thermal_score =
            request.kind == VmKind::IaaS ? 2.0 * headroom_frac
                                         : 0.5 * headroom_frac;

        // --- Preference rule 1: temperature class. ---
        const ThermalClass klass = profiles.thermalClass(server.id);
        double class_score = 0.0;
        if (request.kind == VmKind::IaaS) {
            class_score = klass == ThermalClass::Cold ? 2.0
                : klass == ThermalClass::Medium      ? 1.0
                                                     : 0.0;
        } else {
            class_score = klass == ThermalClass::Warm ? 2.0
                : klass == ThermalClass::Medium      ? 1.0
                                                     : 0.0;
        }

        // --- Preference rule 2: IaaS/SaaS balance in the row. ---
        int iaas = row_iaas[server.row.index];
        int saas = row_saas[server.row.index];
        if (request.kind == VmKind::IaaS) {
            ++iaas;
        } else {
            ++saas;
        }
        const int total = iaas + saas;
        const double balance_score = total > 0
            ? 1.0 - std::abs(iaas - saas) / static_cast<double>(total)
            : 1.0;

        // --- Headroom tie-break: spread peaks across rows. ---
        const double headroom_score =
            row_budget > 0.0 ? 1.0 - row_demand / row_budget : 0.0;

        const double score = 2.0 * class_score +
            1.0 * balance_score + 3.0 * headroom_score +
            thermal_score;
        if (score > best_score) {
            best_score = score;
            best = server.id;
        }
    }
    return best.has_value() ? best : fallback;
}

} // namespace tapas
