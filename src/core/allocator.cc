#include "core/allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

std::optional<ServerId>
BaselineAllocator::place(const PlacementRequest &request,
                         const ClusterView &view)
{
    (void)request;
    const DatacenterLayout &layout = *view.layout;

    // Protean-style packing: prefer the emptiest tail of the most
    // utilized racks so VMs concentrate, leaving whole racks free.
    std::optional<ServerId> best;
    int best_score = -1;
    for (const Server &server : layout.servers()) {
        if (view.occupied[server.id.index])
            continue;
        int occupied_in_rack = 0;
        for (ServerId sibling : layout.rack(server.rack).servers) {
            if (view.occupied[sibling.index])
                ++occupied_in_rack;
        }
        if (occupied_in_rack > best_score) {
            best_score = occupied_in_rack;
            best = server.id;
        }
    }
    return best;
}

namespace {

constexpr double kSaasControllableLoad =
    TapasAllocator::kSaasControllableLoad;

} // namespace

void
TapasAllocator::peakLoadByServer(const ClusterView &view,
                                 std::vector<double> &peaks)
{
    peaks.assign(view.layout->serverCount(), 0.0);
    for (const PlacedVmView &vm : view.vms) {
        double peak = vm.predictedPeakLoad;
        if (vm.kind == VmKind::SaaS)
            peak = std::min(peak, kSaasControllableLoad);
        peaks[vm.server.index] = peak;
    }
}

double
TapasAllocator::predictedAisleAirflow(const ClusterView &view,
                                      AisleId aisle,
                                      ServerId extra_server,
                                      double extra_peak_load)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    view.assertFresh();
    std::vector<double> peaks;
    peakLoadByServer(view, peaks);
    const std::vector<ServerId> &servers =
        view.layout->aisle(aisle).servers;
    std::vector<double> loads(servers.size());
    std::vector<double> airflow(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
        double load = peaks[servers[i].index];
        if (extra_server.valid() && servers[i] == extra_server)
            load = std::max(load, extra_peak_load);
        loads[i] = load;
    }
    view.profiles->predictAirflowGather(servers.data(), loads.data(),
                                        servers.size(),
                                        airflow.data());
    double total = 0.0;
    for (std::size_t i = 0; i < servers.size(); ++i)
        total += airflow[i];
    return total;
}

double
TapasAllocator::predictedRowPower(const ClusterView &view, RowId row,
                                  ServerId extra_server,
                                  double extra_peak_load)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    view.assertFresh();
    std::vector<double> peaks;
    peakLoadByServer(view, peaks);
    const std::vector<ServerId> &servers =
        view.layout->row(row).servers;
    std::vector<double> loads(servers.size());
    std::vector<double> power(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const ServerId sid = servers[i];
        double load = peaks[sid.index];
        const bool is_occupied = view.occupied[sid.index];
        if (extra_server.valid() && sid == extra_server)
            load = std::max(load, extra_peak_load);
        else if (!is_occupied)
            load = 0.0;
        loads[i] = load;
    }
    view.profiles->predictPowerGather(servers.data(), loads.data(),
                                      servers.size(), power.data());
    double total = 0.0;
    for (std::size_t i = 0; i < servers.size(); ++i)
        total += power[i];
    return total;
}

std::optional<ServerId>
TapasAllocator::place(const PlacementRequest &request,
                      const ClusterView &view)
{
    tapas_assert(view.profiles, "TAPAS allocator needs profiles");
    view.assertFresh();
    const DatacenterLayout &layout = *view.layout;
    const ProfileBank &profiles = *view.profiles;
    const std::size_t servers = layout.serverCount();

    // Pre-compute per-row VM mix for the balance rule.
    rowIaasScratch.assign(layout.rowCount(), 0);
    rowSaasScratch.assign(layout.rowCount(), 0);
    std::vector<int> &row_iaas = rowIaasScratch;
    std::vector<int> &row_saas = rowSaasScratch;
    for (const PlacedVmView &vm : view.vms) {
        const RowId row = layout.server(vm.server).row;
        if (vm.kind == VmKind::IaaS) {
            ++row_iaas[row.index];
        } else {
            ++row_saas[row.index];
        }
    }

    std::optional<ServerId> best;
    double best_score = -1e18;
    // Soft fallback: the thermal margin is a preference, not a
    // physical limit; if no server clears it, place on the coolest
    // projection rather than starving the VM.
    std::optional<ServerId> fallback;
    double fallback_hottest = 1e18;

    // SaaS requests count at their controllable floor for the
    // airflow/power validators; the thermal projection uses the raw
    // predicted peak.
    const double request_peak = request.kind == VmKind::SaaS
        ? std::min(request.predictedPeakLoad, kSaasControllableLoad)
        : request.predictedPeakLoad;

    // Precompute every per-server prediction the candidate loop
    // needs as fleet-wide batched passes: the occupied-peak demand
    // bases, the empty/requested what-if deltas, and the design-day
    // thermal projection. The loop below then only reads packed
    // arrays; per candidate only its own delta changes (keeps
    // place() linear).
    peakLoadByServer(view, peaksScratch);
    for (std::size_t s = 0; s < servers; ++s) {
        if (!view.occupied[s])
            peaksScratch[s] = 0.0;
    }
    airflowZeroScratch.resize(servers);
    airflowReqScratch.resize(servers);
    powerZeroScratch.resize(servers);
    powerReqScratch.resize(servers);
    inletScratch.resize(servers);
    perGpuWScratch.resize(servers);
    hottestScratch.resize(servers);
    // Reuse the occupied-peak airflow/power pass for the bases.
    profiles.predictAirflowBatch(peaksScratch.data(), servers,
                                 airflowReqScratch.data());
    profiles.predictPowerBatch(peaksScratch.data(), servers,
                               powerReqScratch.data());
    aisleBaseScratch.assign(layout.aisleCount(), 0.0);
    rowBaseScratch.assign(layout.rowCount(), 0.0);
    std::vector<double> &aisle_base = aisleBaseScratch;
    std::vector<double> &row_base = rowBaseScratch;
    for (const Server &server : layout.servers()) {
        aisle_base[server.aisle.index] +=
            airflowReqScratch[server.id.index];
        row_base[server.row.index] +=
            powerReqScratch[server.id.index];
    }
    profiles.predictAirflowUniformBatch(0.0, servers,
                                        airflowZeroScratch.data());
    profiles.predictAirflowUniformBatch(request_peak, servers,
                                        airflowReqScratch.data());
    profiles.predictPowerUniformBatch(0.0, servers,
                                      powerZeroScratch.data());
    profiles.predictPowerUniformBatch(request_peak, servers,
                                      powerReqScratch.data());
    // Design-day conservatism: a placement lives for weeks, so
    // project against a hot afternoon at high datacenter load.
    profiles.predictInletBatch(std::max(view.outsideC, 34.0), 1.0,
                               servers, inletScratch.data());
    for (const Server &server : layout.servers()) {
        const ServerSpec &spec = layout.specOf(server.id);
        perGpuWScratch[server.id.index] =
            spec.gpuIdlePower.value() +
            (spec.gpuMaxPower.value() -
             spec.gpuIdlePower.value()) *
                request.predictedPeakLoad;
    }
    profiles.predictHottestGpuUniformBatch(inletScratch.data(),
                                           perGpuWScratch.data(),
                                           servers,
                                           hottestScratch.data());

    for (const Server &server : layout.servers()) {
        if (view.occupied[server.id.index])
            continue;

        // --- Validator rule: Eq. 3 (airflow) and Eq. 4 (power). ---
        const double aisle_demand =
            aisle_base[server.aisle.index] -
            airflowZeroScratch[server.id.index] +
            airflowReqScratch[server.id.index];
        const double aisle_budget =
            view.cooling->effectiveProvision(server.aisle).value();
        if (aisle_demand > aisle_budget)
            continue;

        const double row_demand =
            row_base[server.row.index] -
            powerZeroScratch[server.id.index] +
            powerReqScratch[server.id.index];
        const double row_budget =
            view.power->effectiveRowProvision(server.row).value();
        if (row_demand > row_budget)
            continue;

        // Projected hottest GPU at the VM's predicted peak via the
        // fitted Eq. 2 (hot-summer inlet assumption): refuse any
        // server that would flirt with the throttle point.
        const ServerSpec &spec = layout.specOf(server.id);
        const double hottest = hottestScratch[server.id.index];
        const double throttle = spec.throttleTemp.value();
        if (hottest > throttle - cfg.gpuTempMarginC) {
            if (hottest < fallback_hottest) {
                fallback_hottest = hottest;
                fallback = server.id;
            }
            continue;
        }
        // Thermal headroom score: the paper's "place hotter IaaS VMs
        // in cooler servers" selects the lowest projected peak GPU
        // temperature; SaaS tolerates warmth (it can be reconfigured
        // or rerouted away later).
        const double headroom_frac =
            std::clamp((throttle - hottest) / 25.0, 0.0, 1.0);
        const double thermal_score =
            request.kind == VmKind::IaaS ? 2.0 * headroom_frac
                                         : 0.5 * headroom_frac;

        // --- Preference rule 1: temperature class. ---
        const ThermalClass klass = profiles.thermalClass(server.id);
        double class_score = 0.0;
        if (request.kind == VmKind::IaaS) {
            class_score = klass == ThermalClass::Cold ? 2.0
                : klass == ThermalClass::Medium      ? 1.0
                                                     : 0.0;
        } else {
            class_score = klass == ThermalClass::Warm ? 2.0
                : klass == ThermalClass::Medium      ? 1.0
                                                     : 0.0;
        }

        // --- Preference rule 2: IaaS/SaaS balance in the row. ---
        int iaas = row_iaas[server.row.index];
        int saas = row_saas[server.row.index];
        if (request.kind == VmKind::IaaS) {
            ++iaas;
        } else {
            ++saas;
        }
        const int total = iaas + saas;
        const double balance_score = total > 0
            ? 1.0 - std::abs(iaas - saas) / static_cast<double>(total)
            : 1.0;

        // --- Headroom tie-break: spread peaks across rows. ---
        const double headroom_score =
            row_budget > 0.0 ? 1.0 - row_demand / row_budget : 0.0;

        const double score = 2.0 * class_score +
            1.0 * balance_score + 3.0 * headroom_score +
            thermal_score;
        if (score > best_score) {
            best_score = score;
            best = server.id;
        }
    }
    return best.has_value() ? best : fallback;
}

} // namespace tapas
