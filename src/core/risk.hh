/**
 * @file
 * Cached thermal/power/airflow risk assessment (paper Section 4.2).
 *
 * TAPAS recomputes per-aisle airflow demand, per-row power demand,
 * and per-server projected GPU temperature every five minutes (or on
 * demand when discrepancies appear) and the request router filters
 * VMs on servers flagged at any of the three constraint levels.
 */

#ifndef TAPAS_CORE_RISK_HH
#define TAPAS_CORE_RISK_HH

#include <vector>

#include "core/context.hh"

namespace tapas {

class Archive;

/** Per-server risk flags with supporting numbers. */
struct ServerRisk
{
    bool thermalRisk = false;
    bool powerRisk = false;
    bool airflowRisk = false;
    /** Sensors untrusted: predictions fell back to the last known
     *  good snapshot and the thermal margin was widened. */
    bool quarantined = false;

    double predictedHottestGpuC = 0.0;
    double rowHeadroomW = 0.0;
    double aisleHeadroomCfm = 0.0;

    bool any() const
    { return thermalRisk || powerRisk || airflowRisk; }
};

/** Periodically refreshed risk cache. */
class RiskAssessor
{
  public:
    explicit RiskAssessor(const TapasPolicyConfig &config)
        : cfg(config)
    {}

    /**
     * Recompute all risk entries from the current view and measured
     * per-GPU power (flattened [server * gpus + gpu], watts).
     */
    void refresh(const ClusterView &view,
                 const std::vector<double> &gpu_power_w);

    /**
     * Refresh only if the cache is older than the configured period.
     * Returns true when a refresh happened.
     */
    bool maybeRefresh(const ClusterView &view,
                      const std::vector<double> &gpu_power_w);

    bool fresh() const { return !risks.empty(); }
    SimTime lastRefresh() const { return lastRefreshAt; }

    /** Whether maybeRefresh() would recompute at the given time. */
    bool
    refreshDue(SimTime now) const
    {
        return lastRefreshAt < 0 ||
            now - lastRefreshAt >= cfg.riskRefreshPeriod;
    }

    const ServerRisk &risk(ServerId id) const;

    /** Count of servers currently flagged (for tests/metrics). */
    std::size_t flaggedCount() const;

    // --- Sensor quarantine (graceful degradation under sensor
    // faults; see TapasPolicyConfig::sensorQuarantineEnabled). ---

    /** Whether this server's sensors are currently quarantined. */
    bool
    quarantined(ServerId id) const
    {
        return id.index < quarantinedFlag.size() &&
            quarantinedFlag[id.index] != 0;
    }

    /** Servers currently under quarantine (O(1)). */
    std::size_t quarantinedNow() const { return quarantinedCount; }

    /** Cumulative quarantine entries (recoveries not counted). */
    std::uint64_t quarantineEvents() const
    { return quarantineEventCount; }

    /**
     * Serialize/restore the risk cache, refresh clock, and sensor
     * quarantine state (streaks, flags, last-good power snapshots).
     * Scratch buffers and the hoisted spec caches resize lazily on
     * the next refresh and do not travel.
     */
    void checkpointState(Archive &ar);

  private:
    // ckpt-skip(constant): policy flags fixed at construction
    TapasPolicyConfig cfg;
    std::vector<ServerRisk> risks;
    SimTime lastRefreshAt = -1;

    /** Reusable fleet-wide prediction buffers (refresh runs every
     *  risk period; batched passes write into these). */
    std::vector<double> airflowScratch;  // ckpt-skip(scratch): per-refresh
    std::vector<double> powerScratch;    // ckpt-skip(scratch): per-refresh
    std::vector<double> inletScratch;    // ckpt-skip(scratch): per-refresh
    std::vector<double> hottestScratch;  // ckpt-skip(scratch): per-refresh
    /** Per-server thermal-risk limit (throttle - margin), hoisted
     *  out of the per-refresh spec walk (the layout is fixed). */
    // ckpt-skip(derived): refilled from the fixed layout specs on
    // the next refresh
    std::vector<double> thermalLimitC;
    /** Per-aisle/row headroom staging for the single assembly
     *  pass. */
    std::vector<double> aisleHeadroomScratch; // ckpt-skip(scratch): staging
    std::vector<char> aisleRiskScratch;       // ckpt-skip(scratch): staging
    std::vector<double> rowHeadroomScratch;   // ckpt-skip(scratch): staging
    std::vector<char> rowRiskScratch;         // ckpt-skip(scratch): staging

    // --- Sensor-quarantine state ---
    /** Consecutive diverging / healthy refreshes per server. */
    std::vector<int> divergeStreak;
    std::vector<int> healthyStreak;
    std::vector<char> quarantinedFlag;
    /** Last per-GPU power snapshot taken while healthy (flattened
     *  like the refresh input); predictions for quarantined servers
     *  read this instead of the untrusted sensors. */
    std::vector<double> lastGoodGpuW;
    /** Substitution copy of the refresh's gpu_power_w input. */
    std::vector<double> gpuPowerScratch; // ckpt-skip(scratch): per-refresh
    /** Per-server idle and max GPU-power totals (spec constants for
     *  the load -> power reconstruction), cached like the limits. */
    std::vector<double> idleTotalW; // ckpt-skip(derived): spec cache
    std::vector<double> maxTotalW;  // ckpt-skip(derived): spec cache
    std::size_t quarantinedCount = 0;
    std::uint64_t quarantineEventCount = 0;

    /** Detect diverging sensors, update streaks/quarantine state,
     *  and return the (possibly substituted) per-GPU power vector
     *  the predictions should use. */
    const std::vector<double> &
    applySensorQuarantine(const ClusterView &view,
                          const std::vector<double> &gpu_power_w,
                          int gpus);
};

} // namespace tapas

#endif // TAPAS_CORE_RISK_HH
