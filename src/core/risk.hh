/**
 * @file
 * Cached thermal/power/airflow risk assessment (paper Section 4.2).
 *
 * TAPAS recomputes per-aisle airflow demand, per-row power demand,
 * and per-server projected GPU temperature every five minutes (or on
 * demand when discrepancies appear) and the request router filters
 * VMs on servers flagged at any of the three constraint levels.
 */

#ifndef TAPAS_CORE_RISK_HH
#define TAPAS_CORE_RISK_HH

#include <vector>

#include "core/context.hh"

namespace tapas {

/** Per-server risk flags with supporting numbers. */
struct ServerRisk
{
    bool thermalRisk = false;
    bool powerRisk = false;
    bool airflowRisk = false;

    double predictedHottestGpuC = 0.0;
    double rowHeadroomW = 0.0;
    double aisleHeadroomCfm = 0.0;

    bool any() const
    { return thermalRisk || powerRisk || airflowRisk; }
};

/** Periodically refreshed risk cache. */
class RiskAssessor
{
  public:
    explicit RiskAssessor(const TapasPolicyConfig &config)
        : cfg(config)
    {}

    /**
     * Recompute all risk entries from the current view and measured
     * per-GPU power (flattened [server * gpus + gpu], watts).
     */
    void refresh(const ClusterView &view,
                 const std::vector<double> &gpu_power_w);

    /**
     * Refresh only if the cache is older than the configured period.
     * Returns true when a refresh happened.
     */
    bool maybeRefresh(const ClusterView &view,
                      const std::vector<double> &gpu_power_w);

    bool fresh() const { return !risks.empty(); }
    SimTime lastRefresh() const { return lastRefreshAt; }

    /** Whether maybeRefresh() would recompute at the given time. */
    bool
    refreshDue(SimTime now) const
    {
        return lastRefreshAt < 0 ||
            now - lastRefreshAt >= cfg.riskRefreshPeriod;
    }

    const ServerRisk &risk(ServerId id) const;

    /** Count of servers currently flagged (for tests/metrics). */
    std::size_t flaggedCount() const;

  private:
    TapasPolicyConfig cfg;
    std::vector<ServerRisk> risks;
    SimTime lastRefreshAt = -1;

    /** Reusable fleet-wide prediction buffers (refresh runs every
     *  risk period; batched passes write into these). */
    std::vector<double> airflowScratch;
    std::vector<double> powerScratch;
    std::vector<double> inletScratch;
    std::vector<double> hottestScratch;
    /** Per-server thermal-risk limit (throttle - margin), hoisted
     *  out of the per-refresh spec walk (the layout is fixed). */
    std::vector<double> thermalLimitC;
    /** Per-aisle/row headroom staging for the single assembly
     *  pass. */
    std::vector<double> aisleHeadroomScratch;
    std::vector<char> aisleRiskScratch;
    std::vector<double> rowHeadroomScratch;
    std::vector<char> rowRiskScratch;
};

} // namespace tapas

#endif // TAPAS_CORE_RISK_HH
