/**
 * @file
 * Emergency handling (paper Section 4.4 and 5.4).
 *
 * Thermal emergency: an AHU failure derates aisle airflow to 90% of
 * design. Power emergency: a UPS failure derates row power budgets to
 * 75%. The FailureManager mutates the plant objects (the same ones
 * the ground-truth simulation enforces) so both the physics and
 * TAPAS's risk views see the new limits immediately.
 *
 * Overlapping failures compose by minimum: failing an aisle at 0.8
 * and then triggering a plant-wide 0.9 emergency leaves that aisle at
 * 0.8 (the deeper derate wins), and clearAll() restores exact design
 * capacities regardless of how many failures stacked up. The
 * stochastic FaultEngine (core/faults.hh) composes its own overlap
 * state and drives the plants through the absolute set*Derate entry
 * points instead.
 */

#ifndef TAPAS_CORE_FAILURE_HH
#define TAPAS_CORE_FAILURE_HH

#include <vector>

#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

namespace tapas {

class Archive;

/** Emergency kind currently in effect. */
enum class EmergencyKind { None, Thermal, Power, Both };

/** Injects and clears infrastructure failures. */
class FailureManager
{
  public:
    FailureManager(CoolingPlant &cooling, PowerHierarchy &power,
                   const DatacenterLayout &layout);

    /** Datacenter-wide AHU degradation (default 90% capacity). */
    void triggerThermalEmergency(double remaining_frac = 0.90);

    /** UPS failure; all row budgets drop (default 75% capacity). */
    void triggerPowerEmergency(double remaining_frac = 0.75);

    /** Degrade a single aisle's AHU group (min-composes). */
    void failAisle(AisleId id, double remaining_frac);

    /** Fail a specific UPS (min-composes). */
    void failUps(UpsId id, double remaining_frac = 0.75);

    /**
     * Set an aisle's derate absolutely, replacing any composed
     * state; 1.0 (or more) restores design capacity. Entry point for
     * the FaultEngine, which owns its own overlap composition.
     */
    void setAisleDerate(AisleId id, double frac);

    /** Set a UPS derate absolutely; >= 1.0 restores. */
    void setUpsDerate(UpsId id, double frac);

    /** Restore everything to design capacity. */
    void clearAll();

    /** Currently composed aisle derate (1.0 = design capacity). */
    double aisleDerate(AisleId id) const;

    /** Currently composed UPS derate (1.0 = design capacity). */
    double upsDerate(UpsId id) const;

    EmergencyKind active() const;

    /**
     * Serialize/restore the composed derate fractions. On restore
     * every entry is re-applied through the plant objects, so the
     * cooling/power state they carry is reconstructed exactly.
     */
    void checkpointState(Archive &ar);

  private:
    CoolingPlant &cooling;           // ckpt-skip(constant): plant wiring
    PowerHierarchy &power;           // ckpt-skip(constant): plant wiring
    const DatacenterLayout &layout;  // ckpt-skip(constant): plant wiring
    /** Composed requested derates; 1.0 = healthy. */
    std::vector<double> aisleFrac;
    std::vector<double> upsFrac;

    void applyAisle(AisleId id);
    void applyUps(UpsId id);
};

} // namespace tapas

#endif // TAPAS_CORE_FAILURE_HH
