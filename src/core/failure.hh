/**
 * @file
 * Emergency handling (paper Section 4.4 and 5.4).
 *
 * Thermal emergency: an AHU failure derates aisle airflow to 90% of
 * design. Power emergency: a UPS failure derates row power budgets to
 * 75%. The FailureManager mutates the plant objects (the same ones
 * the ground-truth simulation enforces) so both the physics and
 * TAPAS's risk views see the new limits immediately.
 */

#ifndef TAPAS_CORE_FAILURE_HH
#define TAPAS_CORE_FAILURE_HH

#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

namespace tapas {

/** Emergency kind currently in effect. */
enum class EmergencyKind { None, Thermal, Power, Both };

/** Injects and clears infrastructure failures. */
class FailureManager
{
  public:
    FailureManager(CoolingPlant &cooling, PowerHierarchy &power,
                   const DatacenterLayout &layout);

    /** Datacenter-wide AHU degradation (default 90% capacity). */
    void triggerThermalEmergency(double remaining_frac = 0.90);

    /** UPS failure; all row budgets drop (default 75% capacity). */
    void triggerPowerEmergency(double remaining_frac = 0.75);

    /** Degrade a single aisle's AHU group. */
    void failAisle(AisleId id, double remaining_frac);

    /** Fail a specific UPS. */
    void failUps(UpsId id, double remaining_frac = 0.75);

    /** Restore everything to design capacity. */
    void clearAll();

    EmergencyKind active() const;

  private:
    CoolingPlant &cooling;
    PowerHierarchy &power;
    const DatacenterLayout &layout;
};

} // namespace tapas

#endif // TAPAS_CORE_FAILURE_HH
