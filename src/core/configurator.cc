#include "core/configurator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

namespace {
/** Demand headroom factor for right-sized configurations. */
constexpr double kDemandHeadroom = 1.5;
} // namespace

InstanceConfigurator::InstanceConfigurator(
    const PerfModel &perf_, const TapasPolicyConfig &config)
    : perf(perf_), cfg(config), space(perf_.allProfiles())
{
    // Pre-sort: quality first (last-resort ordering), then goodput.
    std::sort(space.begin(), space.end(),
              [](const ConfigProfile &a, const ConfigProfile &b) {
                  if (a.quality != b.quality)
                      return a.quality > b.quality;
                  return a.goodputTps > b.goodputTps;
              });
}

bool
InstanceConfigurator::feasible(ServerId server,
                               const ProfileBank &profiles,
                               const InstanceLimits &limits,
                               const ConfigProfile &profile,
                               double demand_tps) const
{
    if (profile.goodputTps <= 0.0)
        return false;
    const PerfModel::OperatingPoint op =
        // lint-allow(R1): cold path — single-candidate feasibility
        // probe (fallback/hysteresis), not the block-batched walk.
        perf.operatingPointAt(profile,
                              std::min(demand_tps,
                                       profile.goodputTps));
    return feasibleAt(server, profiles, limits, profile, op);
}

double
InstanceConfigurator::heatFractionOf(
    const ConfigProfile &profile,
    const PerfModel::OperatingPoint &op) const
{
    // Airflow tracks heat: normalized GPU draw across the server.
    const ServerSpec &spec = perf.spec();
    const double idle_sum =
        spec.gpuIdlePower.value() * spec.gpusPerServer;
    const double max_sum =
        spec.gpuMaxPower.value() * spec.gpusPerServer;
    const double gpu_total = op.gpuPower.value() *
            profile.activeGpus +
        spec.gpuIdlePower.value() *
            (spec.gpusPerServer - profile.activeGpus);
    return max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
}

bool
InstanceConfigurator::feasibleAt(ServerId server,
                                 const ProfileBank &profiles,
                                 const InstanceLimits &limits,
                                 const ConfigProfile &profile,
                                 const PerfModel::OperatingPoint &op)
    const
{
    if (op.serverPower.value() > limits.maxServerPowerW)
        return false;

    const double gpu_power = op.gpuPower.value();
    double hottest = 0.0;
    profiles.predictHottestGpuCandidates(server, limits.inletC,
                                         &gpu_power, 1, &hottest);
    if (hottest > limits.maxGpuTempC)
        return false;

    const double heat = heatFractionOf(profile, op);
    double airflow = 0.0;
    profiles.predictAirflowCandidates(server, &heat, 1, &airflow);
    return airflow <= limits.maxAirflowCfm;
}

ConfigDecision
InstanceConfigurator::choose(ServerId server,
                             const ProfileBank &profiles,
                             const InstanceLimits &limits,
                             double demand_tps, double quality_floor,
                             const ConfigProfile &current,
                             OpCache *cache) const
{
    // Demand must be met with headroom so diurnal ramps do not
    // immediately outrun the chosen configuration.
    const double target_tps = demand_tps * kDemandHeadroom;

    if (cache && cache->demandTps != demand_tps) {
        cache->demandTps = demand_tps;
        cache->valid.assign(space.size(), 0);
        cache->ops.resize(space.size());
    }

    auto power_at_demand = [&](const ConfigProfile &p) {
        const double capped =
            std::min(demand_tps, std::max(1.0, p.goodputTps));
        // lint-allow(R1): cold path — tie-break power probe for the
        // handful of finalists, not the candidate block walk.
        return perf.operatingPointAt(p, capped)
            .serverPower.value();
    };
    // Candidate ranking biases against reload-requiring switches: a
    // TP/model/quant change must beat free alternatives by the
    // reload margin to be worth the blackout.

    // Selection: among feasible configs at/above the quality floor,
    // prefer (1) highest quality, (2) meeting demand+headroom,
    // (3) minimum power at the current demand (right-sizing),
    // falling back to maximum goodput when demand cannot be met.
    const ConfigProfile *best = nullptr;
    bool best_meets = false;
    double best_power = 1e300;
    double best_raw_power_w = 1e300;

    // Candidates are scored in blocks: operating points accumulate
    // until the block fills, then one predictHottestGpuCandidates +
    // one predictAirflowCandidates pass scores the whole block (the
    // server's coefficient block streams once instead of per
    // candidate) and the sequential take/prune logic replays over
    // the precomputed values. Blocks grow 1 -> 2 -> 4 -> 8 so the
    // prune (which only advances on flushed results) can stop the
    // walk almost as early as the scalar version did, while the
    // steady tail still batches eight candidates per coefficient
    // walk.
    constexpr std::size_t kBlock = 8;
    std::size_t flush_target = 1;
    const ConfigProfile *cands[kBlock];
    double feas_demands[kBlock];
    std::size_t cand_idxs[kBlock];
    PerfModel::OperatingPoint ops[kBlock];
    double gpu_power[kBlock];
    double heat[kBlock];
    double hottest[kBlock];
    double airflow[kBlock];
    // Memo-miss lanes awaiting the batched solve at flush time.
    const ConfigProfile *miss_cands[kBlock];
    double miss_demands[kBlock];
    std::size_t miss_lanes[kBlock];
    PerfModel::OperatingPoint miss_ops[kBlock];
    std::size_t pending = 0;

    auto flush = [&]() {
        if (pending == 0)
            return;
        // Solve the memo-miss lanes of the block in one batched
        // pass, then backfill the memo so same-demand siblings hit.
        std::size_t misses = 0;
        for (std::size_t i = 0; i < pending; ++i) {
            if (cache && cache->valid[cand_idxs[i]]) {
                ops[i] = cache->ops[cand_idxs[i]];
                continue;
            }
            miss_cands[misses] = cands[i];
            miss_demands[misses] = feas_demands[i];
            miss_lanes[misses] = i;
            ++misses;
        }
        if (misses > 0) {
            perf.operatingPointBatch(miss_cands, miss_demands,
                                     misses, miss_ops);
            for (std::size_t k = 0; k < misses; ++k) {
                const std::size_t i = miss_lanes[k];
                ops[i] = miss_ops[k];
                if (cache) {
                    cache->ops[cand_idxs[i]] = miss_ops[k];
                    cache->valid[cand_idxs[i]] = 1;
                }
            }
        }
        for (std::size_t i = 0; i < pending; ++i) {
            gpu_power[i] = ops[i].gpuPower.value();
            heat[i] = heatFractionOf(*cands[i], ops[i]);
        }
        profiles.predictHottestGpuCandidates(
            server, limits.inletC, gpu_power, pending, hottest);
        profiles.predictAirflowCandidates(server, heat, pending,
                                          airflow);
        for (std::size_t i = 0; i < pending; ++i) {
            const ConfigProfile &cand = *cands[i];
            const PerfModel::OperatingPoint &op = ops[i];
            if (op.serverPower.value() > limits.maxServerPowerW)
                continue;
            if (hottest[i] > limits.maxGpuTempC)
                continue;
            if (airflow[i] > limits.maxAirflowCfm)
                continue;
            const double feas_demand =
                std::min(demand_tps, cand.goodputTps);
            const double rank_demand =
                std::min(demand_tps, std::max(1.0, cand.goodputTps));
            const double rank_power_w = rank_demand == feas_demand
                ? op.serverPower.value()
                // lint-allow(R1): cold path — only candidates whose
                // goodput cannot serve 1 token/s re-rank here.
                : perf.operatingPointAt(cand, rank_demand)
                      .serverPower.value();
            const bool meets = cand.goodputTps >= target_tps;
            const double power =
                cand.config.requiresReload(current.config)
                ? rank_power_w * cfg.reloadHysteresisGain
                : rank_power_w;
            bool take = false;
            if (!best) {
                take = true;
            } else if (cand.quality > best->quality) {
                // Space is quality-sorted descending, so this only
                // happens on the first candidate; kept for clarity.
                take = true;
            } else if (cand.quality == best->quality) {
                if (meets && !best_meets) {
                    take = true;
                } else if (meets == best_meets) {
                    take = meets
                        ? power < best_power
                        : cand.goodputTps > best->goodputTps;
                }
            } else if (meets && !best_meets) {
                // Lower quality only buys its way in by meeting
                // demand the higher quality could not (emergency
                // last resort).
                take = true;
            }
            if (take) {
                best = &cand;
                best_meets = meets;
                best_power = power;
                best_raw_power_w = rank_power_w;
            }
        }
        pending = 0;
    };

    for (const ConfigProfile &cand : space) {
        // Pruning on the quality-desc, goodput-desc sort order: once
        // the incumbent meets demand, a candidate of lower quality
        // can never be taken (it only wins by meeting demand the
        // higher quality could not), and within the incumbent's
        // quality tier every remaining candidate has goodput no
        // higher than this one, so none can start meeting demand
        // either. The check runs against the best state as of the
        // last flushed block; that is still safe (a best over a
        // shorter prefix breaks no earlier than the exact walk, and
        // extra candidates evaluated past the exact break point can
        // never be taken by the rules above), so the selection is
        // identical to the scalar walk at a fraction of the
        // operating-point evaluations.
        if (best_meets && (cand.quality < best->quality ||
                           cand.goodputTps < target_tps)) {
            break;
        }
        if (cand.quality < quality_floor)
            continue;
        if (cand.goodputTps <= 0.0)
            continue;
        // One operating-point evaluation per candidate, shared
        // between the limit checks and the power ranking (they use
        // the same demand whenever goodput can serve one token/s) —
        // and shared across instances at the same demand via the
        // caller's memo (the point is a pure function of candidate
        // and demand). The actual solves happen batched at flush
        // time, one branch-free pass over the block's memo misses.
        cands[pending] = &cand;
        feas_demands[pending] = std::min(demand_tps,
                                         cand.goodputTps);
        cand_idxs[pending] =
            static_cast<std::size_t>(&cand - space.data());
        ++pending;
        if (pending == flush_target) {
            flush();
            flush_target = std::min(kBlock, flush_target * 2);
        }
    }
    flush();

    ConfigDecision out;
    if (!best) {
        // Nothing satisfies the limits: fall to the lowest-power
        // config at the current demand, preferring higher goodput
        // among near-equals so service degrades as little as the
        // power situation allows.
        const ConfigProfile *mildest = nullptr;
        double mildest_w = 1e300;
        for (const ConfigProfile &cand : space) {
            if (cand.quality < quality_floor ||
                cand.goodputTps <= 0.0) {
                continue;
            }
            const double w = power_at_demand(cand);
            const bool better = w < mildest_w * 0.98 ||
                (w < mildest_w * 1.02 && mildest &&
                 cand.goodputTps > mildest->goodputTps);
            if (!mildest || better) {
                mildest_w = std::min(mildest_w, w);
                mildest = &cand;
            }
        }
        tapas_assert(mildest, "config space cannot be empty");
        out.profile = *mildest;
        out.infeasible = true;
        out.changed = !(out.profile.config == current.config);
        return out;
    }

    // Hysteresis: keep the current config when it is feasible, of
    // equal quality and demand coverage, and the winner's power
    // advantage is marginal. Evaluated only when the winner actually
    // differs, with one shared operating point covering the current
    // config's feasibility check and power ranking (the same sharing
    // the walk uses); the winner's power at demand was already
    // computed when it was taken.
    if (!(best->config == current.config) &&
        current.quality >= quality_floor &&
        current.goodputTps > 0.0) {
        const double cur_feas_demand =
            std::min(demand_tps, current.goodputTps);
        const PerfModel::OperatingPoint cur_op =
            // lint-allow(R1): cold path — hysteresis check of the
            // one incumbent config after the batched walk decided.
            perf.operatingPointAt(current, cur_feas_demand);
        if (feasibleAt(server, profiles, limits, current, cur_op)) {
            const bool current_meets =
                current.goodputTps >= target_tps;
            const double cur_rank_demand = std::min(
                demand_tps, std::max(1.0, current.goodputTps));
            const double current_power =
                cur_rank_demand == cur_feas_demand
                ? cur_op.serverPower.value()
                // lint-allow(R1): cold path — sub-1-token/s goodput
                // re-rank of the incumbent only.
                : perf.operatingPointAt(current, cur_rank_demand)
                      .serverPower.value();
            // Reload-requiring switches (TP/model/quant) carry a
            // blackout, so they must buy a much larger gain.
            const double gain_bar =
                best->config.requiresReload(current.config)
                ? cfg.reloadHysteresisGain
                : cfg.hysteresisGain;
            const bool marginal_gain =
                best_raw_power_w * gain_bar >= current_power;
            if (best_meets == current_meets &&
                best->quality <= current.quality && marginal_gain) {
                out.profile = current;
                out.changed = false;
                return out;
            }
        }
    }

    out.profile = *best;
    out.changed = !(best->config == current.config);
    return out;
}

} // namespace tapas
