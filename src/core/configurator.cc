#include "core/configurator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

namespace {
/** Demand headroom factor for right-sized configurations. */
constexpr double kDemandHeadroom = 1.5;
} // namespace

InstanceConfigurator::InstanceConfigurator(
    const PerfModel &perf_, const TapasPolicyConfig &config)
    : perf(perf_), cfg(config), space(perf_.allProfiles())
{
    // Pre-sort: quality first (last-resort ordering), then goodput.
    std::sort(space.begin(), space.end(),
              [](const ConfigProfile &a, const ConfigProfile &b) {
                  if (a.quality != b.quality)
                      return a.quality > b.quality;
                  return a.goodputTps > b.goodputTps;
              });
}

bool
InstanceConfigurator::feasible(ServerId server,
                               const ProfileBank &profiles,
                               const InstanceLimits &limits,
                               const ConfigProfile &profile,
                               double demand_tps) const
{
    if (profile.goodputTps <= 0.0)
        return false;
    const PerfModel::OperatingPoint op =
        perf.operatingPointAt(profile,
                              std::min(demand_tps,
                                       profile.goodputTps));
    return feasibleAt(server, profiles, limits, profile, op);
}

bool
InstanceConfigurator::feasibleAt(ServerId server,
                                 const ProfileBank &profiles,
                                 const InstanceLimits &limits,
                                 const ConfigProfile &profile,
                                 const PerfModel::OperatingPoint &op)
    const
{
    if (op.serverPower.value() > limits.maxServerPowerW)
        return false;

    const double hottest = profiles.predictHottestGpuC(
        server, limits.inletC, op.gpuPower.value());
    if (hottest > limits.maxGpuTempC)
        return false;

    // Airflow tracks heat: normalized GPU draw across the server.
    const ServerSpec &spec = perf.spec();
    const double idle_sum =
        spec.gpuIdlePower.value() * spec.gpusPerServer;
    const double max_sum =
        spec.gpuMaxPower.value() * spec.gpusPerServer;
    const double gpu_total = op.gpuPower.value() *
            profile.activeGpus +
        spec.gpuIdlePower.value() *
            (spec.gpusPerServer - profile.activeGpus);
    const double heat = max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
    const double airflow =
        profiles.predictServerAirflowCfm(server, heat);
    return airflow <= limits.maxAirflowCfm;
}

ConfigDecision
InstanceConfigurator::choose(ServerId server,
                             const ProfileBank &profiles,
                             const InstanceLimits &limits,
                             double demand_tps, double quality_floor,
                             const ConfigProfile &current) const
{
    // Demand must be met with headroom so diurnal ramps do not
    // immediately outrun the chosen configuration.
    const double target_tps = demand_tps * kDemandHeadroom;

    auto power_at_demand = [&](const ConfigProfile &p) {
        const double capped =
            std::min(demand_tps, std::max(1.0, p.goodputTps));
        return perf.operatingPointAt(p, capped)
            .serverPower.value();
    };
    // Candidate ranking biases against reload-requiring switches: a
    // TP/model/quant change must beat free alternatives by the
    // reload margin to be worth the blackout.

    // Selection: among feasible configs at/above the quality floor,
    // prefer (1) highest quality, (2) meeting demand+headroom,
    // (3) minimum power at the current demand (right-sizing),
    // falling back to maximum goodput when demand cannot be met.
    const ConfigProfile *best = nullptr;
    bool best_meets = false;
    double best_power = 1e300;

    for (const ConfigProfile &cand : space) {
        // Pruning on the quality-desc, goodput-desc sort order: once
        // the incumbent meets demand, a candidate of lower quality
        // can never be taken (it only wins by meeting demand the
        // higher quality could not), and within the incumbent's
        // quality tier every remaining candidate has goodput no
        // higher than this one, so none can start meeting demand
        // either. Identical selection, a fraction of the operating-
        // point evaluations.
        if (best_meets && (cand.quality < best->quality ||
                           cand.goodputTps < target_tps)) {
            break;
        }
        if (cand.quality < quality_floor)
            continue;
        if (cand.goodputTps <= 0.0)
            continue;
        // One operating-point evaluation per candidate, shared
        // between the limit checks and the power ranking (they use
        // the same demand whenever goodput can serve one token/s).
        const double feas_demand =
            std::min(demand_tps, cand.goodputTps);
        const PerfModel::OperatingPoint op =
            perf.operatingPointAt(cand, feas_demand);
        if (!feasibleAt(server, profiles, limits, cand, op))
            continue;
        const double rank_demand =
            std::min(demand_tps, std::max(1.0, cand.goodputTps));
        const double rank_power_w = rank_demand == feas_demand
            ? op.serverPower.value()
            : perf.operatingPointAt(cand, rank_demand)
                  .serverPower.value();
        const bool meets = cand.goodputTps >= target_tps;
        const double power =
            cand.config.requiresReload(current.config)
            ? rank_power_w * cfg.reloadHysteresisGain
            : rank_power_w;
        bool take = false;
        if (!best) {
            take = true;
        } else if (cand.quality > best->quality) {
            // Space is quality-sorted descending, so this only
            // happens on the first candidate; kept for clarity.
            take = true;
        } else if (cand.quality == best->quality) {
            if (meets && !best_meets) {
                take = true;
            } else if (meets == best_meets) {
                take = meets
                    ? power < best_power
                    : cand.goodputTps > best->goodputTps;
            }
        } else if (meets && !best_meets) {
            // Lower quality only buys its way in by meeting demand
            // the higher quality could not (emergency last resort).
            take = true;
        }
        if (take) {
            best = &cand;
            best_meets = meets;
            best_power = power;
        }
    }

    ConfigDecision out;
    if (!best) {
        // Nothing satisfies the limits: fall to the lowest-power
        // config at the current demand, preferring higher goodput
        // among near-equals so service degrades as little as the
        // power situation allows.
        const ConfigProfile *mildest = nullptr;
        double mildest_w = 1e300;
        for (const ConfigProfile &cand : space) {
            if (cand.quality < quality_floor ||
                cand.goodputTps <= 0.0) {
                continue;
            }
            const double w = power_at_demand(cand);
            const bool better = w < mildest_w * 0.98 ||
                (w < mildest_w * 1.02 && mildest &&
                 cand.goodputTps > mildest->goodputTps);
            if (!mildest || better) {
                mildest_w = std::min(mildest_w, w);
                mildest = &cand;
            }
        }
        tapas_assert(mildest, "config space cannot be empty");
        out.profile = *mildest;
        out.infeasible = true;
        out.changed = !(out.profile.config == current.config);
        return out;
    }

    // Hysteresis: keep the current config when it is feasible, of
    // equal quality and demand coverage, and the winner's power
    // advantage is marginal.
    const bool current_ok =
        current.quality >= quality_floor &&
        feasible(server, profiles, limits, current, demand_tps);
    if (current_ok && !(best->config == current.config)) {
        const bool current_meets =
            current.goodputTps >= target_tps;
        const double current_power = power_at_demand(current);
        // Reload-requiring switches (TP/model/quant) carry a
        // blackout, so they must buy a much larger gain.
        const double gain_bar =
            best->config.requiresReload(current.config)
            ? cfg.reloadHysteresisGain
            : cfg.hysteresisGain;
        const bool marginal_gain =
            power_at_demand(*best) * gain_bar >= current_power;
        if (best_meets == current_meets &&
            best->quality <= current.quality && marginal_gain) {
            out.profile = current;
            out.changed = false;
            return out;
        }
    }

    out.profile = *best;
    out.changed = !(best->config == current.config);
    return out;
}

} // namespace tapas
