#include "core/tapas.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

TapasController::TapasController(const TapasPolicyConfig &config,
                                 const DatacenterLayout &layout_,
                                 CoolingPlant &cooling_,
                                 PowerHierarchy &power_,
                                 const ProfileBank *profiles_,
                                 const PerfModel *perf_)
    : cfg(config), layout(layout_), cooling(cooling_), power(power_),
      profiles(profiles_), perf(perf_)
{
    if (cfg.placeEnabled) {
        tapas_assert(profiles, "Place policy needs fitted profiles");
        alloc = std::make_unique<TapasAllocator>(cfg);
    } else {
        alloc = std::make_unique<BaselineAllocator>();
    }
    if (cfg.routeEnabled) {
        tapas_assert(profiles, "Route policy needs fitted profiles");
        route = std::make_unique<TapasRouter>(cfg);
        risk = std::make_unique<RiskAssessor>(cfg);
    } else {
        route = std::make_unique<BaselineRouter>();
    }
    if (cfg.configEnabled) {
        tapas_assert(profiles && perf,
                     "Config policy needs profiles and a perf model");
        configurator = std::make_unique<InstanceConfigurator>(*perf,
                                                              cfg);
    }
}

void
TapasController::maybeRefreshRisk(
    const ClusterView &view, const std::vector<double> &gpu_power_w)
{
    if (risk)
        risk->maybeRefresh(view, gpu_power_w);
}

void
TapasController::configurePass(
    const ClusterView &view,
    const std::vector<SaasInstanceRef> &instances)
{
    if (!configurator || instances.empty())
        return;
    view.assertFresh();
    // Size the dwell table before entering the hot region: the one
    // growth this pass may need happens here, so the per-instance
    // dwell reads/writes below are plain indexed accesses.
    std::uint32_t max_vm = 0;
    for (const SaasInstanceRef &inst : instances)
        max_vm = std::max(max_vm, inst.id.index);
    if (lastReloadAt.size() <= max_vm)
        lastReloadAt.resize(max_vm + 1, kNeverReloaded);
    // tapas-hot begin(configure-pass): near-every-step reconfig
    // sweep; member scratch only (R3) — capacity persists across
    // passes, so the steady state allocates nothing.

    // --- Per-row unreconfigurable draw and SaaS instance counts.
    // Member scratch: capacity persists across passes, so the
    // near-every-step pass allocates nothing. ---
    rowFixedScratch.assign(layout.rowCount(), 0.0);
    rowSaasScratch.assign(layout.rowCount(), 0);
    aisleFixedScratch.assign(layout.aisleCount(), 0.0);
    aisleSaasScratch.assign(layout.aisleCount(), 0);
    std::vector<double> &row_fixed_w = rowFixedScratch;
    std::vector<int> &row_saas = rowSaasScratch;
    std::vector<double> &aisle_fixed_cfm = aisleFixedScratch;
    std::vector<int> &aisle_saas = aisleSaasScratch;

    saasServerScratch.assign(layout.serverCount(), 0);
    std::vector<char> &saas_server = saasServerScratch;
    for (const SaasInstanceRef &inst : instances)
        saas_server[inst.server.index] = 1;

    // Fleet-wide batched passes feed the fixed-draw accumulation and
    // the per-instance limits below: one power/airflow pass at the
    // unreconfigurable loads, one inlet pass at current ambient, and
    // one power/airflow floor pass at zero load.
    const std::size_t servers = layout.serverCount();
    fixedLoadScratch.resize(servers);
    fixedPowerScratch.resize(servers);
    fixedAirflowScratch.resize(servers);
    inletScratch.resize(servers);
    for (std::size_t s = 0; s < servers; ++s) {
        fixedLoadScratch[s] = view.occupied[s] && !saas_server[s]
            ? view.serverLoads[s]
            : 0.0;
    }
    profiles->predictPowerBatch(fixedLoadScratch.data(), servers,
                                fixedPowerScratch.data());
    profiles->predictAirflowBatch(fixedLoadScratch.data(), servers,
                                  fixedAirflowScratch.data());
    profiles->predictInletBatch(view.outsideC, view.dcLoadFrac,
                                servers, inletScratch.data());
    // The zero-load floors depend only on the fitted coefficients;
    // evaluate them once per fleet size instead of per pass.
    if (zeroPowerScratch.size() != servers) {
        zeroPowerScratch.resize(servers);
        zeroAirflowScratch.resize(servers);
        profiles->predictPowerUniformBatch(0.0, servers,
                                           zeroPowerScratch.data());
        profiles->predictAirflowUniformBatch(
            0.0, servers, zeroAirflowScratch.data());
    }

    for (const Server &server : layout.servers()) {
        if (saas_server[server.id.index]) {
            ++row_saas[server.row.index];
            ++aisle_saas[server.aisle.index];
            continue;
        }
        row_fixed_w[server.row.index] +=
            fixedPowerScratch[server.id.index];
        aisle_fixed_cfm[server.aisle.index] +=
            fixedAirflowScratch[server.id.index];
    }

    const bool emergency =
        cooling.anyFailure() || power.anyFailure();
    const double quality_floor = emergency
        ? cfg.emergencyQualityFloor
        : cfg.normalQualityFloor;

    // Effective provisions are per-row/per-aisle, not per-instance:
    // evaluate each once per pass (they walk the failure state) and
    // let the instance loop index the scratch arrays.
    rowProvisionScratch.resize(layout.rowCount());
    for (const Row &row : layout.rows()) {
        rowProvisionScratch[row.id.index] =
            power.effectiveRowProvision(row.id).value();
    }
    aisleProvisionScratch.resize(layout.aisleCount());
    for (const Aisle &aisle : layout.aisles()) {
        aisleProvisionScratch[aisle.id.index] =
            cooling.effectiveProvision(aisle.id).value();
    }

    // Process instances grouped by demand: the candidate walk's
    // operating points depend only on (candidate, demand), so
    // equal-demand instances (VMs of one endpoint under symmetric
    // routing) reuse the memo below instead of re-solving the perf
    // model. Decisions are per-instance independent, so the order
    // change is unobservable; the VM-id tie-break makes the
    // comparator a total order, so plain sort is deterministic —
    // stable_sort is not an option here, it allocates a merge
    // buffer (stl_tempbuf) on every pass.
    sortedInstancesScratch.assign(instances.begin(),
                                  instances.end());
    std::sort(sortedInstancesScratch.begin(),
              sortedInstancesScratch.end(),
              [](const SaasInstanceRef &a,
                 const SaasInstanceRef &b) {
                  if (a.demandTps != b.demandTps)
                      return a.demandTps < b.demandTps;
                  return a.id.index < b.id.index;
              });

    for (const SaasInstanceRef &inst : sortedInstancesScratch) {
        if (inst.engine->reconfiguring())
            continue;
        // Freeze reconfiguration on quarantined servers: every
        // reconfig decision reads this server's (untrusted) sensor
        // state, so hold the instance at its current configuration
        // until the sensors check out again. Unaffected servers'
        // limits are computed per-pass from plant budgets and are
        // untouched by the skip.
        if (risk && risk->quarantined(inst.server))
            continue;
        const Server &server = layout.server(inst.server);
        const ServerSpec &spec = layout.specOf(inst.server);

        InstanceLimits limits;
        const double row_budget =
            rowProvisionScratch[server.row.index];
        const int saas_in_row =
            std::max(1, row_saas[server.row.index]);
        limits.maxServerPowerW = std::max(
            (row_budget - row_fixed_w[server.row.index]) /
                saas_in_row,
            zeroPowerScratch[inst.server.index]);

        const double aisle_budget =
            aisleProvisionScratch[server.aisle.index];
        const int saas_in_aisle =
            std::max(1, aisle_saas[server.aisle.index]);
        limits.maxAirflowCfm = std::max(
            (aisle_budget - aisle_fixed_cfm[server.aisle.index]) /
                saas_in_aisle,
            zeroAirflowScratch[inst.server.index]);

        limits.maxGpuTempC =
            spec.throttleTemp.value() - cfg.gpuTempMarginC;
        limits.inletC = inletScratch[inst.server.index];

        const ConfigDecision decision = configurator->choose(
            inst.server, *profiles, limits, inst.demandTps,
            quality_floor, inst.engine->profile(),
            &opCacheScratch);
        if (!decision.changed)
            continue;
        // Dwell gate: quality-restoring reloads wait out the dwell
        // window — and never fire while the emergency is still
        // active — so instances do not oscillate across feasibility
        // boundaries; necessity downgrades pass immediately.
        const ConfigProfile &current = inst.engine->profile();
        if (decision.profile.config.requiresReload(
                current.config)) {
            const bool upgrade =
                decision.profile.quality >= current.quality;
            const SimTime last = lastReloadAt[inst.id.index];
            const bool dwelling = last != kNeverReloaded &&
                view.now - last < cfg.reloadDwell;
            if (upgrade && current.quality < 1.0 &&
                (emergency || dwelling)) {
                continue;
            }
            if (upgrade && dwelling)
                continue;
            lastReloadAt[inst.id.index] = view.now;
        }
        inst.engine->requestReconfig(decision.profile,
                                     cfg.reloadDelayS);
        ++reconfigCount;
    }
    // tapas-hot end(configure-pass)
}

void
TapasController::checkpointState(Archive &ar)
{
    // Serialized as index-sorted (vm, time) pairs — the same bytes
    // the former unordered_map representation produced after its
    // canonicalizing sort, so checkpoints cross the dense-vector
    // rewrite unchanged. Never-reloaded slots do not travel.
    std::vector<std::pair<std::uint32_t, SimTime>> reloads;
    for (std::uint32_t vm = 0; vm < lastReloadAt.size(); ++vm) {
        if (lastReloadAt[vm] != kNeverReloaded)
            reloads.emplace_back(vm, lastReloadAt[vm]);
    }
    ar.each(reloads,
            [](Archive &a, std::pair<std::uint32_t, SimTime> &e) {
                a.value(e.first);
                a.value(e.second);
            });
    if (!ar.writing()) {
        std::fill(lastReloadAt.begin(), lastReloadAt.end(),
                  kNeverReloaded);
        for (const auto &[vm, at] : reloads) {
            if (vm >= lastReloadAt.size())
                lastReloadAt.resize(vm + 1, kNeverReloaded);
            lastReloadAt[vm] = at;
        }
    }
    ar.value(reconfigCount);
    route->checkpointState(ar);
    bool has_risk = risk != nullptr;
    ar.value(has_risk);
    if (has_risk != (risk != nullptr)) {
        // Policy flags decide whether a risk cache exists; the
        // checkpoint must agree with this sim's configuration.
        ar.fail();
        return;
    }
    if (risk)
        risk->checkpointState(ar);
}

} // namespace tapas
