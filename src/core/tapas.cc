#include "core/tapas.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

TapasController::TapasController(const TapasPolicyConfig &config,
                                 const DatacenterLayout &layout_,
                                 CoolingPlant &cooling_,
                                 PowerHierarchy &power_,
                                 const ProfileBank *profiles_,
                                 const PerfModel *perf_)
    : cfg(config), layout(layout_), cooling(cooling_), power(power_),
      profiles(profiles_), perf(perf_)
{
    if (cfg.placeEnabled) {
        tapas_assert(profiles, "Place policy needs fitted profiles");
        alloc = std::make_unique<TapasAllocator>(cfg);
    } else {
        alloc = std::make_unique<BaselineAllocator>();
    }
    if (cfg.routeEnabled) {
        tapas_assert(profiles, "Route policy needs fitted profiles");
        route = std::make_unique<TapasRouter>(cfg);
        risk = std::make_unique<RiskAssessor>(cfg);
    } else {
        route = std::make_unique<BaselineRouter>();
    }
    if (cfg.configEnabled) {
        tapas_assert(profiles && perf,
                     "Config policy needs profiles and a perf model");
        configurator = std::make_unique<InstanceConfigurator>(*perf,
                                                              cfg);
    }
}

void
TapasController::maybeRefreshRisk(
    const ClusterView &view, const std::vector<double> &gpu_power_w)
{
    if (risk)
        risk->maybeRefresh(view, gpu_power_w);
}

void
TapasController::configurePass(
    const ClusterView &view,
    const std::vector<SaasInstanceRef> &instances)
{
    if (!configurator || instances.empty())
        return;

    // --- Per-row unreconfigurable draw and SaaS instance counts.
    // Member scratch: capacity persists across passes, so the
    // near-every-step pass allocates nothing. ---
    rowFixedScratch.assign(layout.rowCount(), 0.0);
    rowSaasScratch.assign(layout.rowCount(), 0);
    aisleFixedScratch.assign(layout.aisleCount(), 0.0);
    aisleSaasScratch.assign(layout.aisleCount(), 0);
    std::vector<double> &row_fixed_w = rowFixedScratch;
    std::vector<int> &row_saas = rowSaasScratch;
    std::vector<double> &aisle_fixed_cfm = aisleFixedScratch;
    std::vector<int> &aisle_saas = aisleSaasScratch;

    saasServerScratch.assign(layout.serverCount(), 0);
    std::vector<char> &saas_server = saasServerScratch;
    for (const SaasInstanceRef &inst : instances)
        saas_server[inst.server.index] = 1;

    for (const Server &server : layout.servers()) {
        if (saas_server[server.id.index]) {
            ++row_saas[server.row.index];
            ++aisle_saas[server.aisle.index];
            continue;
        }
        const double load = view.occupied[server.id.index]
            ? view.serverLoads[server.id.index]
            : 0.0;
        row_fixed_w[server.row.index] +=
            profiles->predictServerPowerW(server.id, load);
        aisle_fixed_cfm[server.aisle.index] +=
            profiles->predictServerAirflowCfm(server.id, load);
    }

    const bool emergency =
        cooling.anyFailure() || power.anyFailure();
    const double quality_floor = emergency
        ? cfg.emergencyQualityFloor
        : cfg.normalQualityFloor;

    for (const SaasInstanceRef &inst : instances) {
        if (inst.engine->reconfiguring())
            continue;
        const Server &server = layout.server(inst.server);
        const ServerSpec &spec = layout.specOf(inst.server);

        InstanceLimits limits;
        const double row_budget =
            power.effectiveRowProvision(server.row).value();
        const int saas_in_row =
            std::max(1, row_saas[server.row.index]);
        limits.maxServerPowerW = std::max(
            (row_budget - row_fixed_w[server.row.index]) /
                saas_in_row,
            profiles->predictServerPowerW(inst.server, 0.0));

        const double aisle_budget =
            cooling.effectiveProvision(server.aisle).value();
        const int saas_in_aisle =
            std::max(1, aisle_saas[server.aisle.index]);
        limits.maxAirflowCfm = std::max(
            (aisle_budget - aisle_fixed_cfm[server.aisle.index]) /
                saas_in_aisle,
            profiles->predictServerAirflowCfm(inst.server, 0.0));

        limits.maxGpuTempC =
            spec.throttleTemp.value() - cfg.gpuTempMarginC;
        limits.inletC = profiles->predictInletC(
            inst.server, view.outsideC, view.dcLoadFrac);

        const ConfigDecision decision = configurator->choose(
            inst.server, *profiles, limits, inst.demandTps,
            quality_floor, inst.engine->profile());
        if (!decision.changed)
            continue;
        // Dwell gate: quality-restoring reloads wait out the dwell
        // window — and never fire while the emergency is still
        // active — so instances do not oscillate across feasibility
        // boundaries; necessity downgrades pass immediately.
        const ConfigProfile &current = inst.engine->profile();
        if (decision.profile.config.requiresReload(
                current.config)) {
            const bool upgrade =
                decision.profile.quality >= current.quality;
            const auto it = lastReloadAt.find(inst.id.index);
            const bool dwelling = it != lastReloadAt.end() &&
                view.now - it->second < cfg.reloadDwell;
            if (upgrade && current.quality < 1.0 &&
                (emergency || dwelling)) {
                continue;
            }
            if (upgrade && dwelling)
                continue;
            lastReloadAt[inst.id.index] = view.now;
        }
        inst.engine->requestReconfig(decision.profile,
                                     cfg.reloadDelayS);
        ++reconfigCount;
    }
}

} // namespace tapas
