/**
 * @file
 * SaaS VM migration planning (paper Section 4.1, "Migration").
 *
 * Beyond initial placement, TAPAS can recompute better placements to
 * correct mispredictions or drift: for SaaS VMs the platform creates
 * a replacement instance elsewhere, shifts traffic, and decommissions
 * the old VM. IaaS VMs are never moved (GPU live migration is
 * unsupported, as the paper notes).
 */

#ifndef TAPAS_CORE_MIGRATION_HH
#define TAPAS_CORE_MIGRATION_HH

#include <optional>
#include <vector>

#include "core/allocator.hh"
#include "core/context.hh"

namespace tapas {

/** One proposed SaaS move. */
struct MigrationPlan
{
    VmId vm;
    ServerId from;
    ServerId to;
    /** Predicted peak power of the donor row before the move, W. */
    double donorRowPeakW = 0.0;
    /** Predicted donor-row peak after the move, W. */
    double donorRowAfterW = 0.0;
};

/** Plans pressure-relieving SaaS migrations. */
class MigrationPlanner
{
  public:
    explicit MigrationPlanner(const TapasPolicyConfig &config)
        : cfg(config), alloc(config)
    {}

    /**
     * Propose up to @p max_moves migrations, each taking a SaaS VM
     * out of the row with the least predicted power headroom and
     * re-placing it through the TAPAS allocator. Returns an empty
     * vector when no move improves the donor row.
     *
     * What-if exploration works by overlay/undo on @p view itself
     * (no O(fleet) view copies): rejected candidates are restored
     * exactly, and accepted moves stay applied so the caller's view
     * matches the plan it is handed back.
     */
    std::vector<MigrationPlan>
    plan(ClusterView &view, int max_moves);

  private:
    TapasPolicyConfig cfg;
    /** Re-placement allocator; member so its batched-prediction
     *  scratch persists across planning rounds. */
    TapasAllocator alloc;

    /** Reusable fleet-wide buffers for the donor ranking pass. */
    std::vector<double> peaksScratch;
    std::vector<double> powerScratch;
    std::vector<double> rowPowerScratch;

    std::optional<MigrationPlan> planOne(ClusterView &view);

    /** Predicted peak power of every row in one batched pass. */
    void rowPeakPowers(const ClusterView &view);
};

} // namespace tapas

#endif // TAPAS_CORE_MIGRATION_HH
