/**
 * @file
 * SaaS VM migration planning (paper Section 4.1, "Migration").
 *
 * Beyond initial placement, TAPAS can recompute better placements to
 * correct mispredictions or drift: for SaaS VMs the platform creates
 * a replacement instance elsewhere, shifts traffic, and decommissions
 * the old VM. IaaS VMs are never moved (GPU live migration is
 * unsupported, as the paper notes).
 */

#ifndef TAPAS_CORE_MIGRATION_HH
#define TAPAS_CORE_MIGRATION_HH

#include <optional>
#include <vector>

#include "core/allocator.hh"
#include "core/context.hh"

namespace tapas {

/** One proposed SaaS move. */
struct MigrationPlan
{
    VmId vm;
    ServerId from;
    ServerId to;
    /** Predicted peak power of the donor row before the move, W. */
    double donorRowPeakW = 0.0;
    /** Predicted donor-row peak after the move, W. */
    double donorRowAfterW = 0.0;
};

/** Plans pressure-relieving SaaS migrations. */
class MigrationPlanner
{
  public:
    explicit MigrationPlanner(const TapasPolicyConfig &config)
        : cfg(config)
    {}

    /**
     * Propose up to @p max_moves migrations, each taking a SaaS VM
     * out of the row with the least predicted power headroom and
     * re-placing it through the TAPAS allocator. Returns an empty
     * vector when no move improves the donor row.
     */
    std::vector<MigrationPlan>
    plan(const ClusterView &view, int max_moves);

  private:
    TapasPolicyConfig cfg;

    std::optional<MigrationPlan>
    planOne(const ClusterView &view);
};

} // namespace tapas

#endif // TAPAS_CORE_MIGRATION_HH
