#include "core/risk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

void
RiskAssessor::refresh(const ClusterView &view,
                      const std::vector<double> &gpu_power_w)
{
    tapas_assert(view.profiles, "risk assessment needs profiles");
    view.assertFresh();
    const DatacenterLayout &layout = *view.layout;
    const ProfileBank &profiles = *view.profiles;
    const int gpus = layout.specs().front().gpusPerServer;
    tapas_assert(gpu_power_w.size() ==
                 layout.serverCount() *
                 static_cast<std::size_t>(gpus),
                 "per-GPU power vector has wrong size");

    const std::size_t servers = layout.serverCount();
    risks.resize(servers);

    // One fleet-wide batched pass per fitted model; the aisle/row
    // walks below then only aggregate the precomputed per-server
    // values (in the same server order as the old scalar loops, so
    // the sums are bit-identical).
    airflowScratch.resize(servers);
    powerScratch.resize(servers);
    inletScratch.resize(servers);
    hottestScratch.resize(servers);
    profiles.predictAirflowBatch(view.serverLoads.data(), servers,
                                 airflowScratch.data());
    profiles.predictPowerBatch(view.serverLoads.data(), servers,
                               powerScratch.data());
    profiles.predictInletBatch(view.outsideC, view.dcLoadFrac,
                               servers, inletScratch.data());
    profiles.predictHottestGpuBatch(inletScratch.data(),
                                    gpu_power_w.data(), servers,
                                    hottestScratch.data());

    // Aisle airflow and row power headrooms from the batched
    // predictions at current loads, into small per-group arrays.
    aisleHeadroomScratch.resize(layout.aisleCount());
    aisleRiskScratch.resize(layout.aisleCount());
    for (const Aisle &aisle : layout.aisles()) {
        double demand = 0.0;
        for (ServerId sid : aisle.servers)
            demand += airflowScratch[sid.index];
        const double budget =
            view.cooling->effectiveProvision(aisle.id).value();
        const double headroom = budget - demand;
        aisleHeadroomScratch[aisle.id.index] = headroom;
        aisleRiskScratch[aisle.id.index] =
            headroom < cfg.airflowMarginFrac * budget;
    }
    rowHeadroomScratch.resize(layout.rowCount());
    rowRiskScratch.resize(layout.rowCount());
    for (const Row &row : layout.rows()) {
        double demand = 0.0;
        for (ServerId sid : row.servers)
            demand += powerScratch[sid.index];
        const double budget =
            view.power->effectiveRowProvision(row.id).value();
        const double headroom = budget - demand;
        rowHeadroomScratch[row.id.index] = headroom;
        rowRiskScratch[row.id.index] =
            headroom < cfg.rowPowerMarginFrac * budget;
    }

    // The per-server thermal limit is fixed by the layout; hoist it
    // out of the refresh into a cached array.
    if (thermalLimitC.size() != servers) {
        thermalLimitC.resize(servers);
        for (const Server &server : layout.servers()) {
            thermalLimitC[server.id.index] =
                layout.specOf(server.id).throttleTemp.value() -
                cfg.gpuTempMarginC;
        }
    }

    // Single pass assembling every risk entry (all fields written,
    // so no clearing pass is needed).
    for (const Server &server : layout.servers()) {
        ServerRisk &entry = risks[server.id.index];
        const double hottest = hottestScratch[server.id.index];
        entry.aisleHeadroomCfm =
            aisleHeadroomScratch[server.aisle.index];
        entry.airflowRisk =
            aisleRiskScratch[server.aisle.index] != 0;
        entry.rowHeadroomW = rowHeadroomScratch[server.row.index];
        entry.powerRisk = rowRiskScratch[server.row.index] != 0;
        entry.predictedHottestGpuC = hottest;
        entry.thermalRisk = hottest > thermalLimitC[server.id.index];
    }

    lastRefreshAt = view.now;
}

bool
RiskAssessor::maybeRefresh(const ClusterView &view,
                           const std::vector<double> &gpu_power_w)
{
    if (lastRefreshAt >= 0 &&
        view.now - lastRefreshAt < cfg.riskRefreshPeriod) {
        return false;
    }
    refresh(view, gpu_power_w);
    return true;
}

const ServerRisk &
RiskAssessor::risk(ServerId id) const
{
    tapas_assert(id.index < risks.size(),
                 "risk queried before refresh or for unknown server");
    return risks[id.index];
}

std::size_t
RiskAssessor::flaggedCount() const
{
    std::size_t count = 0;
    for (const ServerRisk &entry : risks) {
        if (entry.any())
            ++count;
    }
    return count;
}

} // namespace tapas
