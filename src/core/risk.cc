#include "core/risk.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

void
RiskAssessor::refresh(const ClusterView &view,
                      const std::vector<double> &gpu_power_w)
{
    tapas_assert(view.profiles, "risk assessment needs profiles");
    view.assertFresh();
    const DatacenterLayout &layout = *view.layout;
    const ProfileBank &profiles = *view.profiles;
    const int gpus = layout.specs().front().gpusPerServer;
    tapas_assert(gpu_power_w.size() ==
                 layout.serverCount() *
                 static_cast<std::size_t>(gpus),
                 "per-GPU power vector has wrong size");

    // tapas-hot begin(risk-refresh): the fleet-wide risk sweep runs
    // on every refresh cadence tick; member scratch only (R3).
    const std::size_t servers = layout.serverCount();
    // lint-allow(R3): steady-state no-op — fleet size is fixed, so
    // this resize allocates once and is a capacity check afterwards.
    risks.resize(servers);

    // One fleet-wide batched pass per fitted model; the aisle/row
    // walks below then only aggregate the precomputed per-server
    // values (in the same server order as the old scalar loops, so
    // the sums are bit-identical).
    airflowScratch.resize(servers);
    powerScratch.resize(servers);
    inletScratch.resize(servers);
    hottestScratch.resize(servers);
    // Sensor sanity gate: quarantined servers have their untrusted
    // per-GPU readings replaced by the last known good snapshot
    // before any prediction reads them. With the gate disabled (or
    // every sensor healthy) this IS the caller's vector.
    const std::vector<double> &effective_gpu_w =
        cfg.sensorQuarantineEnabled
        ? applySensorQuarantine(view, gpu_power_w, gpus)
        : gpu_power_w;
    profiles.predictAirflowBatch(view.serverLoads.data(), servers,
                                 airflowScratch.data());
    profiles.predictPowerBatch(view.serverLoads.data(), servers,
                               powerScratch.data());
    profiles.predictInletBatch(view.outsideC, view.dcLoadFrac,
                               servers, inletScratch.data());
    profiles.predictHottestGpuBatch(inletScratch.data(),
                                    effective_gpu_w.data(), servers,
                                    hottestScratch.data());

    // Aisle airflow and row power headrooms from the batched
    // predictions at current loads, into small per-group arrays.
    aisleHeadroomScratch.resize(layout.aisleCount());
    aisleRiskScratch.resize(layout.aisleCount());
    for (const Aisle &aisle : layout.aisles()) {
        double demand = 0.0;
        for (ServerId sid : aisle.servers)
            demand += airflowScratch[sid.index];
        const double budget =
            view.cooling->effectiveProvision(aisle.id).value();
        const double headroom = budget - demand;
        aisleHeadroomScratch[aisle.id.index] = headroom;
        aisleRiskScratch[aisle.id.index] =
            headroom < cfg.airflowMarginFrac * budget;
    }
    rowHeadroomScratch.resize(layout.rowCount());
    rowRiskScratch.resize(layout.rowCount());
    for (const Row &row : layout.rows()) {
        double demand = 0.0;
        for (ServerId sid : row.servers)
            demand += powerScratch[sid.index];
        const double budget =
            view.power->effectiveRowProvision(row.id).value();
        const double headroom = budget - demand;
        rowHeadroomScratch[row.id.index] = headroom;
        rowRiskScratch[row.id.index] =
            headroom < cfg.rowPowerMarginFrac * budget;
    }

    // The per-server thermal limit is fixed by the layout; hoist it
    // out of the refresh into a cached array.
    if (thermalLimitC.size() != servers) {
        // lint-allow(R3): one-time cache fill, guarded by the size
        // check above.
        thermalLimitC.resize(servers);
        for (const Server &server : layout.servers()) {
            thermalLimitC[server.id.index] =
                layout.specOf(server.id).throttleTemp.value() -
                cfg.gpuTempMarginC;
        }
    }

    // Single pass assembling every risk entry (all fields written,
    // so no clearing pass is needed).
    for (const Server &server : layout.servers()) {
        ServerRisk &entry = risks[server.id.index];
        const double hottest = hottestScratch[server.id.index];
        entry.aisleHeadroomCfm =
            aisleHeadroomScratch[server.aisle.index];
        entry.airflowRisk =
            aisleRiskScratch[server.aisle.index] != 0;
        entry.rowHeadroomW = rowHeadroomScratch[server.row.index];
        entry.powerRisk = rowRiskScratch[server.row.index] != 0;
        entry.predictedHottestGpuC = hottest;
        // Quarantined servers keep extra distance to the throttle
        // point: the prediction ran on a stale snapshot.
        entry.quarantined = quarantined(server.id);
        const double limit = entry.quarantined
            ? thermalLimitC[server.id.index] -
                cfg.quarantineExtraMarginC
            : thermalLimitC[server.id.index];
        entry.thermalRisk = hottest > limit;
    }

    lastRefreshAt = view.now;
    // tapas-hot end(risk-refresh)
}

const std::vector<double> &
RiskAssessor::applySensorQuarantine(
    const ClusterView &view, const std::vector<double> &gpu_power_w,
    int gpus)
{
    const DatacenterLayout &layout = *view.layout;
    const std::size_t servers = layout.serverCount();
    const std::size_t width = static_cast<std::size_t>(gpus);

    // The spec-derived bounds are guarded on their OWN size, not
    // the streak state's: a checkpoint restore brings the streaks
    // and snapshots back already sized, and these caches must then
    // refill independently.
    if (idleTotalW.size() != servers) {
        // lint-allow(R3): one-time cache fill, size-guarded.
        idleTotalW.resize(servers);
        maxTotalW.resize(servers);
        for (const Server &server : layout.servers()) {
            const ServerSpec &spec = layout.specOf(server.id);
            idleTotalW[server.id.index] =
                spec.gpuIdlePower.value() * spec.gpusPerServer;
            maxTotalW[server.id.index] =
                spec.gpuMaxPower.value() * spec.gpusPerServer;
        }
    }
    if (divergeStreak.size() != servers) {
        divergeStreak.assign(servers, 0);
        healthyStreak.assign(servers, 0);
        quarantinedFlag.assign(servers, 0);
        // Seed the known-good snapshot at idle: a server that is
        // quarantined before its first healthy refresh predicts
        // from the most conservative trusted state there is.
        lastGoodGpuW.resize(servers * width);
        for (const Server &server : layout.servers()) {
            const ServerSpec &spec = layout.specOf(server.id);
            for (std::size_t g = 0; g < width; ++g) {
                lastGoodGpuW[server.id.index * width + g] =
                    spec.gpuIdlePower.value();
            }
        }
    }

    // tapas-hot begin(sensor-quarantine): steady-state per-server
    // divergence scan (the init block above runs once per fleet
    // size and is outside the region on purpose).
    bool any_substituted = false;
    for (std::size_t s = 0; s < servers; ++s) {
        double observed = 0.0;
        for (std::size_t g = 0; g < width; ++g)
            observed += gpu_power_w[s * width + g];

        // Reconstruct the GPU power the load fraction implies: the
        // simulator's server load IS the normalized GPU power, so a
        // healthy sensor matches this reconstruction exactly. An
        // all-zero reading is pre-first-step state, not a fault.
        const double load = view.serverLoads[s];
        const double recon = idleTotalW[s] +
            load * (maxTotalW[s] - idleTotalW[s]);
        const double tol = std::max(
            cfg.sensorEnvelopeFloorW,
            cfg.sensorEnvelopeFrac * recon);
        bool diverging;
        if (observed <= 0.0) {
            diverging = false;
        } else if (load >= 1.0) {
            // Load saturated at the clamp: readings above the
            // reconstruction are consistent with it.
            diverging = observed < recon - tol;
        } else if (load <= 0.0) {
            diverging = observed > recon + tol;
        } else {
            diverging = observed < recon - tol ||
                observed > recon + tol;
        }

        if (diverging) {
            healthyStreak[s] = 0;
            if (divergeStreak[s] < cfg.sensorQuarantineAfter)
                ++divergeStreak[s];
            if (!quarantinedFlag[s] &&
                divergeStreak[s] >= cfg.sensorQuarantineAfter) {
                quarantinedFlag[s] = 1;
                ++quarantinedCount;
                ++quarantineEventCount;
            }
        } else {
            divergeStreak[s] = 0;
            if (healthyStreak[s] < cfg.sensorRecoverAfter)
                ++healthyStreak[s];
            if (quarantinedFlag[s] &&
                healthyStreak[s] >= cfg.sensorRecoverAfter) {
                quarantinedFlag[s] = 0;
                --quarantinedCount;
            }
            if (!quarantinedFlag[s] && observed > 0.0) {
                // Trusted reading: refresh the known-good snapshot.
                for (std::size_t g = 0; g < width; ++g) {
                    lastGoodGpuW[s * width + g] =
                        gpu_power_w[s * width + g];
                }
            }
        }

        if (quarantinedFlag[s] && !any_substituted) {
            // First substitution this refresh: materialize the copy.
            gpuPowerScratch = gpu_power_w;
            any_substituted = true;
        }
        if (quarantinedFlag[s]) {
            for (std::size_t g = 0; g < width; ++g) {
                gpuPowerScratch[s * width + g] =
                    lastGoodGpuW[s * width + g];
            }
        }
    }
    return any_substituted ? gpuPowerScratch : gpu_power_w;
    // tapas-hot end(sensor-quarantine)
}

bool
RiskAssessor::maybeRefresh(const ClusterView &view,
                           const std::vector<double> &gpu_power_w)
{
    if (lastRefreshAt >= 0 &&
        view.now - lastRefreshAt < cfg.riskRefreshPeriod) {
        return false;
    }
    refresh(view, gpu_power_w);
    return true;
}

const ServerRisk &
RiskAssessor::risk(ServerId id) const
{
    tapas_assert(id.index < risks.size(),
                 "risk queried before refresh or for unknown server");
    return risks[id.index];
}

std::size_t
RiskAssessor::flaggedCount() const
{
    std::size_t count = 0;
    for (const ServerRisk &entry : risks) {
        if (entry.any())
            ++count;
    }
    return count;
}

void
RiskAssessor::checkpointState(Archive &ar)
{
    ar.each(risks, [](Archive &a, ServerRisk &r) {
        a.value(r.thermalRisk);
        a.value(r.powerRisk);
        a.value(r.airflowRisk);
        a.value(r.quarantined);
        a.value(r.predictedHottestGpuC);
        a.value(r.rowHeadroomW);
        a.value(r.aisleHeadroomCfm);
    });
    ar.value(lastRefreshAt);
    ar.podVector(divergeStreak);
    ar.podVector(healthyStreak);
    ar.podVector(quarantinedFlag);
    ar.podVector(lastGoodGpuW);
    ar.count(quarantinedCount);
    ar.value(quarantineEventCount);
}

} // namespace tapas
