#include "core/risk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

void
RiskAssessor::refresh(const ClusterView &view,
                      const std::vector<double> &gpu_power_w)
{
    tapas_assert(view.profiles, "risk assessment needs profiles");
    const DatacenterLayout &layout = *view.layout;
    const ProfileBank &profiles = *view.profiles;
    const int gpus = layout.specs().front().gpusPerServer;
    tapas_assert(gpu_power_w.size() ==
                 layout.serverCount() *
                 static_cast<std::size_t>(gpus),
                 "per-GPU power vector has wrong size");

    risks.assign(layout.serverCount(), ServerRisk{});

    // Aisle airflow demand from predicted airflow at current loads.
    for (const Aisle &aisle : layout.aisles()) {
        double demand = 0.0;
        for (ServerId sid : aisle.servers) {
            demand += profiles.predictServerAirflowCfm(
                sid, view.serverLoads[sid.index]);
        }
        const double budget =
            view.cooling->effectiveProvision(aisle.id).value();
        const double headroom = budget - demand;
        const bool risky =
            headroom < cfg.airflowMarginFrac * budget;
        for (ServerId sid : aisle.servers) {
            risks[sid.index].aisleHeadroomCfm = headroom;
            risks[sid.index].airflowRisk = risky;
        }
    }

    // Row power demand from predicted power at current loads.
    for (const Row &row : layout.rows()) {
        double demand = 0.0;
        for (ServerId sid : row.servers) {
            demand += profiles.predictServerPowerW(
                sid, view.serverLoads[sid.index]);
        }
        const double budget =
            view.power->effectiveRowProvision(row.id).value();
        const double headroom = budget - demand;
        const bool risky =
            headroom < cfg.rowPowerMarginFrac * budget;
        for (ServerId sid : row.servers) {
            risks[sid.index].rowHeadroomW = headroom;
            risks[sid.index].powerRisk = risky;
        }
    }

    // Per-server projected hottest GPU (Eq. 2 with fitted models).
    for (const Server &server : layout.servers()) {
        const double inlet = profiles.predictInletC(
            server.id, view.outsideC, view.dcLoadFrac);
        const double hottest = profiles.predictHottestGpuC(
            server.id, inlet,
            &gpu_power_w[server.id.index *
                         static_cast<std::size_t>(gpus)]);
        ServerRisk &entry = risks[server.id.index];
        entry.predictedHottestGpuC = hottest;
        const double limit =
            layout.specOf(server.id).throttleTemp.value() -
            cfg.gpuTempMarginC;
        entry.thermalRisk = hottest > limit;
    }

    lastRefreshAt = view.now;
}

bool
RiskAssessor::maybeRefresh(const ClusterView &view,
                           const std::vector<double> &gpu_power_w)
{
    if (lastRefreshAt >= 0 &&
        view.now - lastRefreshAt < cfg.riskRefreshPeriod) {
        return false;
    }
    refresh(view, gpu_power_w);
    return true;
}

const ServerRisk &
RiskAssessor::risk(ServerId id) const
{
    tapas_assert(id.index < risks.size(),
                 "risk queried before refresh or for unknown server");
    return risks[id.index];
}

std::size_t
RiskAssessor::flaggedCount() const
{
    std::size_t count = 0;
    for (const ServerRisk &entry : risks) {
        if (entry.any())
            ++count;
    }
    return count;
}

} // namespace tapas
