#include "core/router.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

VmId
BaselineRouter::route(const Request &request,
                      const std::vector<RouteCandidate> &candidates,
                      const RiskAssessor *risk)
{
    (void)request;
    (void)risk;
    VmId best;
    double best_ttft = 1e300;
    for (const RouteCandidate &cand : candidates) {
        if (!cand.engine->accepting())
            continue;
        const double ttft = cand.engine->estimatedTtftS();
        if (ttft < best_ttft) {
            best_ttft = ttft;
            best = cand.vm;
        }
    }
    return best;
}

VmId
TapasRouter::route(const Request &request,
                   const std::vector<RouteCandidate> &candidates,
                   const RiskAssessor *risk)
{
    // Load thresholds expressed against the TTFT SLO: a VM whose
    // projected TTFT already consumes most of the SLO is a
    // performance risk; one under the concentration bar can absorb
    // more load without endangering latency.
    const double slo_ttft = candidates.empty()
        ? 1.0
        : candidates.front().engine->slo().ttftS;
    const double perf_bar = cfg.perfRiskLoad * slo_ttft;
    const double concentrate_bar =
        cfg.concentrationCeiling * slo_ttft;

    // --- Stage 0: risk filter at server/row/aisle levels. ---
    std::vector<const RouteCandidate *> safe;
    safe.reserve(candidates.size());
    for (const RouteCandidate &cand : candidates) {
        if (!cand.engine->accepting())
            continue;
        if (risk && risk->fresh() && risk->risk(cand.server).any())
            continue;
        if (cand.engine->estimatedTtftS() > perf_bar)
            continue;
        safe.push_back(&cand);
    }
    // Never drop a request on the floor: if everything is filtered,
    // fall back to any accepting VM (least loaded).
    if (safe.empty()) {
        return BaselineRouter().route(request, candidates, nullptr);
    }

    auto commit = [&](VmId vm) {
        affinity[request.customer.index] = vm;
        return vm;
    };

    // --- Stage 1: KV-cache affinity. ---
    const auto it = affinity.find(request.customer.index);
    if (it != affinity.end()) {
        for (const RouteCandidate *cand : safe) {
            if (cand->vm == it->second)
                return commit(cand->vm);
        }
    }

    // --- Stage 2: energy concentration — pick the most loaded VM
    // still under the concentration bar. ---
    const RouteCandidate *concentrated = nullptr;
    double concentrated_ttft = -1.0;
    for (const RouteCandidate *cand : safe) {
        const double ttft = cand->engine->estimatedTtftS();
        if (ttft <= concentrate_bar && ttft > concentrated_ttft) {
            concentrated_ttft = ttft;
            concentrated = cand;
        }
    }
    if (concentrated)
        return commit(concentrated->vm);

    // --- Stage 3: performance spread — least loaded. ---
    const RouteCandidate *spread = nullptr;
    double spread_ttft = 1e300;
    for (const RouteCandidate *cand : safe) {
        const double ttft = cand->engine->estimatedTtftS();
        if (ttft < spread_ttft) {
            spread_ttft = ttft;
            spread = cand;
        }
    }
    tapas_assert(spread, "non-empty safe set must yield a pick");
    return commit(spread->vm);
}

void
TapasRouter::checkpointState(Archive &ar)
{
    // Unordered-map iteration order is a determinism hazard: the
    // table travels sorted by key so the serialized bytes (and the
    // state digest built from them) are canonical.
    std::vector<std::pair<std::uint32_t, VmId>> entries(
        affinity.begin(), affinity.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    ar.each(entries,
            [](Archive &a, std::pair<std::uint32_t, VmId> &e) {
                a.value(e.first);
                a.value(e.second);
            });
    if (!ar.writing()) {
        affinity.clear();
        affinity.reserve(entries.size());
        for (const auto &[customer, vm] : entries)
            affinity.emplace(customer, vm);
    }
}

} // namespace tapas
