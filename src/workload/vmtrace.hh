/**
 * @file
 * Synthetic VM arrival traces with production-trace statistics.
 *
 * The generator reproduces the demographic properties the paper's
 * placement and routing gains depend on (Figs. 12-13):
 *
 *  - heavy-tailed lifetimes: >60% of GPU VMs live two weeks or more,
 *  - a 50/50 (configurable) IaaS/SaaS split,
 *  - SaaS endpoints with skewed sizes (half of all SaaS VMs belong to
 *    large endpoints),
 *  - IaaS customers with shared diurnal load patterns (enabling the
 *    customer-template power prediction of Fig. 14).
 */

#ifndef TAPAS_WORKLOAD_VMTRACE_HH
#define TAPAS_WORKLOAD_VMTRACE_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace tapas {

/** Service model of a VM. */
enum class VmKind { IaaS, SaaS };

/** Diurnal load shape shared by VMs of one IaaS customer. */
struct LoadPattern
{
    /** Mean utilization. */
    double base = 0.5;
    /** Diurnal amplitude. */
    double amplitude = 0.3;
    /** Peak hour (0-24). */
    double peakHour = 14.0;
    /** Gaussian noise sigma per sample. */
    double noiseSigma = 0.05;
};

/** One VM in the trace. */
struct VmRecord
{
    VmId id;
    VmKind kind = VmKind::IaaS;
    SimTime arrival = 0;
    /** Departure time; may exceed the horizon (still running). */
    SimTime departure = 0;
    /** SaaS only: owning inference endpoint. */
    EndpointId endpoint;
    /** IaaS only: owning customer. */
    CustomerId customer;
    /** IaaS only: load shape (customer pattern + per-VM jitter). */
    LoadPattern pattern;

    SimTime lifetime() const { return departure - arrival; }
};

/** Trace generation knobs. */
struct VmTraceConfig
{
    /**
     * Steady-state population. 0 = auto: the cluster simulator sizes
     * it to ~85% of the server count.
     */
    int targetVmCount = 0;
    double saasFraction = 0.5;
    SimTime horizon = kWeek;
    int endpointCount = 10;
    int iaasCustomerCount = 20;
    /** Endpoint size skew (Zipf exponent over endpoint ranks). */
    double endpointZipfS = 0.9;
    /** Fraction of lifetimes drawn from the short-lived mode. */
    double shortLivedFraction = 0.35;
    /** Mean of the short-lived exponential mode. */
    double shortMeanDays = 4.0;
    /** Long-lived uniform range. */
    double longMinDays = 14.0;
    double longMaxDays = 90.0;
};

/**
 * Generates a full VM trace up front: an initial population at t=0
 * (with staggered residual lifetimes) plus replacement arrivals that
 * hold the population near the target for the whole horizon.
 */
class VmTraceGenerator
{
  public:
    VmTraceGenerator(const VmTraceConfig &config, std::uint64_t seed);

    const VmTraceConfig &config() const { return cfg; }

    /** All VM records, sorted by arrival time. */
    const std::vector<VmRecord> &records() const { return trace; }

    /** Number of SaaS endpoints materialized. */
    int endpointCount() const { return cfg.endpointCount; }

    /**
     * Instantaneous load of an IaaS VM at time t, in [0,1].
     * Deterministic per (vm, t): noise comes from a counter-based
     * stream so replay is exact.
     */
    double iaasLoadAt(const VmRecord &vm, SimTime t) const;

    /** Per-endpoint share of SaaS VMs (for request-rate sizing). */
    const std::vector<int> &endpointVmCounts() const
    { return endpointSizes; }

  private:
    VmTraceConfig cfg;
    std::uint64_t noiseSeed;
    std::vector<VmRecord> trace;
    std::vector<LoadPattern> customerPatterns;
    std::vector<int> endpointSizes;

    SimTime sampleLifetime(Rng &rng) const;
};

} // namespace tapas

#endif // TAPAS_WORKLOAD_VMTRACE_HH
