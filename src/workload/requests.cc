#include "workload/requests.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

namespace {

/** Standard normal CDF. */
double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z * M_SQRT1_2);
}

/**
 * Exact mean of clamp(X, lo, hi) for lognormal X ~ LN(mu, sigma):
 * lo * P(X <= lo) + hi * P(X >= hi) plus the truncated-lognormal
 * mass in between (closed form via the normal CDF).
 */
double
clampedLogNormalMean(double mu, double sigma, double lo, double hi)
{
    const double a = (std::log(lo) - mu) / sigma;
    const double b = (std::log(hi) - mu) / sigma;
    const double middle = std::exp(mu + 0.5 * sigma * sigma) *
        (normalCdf(b - sigma) - normalCdf(a - sigma));
    return lo * normalCdf(a) + hi * (1.0 - normalCdf(b)) + middle;
}

} // namespace

RequestGenerator::RequestGenerator(
    std::vector<EndpointDemand> endpoints,
    const LengthDistribution &lengths, std::uint64_t seed,
    const DemandNoise &noise_)
    : endpointList(std::move(endpoints)), lengthDist(lengths),
      noise(noise_), noiseSeed(mixSeed(seed, 0x6e6f6973ULL)),
      rng(mixSeed(seed, 0x72657173ULL))
{
    // Mean of the clamped lognormal token lengths, in closed form:
    // seed-independent (it estimates a fixed integral) and free of
    // the 20k-sample probe that used to dominate generator setup in
    // scenario sweeps.
    cachedMeanTokens =
        clampedLogNormalMean(
            lengthDist.promptLogMean, lengthDist.promptLogSigma,
            static_cast<double>(lengthDist.promptMin),
            static_cast<double>(lengthDist.promptMax)) +
        clampedLogNormalMean(
            lengthDist.outputLogMean, lengthDist.outputLogSigma,
            static_cast<double>(lengthDist.outputMin),
            static_cast<double>(lengthDist.outputMax));
}

const EndpointDemand &
RequestGenerator::demand(EndpointId id) const
{
    tapas_assert(id.index < endpointList.size(),
                 "unknown endpoint %u", id.index);
    return endpointList[id.index];
}

double
RequestGenerator::demandMultiplier(EndpointId id, SimTime t) const
{
    if (noise.sigma <= 0.0)
        return 1.0;
    const auto bucket = static_cast<std::uint64_t>(t / noise.bucketS);
    Rng draw(mixSeed(noiseSeed,
                     mixSeed(id.index, bucket)));
    return draw.logNormal(0.0, noise.sigma);
}

double
RequestGenerator::demandTokensPerS(EndpointId id, SimTime t) const
{
    const EndpointDemand &ep = demand(id);
    const double hour =
        static_cast<double>(t % kDay) / static_cast<double>(kHour);
    const double phase =
        std::cos(2.0 * M_PI * (hour - ep.peakHour) / 24.0);
    // Map cos [-1,1] onto [trough, 1].
    const double level = ep.troughFraction +
        (1.0 - ep.troughFraction) * 0.5 * (phase + 1.0);
    return ep.peakTokensPerS * level * demandMultiplier(id, t);
}

double
RequestGenerator::meanTokensPerRequest() const
{
    return cachedMeanTokens;
}

int
RequestGenerator::samplePromptTokens()
{
    const double v = rng.logNormal(lengthDist.promptLogMean,
                                   lengthDist.promptLogSigma);
    return static_cast<int>(std::clamp(
        v, static_cast<double>(lengthDist.promptMin),
        static_cast<double>(lengthDist.promptMax)));
}

int
RequestGenerator::sampleOutputTokens()
{
    const double v = rng.logNormal(lengthDist.outputLogMean,
                                   lengthDist.outputLogSigma);
    return static_cast<int>(std::clamp(
        v, static_cast<double>(lengthDist.outputMin),
        static_cast<double>(lengthDist.outputMax)));
}

std::vector<Request>
RequestGenerator::generate(EndpointId id, SimTime from, SimTime to)
{
    std::vector<Request> out;
    generate(id, from, to, out);
    return out;
}

void
RequestGenerator::generate(EndpointId id, SimTime from, SimTime to,
                           std::vector<Request> &out)
{
    tapas_assert(to > from, "empty generation window");
    const EndpointDemand &ep = demand(id);

    out.clear();
    // Thinning-free approach: piecewise-constant rate per window,
    // evaluated at the window midpoint (windows are <= minutes, far
    // shorter than the diurnal scale).
    const SimTime mid = from + (to - from) / 2;
    const double rate =
        demandTokensPerS(id, mid) / cachedMeanTokens;
    double t = static_cast<double>(from);
    if (rate <= 0.0)
        return;
    while (true) {
        t += rng.exponential(rate);
        if (t >= static_cast<double>(to))
            break;
        Request req;
        req.id = RequestId(nextRequestId++);
        req.endpoint = id;
        req.customer = CustomerId(static_cast<std::uint32_t>(
            rng.zipf(ep.customerCount, ep.customerZipfS) - 1));
        req.arrivalS = t;
        req.promptTokens = samplePromptTokens();
        req.outputTokens = sampleOutputTokens();
        out.push_back(req);
    }
}

void
RequestGenerator::checkpointState(Archive &ar)
{
    rng.checkpointState(ar);
    ar.value(nextRequestId);
}

} // namespace tapas
