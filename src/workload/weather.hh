/**
 * @file
 * Synthetic outside-temperature traces.
 *
 * Reproduces the structure visible in the paper's Fig. 2: a seasonal
 * baseline, a strong diurnal cycle peaking mid-afternoon, and multi-
 * day weather fronts modeled as an Ornstein-Uhlenbeck process.
 * Regional climates set the annual mean (the paper studies three
 * regions with varying climates).
 */

#ifndef TAPAS_WORKLOAD_WEATHER_HH
#define TAPAS_WORKLOAD_WEATHER_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace tapas {

/** Regional climate archetypes. */
enum class Climate { Mild, Temperate, Hot };

/** Weather trace parameters. */
struct WeatherConfig
{
    Climate climate = Climate::Temperate;
    /** Annual mean; defaulted from climate if negative. */
    double annualMeanC = -1000.0;
    /** Seasonal swing amplitude (summer vs winter). */
    double seasonalAmpC = 8.0;
    /** Day-night swing amplitude. */
    double diurnalAmpC = 5.0;
    /** Weather-front (OU) reversion time constant, seconds. */
    double frontTauS = 2.0 * kDay;
    /** Weather-front stationary standard deviation. */
    double frontSigmaC = 2.5;
    /** Day of year at the start of the trace (paper: summer). */
    int startDayOfYear = 200;
    /** Trace horizon to materialize. */
    SimTime horizon = 90 * kDay;
};

/** Deterministic, seedable outside-temperature trace. */
class WeatherModel
{
  public:
    WeatherModel(const WeatherConfig &config, std::uint64_t seed);

    const WeatherConfig &config() const { return cfg; }

    /** Outside temperature at time t (linear interp at 10-min grid). */
    Celsius outsideAt(SimTime t) const;

    /** Annual mean used (after climate defaulting). */
    double meanC() const { return mean; }

  private:
    WeatherConfig cfg;
    double mean;
    /** OU samples on a 10-minute grid. */
    std::vector<double> frontPath;
    SimTime gridStep;

    double deterministicAt(SimTime t) const;
};

} // namespace tapas

#endif // TAPAS_WORKLOAD_WEATHER_HH
