#include "workload/vmtrace.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

VmTraceGenerator::VmTraceGenerator(const VmTraceConfig &config,
                                   std::uint64_t seed)
    : cfg(config), noiseSeed(mixSeed(seed, 0x6e6f6973ULL))
{
    tapas_assert(cfg.targetVmCount > 0, "need a positive VM target");
    tapas_assert(cfg.saasFraction >= 0.0 && cfg.saasFraction <= 1.0,
                 "SaaS fraction must be in [0,1]");
    Rng rng(mixSeed(seed, 0x766d7472ULL));

    // Customer load patterns: shared diurnal shape per customer.
    customerPatterns.resize(
        static_cast<std::size_t>(cfg.iaasCustomerCount));
    for (LoadPattern &pattern : customerPatterns) {
        pattern.base = rng.uniform(0.35, 0.7);
        pattern.amplitude = rng.uniform(0.15, 0.3);
        pattern.peakHour = rng.uniform(0.0, 24.0);
        pattern.noiseSigma = rng.uniform(0.02, 0.07);
    }

    // Endpoint sizes: Zipf over ranks, matching the paper's skew
    // where large endpoints hold most SaaS VMs (Fig. 12b).
    endpointSizes.assign(
        static_cast<std::size_t>(cfg.endpointCount), 0);

    std::uint32_t next_id = 0;
    std::vector<SimTime> departures;

    // IaaS customers deploy fleets in bursts; consecutive IaaS VMs
    // share a customer while a burst is open. Packing allocators
    // co-locate such bursts, synchronizing row power peaks (the
    // heavy-tail imbalance of Fig. 10).
    int burst_remaining = 0;
    CustomerId burst_customer;

    auto make_vm = [&](SimTime arrival, bool initial) {
        VmRecord vm;
        vm.id = VmId(next_id++);
        vm.kind = rng.bernoulli(cfg.saasFraction) ? VmKind::SaaS
                                                  : VmKind::IaaS;
        vm.arrival = arrival;
        SimTime life = sampleLifetime(rng);
        if (initial) {
            // Initial population: VMs arrived in the past; keep the
            // residual lifetime so t=0 is mid-steady-state.
            life = static_cast<SimTime>(
                rng.uniform(0.1, 1.0) * static_cast<double>(life));
        }
        vm.departure = arrival + std::max<SimTime>(life, kHour);
        if (vm.kind == VmKind::SaaS) {
            const int rank =
                rng.zipf(cfg.endpointCount, cfg.endpointZipfS);
            vm.endpoint =
                EndpointId(static_cast<std::uint32_t>(rank - 1));
            ++endpointSizes[vm.endpoint.index];
        } else {
            if (burst_remaining > 0) {
                vm.customer = burst_customer;
                --burst_remaining;
            } else {
                vm.customer = CustomerId(static_cast<std::uint32_t>(
                    rng.uniformInt(0, cfg.iaasCustomerCount - 1)));
                if (rng.bernoulli(0.6)) {
                    burst_remaining =
                        static_cast<int>(rng.uniformInt(1, 5));
                    burst_customer = vm.customer;
                }
            }
            vm.pattern = customerPatterns[vm.customer.index];
            // Per-VM jitter on the shared customer pattern.
            vm.pattern.base = std::clamp(
                vm.pattern.base + rng.gaussian(0.0, 0.05), 0.1, 0.85);
            vm.pattern.peakHour +=
                rng.gaussian(0.0, 0.5);
        }
        trace.push_back(vm);
        return vm;
    };

    // Initial population at t=0.
    for (int i = 0; i < cfg.targetVmCount; ++i)
        departures.push_back(make_vm(0, true).departure);

    // Replacement arrivals: whenever a VM departs within the horizon,
    // a successor arrives shortly after, holding population steady.
    std::sort(departures.begin(), departures.end());
    std::size_t cursor = 0;
    while (cursor < departures.size()) {
        const SimTime dep = departures[cursor++];
        if (dep >= cfg.horizon)
            continue;
        const SimTime arrival = dep + static_cast<SimTime>(
            rng.exponential(1.0 / (2.0 * kHour)));
        if (arrival >= cfg.horizon)
            continue;
        const VmRecord vm = make_vm(arrival, false);
        // Keep the departure list sorted-enough: insert in order.
        auto pos = std::lower_bound(departures.begin() + cursor,
                                    departures.end(), vm.departure);
        departures.insert(pos, vm.departure);
    }

    std::sort(trace.begin(), trace.end(),
              [](const VmRecord &a, const VmRecord &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
}

SimTime
VmTraceGenerator::sampleLifetime(Rng &rng) const
{
    double days = 0.0;
    if (rng.bernoulli(cfg.shortLivedFraction)) {
        days = rng.exponential(1.0 / cfg.shortMeanDays);
    } else {
        days = rng.uniform(cfg.longMinDays, cfg.longMaxDays);
    }
    return static_cast<SimTime>(days * kDay);
}

double
VmTraceGenerator::iaasLoadAt(const VmRecord &vm, SimTime t) const
{
    tapas_assert(vm.kind == VmKind::IaaS,
                 "load pattern queried for a SaaS VM");
    const double hour =
        static_cast<double>(t % kDay) / static_cast<double>(kHour);
    const double diurnal = vm.pattern.amplitude *
        std::cos(2.0 * M_PI * (hour - vm.pattern.peakHour) / 24.0);
    // Counter-based noise: exact replay for any (vm, t).
    Rng noise(mixSeed(noiseSeed,
                      mixSeed(vm.id.index,
                              static_cast<std::uint64_t>(t))));
    const double sample = vm.pattern.base + diurnal +
        noise.gaussian(0.0, vm.pattern.noiseSigma);
    return std::clamp(sample, 0.0, 1.0);
}

} // namespace tapas
