/**
 * @file
 * SaaS LLM inference request generation.
 *
 * Each endpoint has a diurnal demand curve (token throughput) and a
 * customer population with Zipf-skewed activity, enabling both the
 * request-level simulation (Poisson arrivals with log-normal token
 * lengths) and the flow-level simulation (smooth token demand).
 */

#ifndef TAPAS_WORKLOAD_REQUESTS_HH
#define TAPAS_WORKLOAD_REQUESTS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "llm/request.hh"

namespace tapas {

class Archive;

/** Demand shape of one SaaS inference endpoint. */
struct EndpointDemand
{
    EndpointId id;
    /** Peak aggregate token demand, tokens/s across all VMs. */
    double peakTokensPerS = 1000.0;
    /** Night-time demand as a fraction of peak. */
    double troughFraction = 0.35;
    /** Peak hour (0-24). */
    double peakHour = 14.0;
    /** Active customers issuing requests to this endpoint. */
    int customerCount = 50;
    /** Customer activity skew. */
    double customerZipfS = 1.1;
};

/** Demand burstiness: multiplicative AR-free noise per bucket. */
struct DemandNoise
{
    /** Lognormal sigma of the per-bucket demand multiplier. */
    double sigma = 0.0;
    /** Bucket width for the multiplier process. */
    SimTime bucketS = 5 * kMinute;
};

/** Token-length distribution knobs. */
struct LengthDistribution
{
    double promptLogMean = 6.0;  // exp(6) ~ 403 tokens
    double promptLogSigma = 0.7;
    int promptMin = 16;
    int promptMax = 4096;
    double outputLogMean = 4.8;  // exp(4.8) ~ 121 tokens
    double outputLogSigma = 0.6;
    int outputMin = 8;
    int outputMax = 1024;
};

/** Generates demand curves and concrete request streams. */
class RequestGenerator
{
  public:
    RequestGenerator(std::vector<EndpointDemand> endpoints,
                     const LengthDistribution &lengths,
                     std::uint64_t seed,
                     const DemandNoise &noise = DemandNoise{});

    /** Demand multiplier for an endpoint's bucket (spikes). */
    double demandMultiplier(EndpointId id, SimTime t) const;

    const std::vector<EndpointDemand> &endpoints() const
    { return endpointList; }

    /** Smooth aggregate token demand of an endpoint at time t. */
    double demandTokensPerS(EndpointId id, SimTime t) const;

    /** Mean tokens per request implied by the length distribution. */
    double meanTokensPerRequest() const;

    /**
     * Materialize Poisson request arrivals for one endpoint over
     * [from, to). Arrival rate = demand / meanTokensPerRequest.
     */
    std::vector<Request> generate(EndpointId id, SimTime from,
                                  SimTime to);

    /**
     * Pooled variant: @p out is cleared and refilled, retaining its
     * capacity across calls so steady-state request-level stepping
     * allocates nothing.
     */
    void generate(EndpointId id, SimTime from, SimTime to,
                  std::vector<Request> &out);

    /**
     * Serialize/restore the mutable stream state (arrival Rng and
     * the next request id); the demand shapes are constructor
     * inputs and do not travel.
     */
    void checkpointState(Archive &ar);

  private:
    // ckpt-skip(constant): demand shapes are constructor inputs
    std::vector<EndpointDemand> endpointList;
    LengthDistribution lengthDist;  // ckpt-skip(constant): ctor input
    DemandNoise noise;              // ckpt-skip(constant): ctor input
    std::uint64_t noiseSeed;        // ckpt-skip(constant): ctor input
    Rng rng;
    std::uint32_t nextRequestId = 0;
    // ckpt-skip(derived): closed-form mean of the fixed length
    // distribution, recomputed by the constructor
    double cachedMeanTokens = 0.0;

    const EndpointDemand &demand(EndpointId id) const;
    int samplePromptTokens();
    int sampleOutputTokens();
};

} // namespace tapas

#endif // TAPAS_WORKLOAD_REQUESTS_HH
