#include "workload/weather.hh"

#include <cmath>

#include "common/logging.hh"

namespace tapas {

namespace {
double
climateMean(Climate climate)
{
    switch (climate) {
      case Climate::Mild:
        return 14.0;
      case Climate::Temperate:
        return 20.0;
      case Climate::Hot:
        return 28.0;
    }
    return 20.0;
}
} // namespace

WeatherModel::WeatherModel(const WeatherConfig &config,
                           std::uint64_t seed)
    : cfg(config), gridStep(10 * kMinute)
{
    tapas_assert(cfg.horizon > 0, "weather horizon must be positive");
    mean = cfg.annualMeanC > -999.0 ? cfg.annualMeanC
                                    : climateMean(cfg.climate);

    // Materialize the OU front path on a 10-minute grid (the paper's
    // sensor cadence) with exact discretization.
    Rng rng(mixSeed(seed, 0x77656174ULL));
    const std::size_t steps =
        static_cast<std::size_t>(cfg.horizon / gridStep) + 2;
    frontPath.resize(steps);
    const double dt = static_cast<double>(gridStep);
    const double alpha = std::exp(-dt / cfg.frontTauS);
    const double step_sigma =
        cfg.frontSigmaC * std::sqrt(1.0 - alpha * alpha);
    double x = rng.gaussian(0.0, cfg.frontSigmaC);
    for (std::size_t i = 0; i < steps; ++i) {
        frontPath[i] = x;
        x = alpha * x + rng.gaussian(0.0, step_sigma);
    }
}

double
WeatherModel::deterministicAt(SimTime t) const
{
    const double day_of_year = cfg.startDayOfYear +
        static_cast<double>(t) / static_cast<double>(kDay);
    // Seasonal peak around day 200 (northern-hemisphere summer).
    const double seasonal = cfg.seasonalAmpC *
        std::cos(2.0 * M_PI * (day_of_year - 200.0) / 365.0);
    const double hour =
        static_cast<double>(t % kDay) / static_cast<double>(kHour);
    // Diurnal peak at 15:00, trough at 03:00.
    const double diurnal = cfg.diurnalAmpC *
        std::cos(2.0 * M_PI * (hour - 15.0) / 24.0);
    return mean + seasonal + diurnal;
}

Celsius
WeatherModel::outsideAt(SimTime t) const
{
    tapas_assert(t >= 0 && t <= cfg.horizon,
                 "weather query at %lld outside horizon",
                 static_cast<long long>(t));
    const auto idx = static_cast<std::size_t>(t / gridStep);
    const double frac =
        static_cast<double>(t % gridStep) /
        static_cast<double>(gridStep);
    const double front = frontPath[idx] * (1.0 - frac) +
        frontPath[idx + 1] * frac;
    return Celsius(deterministicAt(t) + front);
}

} // namespace tapas
