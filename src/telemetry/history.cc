#include "telemetry/history.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

KeyedSeriesRing &
TelemetryStore::keyedRing(std::vector<KeyedSeriesRing> &table,
                          std::uint32_t key)
{
    if (key >= table.size())
        table.resize(key + 1, KeyedSeriesRing(seriesCapacity));
    return table[key];
}

void
TelemetryStore::recordServer(ServerId id, const ServerSample &sample)
{
    if (id.index >= serverData.size()) {
        serverData.resize(id.index + 1,
                          ServerSeriesRing(seriesCapacity));
    }
    serverData[id.index].push(sample);
}

void
TelemetryStore::recordRowPower(RowId id, SimTime t, double watts)
{
    keyedRing(rowPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordCustomerVmPower(CustomerId id, SimTime t,
                                      double watts)
{
    keyedRing(customerVmPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordEndpointVmPower(EndpointId id, SimTime t,
                                      double watts)
{
    keyedRing(endpointVmPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordVmLoad(VmId id, CustomerId customer,
                             EndpointId endpoint, SimTime t,
                             double load)
{
    (void)id;
    auto update = [&](LoadDigest &digest) {
        if (digest.first < 0)
            digest.first = t;
        digest.last = t;
        digest.peak = std::max(digest.peak, load);
    };
    if (customer.valid()) {
        if (customer.index >= customerLoads.size())
            customerLoads.resize(customer.index + 1);
        update(customerLoads[customer.index]);
    }
    if (endpoint.valid()) {
        if (endpoint.index >= endpointLoads.size())
            endpointLoads.resize(endpoint.index + 1);
        update(endpointLoads[endpoint.index]);
    }
}

SeriesView<ServerSample>
TelemetryStore::serverSeries(ServerId id) const
{
    return id.index < serverData.size()
        ? serverData[id.index].view()
        : SeriesView<ServerSample>();
}

SeriesView<KeyedSample>
TelemetryStore::rowPowerSeries(RowId id) const
{
    return id.index < rowPower.size() ? rowPower[id.index].view()
                                      : SeriesView<KeyedSample>();
}

SeriesView<KeyedSample>
TelemetryStore::customerVmPowerSeries(CustomerId id) const
{
    return id.index < customerVmPower.size()
        ? customerVmPower[id.index].view()
        : SeriesView<KeyedSample>();
}

SeriesView<KeyedSample>
TelemetryStore::endpointVmPowerSeries(EndpointId id) const
{
    return id.index < endpointVmPower.size()
        ? endpointVmPower[id.index].view()
        : SeriesView<KeyedSample>();
}

double
TelemetryStore::rowPowerPeak(RowId id) const
{
    return id.index < rowPower.size()
        ? rowPower[id.index].peakValue()
        : 0.0;
}

SimTime
TelemetryStore::rowPowerSpan(RowId id) const
{
    return id.index < rowPower.size() ? rowPower[id.index].span()
                                      : 0;
}

std::vector<RowId>
TelemetryStore::rowsWithData() const
{
    std::vector<RowId> out;
    out.reserve(rowPower.size());
    for (std::size_t key = 0; key < rowPower.size(); ++key) {
        if (!rowPower[key].empty())
            out.push_back(RowId(static_cast<std::uint32_t>(key)));
    }
    return out;
}

std::vector<CustomerId>
TelemetryStore::customersWithData() const
{
    std::vector<CustomerId> out;
    out.reserve(customerVmPower.size());
    for (std::size_t key = 0; key < customerVmPower.size(); ++key) {
        if (!customerVmPower[key].empty()) {
            out.push_back(
                CustomerId(static_cast<std::uint32_t>(key)));
        }
    }
    return out;
}

std::vector<EndpointId>
TelemetryStore::endpointsWithData() const
{
    std::vector<EndpointId> out;
    out.reserve(endpointVmPower.size());
    for (std::size_t key = 0; key < endpointVmPower.size(); ++key) {
        if (!endpointVmPower[key].empty()) {
            out.push_back(
                EndpointId(static_cast<std::uint32_t>(key)));
        }
    }
    return out;
}

SimTime
TelemetryStore::customerLoadSpan(CustomerId id) const
{
    if (id.index >= customerLoads.size() ||
        customerLoads[id.index].first < 0) {
        return 0;
    }
    const LoadDigest &digest = customerLoads[id.index];
    return digest.last - digest.first;
}

SimTime
TelemetryStore::endpointLoadSpan(EndpointId id) const
{
    if (id.index >= endpointLoads.size() ||
        endpointLoads[id.index].first < 0) {
        return 0;
    }
    const LoadDigest &digest = endpointLoads[id.index];
    return digest.last - digest.first;
}

double
TelemetryStore::customerPeakLoad(CustomerId id) const
{
    // A slot materialized by a higher id but never recorded reads
    // as absent (the map behaved the same way).
    if (id.index >= customerLoads.size() ||
        customerLoads[id.index].first < 0) {
        return 1.0;
    }
    return customerLoads[id.index].peak;
}

double
TelemetryStore::endpointPeakLoad(EndpointId id) const
{
    if (id.index >= endpointLoads.size() ||
        endpointLoads[id.index].first < 0) {
        return 1.0;
    }
    return endpointLoads[id.index].peak;
}

double
TelemetryStore::customerPredictedPeak(CustomerId id,
                                      SimTime min_span) const
{
    // Single slot read for the span gate + peak (the predicted-peak
    // refresh does this for every customer on telemetry ticks).
    if (id.index >= customerLoads.size())
        return 1.0;
    const LoadDigest &digest = customerLoads[id.index];
    if (digest.first < 0 || digest.last - digest.first < min_span)
        return 1.0;
    return digest.peak;
}

double
TelemetryStore::endpointPredictedPeak(EndpointId id,
                                      SimTime min_span) const
{
    if (id.index >= endpointLoads.size())
        return 1.0;
    const LoadDigest &digest = endpointLoads[id.index];
    if (digest.first < 0 || digest.last - digest.first < min_span)
        return 1.0;
    return digest.peak;
}

SimTime
TelemetryStore::serverLastSampleAge(ServerId id, SimTime now) const
{
    if (id.index >= serverData.size() ||
        serverData[id.index].empty()) {
        return -1;
    }
    return now - serverData[id.index].lastTime();
}

SimTime
TelemetryStore::serverSampleGap(ServerId id) const
{
    return id.index < serverData.size()
        ? serverData[id.index].lastGap()
        : 0;
}

SimTime
TelemetryStore::serverMaxSampleGap(ServerId id) const
{
    return id.index < serverData.size()
        ? serverData[id.index].maxGap()
        : 0;
}

bool
TelemetryStore::serverFresh(ServerId id, SimTime now,
                            SimTime max_age) const
{
    const SimTime age = serverLastSampleAge(id, now);
    return age >= 0 && age <= max_age;
}

void
TelemetryStore::trimBefore(SimTime cutoff)
{
    for (ServerSeriesRing &series : serverData)
        series.trimBefore(cutoff);
    for (KeyedSeriesRing &series : rowPower)
        series.trimBefore(cutoff);
    for (KeyedSeriesRing &series : customerVmPower)
        series.trimBefore(cutoff);
    for (KeyedSeriesRing &series : endpointVmPower)
        series.trimBefore(cutoff);
}

namespace {

void
serverSampleFields(Archive &ar, ServerSample &s)
{
    ar.value(s.time);
    ar.value(s.inletC);
    ar.value(s.hottestGpuC);
    ar.value(s.serverPowerW);
    ar.value(s.gpuLoad);
    ar.value(s.outsideC);
    ar.value(s.dcLoadFrac);
}

void
keyedSampleFields(Archive &ar, KeyedSample &s)
{
    ar.value(s.time);
    ar.value(s.value);
}

void
keyedTable(Archive &ar, std::vector<KeyedSeriesRing> &table)
{
    ar.each(table, [](Archive &a, KeyedSeriesRing &ring) {
        ring.checkpointState(a, keyedSampleFields);
    });
}

} // namespace

void
TelemetryStore::checkpointState(Archive &ar)
{
    ar.count(seriesCapacity);
    ar.each(serverData, [](Archive &a, ServerSeriesRing &ring) {
        ring.checkpointState(a, serverSampleFields);
    });
    keyedTable(ar, rowPower);
    keyedTable(ar, customerVmPower);
    keyedTable(ar, endpointVmPower);
    const auto digest = [](Archive &a, LoadDigest &d) {
        a.value(d.first);
        a.value(d.last);
        a.value(d.peak);
    };
    ar.each(customerLoads, digest);
    ar.each(endpointLoads, digest);
}

} // namespace tapas
