#include "telemetry/history.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

KeyedSeriesRing &
TelemetryStore::keyedRing(
    std::unordered_map<std::uint32_t, KeyedSeriesRing> &map,
    std::uint32_t key)
{
    auto it = map.find(key);
    if (it == map.end()) {
        it = map.emplace(key, KeyedSeriesRing(seriesCapacity))
                 .first;
    }
    return it->second;
}

void
TelemetryStore::recordServer(ServerId id, const ServerSample &sample)
{
    auto it = serverData.find(id.index);
    if (it == serverData.end()) {
        it = serverData
                 .emplace(id.index, ServerSeriesRing(seriesCapacity))
                 .first;
    }
    it->second.push(sample);
}

void
TelemetryStore::recordRowPower(RowId id, SimTime t, double watts)
{
    keyedRing(rowPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordCustomerVmPower(CustomerId id, SimTime t,
                                      double watts)
{
    keyedRing(customerVmPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordEndpointVmPower(EndpointId id, SimTime t,
                                      double watts)
{
    keyedRing(endpointVmPower, id.index)
        .push({t, static_cast<float>(watts)});
}

void
TelemetryStore::recordVmLoad(VmId id, CustomerId customer,
                             EndpointId endpoint, SimTime t,
                             double load)
{
    (void)id;
    auto update = [&](LoadDigest &digest) {
        if (digest.first < 0)
            digest.first = t;
        digest.last = t;
        digest.peak = std::max(digest.peak, load);
    };
    if (customer.valid())
        update(customerLoads[customer.index]);
    if (endpoint.valid())
        update(endpointLoads[endpoint.index]);
}

SeriesView<ServerSample>
TelemetryStore::serverSeries(ServerId id) const
{
    const auto it = serverData.find(id.index);
    return it == serverData.end() ? SeriesView<ServerSample>()
                                  : it->second.view();
}

SeriesView<KeyedSample>
TelemetryStore::rowPowerSeries(RowId id) const
{
    const auto it = rowPower.find(id.index);
    return it == rowPower.end() ? SeriesView<KeyedSample>()
                                : it->second.view();
}

SeriesView<KeyedSample>
TelemetryStore::customerVmPowerSeries(CustomerId id) const
{
    const auto it = customerVmPower.find(id.index);
    return it == customerVmPower.end() ? SeriesView<KeyedSample>()
                                       : it->second.view();
}

SeriesView<KeyedSample>
TelemetryStore::endpointVmPowerSeries(EndpointId id) const
{
    const auto it = endpointVmPower.find(id.index);
    return it == endpointVmPower.end() ? SeriesView<KeyedSample>()
                                       : it->second.view();
}

double
TelemetryStore::rowPowerPeak(RowId id) const
{
    const auto it = rowPower.find(id.index);
    return it == rowPower.end() ? 0.0 : it->second.peakValue();
}

SimTime
TelemetryStore::rowPowerSpan(RowId id) const
{
    const auto it = rowPower.find(id.index);
    return it == rowPower.end() ? 0 : it->second.span();
}

std::vector<RowId>
TelemetryStore::rowsWithData() const
{
    std::vector<RowId> out;
    out.reserve(rowPower.size());
    for (const auto &[key, series] : rowPower) {
        if (!series.empty())
            out.push_back(RowId(key));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<CustomerId>
TelemetryStore::customersWithData() const
{
    std::vector<CustomerId> out;
    out.reserve(customerVmPower.size());
    for (const auto &[key, series] : customerVmPower) {
        if (!series.empty())
            out.push_back(CustomerId(key));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<EndpointId>
TelemetryStore::endpointsWithData() const
{
    std::vector<EndpointId> out;
    out.reserve(endpointVmPower.size());
    for (const auto &[key, series] : endpointVmPower) {
        if (!series.empty())
            out.push_back(EndpointId(key));
    }
    std::sort(out.begin(), out.end());
    return out;
}

SimTime
TelemetryStore::customerLoadSpan(CustomerId id) const
{
    const auto it = customerLoads.find(id.index);
    if (it == customerLoads.end() || it->second.first < 0)
        return 0;
    return it->second.last - it->second.first;
}

SimTime
TelemetryStore::endpointLoadSpan(EndpointId id) const
{
    const auto it = endpointLoads.find(id.index);
    if (it == endpointLoads.end() || it->second.first < 0)
        return 0;
    return it->second.last - it->second.first;
}

double
TelemetryStore::customerPeakLoad(CustomerId id) const
{
    const auto it = customerLoads.find(id.index);
    return it == customerLoads.end() ? 1.0 : it->second.peak;
}

double
TelemetryStore::endpointPeakLoad(EndpointId id) const
{
    const auto it = endpointLoads.find(id.index);
    return it == endpointLoads.end() ? 1.0 : it->second.peak;
}

double
TelemetryStore::customerPredictedPeak(CustomerId id,
                                      SimTime min_span) const
{
    // Single lookup for the span gate + peak read (the placement
    // view rebuild does this for every placed VM).
    const auto it = customerLoads.find(id.index);
    if (it == customerLoads.end() || it->second.first < 0 ||
        it->second.last - it->second.first < min_span) {
        return 1.0;
    }
    return it->second.peak;
}

double
TelemetryStore::endpointPredictedPeak(EndpointId id,
                                      SimTime min_span) const
{
    const auto it = endpointLoads.find(id.index);
    if (it == endpointLoads.end() || it->second.first < 0 ||
        it->second.last - it->second.first < min_span) {
        return 1.0;
    }
    return it->second.peak;
}

void
TelemetryStore::trimBefore(SimTime cutoff)
{
    for (auto &[key, series] : serverData)
        series.trimBefore(cutoff);
    for (auto &[key, series] : rowPower)
        series.trimBefore(cutoff);
    for (auto &[key, series] : customerVmPower)
        series.trimBefore(cutoff);
    for (auto &[key, series] : endpointVmPower)
        series.trimBefore(cutoff);
}

} // namespace tapas
