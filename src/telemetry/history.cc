#include "telemetry/history.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tapas {

const std::vector<ServerSample> TelemetryStore::emptyServerSeries;
const std::vector<KeyedSample> TelemetryStore::emptyKeyedSeries;

void
TelemetryStore::recordServer(ServerId id, const ServerSample &sample)
{
    serverData[id.index].push_back(sample);
}

void
TelemetryStore::recordRowPower(RowId id, SimTime t, double watts)
{
    rowPower[id.index].push_back(
        {t, static_cast<float>(watts)});
}

void
TelemetryStore::recordCustomerVmPower(CustomerId id, SimTime t,
                                      double watts)
{
    customerVmPower[id.index].push_back(
        {t, static_cast<float>(watts)});
}

void
TelemetryStore::recordEndpointVmPower(EndpointId id, SimTime t,
                                      double watts)
{
    endpointVmPower[id.index].push_back(
        {t, static_cast<float>(watts)});
}

void
TelemetryStore::recordVmLoad(VmId id, CustomerId customer,
                             EndpointId endpoint, SimTime t,
                             double load)
{
    (void)id;
    auto update = [&](LoadDigest &digest) {
        if (digest.first < 0)
            digest.first = t;
        digest.last = t;
        digest.peak = std::max(digest.peak, load);
    };
    if (customer.valid())
        update(customerLoads[customer.index]);
    if (endpoint.valid())
        update(endpointLoads[endpoint.index]);
}

const std::vector<ServerSample> &
TelemetryStore::serverSeries(ServerId id) const
{
    const auto it = serverData.find(id.index);
    return it == serverData.end() ? emptyServerSeries : it->second;
}

const std::vector<KeyedSample> &
TelemetryStore::rowPowerSeries(RowId id) const
{
    const auto it = rowPower.find(id.index);
    return it == rowPower.end() ? emptyKeyedSeries : it->second;
}

const std::vector<KeyedSample> &
TelemetryStore::customerVmPowerSeries(CustomerId id) const
{
    const auto it = customerVmPower.find(id.index);
    return it == customerVmPower.end() ? emptyKeyedSeries
                                       : it->second;
}

const std::vector<KeyedSample> &
TelemetryStore::endpointVmPowerSeries(EndpointId id) const
{
    const auto it = endpointVmPower.find(id.index);
    return it == endpointVmPower.end() ? emptyKeyedSeries
                                       : it->second;
}

std::vector<RowId>
TelemetryStore::rowsWithData() const
{
    std::vector<RowId> out;
    out.reserve(rowPower.size());
    for (const auto &[key, series] : rowPower)
        out.push_back(RowId(key));
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<CustomerId>
TelemetryStore::customersWithData() const
{
    std::vector<CustomerId> out;
    out.reserve(customerVmPower.size());
    for (const auto &[key, series] : customerVmPower)
        out.push_back(CustomerId(key));
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<EndpointId>
TelemetryStore::endpointsWithData() const
{
    std::vector<EndpointId> out;
    out.reserve(endpointVmPower.size());
    for (const auto &[key, series] : endpointVmPower)
        out.push_back(EndpointId(key));
    std::sort(out.begin(), out.end());
    return out;
}

SimTime
TelemetryStore::customerLoadSpan(CustomerId id) const
{
    const auto it = customerLoads.find(id.index);
    if (it == customerLoads.end() || it->second.first < 0)
        return 0;
    return it->second.last - it->second.first;
}

SimTime
TelemetryStore::endpointLoadSpan(EndpointId id) const
{
    const auto it = endpointLoads.find(id.index);
    if (it == endpointLoads.end() || it->second.first < 0)
        return 0;
    return it->second.last - it->second.first;
}

double
TelemetryStore::customerPeakLoad(CustomerId id) const
{
    const auto it = customerLoads.find(id.index);
    return it == customerLoads.end() ? 1.0 : it->second.peak;
}

double
TelemetryStore::endpointPeakLoad(EndpointId id) const
{
    const auto it = endpointLoads.find(id.index);
    return it == endpointLoads.end() ? 1.0 : it->second.peak;
}

double
TelemetryStore::customerPredictedPeak(CustomerId id,
                                      SimTime min_span) const
{
    // Single lookup for the span gate + peak read (the placement
    // view rebuild does this for every placed VM).
    const auto it = customerLoads.find(id.index);
    if (it == customerLoads.end() || it->second.first < 0 ||
        it->second.last - it->second.first < min_span) {
        return 1.0;
    }
    return it->second.peak;
}

double
TelemetryStore::endpointPredictedPeak(EndpointId id,
                                      SimTime min_span) const
{
    const auto it = endpointLoads.find(id.index);
    if (it == endpointLoads.end() || it->second.first < 0 ||
        it->second.last - it->second.first < min_span) {
        return 1.0;
    }
    return it->second.peak;
}

void
TelemetryStore::trimBefore(SimTime cutoff)
{
    auto trim_keyed = [cutoff](auto &map) {
        for (auto &[key, series] : map) {
            auto first_kept = std::find_if(
                series.begin(), series.end(),
                [cutoff](const KeyedSample &s) {
                    return s.time >= cutoff;
                });
            series.erase(series.begin(), first_kept);
        }
    };
    for (auto &[key, series] : serverData) {
        auto first_kept = std::find_if(
            series.begin(), series.end(),
            [cutoff](const ServerSample &s) {
                return s.time >= cutoff;
            });
        series.erase(series.begin(), first_kept);
    }
    trim_keyed(rowPower);
    trim_keyed(customerVmPower);
    trim_keyed(endpointVmPower);
}

} // namespace tapas
