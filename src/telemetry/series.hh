/**
 * @file
 * Bounded time-series storage for telemetry: a fixed-capacity ring
 * buffer with O(1) append, O(log n) trim (binary search + one head
 * advance, no element moves), and an incrementally maintained
 * span/peak digest. Queries hand out a lightweight view over the at
 * most two contiguous chunks of a (possibly wrapped) ring, so
 * consumers keep simple indexed/iterator access without copying.
 *
 * Memory model: a ring grows geometrically like a vector until it
 * reaches its capacity, then holds steady — appending to a full ring
 * evicts the oldest sample. Capacity is chosen by the owner (the
 * cluster simulator sizes it to its telemetry retention window), so
 * week-long thousand-server runs hold a bounded, predictable
 * footprint instead of ever-growing per-server vectors.
 */

#ifndef TAPAS_TELEMETRY_SERIES_HH
#define TAPAS_TELEMETRY_SERIES_HH

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace tapas {

/**
 * Read-only view over a ring's contents: at most two contiguous
 * chunks, iterable and indexable like the vector it replaced.
 */
template <typename T>
class SeriesView
{
  public:
    /** One contiguous run of samples. */
    struct Chunk
    {
        const T *data = nullptr;
        std::size_t size = 0;
    };

    SeriesView() = default;

    SeriesView(Chunk first, Chunk second)
        : parts{first, second}
    {}

    std::size_t size() const { return parts[0].size + parts[1].size; }
    bool empty() const { return size() == 0; }

    const T &
    operator[](std::size_t i) const
    {
        return i < parts[0].size
            ? parts[0].data[i]
            : parts[1].data[i - parts[0].size];
    }

    const T &front() const { return (*this)[0]; }
    const T &back() const { return (*this)[size() - 1]; }

    /** The (up to two) contiguous chunks, oldest first. */
    const Chunk &firstChunk() const { return parts[0]; }
    const Chunk &secondChunk() const { return parts[1]; }

    /** Forward iterator across both chunks. */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator() = default;

        const_iterator(const SeriesView *view, std::size_t index)
            : view(view), index(index)
        {}

        reference operator*() const { return (*view)[index]; }
        pointer operator->() const { return &(*view)[index]; }

        const_iterator &
        operator++()
        {
            ++index;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator out = *this;
            ++index;
            return out;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return index == o.index;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return index != o.index;
        }

      private:
        const SeriesView *view = nullptr;
        std::size_t index = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const
    { return const_iterator(this, size()); }

  private:
    Chunk parts[2];
};

/**
 * Fixed-capacity ring of time-ordered samples. @p TimeOf extracts
 * the sample timestamp, @p ValueOf the digested scalar (peak).
 */
template <typename T, typename Traits>
class SampleRing
{
  public:
    explicit SampleRing(std::size_t capacity_ = 0)
        : cap(std::max<std::size_t>(1, capacity_))
    {}

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return cap; }

    /**
     * Append a sample (timestamps must be non-decreasing). Evicts
     * the oldest sample once the ring is full.
     */
    void
    push(const T &sample)
    {
        tapas_assert(count == 0 ||
                         Traits::timeOf(sample) >=
                             Traits::timeOf(back()),
                     "ring samples must arrive in time order");
        if (count > 0) {
            const SimTime gap =
                Traits::timeOf(sample) - Traits::timeOf(back());
            lastGapS = gap;
            if (gap > maxGapS)
                maxGapS = gap;
        }
        if (data.size() < cap) {
            // Growth phase: the logical run always ends at the
            // physical end (trim preserves head + count ==
            // data.size()), so a plain append extends it.
            data.push_back(sample);
            ++count;
        } else if (count < cap) {
            // Partially trimmed full-size ring: wrap by comparison
            // (head < cap and count < cap, so one subtraction
            // suffices; the telemetry recorder pushes every sensor
            // tick, so this path avoids the division).
            std::size_t pos = head + count;
            if (pos >= cap)
                pos -= cap;
            data[pos] = sample;
            ++count;
        } else {
            // Full: overwrite the oldest slot.
            digestEvict(data[head]);
            data[head] = sample;
            ++head;
            if (head == cap)
                head = 0;
        }
        digestAppend(sample);
    }

    /**
     * Drop samples with time < cutoff: search + one head advance.
     *
     * Edge cases (audited, pinned in test_series_ring.cc): a cutoff
     * at exactly the head sample's timestamp removes nothing
     * (samples are dropped strictly below the cutoff); a cutoff past
     * the last sample empties the ring and resets it to a fresh
     * growth phase, so the next push lands at the physical start and
     * the growth-path invariant (head + count == data.size()) holds
     * for every later regrow/wrap sequence — the PR-2 regrow bug was
     * a reset that skipped this step.
     */
    void
    trimBefore(SimTime cutoff)
    {
        // Binary search over the logically ordered ring.
        std::size_t lo = 0;
        std::size_t hi = count;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (Traits::timeOf(at(mid)) < cutoff) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (lo == 0)
            return;
        if (peakValid) {
            for (std::size_t i = 0; i < lo; ++i)
                digestEvict(at(i));
        }
        // count > 0 here (lo > 0), so data is non-empty; head and lo
        // are both bounded by data.size(), so one subtraction wraps.
        head += lo;
        if (head >= data.size())
            head -= data.size();
        count -= lo;
        if (count == 0) {
            // Reset to a fresh growth phase (capacity retained):
            // the growth-path push appends at the physical end, so
            // an empty ring must also end there.
            data.clear();
            head = 0;
        }
    }

    const T &
    at(std::size_t i) const
    {
        tapas_assert(i < count, "ring index %zu out of %zu", i,
                     count);
        // head < data.size() and i < count <= data.size(): a single
        // comparison wraps (no modulo on the per-sample read path).
        std::size_t pos = head + i;
        if (pos >= data.size())
            pos -= data.size();
        return data[pos];
    }

    const T &front() const { return at(0); }
    const T &back() const { return at(count - 1); }

    SeriesView<T>
    view() const
    {
        if (count == 0)
            return SeriesView<T>();
        const std::size_t first_len =
            std::min(count, data.size() - head);
        typename SeriesView<T>::Chunk a{&data[head], first_len};
        typename SeriesView<T>::Chunk b{data.data(),
                                        count - first_len};
        return SeriesView<T>(a, b);
    }

    /** Peak digested value over the current contents. */
    double
    peakValue() const
    {
        if (!peakValid)
            recomputePeak();
        return count == 0 ? 0.0 : peak;
    }

    /** Time span covered by the current contents. */
    SimTime
    span() const
    {
        return count == 0
            ? 0
            : Traits::timeOf(back()) - Traits::timeOf(front());
    }

    /** Timestamp of the newest sample; -1 when empty. */
    SimTime
    lastTime() const
    {
        return count == 0 ? -1 : Traits::timeOf(back());
    }

    /**
     * Gap between the two newest pushes (0 until a second sample
     * arrives). A faulty feed that stops pushing shows up through
     * lastTime() age; one that resumes shows the hole here.
     */
    SimTime lastGap() const { return lastGapS; }

    /**
     * Largest inter-push gap observed over the series' lifetime
     * (maintained incrementally on push; trims do not rescan).
     */
    SimTime maxGap() const { return maxGapS; }

    /**
     * Serialize/restore via a caller-supplied per-sample codec
     * (@p fn(ar, sample) — field-wise, never memcpy: padded sample
     * structs would leak uninitialized bytes into digests). Samples
     * travel in logical (oldest-first) order; a restored ring is
     * rebuilt in canonical form — head 0, physically contiguous —
     * which push/trim handle identically to the original layout, and
     * the peak digest is recomputed on the next query.
     */
    template <typename Ar, typename Fn>
    void
    checkpointState(Ar &ar, Fn fn)
    {
        std::size_t n = count;
        ar.count(cap);
        ar.count(n);
        ar.value(lastGapS);
        ar.value(maxGapS);
        if (ar.writing()) {
            for (std::size_t i = 0; i < count; ++i)
                fn(ar, const_cast<T &>(at(i)));
            return;
        }
        if (cap == 0 || n > cap) {
            ar.fail();
            cap = std::max<std::size_t>(1, cap);
            n = 0;
        }
        data.clear();
        data.resize(n);
        head = 0;
        count = n;
        peak = 0.0;
        peakValid = false;
        for (std::size_t i = 0; i < n; ++i)
            fn(ar, data[i]);
    }

  private:
    std::vector<T> data;
    std::size_t cap = 1;
    std::size_t head = 0;
    std::size_t count = 0;
    SimTime lastGapS = 0;
    SimTime maxGapS = 0;

    /** Digest: peak is exact while valid; evicting the peak sample
     *  defers an O(n) rescan until the next query. */
    mutable double peak = 0.0;
    mutable bool peakValid = true;

    void
    digestAppend(const T &sample)
    {
        if (!peakValid)
            return;
        const double v = Traits::valueOf(sample);
        if (count == 1 || v > peak)
            peak = v;
    }

    void
    digestEvict(const T &sample)
    {
        if (peakValid && Traits::valueOf(sample) >= peak)
            peakValid = false;
    }

    void
    recomputePeak() const
    {
        peak = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
            const double v = Traits::valueOf(at(i));
            if (i == 0 || v > peak)
                peak = v;
        }
        peakValid = true;
    }
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_SERIES_HH
