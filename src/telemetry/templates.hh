/**
 * @file
 * Template-based power prediction (the SmartOClock approach the paper
 * adopts, Fig. 14): per hour-of-week quantile templates for row
 * power, per hour-of-day templates for customer/endpoint per-VM
 * power. Built weekly from telemetry; queried by the allocator and
 * router for peak estimation.
 */

#ifndef TAPAS_TELEMETRY_TEMPLATES_HH
#define TAPAS_TELEMETRY_TEMPLATES_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "telemetry/history.hh"

namespace tapas {

/** Quantile levels the templates materialize. */
struct TemplateQuantiles
{
    double p50 = 0.50;
    double p90 = 0.90;
    double p99 = 0.99;
};

/**
 * Per-entity, per-time-bucket quantile templates over a scalar
 * signal (power).
 */
class PowerTemplates
{
  public:
    /** Template selector. */
    enum class Level { P50, P90, P99 };

    /**
     * Build row templates at hour-of-week granularity and
     * customer/endpoint templates at hour-of-day granularity from
     * the stored history.
     */
    static PowerTemplates build(const TelemetryStore &store,
                                const TemplateQuantiles &quantiles);

    /** Predicted row power at time t using the given template. */
    double predictRow(RowId id, SimTime t, Level level) const;

    /** Predicted per-VM power for an IaaS customer. */
    double predictCustomerVm(CustomerId id, SimTime t,
                             Level level) const;

    /** Predicted per-VM power for a SaaS endpoint. */
    double predictEndpointVm(EndpointId id, SimTime t,
                             Level level) const;

    bool hasRow(RowId id) const;
    bool hasCustomer(CustomerId id) const;
    bool hasEndpoint(EndpointId id) const;

    /** Peak of a row's P99 template across all buckets. */
    double rowTemplatePeak(RowId id) const;

  private:
    /** [bucket][level] quantile values. */
    using Table = std::vector<std::array<double, 3>>;

    static Table buildTable(const SeriesView<KeyedSample> &series,
                            int buckets, SimTime bucket_span,
                            const TemplateQuantiles &quantiles);

    static double lookup(const Table &table, int bucket, Level level);

    std::unordered_map<std::uint32_t, Table> rowTables;
    std::unordered_map<std::uint32_t, Table> customerTables;
    std::unordered_map<std::uint32_t, Table> endpointTables;
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_TEMPLATES_HH
