/**
 * @file
 * Telemetry history: 10-minute-cadence samples per server, row power
 * series, and per-VM power by customer/endpoint — the raw material
 * for weekly template building and profile refits (paper Section 4.5).
 *
 * Every series is a fixed-capacity ring (telemetry/series.hh):
 * appends are O(1), trimBefore() is a binary search plus a head
 * advance instead of an erase-from-front scan, and span/peak digests
 * are maintained incrementally on append. Queries return
 * SeriesView — a contiguous-chunk view that iterates and indexes
 * like the vectors it replaced.
 */

#ifndef TAPAS_TELEMETRY_HISTORY_HH
#define TAPAS_TELEMETRY_HISTORY_HH

#include <vector>

#include "common/types.hh"
#include "telemetry/series.hh"

namespace tapas {

class Archive;

/** One aggregated server sample (the paper's 10-min sensor rows). */
struct ServerSample
{
    SimTime time = 0;
    float inletC = 0.0f;
    float hottestGpuC = 0.0f;
    float serverPowerW = 0.0f;
    float gpuLoad = 0.0f;
    float outsideC = 0.0f;
    float dcLoadFrac = 0.0f;
};

/** One (time, value) observation keyed by an entity. */
struct KeyedSample
{
    SimTime time = 0;
    float value = 0.0f;
};

/** Ring digest traits for the two sample kinds. */
struct ServerSampleTraits
{
    static SimTime timeOf(const ServerSample &s) { return s.time; }
    static double valueOf(const ServerSample &s)
    { return s.serverPowerW; }
};

struct KeyedSampleTraits
{
    static SimTime timeOf(const KeyedSample &s) { return s.time; }
    static double valueOf(const KeyedSample &s) { return s.value; }
};

using ServerSeriesRing = SampleRing<ServerSample, ServerSampleTraits>;
using KeyedSeriesRing = SampleRing<KeyedSample, KeyedSampleTraits>;

/** Bounded telemetry store with time-range queries. */
class TelemetryStore
{
  public:
    /**
     * Default per-series capacity, in samples: ten weeks at the
     * 10-minute sensor cadence — comfortably beyond the longest
     * history any harness in this repo feeds a standalone store.
     * Owners with a known retention window (the cluster simulator)
     * should size the store explicitly.
     */
    static constexpr std::size_t kDefaultSeriesCapacity =
        10 * 7 * 24 * 6;

    explicit TelemetryStore(
        std::size_t series_capacity = kDefaultSeriesCapacity)
        : seriesCapacity(series_capacity)
    {}

    /** Per-series sample bound this store was sized with. */
    std::size_t capacity() const { return seriesCapacity; }

    void recordServer(ServerId id, const ServerSample &sample);
    void recordRowPower(RowId id, SimTime t, double watts);
    /** Per-VM average power attributed to an IaaS customer. */
    void recordCustomerVmPower(CustomerId id, SimTime t,
                               double watts);
    /** Per-VM average power attributed to a SaaS endpoint. */
    void recordEndpointVmPower(EndpointId id, SimTime t,
                               double watts);
    /** Observed utilization of one VM (for load prediction). */
    void recordVmLoad(VmId id, CustomerId customer,
                      EndpointId endpoint, SimTime t, double load);

    SeriesView<ServerSample> serverSeries(ServerId id) const;
    SeriesView<KeyedSample> rowPowerSeries(RowId id) const;
    SeriesView<KeyedSample>
    customerVmPowerSeries(CustomerId id) const;
    SeriesView<KeyedSample>
    endpointVmPowerSeries(EndpointId id) const;

    /** Peak row power seen in the retained window (O(1) digest). */
    double rowPowerPeak(RowId id) const;
    /** Retained row power series time span (O(1) digest). */
    SimTime rowPowerSpan(RowId id) const;

    /** All row ids with any samples. */
    std::vector<RowId> rowsWithData() const;
    std::vector<CustomerId> customersWithData() const;
    std::vector<EndpointId> endpointsWithData() const;

    /**
     * Observation span for a customer's VM loads; used for the
     * "assume peak when history is under a week" rule.
     */
    SimTime customerLoadSpan(CustomerId id) const;
    SimTime endpointLoadSpan(EndpointId id) const;

    /** Peak (p99-ish: max) observed per-VM load for a customer. */
    double customerPeakLoad(CustomerId id) const;
    double endpointPeakLoad(EndpointId id) const;

    /**
     * Peak load if at least @p min_span of history exists, else the
     * conservative 1.0 — one hash lookup instead of span + peak.
     */
    double customerPredictedPeak(CustomerId id,
                                 SimTime min_span) const;
    double endpointPredictedPeak(EndpointId id,
                                 SimTime min_span) const;

    // --- Freshness / gap queries (sensor-fault handling). ---

    /**
     * Age of the newest server sample relative to @p now; -1 when
     * the server has never recorded a sample. A dropped-sample
     * sensor fault shows up as a growing age.
     */
    SimTime serverLastSampleAge(ServerId id, SimTime now) const;

    /** Gap between the server's two newest samples (0 if < 2). */
    SimTime serverSampleGap(ServerId id) const;

    /** Largest inter-sample gap seen for the server's series. */
    SimTime serverMaxSampleGap(ServerId id) const;

    /**
     * "Is this series fresh?": true when the newest sample is at
     * most @p max_age old. Servers with no samples are stale.
     */
    bool serverFresh(ServerId id, SimTime now, SimTime max_age)
        const;

    /** Drop samples older than the cutoff (weekly refit window). */
    void trimBefore(SimTime cutoff);

    /** Serialize/restore every ring and digest (checkpointing). */
    void checkpointState(Archive &ar);

  private:
    struct LoadDigest
    {
        SimTime first = -1;
        SimTime last = -1;
        double peak = 0.0;
    };

    std::size_t seriesCapacity;

    // Dense slot tables indexed by the (dense, small) entity ids:
    // the recorder runs every sensor tick for every server and VM,
    // so each record is one bounds check plus a direct index instead
    // of a hash probe. Slots materialize lazily on first record;
    // untouched slots read as empty series / absent digests.
    std::vector<ServerSeriesRing> serverData;
    std::vector<KeyedSeriesRing> rowPower;
    std::vector<KeyedSeriesRing> customerVmPower;
    std::vector<KeyedSeriesRing> endpointVmPower;
    std::vector<LoadDigest> customerLoads;
    std::vector<LoadDigest> endpointLoads;

    KeyedSeriesRing &keyedRing(std::vector<KeyedSeriesRing> &table,
                               std::uint32_t key);
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_HISTORY_HH
