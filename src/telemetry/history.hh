/**
 * @file
 * Telemetry history: 10-minute-cadence samples per server, row power
 * series, and per-VM power by customer/endpoint — the raw material
 * for weekly template building and profile refits (paper Section 4.5).
 */

#ifndef TAPAS_TELEMETRY_HISTORY_HH
#define TAPAS_TELEMETRY_HISTORY_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace tapas {

/** One aggregated server sample (the paper's 10-min sensor rows). */
struct ServerSample
{
    SimTime time = 0;
    float inletC = 0.0f;
    float hottestGpuC = 0.0f;
    float serverPowerW = 0.0f;
    float gpuLoad = 0.0f;
    float outsideC = 0.0f;
    float dcLoadFrac = 0.0f;
};

/** One (time, value) observation keyed by an entity. */
struct KeyedSample
{
    SimTime time = 0;
    float value = 0.0f;
};

/** Append-only telemetry store with time-range queries. */
class TelemetryStore
{
  public:
    void recordServer(ServerId id, const ServerSample &sample);
    void recordRowPower(RowId id, SimTime t, double watts);
    /** Per-VM average power attributed to an IaaS customer. */
    void recordCustomerVmPower(CustomerId id, SimTime t,
                               double watts);
    /** Per-VM average power attributed to a SaaS endpoint. */
    void recordEndpointVmPower(EndpointId id, SimTime t,
                               double watts);
    /** Observed utilization of one VM (for load prediction). */
    void recordVmLoad(VmId id, CustomerId customer,
                      EndpointId endpoint, SimTime t, double load);

    const std::vector<ServerSample> &serverSeries(ServerId id) const;
    const std::vector<KeyedSample> &rowPowerSeries(RowId id) const;
    const std::vector<KeyedSample> &
    customerVmPowerSeries(CustomerId id) const;
    const std::vector<KeyedSample> &
    endpointVmPowerSeries(EndpointId id) const;

    /** All row ids with any samples. */
    std::vector<RowId> rowsWithData() const;
    std::vector<CustomerId> customersWithData() const;
    std::vector<EndpointId> endpointsWithData() const;

    /**
     * Observation span for a customer's VM loads; used for the
     * "assume peak when history is under a week" rule.
     */
    SimTime customerLoadSpan(CustomerId id) const;
    SimTime endpointLoadSpan(EndpointId id) const;

    /** Peak (p99-ish: max) observed per-VM load for a customer. */
    double customerPeakLoad(CustomerId id) const;
    double endpointPeakLoad(EndpointId id) const;

    /**
     * Peak load if at least @p min_span of history exists, else the
     * conservative 1.0 — one hash lookup instead of span + peak.
     */
    double customerPredictedPeak(CustomerId id,
                                 SimTime min_span) const;
    double endpointPredictedPeak(EndpointId id,
                                 SimTime min_span) const;

    /** Drop samples older than the cutoff (weekly refit window). */
    void trimBefore(SimTime cutoff);

  private:
    struct LoadDigest
    {
        SimTime first = -1;
        SimTime last = -1;
        double peak = 0.0;
    };

    std::unordered_map<std::uint32_t, std::vector<ServerSample>>
        serverData;
    std::unordered_map<std::uint32_t, std::vector<KeyedSample>>
        rowPower;
    std::unordered_map<std::uint32_t, std::vector<KeyedSample>>
        customerVmPower;
    std::unordered_map<std::uint32_t, std::vector<KeyedSample>>
        endpointVmPower;
    std::unordered_map<std::uint32_t, LoadDigest> customerLoads;
    std::unordered_map<std::uint32_t, LoadDigest> endpointLoads;

    static const std::vector<ServerSample> emptyServerSeries;
    static const std::vector<KeyedSample> emptyKeyedSeries;
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_HISTORY_HH
