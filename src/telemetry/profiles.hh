/**
 * @file
 * ProfileBank: the fitted models TAPAS decisions read (Section 4.5).
 *
 * During the offline profiling phase (datacenter bring-up benchmarks)
 * the bank fits, per server: the inlet-temperature spline (Eq. 1),
 * per-GPU temperature regressions (Eq. 2), the airflow line (Eq. 3),
 * and the power polynomial (Eq. 4), all from noisy observations of
 * the ground-truth models — never from the models' internal
 * coefficients. Weekly refits then rebuild power templates from live
 * telemetry. TAPAS therefore works with learned approximations, and
 * its mispredictions are real, as in production.
 *
 * Every server observes the same bench sweep grids, so the
 * normal-equation designs are built once (SharedDesign) and each
 * server's fit reduces to an X^T y accumulation plus a tiny solve —
 * parallelized across the shared thread pool. The fitted
 * coefficients land in flat per-model arrays (not per-server
 * regression objects): the risk and configurator sweeps evaluate
 * these models millions of times per simulated step, and contiguous
 * coefficient storage keeps those walks cache-resident.
 */

#ifndef TAPAS_TELEMETRY_PROFILES_HH
#define TAPAS_TELEMETRY_PROFILES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/regression.hh"

namespace tapas {

class Archive;
class TelemetryStore;

/** Placement temperature class of a server (Section 4.5, rule 2). */
enum class ThermalClass { Cold, Medium, Warm };

/** Fitted profile store. */
class ProfileBank
{
  public:
    explicit ProfileBank(const DatacenterLayout &layout);

    /**
     * Run the offline profiling benchmarks: sweep outside/load/power
     * conditions, observe the ground truth with sensor noise, and
     * fit all per-server and per-GPU models. Noise streams are
     * counter-based per server (seeded by server id), so the
     * per-server observe+fit units fan out across the shared thread
     * pool with results identical for any profiling order and
     * thread count.
     */
    void offlineProfile(const ThermalModel &thermal,
                        const PowerModel &power, std::uint64_t seed);

    /**
     * Extend fitted models to servers added after the initial
     * profiling pass (oversubscription racks).
     */
    void profileNewServers(const ThermalModel &thermal,
                           const PowerModel &power,
                           std::uint64_t seed);

    bool profiled() const { return profiledServers > 0; }
    std::size_t profiledServerCount() const { return profiledServers; }

    /**
     * Rebuild per-server power polynomials from live telemetry (the
     * weekly refit). Every candidate fit runs through a sanity gate:
     * the refit curve must stay inside a band around the current
     * model over the whole load range, and its residuals against
     * the samples it was fitted from must stay at sensor-noise
     * scale. A diverging fit (corrupted telemetry, e.g. a stuck or
     * drifting power sensor) is rejected — the server keeps its
     * last accepted model and is marked fit-quarantined until a
     * later refit passes the gate.
     */
    void refitPowerFromTelemetry(const TelemetryStore &store);

    /** Whether the server's last power refit was rejected. */
    bool
    fitQuarantined(ServerId id) const
    {
        return id.index < fitQuarantinedFlag.size() &&
            fitQuarantinedFlag[id.index] != 0;
    }

    /** Servers currently holding a rejected refit (O(1)). */
    std::size_t fitQuarantineCount() const
    { return fitQuarantinedServers; }

    /** Accepted / rejected refit counters (tests and reports). */
    std::uint64_t refitsAccepted() const
    { return refitsAcceptedCount; }
    std::uint64_t refitsRejected() const
    { return refitsRejectedCount; }

    // ------------------------------------------------------------
    // Scalar predictions.
    //
    // scalar-predict-deprecated: the per-server predict* calls below
    // survive for tests, offline benches, and debug cross-checks
    // only. Decision hot loops (risk refresh, the TAPAS allocator,
    // the configurator) must go through the batched passes further
    // down, which stream the flat coefficient arrays once per fleet
    // (or once per candidate block) instead of re-entering per
    // server. The batched passes evaluate the exact same expressions
    // element-wise, so results are bit-identical to the scalar calls.
    // ------------------------------------------------------------

    /** Predicted inlet temperature (fitted Eq. 1). */
    double predictInletC(ServerId id, double outside_c,
                         double dc_load_frac) const;

    /** Predicted GPU temperature (fitted Eq. 2). */
    double predictGpuTempC(ServerId id, int gpu, double inlet_c,
                           double gpu_power_w) const;

    /** Max predicted GPU temp across a server's GPUs. */
    double predictHottestGpuC(ServerId id, double inlet_c,
                              double per_gpu_power_w) const;

    /**
     * Max predicted GPU temp with measured per-GPU powers
     * (gpusPerServer-wide slice); risk-refresh hot path.
     */
    double predictHottestGpuC(ServerId id, double inlet_c,
                              const double *gpu_power_w) const;

    /** Predicted server power at a load fraction (fitted Eq. 4). */
    double predictServerPowerW(ServerId id, double load_frac) const;

    /** Predicted server airflow at a load fraction (fitted Eq. 3). */
    double predictServerAirflowCfm(ServerId id,
                                   double load_frac) const;

    // ------------------------------------------------------------
    // Batched prediction passes (the hot-loop entry points).
    //
    // Fleet-wide variants cover servers [0, count) and write one
    // result per server into the caller-owned output span; gather
    // variants evaluate an arbitrary server subset; the per-server
    // "candidates" variants stream one server's coefficient block
    // over many candidate operating points (configurator scoring).
    // ------------------------------------------------------------

    /** Predicted inlet for servers [0, count) at shared ambient
     *  conditions (the hinge terms are hoisted out of the fleet
     *  walk). */
    void predictInletBatch(double outside_c, double dc_load_frac,
                           std::size_t count, double *out) const;

    /** Predicted server power for servers [0, count) at per-server
     *  loads. */
    void predictPowerBatch(const double *load_frac, std::size_t count,
                           double *out) const;

    /** Predicted server power for servers [0, count) at one shared
     *  load (placement what-ifs). */
    void predictPowerUniformBatch(double load_frac, std::size_t count,
                                  double *out) const;

    /** Predicted airflow for servers [0, count) at per-server
     *  loads. */
    void predictAirflowBatch(const double *load_frac,
                             std::size_t count, double *out) const;

    /** Predicted airflow for servers [0, count) at one shared
     *  load. */
    void predictAirflowUniformBatch(double load_frac,
                                    std::size_t count,
                                    double *out) const;

    /** Predicted server power for an arbitrary server subset. */
    void predictPowerGather(const ServerId *ids,
                            const double *load_frac, std::size_t n,
                            double *out) const;

    /** Predicted airflow for an arbitrary server subset. */
    void predictAirflowGather(const ServerId *ids,
                              const double *load_frac, std::size_t n,
                              double *out) const;

    /**
     * Hottest predicted GPU for servers [0, count) from per-server
     * inlets and measured per-GPU powers (flattened
     * [server * gpus + gpu]); risk-refresh hot path.
     */
    void predictHottestGpuBatch(const double *inlet_c,
                                const double *gpu_power_w,
                                std::size_t count, double *out) const;

    /**
     * Hottest predicted GPU for servers [0, count) from per-server
     * inlets and one per-GPU power per server (placement
     * projections).
     */
    void predictHottestGpuUniformBatch(const double *inlet_c,
                                       const double *per_gpu_power_w,
                                       std::size_t count,
                                       double *out) const;

    /**
     * Hottest predicted GPU of one server over n candidate per-GPU
     * powers at a fixed inlet (configurator candidate scoring: the
     * server's coefficient block streams once over the block).
     */
    void predictHottestGpuCandidates(ServerId id, double inlet_c,
                                     const double *per_gpu_power_w,
                                     std::size_t n, double *out) const;

    /** Airflow of one server over n candidate heat loads. */
    void predictAirflowCandidates(ServerId id,
                                  const double *load_frac,
                                  std::size_t n, double *out) const;

    /**
     * Thermal placement class: servers are split into equal terciles
     * by fitted inlet bias (predicted inlet at reference conditions).
     */
    ThermalClass thermalClass(ServerId id) const;

    /** Fitted inlet bias of a server versus the fleet median. */
    double inletBiasC(ServerId id) const;

    /**
     * Serialize/restore all fitted coefficients and refit-gate state
     * (checkpointing). The shared bench-sweep designs are rebuilt by
     * the constructor and are identical for a given layout, so they
     * do not travel.
     */
    void checkpointState(Archive &ar);

  private:
    /** Coefficient widths of the flat model arrays. */
    static constexpr std::size_t kInletWidth = 5;
    static constexpr std::size_t kGpuTempWidth = 3;
    static constexpr std::size_t kPowerWidth = 4;
    static constexpr std::size_t kAirflowWidth = 2;

    // ckpt-skip(constant): layout wiring bound at construction
    const DatacenterLayout &layout;

    /** Shared bench-sweep designs (identical grid for every server),
     *  regenerated from the fixed grid spec whenever a fit runs. */
    SharedDesign inletDesign;    // ckpt-skip(derived): fit-time grid
    SharedDesign gpuTempDesign;  // ckpt-skip(derived): fit-time grid
    SharedDesign powerDesign;    // ckpt-skip(derived): fit-time grid
    SharedDesign airflowDesign;  // ckpt-skip(derived): fit-time grid

    /** Flat fitted coefficients, indexed by server (x gpu). */
    std::vector<double> inletCoeffs;
    std::vector<double> gpuTempCoeffs;
    std::vector<double> powerCoeffs;
    std::vector<double> airflowCoeffs;

    std::vector<double> inletBias;
    std::vector<ThermalClass> classes;
    std::size_t profiledServers = 0;
    int gpusPerServer = 8;

    /** Refit sanity-gate state (refitPowerFromTelemetry). */
    /** Offline-fit anchor the refit envelope is measured against. */
    std::vector<double> offlinePowerCoeffs;
    std::vector<char> fitQuarantinedFlag;
    std::size_t fitQuarantinedServers = 0;
    std::uint64_t refitsAcceptedCount = 0;
    std::uint64_t refitsRejectedCount = 0;

    void profileRange(std::size_t begin, std::size_t end,
                      const ThermalModel &thermal,
                      const PowerModel &power,
                      std::uint64_t noise_base);
    void recomputeClasses();

    double evalInlet(std::size_t server, double outside_c,
                     double dc_load_frac) const;
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_PROFILES_HH
