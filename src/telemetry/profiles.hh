/**
 * @file
 * ProfileBank: the fitted models TAPAS decisions read (Section 4.5).
 *
 * During the offline profiling phase (datacenter bring-up benchmarks)
 * the bank fits, per server: the inlet-temperature spline (Eq. 1),
 * per-GPU temperature regressions (Eq. 2), the airflow line (Eq. 3),
 * and the power polynomial (Eq. 4), all from noisy observations of
 * the ground-truth models — never from the models' internal
 * coefficients. Weekly refits then rebuild power templates from live
 * telemetry. TAPAS therefore works with learned approximations, and
 * its mispredictions are real, as in production.
 */

#ifndef TAPAS_TELEMETRY_PROFILES_HH
#define TAPAS_TELEMETRY_PROFILES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/regression.hh"

namespace tapas {

/** Placement temperature class of a server (Section 4.5, rule 2). */
enum class ThermalClass { Cold, Medium, Warm };

/** Fitted profile store. */
class ProfileBank
{
  public:
    explicit ProfileBank(const DatacenterLayout &layout);

    /**
     * Run the offline profiling benchmarks: sweep outside/load/power
     * conditions, observe the ground truth with sensor noise, and
     * fit all per-server and per-GPU models.
     */
    void offlineProfile(const ThermalModel &thermal,
                        const PowerModel &power, std::uint64_t seed);

    /**
     * Extend fitted models to servers added after the initial
     * profiling pass (oversubscription racks).
     */
    void profileNewServers(const ThermalModel &thermal,
                           const PowerModel &power,
                           std::uint64_t seed);

    bool profiled() const { return profiledServers > 0; }
    std::size_t profiledServerCount() const { return profiledServers; }

    /** Predicted inlet temperature (fitted Eq. 1). */
    double predictInletC(ServerId id, double outside_c,
                         double dc_load_frac) const;

    /** Predicted GPU temperature (fitted Eq. 2). */
    double predictGpuTempC(ServerId id, int gpu, double inlet_c,
                           double gpu_power_w) const;

    /** Max predicted GPU temp across a server's GPUs. */
    double predictHottestGpuC(ServerId id, double inlet_c,
                              double per_gpu_power_w) const;

    /**
     * Max predicted GPU temp with measured per-GPU powers
     * (gpusPerServer-wide slice); risk-refresh hot path.
     */
    double predictHottestGpuC(ServerId id, double inlet_c,
                              const double *gpu_power_w) const;

    /** Predicted server power at a load fraction (fitted Eq. 4). */
    double predictServerPowerW(ServerId id, double load_frac) const;

    /** Predicted server airflow at a load fraction (fitted Eq. 3). */
    double predictServerAirflowCfm(ServerId id,
                                   double load_frac) const;

    /**
     * Thermal placement class: servers are split into equal terciles
     * by fitted inlet bias (predicted inlet at reference conditions).
     */
    ThermalClass thermalClass(ServerId id) const;

    /** Fitted inlet bias of a server versus the fleet median. */
    double inletBiasC(ServerId id) const;

  private:
    const DatacenterLayout &layout;

    std::vector<PiecewiseLinearModel> inletModels;
    /** [server * gpusPerServer + gpu] */
    std::vector<LinearRegression> gpuTempModels;
    std::vector<PolynomialRegression> powerModels;
    std::vector<LinearRegression> airflowModels;
    std::vector<double> inletBias;
    std::vector<ThermalClass> classes;
    std::size_t profiledServers = 0;
    int gpusPerServer = 8;

    void profileServer(ServerId id, const ThermalModel &thermal,
                       const PowerModel &power, Rng &rng);
    void recomputeClasses();
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_PROFILES_HH
