/**
 * @file
 * Regression toolkit used to fit TAPAS's thermal/power profiles from
 * telemetry (paper Section 5.1). Implements the model families the
 * paper compared: linear, polynomial, piecewise polynomial (the
 * winner, MAE < 1C), and a regression-tree random forest (reported to
 * overfit and fail to extrapolate below the training range — a
 * property our tests reproduce).
 */

#ifndef TAPAS_TELEMETRY_REGRESSION_HH
#define TAPAS_TELEMETRY_REGRESSION_HH

#include <cstdint>
#include <vector>

namespace tapas {

/** Mean absolute error. */
double meanAbsoluteError(const std::vector<double> &truth,
                         const std::vector<double> &pred);

/** Root mean squared error. */
double rootMeanSquaredError(const std::vector<double> &truth,
                            const std::vector<double> &pred);

/** Coefficient of determination. */
double rSquared(const std::vector<double> &truth,
                const std::vector<double> &pred);

/**
 * Precomputed OLS design for fitting many target vectors against one
 * shared measurement grid (batched refits: every server in a fleet
 * observes the same bench sweep, only the targets differ). Stores
 * the intercept-augmented basis rows and the accumulated normal
 * matrix X^T X once; solve(y) then costs a single X^T y accumulation
 * plus one tiny dense solve per series. The accumulation order
 * matches LinearRegression::fit exactly, so the weights are
 * bit-identical to an unbatched fit on the same rows.
 */
class SharedDesign
{
  public:
    SharedDesign() = default;

    /** @param rows raw feature rows (no intercept column). */
    explicit SharedDesign(
        const std::vector<std::vector<double>> &rows);

    bool ready() const { return !basisRows.empty(); }
    std::size_t sampleCount() const { return samples; }
    /** Weight count, including the intercept. */
    std::size_t width() const { return wide; }

    /**
     * Solve for the weights of one target vector; @p weights is
     * resized to width(). Bit-identical to LinearRegression::fit on
     * (rows, y).
     */
    void solve(const std::vector<double> &y,
               std::vector<double> &weights) const;

    /** Solve writing the weights into a caller-owned slice. */
    void solveInto(const double *y, double *weights) const;

  private:
    /** Row-major intercept-augmented rows: samples x width. */
    std::vector<double> basisRows;
    /** Accumulated X^T X (row-major width x width). */
    std::vector<double> xtx;
    std::size_t samples = 0;
    std::size_t wide = 0;
};

/**
 * Ordinary least squares over arbitrary feature rows, solved by
 * normal equations with Gaussian elimination and partial pivoting.
 * An intercept column is added internally.
 */
class LinearRegression
{
  public:
    /** Fit on rows X (n x d) against targets y (n). */
    void fit(const std::vector<std::vector<double>> &X,
             const std::vector<double> &y);

    bool fitted() const { return !weights.empty(); }

    double predict(const std::vector<double> &x) const;

    /**
     * Allocation-free variant for hot paths (per-step risk and
     * feasibility sweeps evaluate fitted models millions of times).
     */
    double predict(const double *x, std::size_t n) const;

    /** [intercept, w_0, ..., w_{d-1}]. */
    const std::vector<double> &coefficients() const { return weights; }

  private:
    std::vector<double> weights;
};

/** Single-feature polynomial regression of configurable degree. */
class PolynomialRegression
{
  public:
    explicit PolynomialRegression(int degree) : deg(degree) {}

    void fit(const std::vector<double> &xs,
             const std::vector<double> &ys);

    bool fitted() const { return ols.fitted(); }
    int degree() const { return deg; }

    double predict(double x) const;

  private:
    int deg;
    LinearRegression ols;

    std::vector<double> basis(double x) const;
};

/**
 * Piecewise-linear spline on the first feature (hinge basis at fixed
 * knots) plus plain linear terms for any extra features. This is the
 * "piecewise polynomial" family the paper selected: it captures the
 * cooling plant's knee behavior and extrapolates sanely.
 */
class PiecewiseLinearModel
{
  public:
    /**
     * @param knots hinge locations on feature 0
     * @param extra_features count of additional linear features
     */
    PiecewiseLinearModel(std::vector<double> knots,
                         int extra_features);

    void fit(const std::vector<std::vector<double>> &X,
             const std::vector<double> &y);

    bool fitted() const { return ols.fitted(); }

    double predict(const std::vector<double> &x) const;

    /** Allocation-free variant; evaluates the hinge basis inline. */
    double predict(const double *x, std::size_t n) const;

  private:
    std::vector<double> knots;
    int extraFeatures;
    LinearRegression ols;

    std::vector<double> basis(const std::vector<double> &x) const;
};

/** CART-style regression tree (mean leaf values, variance splits). */
class RegressionTree
{
  public:
    RegressionTree(int max_depth, int min_samples);

    void fit(const std::vector<std::vector<double>> &X,
             const std::vector<double> &y);

    double predict(const std::vector<double> &x) const;

    bool fitted() const { return !nodes.empty(); }

  private:
    struct Node
    {
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;

        bool leaf() const { return feature < 0; }
    };

    int maxDepth;
    int minSamples;
    std::vector<Node> nodes;

    int build(const std::vector<std::vector<double>> &X,
              const std::vector<double> &y,
              std::vector<std::size_t> &indices, int depth);
};

/** Bagged forest of regression trees. */
class RandomForest
{
  public:
    RandomForest(int trees, int max_depth, int min_samples,
                 std::uint64_t seed);

    void fit(const std::vector<std::vector<double>> &X,
             const std::vector<double> &y);

    double predict(const std::vector<double> &x) const;

    bool fitted() const { return !forest.empty(); }

  private:
    int treeCount;
    int maxDepth;
    int minSamples;
    std::uint64_t seed;
    std::vector<RegressionTree> forest;
};

} // namespace tapas

#endif // TAPAS_TELEMETRY_REGRESSION_HH
