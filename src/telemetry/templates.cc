#include "telemetry/templates.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tapas {

namespace {
constexpr int kHoursPerWeek = 168;
constexpr int kHoursPerDay = 24;

int
hourOfWeek(SimTime t)
{
    return static_cast<int>((t / kHour) % kHoursPerWeek);
}

int
hourOfDay(SimTime t)
{
    return static_cast<int>((t / kHour) % kHoursPerDay);
}
} // namespace

PowerTemplates::Table
PowerTemplates::buildTable(const SeriesView<KeyedSample> &series,
                           int buckets, SimTime bucket_span,
                           const TemplateQuantiles &quantiles)
{
    std::vector<QuantileSample> samples(
        static_cast<std::size_t>(buckets));
    for (const KeyedSample &s : series) {
        const int bucket =
            static_cast<int>((s.time / bucket_span) % buckets);
        samples[static_cast<std::size_t>(bucket)].add(s.value);
    }
    Table table(static_cast<std::size_t>(buckets),
                {0.0, 0.0, 0.0});
    // Buckets with no data borrow the global distribution.
    QuantileSample global;
    for (const KeyedSample &s : series)
        global.add(s.value);
    for (int b = 0; b < buckets; ++b) {
        QuantileSample &q = samples[static_cast<std::size_t>(b)];
        QuantileSample &use = q.count() >= 3 ? q : global;
        if (use.count() == 0)
            continue;
        table[static_cast<std::size_t>(b)] = {
            use.quantile(quantiles.p50),
            use.quantile(quantiles.p90),
            use.quantile(quantiles.p99)};
    }
    return table;
}

PowerTemplates
PowerTemplates::build(const TelemetryStore &store,
                      const TemplateQuantiles &quantiles)
{
    PowerTemplates out;
    for (RowId id : store.rowsWithData()) {
        out.rowTables[id.index] = buildTable(
            store.rowPowerSeries(id), kHoursPerWeek, kHour,
            quantiles);
    }
    for (CustomerId id : store.customersWithData()) {
        out.customerTables[id.index] = buildTable(
            store.customerVmPowerSeries(id), kHoursPerDay, kHour,
            quantiles);
    }
    for (EndpointId id : store.endpointsWithData()) {
        out.endpointTables[id.index] = buildTable(
            store.endpointVmPowerSeries(id), kHoursPerDay, kHour,
            quantiles);
    }
    return out;
}

double
PowerTemplates::lookup(const Table &table, int bucket, Level level)
{
    const auto &entry = table[static_cast<std::size_t>(bucket)];
    switch (level) {
      case Level::P50:
        return entry[0];
      case Level::P90:
        return entry[1];
      case Level::P99:
        return entry[2];
    }
    panic("unknown template level");
}

double
PowerTemplates::predictRow(RowId id, SimTime t, Level level) const
{
    const auto it = rowTables.find(id.index);
    tapas_assert(it != rowTables.end(),
                 "no row template for row %u", id.index);
    return lookup(it->second, hourOfWeek(t), level);
}

double
PowerTemplates::predictCustomerVm(CustomerId id, SimTime t,
                                  Level level) const
{
    const auto it = customerTables.find(id.index);
    tapas_assert(it != customerTables.end(),
                 "no customer template for customer %u", id.index);
    return lookup(it->second, hourOfDay(t), level);
}

double
PowerTemplates::predictEndpointVm(EndpointId id, SimTime t,
                                  Level level) const
{
    const auto it = endpointTables.find(id.index);
    tapas_assert(it != endpointTables.end(),
                 "no endpoint template for endpoint %u", id.index);
    return lookup(it->second, hourOfDay(t), level);
}

bool
PowerTemplates::hasRow(RowId id) const
{
    return rowTables.count(id.index) > 0;
}

bool
PowerTemplates::hasCustomer(CustomerId id) const
{
    return customerTables.count(id.index) > 0;
}

bool
PowerTemplates::hasEndpoint(EndpointId id) const
{
    return endpointTables.count(id.index) > 0;
}

double
PowerTemplates::rowTemplatePeak(RowId id) const
{
    const auto it = rowTables.find(id.index);
    tapas_assert(it != rowTables.end(),
                 "no row template for row %u", id.index);
    double peak = 0.0;
    for (const auto &entry : it->second)
        peak = std::max(peak, entry[2]);
    return peak;
}

} // namespace tapas
