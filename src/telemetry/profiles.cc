#include "telemetry/profiles.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/serialize.hh"
#include "common/threadpool.hh"
#include "telemetry/history.hh"

namespace tapas {

namespace {
/** Bench sweep grids for the offline profiling phase. */
const double kOutsideGrid[] = {5.0, 12.0, 16.0, 20.0, 24.0, 28.0,
                               32.0, 36.0};
const double kDcLoadGrid[] = {0.2, 0.5, 0.8, 1.0};
const double kGpuPowerGrid[] = {60.0, 150.0, 250.0, 350.0, 400.0};
const double kInletGrid[] = {18.0, 22.0, 26.0, 30.0};
const double kLoadGrid[] = {0.0, 0.25, 0.5, 0.75, 1.0};
/** Repetitions per grid point (sensor noise averaging). */
constexpr int kReps = 3;
/** Inlet spline hinge locations (piecewise-linear knots). */
constexpr double kInletKnots[] = {15.0, 25.0};
/** Reference conditions for the cold/medium/warm classification. */
constexpr double kRefOutsideC = 24.0;
constexpr double kRefDcLoad = 0.7;
/** Below this fleet size the parallel fit fan-out is overhead. */
constexpr std::size_t kParallelFitThreshold = 64;

// Refit sanity gate (refitPowerFromTelemetry). The envelope is
// anchored to the offline bench fit, so a slowly drifting sensor
// cannot walk the model away one accepted refit at a time.
/** Minimum telemetry samples before a refit is attempted. */
constexpr std::size_t kRefitMinSamples = 12;
/** Minimum observed load spread to identify the cubic. */
constexpr double kRefitMinLoadSpread = 0.08;
/** Allowed refit deviation from the offline curve, relative. */
constexpr double kRefitEnvelopeFrac = 0.25;
/** Absolute envelope floor, watts. */
constexpr double kRefitEnvelopeFloorW = 250.0;
/** Max refit residual RMS, watts (sensor-noise scale). */
constexpr double kRefitMaxResidualW = 150.0;

/** In-place 4x4 Gaussian elimination with partial pivoting. */
bool
solveNormal4(double a[4][4], double b[4], double *out)
{
    int perm[4] = {0, 1, 2, 3};
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 4; ++r) {
            if (std::abs(a[perm[r]][col]) >
                std::abs(a[perm[pivot]][col])) {
                pivot = r;
            }
        }
        std::swap(perm[col], perm[pivot]);
        const double diag = a[perm[col]][col];
        if (std::abs(diag) < 1e-9)
            return false;
        for (int r = col + 1; r < 4; ++r) {
            const double f = a[perm[r]][col] / diag;
            for (int c = col; c < 4; ++c)
                a[perm[r]][c] -= f * a[perm[col]][c];
            b[perm[r]] -= f * b[perm[col]];
        }
    }
    for (int col = 3; col >= 0; --col) {
        double acc = b[perm[col]];
        for (int c = col + 1; c < 4; ++c)
            acc -= a[perm[col]][c] * out[c];
        out[col] = acc / a[perm[col]][col];
    }
    return true;
}

/** Inlet spline basis rows: {x0, hinge(15), hinge(25), x1}. */
SharedDesign
makeInletDesign()
{
    std::vector<std::vector<double>> rows;
    for (double outside : kOutsideGrid) {
        for (double dc_load : kDcLoadGrid) {
            for (int rep = 0; rep < kReps; ++rep) {
                (void)rep;
                rows.push_back({outside,
                                std::max(0.0,
                                         outside - kInletKnots[0]),
                                std::max(0.0,
                                         outside - kInletKnots[1]),
                                dc_load});
            }
        }
    }
    return SharedDesign(rows);
}

/** Per-GPU temperature line rows: {inlet, gpu_power}. */
SharedDesign
makeGpuTempDesign()
{
    std::vector<std::vector<double>> rows;
    for (double inlet : kInletGrid) {
        for (double gpu_power : kGpuPowerGrid)
            rows.push_back({inlet, gpu_power});
    }
    return SharedDesign(rows);
}

/** Cubic power-polynomial rows: {x, x^2, x^3}. */
SharedDesign
makePowerDesign()
{
    std::vector<std::vector<double>> rows;
    for (double load : kLoadGrid) {
        for (int rep = 0; rep < kReps; ++rep) {
            (void)rep;
            double term = load;
            std::vector<double> row;
            for (int p = 1; p <= 3; ++p) {
                row.push_back(term);
                term *= load;
            }
            rows.push_back(std::move(row));
        }
    }
    return SharedDesign(rows);
}

/** Airflow line rows: {load}. */
SharedDesign
makeAirflowDesign()
{
    std::vector<std::vector<double>> rows;
    for (double load : kLoadGrid)
        rows.push_back({load});
    return SharedDesign(rows);
}

} // namespace

ProfileBank::ProfileBank(const DatacenterLayout &layout_)
    : layout(layout_), inletDesign(makeInletDesign()),
      gpuTempDesign(makeGpuTempDesign()),
      powerDesign(makePowerDesign()),
      airflowDesign(makeAirflowDesign()),
      gpusPerServer(layout_.specs().front().gpusPerServer)
{
}

void
ProfileBank::offlineProfile(const ThermalModel &thermal,
                            const PowerModel &power,
                            std::uint64_t seed)
{
    inletCoeffs.clear();
    gpuTempCoeffs.clear();
    powerCoeffs.clear();
    airflowCoeffs.clear();
    inletBias.clear();
    profiledServers = 0;
    profileRange(0, layout.serverCount(), thermal, power,
                 mixSeed(seed, 0x70726f66ULL));
    recomputeClasses();
}

void
ProfileBank::profileNewServers(const ThermalModel &thermal,
                               const PowerModel &power,
                               std::uint64_t seed)
{
    profileRange(profiledServers, layout.serverCount(), thermal,
                 power, mixSeed(seed, 0x6e657773ULL));
    recomputeClasses();
}

void
ProfileBank::profileRange(std::size_t begin, std::size_t end,
                          const ThermalModel &thermal,
                          const PowerModel &power,
                          std::uint64_t noise_base)
{
    tapas_assert(begin == profiledServers,
                 "servers must be profiled in id order");
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t gpus =
        static_cast<std::size_t>(gpusPerServer);

    const std::size_t inlet_n = inletDesign.sampleCount();
    const std::size_t gpu_n = gpuTempDesign.sampleCount();
    const std::size_t power_n = powerDesign.sampleCount();
    const std::size_t air_n = airflowDesign.sampleCount();
    tapas_assert(inlet_n <= 128 && gpu_n <= 128 && power_n <= 128 &&
                     air_n <= 128,
                 "observation buffers sized for the bench grids");

    inletCoeffs.resize(end * kInletWidth);
    gpuTempCoeffs.resize(end * gpus * kGpuTempWidth);
    powerCoeffs.resize(end * kPowerWidth);
    airflowCoeffs.resize(end * kAirflowWidth);

    const double inlet_sigma = thermal.config().noiseSigmaC;

    // One server = one unit of work: observe the bench sweep with a
    // counter-based noise stream (seeded by server id, so results
    // are identical for any profiling order and thread count), then
    // solve each model against the shared designs.
    auto profile_server = [&](std::size_t s) {
        const std::size_t idx = begin + s;
        const ServerId id(static_cast<std::uint32_t>(idx));
        Rng rng(mixSeed(noise_base, idx));
        double y[128];

        // Inlet spline: observe Eq. 1 with sensor noise. The
        // noiseless response per grid point is shared by the reps.
        std::size_t k = 0;
        for (double outside : kOutsideGrid) {
            for (double dc_load : kDcLoadGrid) {
                const double clean =
                    thermal
                        .inletTemperature(id, Celsius(outside),
                                          dc_load, 0.0)
                        .value();
                for (int rep = 0; rep < kReps; ++rep) {
                    (void)rep;
                    y[k++] =
                        clean + rng.gaussianFast(0.0, inlet_sigma);
                }
            }
        }
        inletDesign.solveInto(y, &inletCoeffs[idx * kInletWidth]);

        // Per-GPU temperature lines: observe Eq. 2. The ground
        // truth is linear (Eq. 2: inlet + offset + coeff * power),
        // so hoist the per-GPU terms out of the grid walk; the sums
        // associate exactly as gpuTemperature() evaluates them.
        for (std::size_t g = 0; g < gpus; ++g) {
            const double off =
                thermal.gpuOffset(id, static_cast<int>(g));
            const double coeff =
                thermal.gpuCoeff(id, static_cast<int>(g));
            k = 0;
            for (double inlet : kInletGrid) {
                const double base = inlet + off;
                for (double gpu_power : kGpuPowerGrid) {
                    y[k++] = base + coeff * gpu_power +
                        rng.gaussianFast(0.0, 0.3);
                }
            }
            gpuTempDesign.solveInto(
                y,
                &gpuTempCoeffs[(idx * gpus + g) * kGpuTempWidth]);
        }

        // Power polynomial: observe Eq. 4 (cubic for fan law).
        const ServerSpec &spec = layout.specOf(id);
        k = 0;
        for (double load : kLoadGrid) {
            const double clean =
                power.serverPowerAtLoad(spec, load).value();
            for (int rep = 0; rep < kReps; ++rep) {
                (void)rep;
                y[k++] = clean + rng.gaussianFast(0.0, 20.0);
            }
        }
        powerDesign.solveInto(y, &powerCoeffs[idx * kPowerWidth]);

        // Airflow line: observe Eq. 3's per-server fan curve.
        k = 0;
        for (double load : kLoadGrid) {
            y[k++] = thermal.serverAirflow(id, load).value() +
                rng.gaussianFast(0.0, 5.0);
        }
        airflowDesign.solveInto(y,
                                &airflowCoeffs[idx * kAirflowWidth]);
    };

    // Nested pools deadlock (sweep jobs construct simulators on
    // worker threads), and tiny fleets are faster profiled inline.
    if (count >= kParallelFitThreshold &&
        !ThreadPool::onWorkerThread() &&
        ThreadPool::shared().size() > 1) {
        ThreadPool::shared().parallelFor(count, profile_server);
    } else {
        for (std::size_t s = 0; s < count; ++s)
            profile_server(s);
    }

    profiledServers = end;
}

void
ProfileBank::recomputeClasses()
{
    inletBias.resize(profiledServers, 0.0);
    for (std::size_t s = 0; s < profiledServers; ++s)
        inletBias[s] = evalInlet(s, kRefOutsideC, kRefDcLoad);
    std::vector<std::size_t> order(profiledServers);
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return inletBias[a] < inletBias[b];
              });
    classes.assign(profiledServers, ThermalClass::Medium);
    const std::size_t third = profiledServers / 3;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        if (rank < third) {
            classes[order[rank]] = ThermalClass::Cold;
        } else if (rank >= profiledServers - third) {
            classes[order[rank]] = ThermalClass::Warm;
        }
    }
    // Normalize bias to the fleet median.
    if (!order.empty()) {
        const double median = inletBias[order[order.size() / 2]];
        for (double &bias : inletBias)
            bias -= median;
    }
}

double
ProfileBank::evalInlet(std::size_t server, double outside_c,
                       double dc_load_frac) const
{
    // Same term order as PiecewiseLinearModel::predict: intercept,
    // linear x0, hinges, then the extra linear feature.
    const double *w = &inletCoeffs[server * kInletWidth];
    double acc = w[0];
    acc += w[1] * outside_c;
    acc += w[2] * std::max(0.0, outside_c - kInletKnots[0]);
    acc += w[3] * std::max(0.0, outside_c - kInletKnots[1]);
    acc += w[4] * dc_load_frac;
    return acc;
}

double
ProfileBank::predictInletC(ServerId id, double outside_c,
                           double dc_load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return evalInlet(id.index, outside_c, dc_load_frac);
}

double
ProfileBank::predictGpuTempC(ServerId id, int gpu, double inlet_c,
                             double gpu_power_w) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double *w = &gpuTempCoeffs[(id.index *
                                          static_cast<std::size_t>(
                                              gpusPerServer) +
                                      static_cast<std::size_t>(gpu)) *
                                     kGpuTempWidth];
    return w[0] + w[1] * inlet_c + w[2] * gpu_power_w;
}

double
ProfileBank::predictHottestGpuC(ServerId id, double inlet_c,
                                double per_gpu_power_w) const
{
    // Hot path of the configurator's feasibility sweep: one walk
    // over the server's contiguous coefficient block.
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double *w =
        &gpuTempCoeffs[id.index *
                       static_cast<std::size_t>(gpusPerServer) *
                       kGpuTempWidth];
    double hottest = -1e9;
    for (int g = 0; g < gpusPerServer; ++g, w += kGpuTempWidth) {
        hottest = std::max(
            hottest,
            w[0] + w[1] * inlet_c + w[2] * per_gpu_power_w);
    }
    return hottest;
}

double
ProfileBank::predictHottestGpuC(ServerId id, double inlet_c,
                                const double *gpu_power_w) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double *w =
        &gpuTempCoeffs[id.index *
                       static_cast<std::size_t>(gpusPerServer) *
                       kGpuTempWidth];
    double hottest = -1e9;
    for (int g = 0; g < gpusPerServer; ++g, w += kGpuTempWidth) {
        hottest = std::max(
            hottest,
            w[0] + w[1] * inlet_c + w[2] * gpu_power_w[g]);
    }
    return hottest;
}

double
ProfileBank::predictServerPowerW(ServerId id, double load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    // Same inline power basis as PolynomialRegression::predict.
    const double x = std::clamp(load_frac, 0.0, 1.0);
    const double *w = &powerCoeffs[id.index * kPowerWidth];
    double acc = w[0];
    double term = x;
    for (std::size_t p = 1; p < kPowerWidth; ++p) {
        acc += w[p] * term;
        term *= x;
    }
    return acc;
}

double
ProfileBank::predictServerAirflowCfm(ServerId id,
                                     double load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double x = std::clamp(load_frac, 0.0, 1.0);
    const double *w = &airflowCoeffs[id.index * kAirflowWidth];
    return w[0] + w[1] * x;
}

void
ProfileBank::predictInletBatch(double outside_c, double dc_load_frac,
                               std::size_t count, double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    // The hinge terms depend only on the shared ambient input;
    // hoisting them keeps the walk one contiguous coefficient read
    // plus four fused multiply-adds per server. Term order matches
    // evalInlet exactly, so results are bit-identical.
    const double h0 = std::max(0.0, outside_c - kInletKnots[0]);
    const double h1 = std::max(0.0, outside_c - kInletKnots[1]);
    const double *w = inletCoeffs.data();
    for (std::size_t s = 0; s < count; ++s, w += kInletWidth) {
        double acc = w[0];
        acc += w[1] * outside_c;
        acc += w[2] * h0;
        acc += w[3] * h1;
        acc += w[4] * dc_load_frac;
        out[s] = acc;
    }
}

void
ProfileBank::predictPowerBatch(const double *load_frac,
                               std::size_t count, double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const double *w = powerCoeffs.data();
    for (std::size_t s = 0; s < count; ++s, w += kPowerWidth) {
        const double x = std::clamp(load_frac[s], 0.0, 1.0);
        double acc = w[0];
        double term = x;
        for (std::size_t p = 1; p < kPowerWidth; ++p) {
            acc += w[p] * term;
            term *= x;
        }
        out[s] = acc;
    }
}

void
ProfileBank::predictPowerUniformBatch(double load_frac,
                                      std::size_t count,
                                      double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const double x = std::clamp(load_frac, 0.0, 1.0);
    const double *w = powerCoeffs.data();
    for (std::size_t s = 0; s < count; ++s, w += kPowerWidth) {
        double acc = w[0];
        double term = x;
        for (std::size_t p = 1; p < kPowerWidth; ++p) {
            acc += w[p] * term;
            term *= x;
        }
        out[s] = acc;
    }
}

void
ProfileBank::predictAirflowBatch(const double *load_frac,
                                 std::size_t count, double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const double *w = airflowCoeffs.data();
    for (std::size_t s = 0; s < count; ++s, w += kAirflowWidth) {
        const double x = std::clamp(load_frac[s], 0.0, 1.0);
        out[s] = w[0] + w[1] * x;
    }
}

void
ProfileBank::predictAirflowUniformBatch(double load_frac,
                                        std::size_t count,
                                        double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const double x = std::clamp(load_frac, 0.0, 1.0);
    const double *w = airflowCoeffs.data();
    for (std::size_t s = 0; s < count; ++s, w += kAirflowWidth)
        out[s] = w[0] + w[1] * x;
}

void
ProfileBank::predictPowerGather(const ServerId *ids,
                                const double *load_frac,
                                std::size_t n, double *out) const
{
    for (std::size_t i = 0; i < n; ++i) {
        tapas_assert(ids[i].index < profiledServers,
                     "server %u not profiled", ids[i].index);
        const double x = std::clamp(load_frac[i], 0.0, 1.0);
        const double *w = &powerCoeffs[ids[i].index * kPowerWidth];
        double acc = w[0];
        double term = x;
        for (std::size_t p = 1; p < kPowerWidth; ++p) {
            acc += w[p] * term;
            term *= x;
        }
        out[i] = acc;
    }
}

void
ProfileBank::predictAirflowGather(const ServerId *ids,
                                  const double *load_frac,
                                  std::size_t n, double *out) const
{
    for (std::size_t i = 0; i < n; ++i) {
        tapas_assert(ids[i].index < profiledServers,
                     "server %u not profiled", ids[i].index);
        const double x = std::clamp(load_frac[i], 0.0, 1.0);
        const double *w =
            &airflowCoeffs[ids[i].index * kAirflowWidth];
        out[i] = w[0] + w[1] * x;
    }
}

void
ProfileBank::predictHottestGpuBatch(const double *inlet_c,
                                    const double *gpu_power_w,
                                    std::size_t count,
                                    double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const std::size_t gpus =
        static_cast<std::size_t>(gpusPerServer);
    const double *w = gpuTempCoeffs.data();
    const double *p = gpu_power_w;
    for (std::size_t s = 0; s < count; ++s, p += gpus) {
        const double inlet = inlet_c[s];
        double hottest = -1e9;
        for (std::size_t g = 0; g < gpus; ++g, w += kGpuTempWidth) {
            hottest = std::max(
                hottest, w[0] + w[1] * inlet + w[2] * p[g]);
        }
        out[s] = hottest;
    }
}

void
ProfileBank::predictHottestGpuUniformBatch(
    const double *inlet_c, const double *per_gpu_power_w,
    std::size_t count, double *out) const
{
    tapas_assert(count <= profiledServers,
                 "batch of %zu exceeds %zu profiled servers", count,
                 profiledServers);
    const std::size_t gpus =
        static_cast<std::size_t>(gpusPerServer);
    const double *w = gpuTempCoeffs.data();
    for (std::size_t s = 0; s < count; ++s) {
        const double inlet = inlet_c[s];
        const double power = per_gpu_power_w[s];
        double hottest = -1e9;
        for (std::size_t g = 0; g < gpus; ++g, w += kGpuTempWidth) {
            hottest = std::max(
                hottest, w[0] + w[1] * inlet + w[2] * power);
        }
        out[s] = hottest;
    }
}

void
ProfileBank::predictHottestGpuCandidates(ServerId id, double inlet_c,
                                         const double *per_gpu_power_w,
                                         std::size_t n,
                                         double *out) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const std::size_t gpus =
        static_cast<std::size_t>(gpusPerServer);
    const double *block =
        &gpuTempCoeffs[id.index * gpus * kGpuTempWidth];
    for (std::size_t i = 0; i < n; ++i) {
        const double power = per_gpu_power_w[i];
        const double *w = block;
        double hottest = -1e9;
        for (std::size_t g = 0; g < gpus; ++g, w += kGpuTempWidth) {
            hottest = std::max(
                hottest, w[0] + w[1] * inlet_c + w[2] * power);
        }
        out[i] = hottest;
    }
}

void
ProfileBank::predictAirflowCandidates(ServerId id,
                                      const double *load_frac,
                                      std::size_t n, double *out) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double *w = &airflowCoeffs[id.index * kAirflowWidth];
    for (std::size_t i = 0; i < n; ++i) {
        const double x = std::clamp(load_frac[i], 0.0, 1.0);
        out[i] = w[0] + w[1] * x;
    }
}

ThermalClass
ProfileBank::thermalClass(ServerId id) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return classes[id.index];
}

double
ProfileBank::inletBiasC(ServerId id) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return inletBias[id.index];
}

void
ProfileBank::refitPowerFromTelemetry(const TelemetryStore &store)
{
    tapas_assert(profiled(),
                 "power refit before offline profiling");
    if (fitQuarantinedFlag.size() != profiledServers)
        fitQuarantinedFlag.resize(profiledServers, 0);
    // Anchor the envelope at the offline fit the first time each
    // server is eligible (coefficients are still the bench fit
    // then; refits are the only writer afterwards).
    if (offlinePowerCoeffs.size() < powerCoeffs.size()) {
        offlinePowerCoeffs.insert(
            offlinePowerCoeffs.end(),
            powerCoeffs.begin() +
                static_cast<std::ptrdiff_t>(
                    offlinePowerCoeffs.size()),
            powerCoeffs.end());
    }

    auto eval = [](const double *w, double x) {
        double acc = w[0];
        double term = x;
        for (std::size_t p = 1; p < kPowerWidth; ++p) {
            acc += w[p] * term;
            term *= x;
        }
        return acc;
    };

    for (std::size_t s = 0; s < profiledServers; ++s) {
        const ServerId id(static_cast<std::uint32_t>(s));
        const SeriesView<ServerSample> samples =
            store.serverSeries(id);
        if (samples.size() < kRefitMinSamples)
            continue;

        // Live loads differ per server, so the shared offline
        // design doesn't apply; accumulate this server's cubic
        // normal equations directly.
        double xtx[4][4] = {};
        double xty[4] = {};
        double lo = 1.0;
        double hi = 0.0;
        for (const ServerSample &sample : samples) {
            const double x = std::clamp(
                static_cast<double>(sample.gpuLoad), 0.0, 1.0);
            lo = std::min(lo, x);
            hi = std::max(hi, x);
            const double basis[4] = {1.0, x, x * x, x * x * x};
            for (int i = 0; i < 4; ++i) {
                for (int j = 0; j < 4; ++j)
                    xtx[i][j] += basis[i] * basis[j];
                xty[i] += basis[i] *
                    static_cast<double>(sample.serverPowerW);
            }
        }
        // One operating point cannot identify a cubic; wait for a
        // wider sweep of observed loads.
        if (hi - lo < kRefitMinLoadSpread)
            continue;

        double w[4];
        if (!solveNormal4(xtx, xty, w))
            continue;

        // Gate 1: the refit curve must stay inside a band around
        // the offline anchor over the whole load range.
        const double *anchor = &offlinePowerCoeffs[s * kPowerWidth];
        bool diverging = false;
        for (const double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            const double ref = eval(anchor, x);
            const double tol =
                std::max(kRefitEnvelopeFloorW,
                         kRefitEnvelopeFrac * std::abs(ref));
            if (std::abs(eval(w, x) - ref) > tol) {
                diverging = true;
                break;
            }
        }
        // Gate 2: residuals against the fitted samples stay at
        // sensor-noise scale (a stuck sensor leaves a bimodal cloud
        // no cubic fits tightly).
        if (!diverging) {
            double sq = 0.0;
            for (const ServerSample &sample : samples) {
                const double x = std::clamp(
                    static_cast<double>(sample.gpuLoad), 0.0, 1.0);
                const double resid = eval(w, x) -
                    static_cast<double>(sample.serverPowerW);
                sq += resid * resid;
            }
            const double rms = std::sqrt(
                sq / static_cast<double>(samples.size()));
            diverging = rms > kRefitMaxResidualW;
        }

        if (diverging) {
            ++refitsRejectedCount;
            if (!fitQuarantinedFlag[s]) {
                fitQuarantinedFlag[s] = 1;
                ++fitQuarantinedServers;
            }
            continue; // keep the last accepted model
        }
        ++refitsAcceptedCount;
        if (fitQuarantinedFlag[s]) {
            fitQuarantinedFlag[s] = 0;
            --fitQuarantinedServers;
        }
        double *dst = &powerCoeffs[s * kPowerWidth];
        for (int i = 0; i < 4; ++i)
            dst[i] = w[i];
    }
}

void
ProfileBank::checkpointState(Archive &ar)
{
    ar.podVector(inletCoeffs);
    ar.podVector(gpuTempCoeffs);
    ar.podVector(powerCoeffs);
    ar.podVector(airflowCoeffs);
    ar.podVector(inletBias);
    ar.podVector(classes);
    ar.count(profiledServers);
    ar.value(gpusPerServer);
    ar.podVector(offlinePowerCoeffs);
    ar.podVector(fitQuarantinedFlag);
    ar.count(fitQuarantinedServers);
    ar.value(refitsAcceptedCount);
    ar.value(refitsRejectedCount);
}

} // namespace tapas
