#include "telemetry/profiles.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace tapas {

namespace {
/** Bench sweep grids for the offline profiling phase. */
const double kOutsideGrid[] = {5.0, 12.0, 16.0, 20.0, 24.0, 28.0,
                               32.0, 36.0};
const double kDcLoadGrid[] = {0.2, 0.5, 0.8, 1.0};
const double kGpuPowerGrid[] = {60.0, 150.0, 250.0, 350.0, 400.0};
const double kLoadGrid[] = {0.0, 0.25, 0.5, 0.75, 1.0};
/** Repetitions per grid point (sensor noise averaging). */
constexpr int kReps = 3;
/** Reference conditions for the cold/medium/warm classification. */
constexpr double kRefOutsideC = 24.0;
constexpr double kRefDcLoad = 0.7;
} // namespace

ProfileBank::ProfileBank(const DatacenterLayout &layout_)
    : layout(layout_),
      gpusPerServer(layout_.specs().front().gpusPerServer)
{
}

void
ProfileBank::offlineProfile(const ThermalModel &thermal,
                            const PowerModel &power,
                            std::uint64_t seed)
{
    inletModels.clear();
    gpuTempModels.clear();
    powerModels.clear();
    airflowModels.clear();
    inletBias.clear();
    profiledServers = 0;
    Rng rng(mixSeed(seed, 0x70726f66ULL));
    for (const Server &server : layout.servers())
        profileServer(server.id, thermal, power, rng);
    recomputeClasses();
}

void
ProfileBank::profileNewServers(const ThermalModel &thermal,
                               const PowerModel &power,
                               std::uint64_t seed)
{
    Rng rng(mixSeed(seed, 0x6e657773ULL));
    while (profiledServers < layout.serverCount()) {
        profileServer(
            ServerId(static_cast<std::uint32_t>(profiledServers)),
            thermal, power, rng);
    }
    recomputeClasses();
}

void
ProfileBank::profileServer(ServerId id, const ThermalModel &thermal,
                           const PowerModel &power, Rng &rng)
{
    tapas_assert(id.index == profiledServers,
                 "servers must be profiled in id order");

    // --- Inlet spline: observe Eq. 1 with sensor noise. ---
    std::vector<std::vector<double>> inlet_x;
    std::vector<double> inlet_y;
    for (double outside : kOutsideGrid) {
        for (double dc_load : kDcLoadGrid) {
            for (int rep = 0; rep < kReps; ++rep) {
                const double observed =
                    thermal
                        .inletTemperature(id, Celsius(outside),
                                          dc_load, 0.0, &rng)
                        .value();
                inlet_x.push_back({outside, dc_load});
                inlet_y.push_back(observed);
            }
        }
    }
    PiecewiseLinearModel inlet_model({15.0, 25.0}, 1);
    inlet_model.fit(inlet_x, inlet_y);
    inletModels.push_back(std::move(inlet_model));

    // --- Per-GPU temperature lines: observe Eq. 2. ---
    for (int g = 0; g < gpusPerServer; ++g) {
        std::vector<std::vector<double>> gpu_x;
        std::vector<double> gpu_y;
        for (double inlet : {18.0, 22.0, 26.0, 30.0}) {
            for (double gpu_power : kGpuPowerGrid) {
                const double observed =
                    thermal
                        .gpuTemperature(id, g, Celsius(inlet),
                                        Watts(gpu_power))
                        .value() +
                    rng.gaussian(0.0, 0.3);
                gpu_x.push_back({inlet, gpu_power});
                gpu_y.push_back(observed);
            }
        }
        LinearRegression gpu_model;
        gpu_model.fit(gpu_x, gpu_y);
        gpuTempModels.push_back(std::move(gpu_model));
    }

    // --- Power polynomial: observe Eq. 4 (cubic for fan law). ---
    const ServerSpec &spec = layout.specOf(id);
    std::vector<double> load_x;
    std::vector<double> power_y;
    for (double load : kLoadGrid) {
        for (int rep = 0; rep < kReps; ++rep) {
            const double observed =
                power.serverPowerAtLoad(spec, load).value() +
                rng.gaussian(0.0, 20.0);
            load_x.push_back(load);
            power_y.push_back(observed);
        }
    }
    PolynomialRegression power_model(3);
    power_model.fit(load_x, power_y);
    powerModels.push_back(std::move(power_model));

    // --- Airflow line: observe Eq. 3's per-server fan curve. ---
    std::vector<std::vector<double>> air_x;
    std::vector<double> air_y;
    for (double load : kLoadGrid) {
        const double observed =
            thermal.serverAirflow(id, load).value() +
            rng.gaussian(0.0, 5.0);
        air_x.push_back({load});
        air_y.push_back(observed);
    }
    LinearRegression air_model;
    air_model.fit(air_x, air_y);
    airflowModels.push_back(std::move(air_model));

    ++profiledServers;
}

void
ProfileBank::recomputeClasses()
{
    inletBias.resize(profiledServers, 0.0);
    for (std::size_t s = 0; s < profiledServers; ++s) {
        inletBias[s] = inletModels[s].predict(
            {kRefOutsideC, kRefDcLoad});
    }
    std::vector<std::size_t> order(profiledServers);
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return inletBias[a] < inletBias[b];
              });
    classes.assign(profiledServers, ThermalClass::Medium);
    const std::size_t third = profiledServers / 3;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        if (rank < third) {
            classes[order[rank]] = ThermalClass::Cold;
        } else if (rank >= profiledServers - third) {
            classes[order[rank]] = ThermalClass::Warm;
        }
    }
    // Normalize bias to the fleet median.
    if (!order.empty()) {
        const double median = inletBias[order[order.size() / 2]];
        for (double &bias : inletBias)
            bias -= median;
    }
}

double
ProfileBank::predictInletC(ServerId id, double outside_c,
                           double dc_load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double x[2] = {outside_c, dc_load_frac};
    return inletModels[id.index].predict(x, 2);
}

double
ProfileBank::predictGpuTempC(ServerId id, int gpu, double inlet_c,
                             double gpu_power_w) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const std::size_t idx =
        id.index * static_cast<std::size_t>(gpusPerServer) +
        static_cast<std::size_t>(gpu);
    const double x[2] = {inlet_c, gpu_power_w};
    return gpuTempModels[idx].predict(x, 2);
}

double
ProfileBank::predictHottestGpuC(ServerId id, double inlet_c,
                                double per_gpu_power_w) const
{
    // Hot path of the configurator's feasibility sweep: evaluate the
    // per-GPU lines straight from their coefficients in one loop
    // instead of paying a predict() call per GPU.
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const std::size_t base =
        id.index * static_cast<std::size_t>(gpusPerServer);
    double hottest = -1e9;
    for (int g = 0; g < gpusPerServer; ++g) {
        const std::vector<double> &w =
            gpuTempModels[base + static_cast<std::size_t>(g)]
                .coefficients();
        hottest = std::max(
            hottest, w[0] + w[1] * inlet_c + w[2] * per_gpu_power_w);
    }
    return hottest;
}

double
ProfileBank::predictHottestGpuC(ServerId id, double inlet_c,
                                const double *gpu_power_w) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const std::size_t base =
        id.index * static_cast<std::size_t>(gpusPerServer);
    double hottest = -1e9;
    for (int g = 0; g < gpusPerServer; ++g) {
        const std::vector<double> &w =
            gpuTempModels[base + static_cast<std::size_t>(g)]
                .coefficients();
        hottest = std::max(
            hottest,
            w[0] + w[1] * inlet_c + w[2] * gpu_power_w[g]);
    }
    return hottest;
}

double
ProfileBank::predictServerPowerW(ServerId id, double load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return powerModels[id.index].predict(
        std::clamp(load_frac, 0.0, 1.0));
}

double
ProfileBank::predictServerAirflowCfm(ServerId id,
                                     double load_frac) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    const double x[1] = {std::clamp(load_frac, 0.0, 1.0)};
    return airflowModels[id.index].predict(x, 1);
}

ThermalClass
ProfileBank::thermalClass(ServerId id) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return classes[id.index];
}

double
ProfileBank::inletBiasC(ServerId id) const
{
    tapas_assert(id.index < profiledServers,
                 "server %u not profiled", id.index);
    return inletBias[id.index];
}

} // namespace tapas
