#include "telemetry/regression.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/random.hh"

namespace tapas {

double
meanAbsoluteError(const std::vector<double> &truth,
                  const std::vector<double> &pred)
{
    tapas_assert(truth.size() == pred.size() && !truth.empty(),
                 "MAE needs equal-length non-empty vectors");
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        total += std::abs(truth[i] - pred[i]);
    return total / static_cast<double>(truth.size());
}

double
rootMeanSquaredError(const std::vector<double> &truth,
                     const std::vector<double> &pred)
{
    tapas_assert(truth.size() == pred.size() && !truth.empty(),
                 "RMSE needs equal-length non-empty vectors");
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double d = truth[i] - pred[i];
        total += d * d;
    }
    return std::sqrt(total / static_cast<double>(truth.size()));
}

double
rSquared(const std::vector<double> &truth,
         const std::vector<double> &pred)
{
    tapas_assert(truth.size() == pred.size() && !truth.empty(),
                 "R2 needs equal-length non-empty vectors");
    double mean = 0.0;
    for (double v : truth)
        mean += v;
    mean /= static_cast<double>(truth.size());
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
        ss_tot += (truth[i] - mean) * (truth[i] - mean);
    }
    return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
}

namespace {

/**
 * Solve the symmetric system A w = b in place via Gaussian
 * elimination with partial pivoting. Adds a tiny ridge term for
 * numerical robustness with collinear bases.
 */
std::vector<double>
solveNormalEquations(std::vector<std::vector<double>> A,
                     std::vector<double> b)
{
    const std::size_t n = A.size();
    for (std::size_t i = 0; i < n; ++i)
        A[i][i] += 1e-9;

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(A[r][col]) > std::abs(A[pivot][col]))
                pivot = r;
        }
        std::swap(A[col], A[pivot]);
        std::swap(b[col], b[pivot]);
        tapas_assert(std::abs(A[col][col]) > 1e-15,
                     "singular normal equations");
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = A[r][col] / A[col][col];
            for (std::size_t c = col; c < n; ++c)
                A[r][c] -= factor * A[col][c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> w(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= A[i][c] * w[c];
        w[i] = acc / A[i][i];
    }
    return w;
}

std::vector<double>
fitOls(const std::vector<std::vector<double>> &rows,
       const std::vector<double> &y)
{
    tapas_assert(!rows.empty() && rows.size() == y.size(),
                 "OLS needs matching non-empty X and y");
    const std::size_t d = rows.front().size() + 1;
    std::vector<std::vector<double>> xtx(
        d, std::vector<double>(d, 0.0));
    std::vector<double> xty(d, 0.0);
    std::vector<double> row(d, 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        row[0] = 1.0;
        for (std::size_t j = 0; j < rows[i].size(); ++j)
            row[j + 1] = rows[i][j];
        for (std::size_t a = 0; a < d; ++a) {
            xty[a] += row[a] * y[i];
            for (std::size_t b = 0; b < d; ++b)
                xtx[a][b] += row[a] * row[b];
        }
    }
    return solveNormalEquations(std::move(xtx), std::move(xty));
}

/**
 * Flat-storage twin of solveNormalEquations: identical operation
 * sequence (ridge, partial pivoting, elimination, back-substitution)
 * over a row-major n x n matrix. Destroys @p A and @p b in place;
 * writes the weights into caller storage.
 */
void
solveNormalEquationsInPlace(double *A, double *b, std::size_t n,
                            double *w)
{
    for (std::size_t i = 0; i < n; ++i)
        A[i * n + i] += 1e-9;

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(A[r * n + col]) >
                std::abs(A[pivot * n + col])) {
                pivot = r;
            }
        }
        if (pivot != col) {
            std::swap_ranges(A + col * n, A + (col + 1) * n,
                             A + pivot * n);
        }
        std::swap(b[col], b[pivot]);
        tapas_assert(std::abs(A[col * n + col]) > 1e-15,
                     "singular normal equations");
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = A[r * n + col] / A[col * n + col];
            for (std::size_t c = col; c < n; ++c)
                A[r * n + c] -= factor * A[col * n + c];
            b[r] -= factor * b[col];
        }
    }
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= A[i * n + c] * w[c];
        w[i] = acc / A[i * n + i];
    }
}

} // namespace

SharedDesign::SharedDesign(
    const std::vector<std::vector<double>> &rows)
{
    tapas_assert(!rows.empty(), "shared design needs rows");
    samples = rows.size();
    wide = rows.front().size() + 1;
    basisRows.assign(samples * wide, 0.0);
    xtx.assign(wide * wide, 0.0);
    // Same accumulation order as fitOls: per observation, then the
    // (a, b) upper loop — bit-identical partial sums.
    for (std::size_t i = 0; i < samples; ++i) {
        tapas_assert(rows[i].size() + 1 == wide,
                     "ragged design rows");
        double *row = &basisRows[i * wide];
        row[0] = 1.0;
        for (std::size_t j = 0; j < rows[i].size(); ++j)
            row[j + 1] = rows[i][j];
        for (std::size_t a = 0; a < wide; ++a) {
            for (std::size_t b = 0; b < wide; ++b)
                xtx[a * wide + b] += row[a] * row[b];
        }
    }
}

void
SharedDesign::solve(const std::vector<double> &y,
                    std::vector<double> &weights) const
{
    tapas_assert(y.size() == samples,
                 "target length %zu does not match design %zu",
                 y.size(), samples);
    weights.resize(wide);
    solveInto(y.data(), weights.data());
}

void
SharedDesign::solveInto(const double *y, double *weights) const
{
    tapas_assert(ready(), "solve on an empty design");
    // Fleet refits call this once per series; small systems (the
    // common case — a handful of regression weights) solve entirely
    // on the stack.
    constexpr std::size_t kStackWidth = 8;
    if (wide <= kStackWidth) {
        double xty[kStackWidth] = {0.0};
        double a[kStackWidth * kStackWidth];
        std::copy(xtx.begin(), xtx.end(), a);
        for (std::size_t i = 0; i < samples; ++i) {
            const double *row = &basisRows[i * wide];
            for (std::size_t k = 0; k < wide; ++k)
                xty[k] += row[k] * y[i];
        }
        solveNormalEquationsInPlace(a, xty, wide, weights);
        return;
    }
    std::vector<double> xty(wide, 0.0);
    for (std::size_t i = 0; i < samples; ++i) {
        const double *row = &basisRows[i * wide];
        for (std::size_t a = 0; a < wide; ++a)
            xty[a] += row[a] * y[i];
    }
    std::vector<double> a = xtx;
    solveNormalEquationsInPlace(a.data(), xty.data(), wide, weights);
}

void
LinearRegression::fit(const std::vector<std::vector<double>> &X,
                      const std::vector<double> &y)
{
    weights = fitOls(X, y);
}

double
LinearRegression::predict(const std::vector<double> &x) const
{
    return predict(x.data(), x.size());
}

double
LinearRegression::predict(const double *x, std::size_t n) const
{
    tapas_assert(fitted(), "predict before fit");
    tapas_assert(n + 1 == weights.size(),
                 "feature width %zu does not match fit width %zu",
                 n, weights.size() - 1);
    double acc = weights[0];
    for (std::size_t i = 0; i < n; ++i)
        acc += weights[i + 1] * x[i];
    return acc;
}

std::vector<double>
PolynomialRegression::basis(double x) const
{
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(deg));
    double term = x;
    for (int p = 1; p <= deg; ++p) {
        row.push_back(term);
        term *= x;
    }
    return row;
}

void
PolynomialRegression::fit(const std::vector<double> &xs,
                          const std::vector<double> &ys)
{
    tapas_assert(deg >= 1, "degree must be at least 1");
    std::vector<std::vector<double>> rows;
    rows.reserve(xs.size());
    for (double x : xs)
        rows.push_back(basis(x));
    ols.fit(rows, ys);
}

double
PolynomialRegression::predict(double x) const
{
    // Inline power basis: identical terms to basis(x), no allocation.
    const std::vector<double> &w = ols.coefficients();
    tapas_assert(ols.fitted(), "predict before fit");
    tapas_assert(w.size() == static_cast<std::size_t>(deg) + 1,
                 "degree %d does not match fit width %zu", deg,
                 w.size() - 1);
    double acc = w[0];
    double term = x;
    for (int p = 1; p <= deg; ++p) {
        acc += w[static_cast<std::size_t>(p)] * term;
        term *= x;
    }
    return acc;
}

PiecewiseLinearModel::PiecewiseLinearModel(std::vector<double> knots_,
                                           int extra_features)
    : knots(std::move(knots_)), extraFeatures(extra_features)
{
    std::sort(knots.begin(), knots.end());
}

std::vector<double>
PiecewiseLinearModel::basis(const std::vector<double> &x) const
{
    tapas_assert(x.size() ==
                 static_cast<std::size_t>(extraFeatures) + 1,
                 "expected %d features, got %zu", extraFeatures + 1,
                 x.size());
    std::vector<double> row;
    row.reserve(1 + knots.size() +
                static_cast<std::size_t>(extraFeatures));
    row.push_back(x[0]);
    for (double k : knots)
        row.push_back(std::max(0.0, x[0] - k));
    for (int i = 0; i < extraFeatures; ++i)
        row.push_back(x[static_cast<std::size_t>(i) + 1]);
    return row;
}

void
PiecewiseLinearModel::fit(const std::vector<std::vector<double>> &X,
                          const std::vector<double> &y)
{
    std::vector<std::vector<double>> rows;
    rows.reserve(X.size());
    for (const auto &x : X)
        rows.push_back(basis(x));
    ols.fit(rows, y);
}

double
PiecewiseLinearModel::predict(const std::vector<double> &x) const
{
    return predict(x.data(), x.size());
}

double
PiecewiseLinearModel::predict(const double *x, std::size_t n) const
{
    tapas_assert(n == static_cast<std::size_t>(extraFeatures) + 1,
                 "expected %d features, got %zu", extraFeatures + 1,
                 n);
    // Inline hinge basis: identical terms to basis(x), no allocation.
    const std::vector<double> &w = ols.coefficients();
    tapas_assert(ols.fitted(), "predict before fit");
    tapas_assert(w.size() ==
                 2 + knots.size() +
                     static_cast<std::size_t>(extraFeatures),
                 "basis width does not match fit width");
    double acc = w[0];
    std::size_t j = 1;
    acc += w[j++] * x[0];
    for (double k : knots)
        acc += w[j++] * std::max(0.0, x[0] - k);
    for (int i = 0; i < extraFeatures; ++i)
        acc += w[j++] * x[static_cast<std::size_t>(i) + 1];
    return acc;
}

RegressionTree::RegressionTree(int max_depth, int min_samples)
    : maxDepth(max_depth), minSamples(min_samples)
{
    tapas_assert(max_depth >= 1 && min_samples >= 1,
                 "invalid tree hyperparameters");
}

void
RegressionTree::fit(const std::vector<std::vector<double>> &X,
                    const std::vector<double> &y)
{
    tapas_assert(!X.empty() && X.size() == y.size(),
                 "tree fit needs matching non-empty X and y");
    nodes.clear();
    std::vector<std::size_t> indices(X.size());
    std::iota(indices.begin(), indices.end(), 0);
    build(X, y, indices, 0);
}

int
RegressionTree::build(const std::vector<std::vector<double>> &X,
                      const std::vector<double> &y,
                      std::vector<std::size_t> &indices, int depth)
{
    const int node_id = static_cast<int>(nodes.size());
    nodes.emplace_back();

    double mean = 0.0;
    for (std::size_t idx : indices)
        mean += y[idx];
    mean /= static_cast<double>(indices.size());
    nodes[node_id].value = mean;

    if (depth >= maxDepth ||
        indices.size() < 2 * static_cast<std::size_t>(minSamples)) {
        return node_id;
    }

    // Best variance-reducing split across features and midpoints.
    const std::size_t features = X.front().size();
    double best_score = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;

    double base_sse = 0.0;
    for (std::size_t idx : indices)
        base_sse += (y[idx] - mean) * (y[idx] - mean);

    for (std::size_t f = 0; f < features; ++f) {
        std::sort(indices.begin(), indices.end(),
                  [&](std::size_t a, std::size_t b) {
                      return X[a][f] < X[b][f];
                  });
        double left_sum = 0.0;
        double left_sq = 0.0;
        double right_sum = 0.0;
        double right_sq = 0.0;
        for (std::size_t idx : indices) {
            right_sum += y[idx];
            right_sq += y[idx] * y[idx];
        }
        for (std::size_t pos = 0; pos + 1 < indices.size(); ++pos) {
            const double v = y[indices[pos]];
            left_sum += v;
            left_sq += v * v;
            right_sum -= v;
            right_sq -= v * v;
            const auto nl = static_cast<double>(pos + 1);
            const auto nr =
                static_cast<double>(indices.size() - pos - 1);
            if (nl < minSamples || nr < minSamples)
                continue;
            if (X[indices[pos]][f] >= X[indices[pos + 1]][f])
                continue;
            const double sse =
                (left_sq - left_sum * left_sum / nl) +
                (right_sq - right_sum * right_sum / nr);
            const double score = base_sse - sse;
            if (score > best_score) {
                best_score = score;
                best_feature = static_cast<int>(f);
                best_threshold = 0.5 * (X[indices[pos]][f] +
                                        X[indices[pos + 1]][f]);
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    std::vector<std::size_t> left;
    std::vector<std::size_t> right;
    for (std::size_t idx : indices) {
        if (X[idx][static_cast<std::size_t>(best_feature)] <=
            best_threshold) {
            left.push_back(idx);
        } else {
            right.push_back(idx);
        }
    }
    if (left.empty() || right.empty())
        return node_id;

    nodes[node_id].feature = best_feature;
    nodes[node_id].threshold = best_threshold;
    nodes[node_id].left = build(X, y, left, depth + 1);
    nodes[node_id].right = build(X, y, right, depth + 1);
    return node_id;
}

double
RegressionTree::predict(const std::vector<double> &x) const
{
    tapas_assert(fitted(), "predict before fit");
    int cursor = 0;
    while (!nodes[static_cast<std::size_t>(cursor)].leaf()) {
        const Node &node = nodes[static_cast<std::size_t>(cursor)];
        cursor = x[static_cast<std::size_t>(node.feature)] <=
                node.threshold
            ? node.left
            : node.right;
    }
    return nodes[static_cast<std::size_t>(cursor)].value;
}

RandomForest::RandomForest(int trees, int max_depth, int min_samples,
                           std::uint64_t seed_)
    : treeCount(trees), maxDepth(max_depth), minSamples(min_samples),
      seed(seed_)
{
    tapas_assert(trees >= 1, "forest needs at least one tree");
}

void
RandomForest::fit(const std::vector<std::vector<double>> &X,
                  const std::vector<double> &y)
{
    forest.clear();
    Rng rng(mixSeed(seed, 0x666f7265ULL));
    for (int t = 0; t < treeCount; ++t) {
        std::vector<std::vector<double>> bx;
        std::vector<double> by;
        bx.reserve(X.size());
        by.reserve(X.size());
        for (std::size_t i = 0; i < X.size(); ++i) {
            const auto pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(X.size()) - 1));
            bx.push_back(X[pick]);
            by.push_back(y[pick]);
        }
        RegressionTree tree(maxDepth, minSamples);
        tree.fit(bx, by);
        forest.push_back(std::move(tree));
    }
}

double
RandomForest::predict(const std::vector<double> &x) const
{
    tapas_assert(fitted(), "predict before fit");
    double total = 0.0;
    for (const RegressionTree &tree : forest)
        total += tree.predict(x);
    return total / static_cast<double>(forest.size());
}

} // namespace tapas
