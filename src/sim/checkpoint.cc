/**
 * @file
 * ClusterSim checkpoint/restore: the durability layer for long runs
 * (docs/checkpoint-format.md).
 *
 * A checkpoint captures the *canonical* stepping state — everything
 * the step loop reads that is not reconstructed deterministically by
 * the constructor from SimConfig. Derived structures (the active-VM
 * list, the server->VM inverse map, the routing index, the
 * maintained ClusterView, memo caches, scratch buffers) are rebuilt
 * after the sections apply; the debug-build cross-checks that verify
 * the incremental structures against fresh scans every step also
 * hold immediately after a restore.
 *
 * The contract is bit-exactness: a sim restored at step boundary T
 * steps forward identically to the sim that wrote the checkpoint —
 * every metric, every fault transition, every sensor corruption, and
 * stateDigest() agree at all later boundaries. Anything that could
 * break that (unordered-map order, lazy sort flags, cached RNG
 * values) is serialized in canonical form by its owning class.
 */

#include <algorithm>

#include "common/serialize.hh"
#include "sim/cluster.hh"

namespace tapas {

namespace {

/** Section ids of the checkpoint file (never renumber — add). */
enum SectionId : std::uint32_t
{
    kSecCore = 1,
    kSecVms = 2,
    kSecTelemetry = 3,
    kSecProfiles = 4,
    kSecController = 5,
    kSecFailures = 6,
    kSecMetrics = 7,
};

constexpr std::uint32_t kAllSections[] = {
    kSecCore,       kSecVms,      kSecTelemetry, kSecProfiles,
    kSecController, kSecFailures, kSecMetrics,
};

const char *
sectionName(std::uint32_t id)
{
    switch (id) {
    case kSecCore:
        return "core";
    case kSecVms:
        return "vms";
    case kSecTelemetry:
        return "telemetry";
    case kSecProfiles:
        return "profiles";
    case kSecController:
        return "controller";
    case kSecFailures:
        return "failures";
    case kSecMetrics:
        return "metrics";
    }
    return "unknown";
}

} // namespace

void
SimMetrics::checkpointState(Archive &ar)
{
    maxGpuTempC.checkpointState(ar);
    peakRowPowerW.checkpointState(ar);
    peakRowPowerFrac.checkpointState(ar);
    datacenterPowerW.checkpointState(ar);
    iaasPerfPenalty.checkpointState(ar);
    saasServedTps.checkpointState(ar);
    saasQuality.checkpointState(ar);
    ar.value(powerCapSteps);
    ar.value(thermalThrottleSteps);
    ar.value(totalSteps);
    ttftS.checkpointState(ar);
    tbtS.checkpointState(ar);
    ar.value(requestsCompleted);
    ar.value(sloViolations);
    ar.value(totalTokens);
    ar.value(goodputTokens);
    ar.value(qualityWeightedTokens);
    ar.value(vmsPlaced);
    ar.value(vmsRejected);
    ar.value(reconfigs);
    ar.value(migrations);
    ar.value(inletExcursionSteps);
    ar.value(gpuExcursionSteps);
    ar.value(powerViolationSteps);
    ar.value(faultSteps);
    ar.value(faultActiveS);
    ar.value(faultDemandTokens);
    ar.value(faultServedTokens);
    ar.value(quarantinedServerSteps);
    ar.value(recoverySumS);
    ar.value(maxRecoveryS);
    ar.value(recoveries);
}

void
ClusterSim::checkpointCore(Archive &ar)
{
    ar.value(currentTime);
    ar.count(arrivalCursor);
    ar.value(dcLoadFrac);
    ar.value(lastEmergency);
    ar.value(lastPowerViolation);
    ar.value(prevFaultsActive);
    ar.value(recoveringFromFault);
    ar.value(faultClearAt);
    ar.value(stepDemandTps);
    ar.value(viewLoadEpoch);
    noiseRng.checkpointState(ar);
    bool has_request_gen = requestGen != nullptr;
    ar.value(has_request_gen);
    if (has_request_gen != (requestGen != nullptr)) {
        ar.fail();
        return;
    }
    if (requestGen)
        requestGen->checkpointState(ar);
    ar.podVector(waitingVms);
    ar.podVector(serverLoads);
    ar.podVector(serverDrawW);
    ar.podVector(gpuPowerW);
    ar.podVector(gpuTempC);
    ar.podVector(hottestGpuC);
    ar.podVector(inletC);
    ar.podVector(saasOpGpuPowerW);
    if (!ar.writing() &&
        (serverLoads.size() != layout.serverCount() ||
         serverDrawW.size() != layout.serverCount() ||
         hottestGpuC.size() != layout.serverCount() ||
         inletC.size() != layout.serverCount() ||
         gpuPowerW.size() != layout.serverCount() *
             static_cast<std::size_t>(gpusPerServer) ||
         gpuTempC.size() != gpuPowerW.size()))
        ar.fail();
}

void
ClusterSim::checkpointFailures(Archive &ar)
{
    failureMgr->checkpointState(ar);
    bool has_fault_engine = faultEngine != nullptr;
    ar.value(has_fault_engine);
    if (has_fault_engine != (faultEngine != nullptr)) {
        // The fault timeline exists iff the config has a plan; a
        // mismatch means the checkpoint belongs elsewhere.
        ar.fail();
        return;
    }
    if (faultEngine)
        faultEngine->checkpointState(ar);
}

void
ClusterSim::rebuildDerivedState()
{
    // Hot-list and inverse-map mirrors of the restored VM table.
    activeVms.clear();
    serverVm.assign(layout.serverCount(), npos);
    for (std::vector<RouteCandidate> &list : routeIndex)
        list.clear();
    const std::size_t n = vmTable.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (!vmTable.active(i))
            continue;
        activeVms.push_back(static_cast<std::uint32_t>(i));
        serverVm[vmTable.serverOf[i]] = i;
        // Ascending walk => each endpoint's candidate list lands
        // sorted by VM id, exactly as routeIndexAdd maintains it.
        if (vmTable.isSaas(i))
            routeIndexAdd(i);
    }

    // Last-step draw mirror in Watts (capping reads it).
    serverDrawWatts.resize(serverDrawW.size());
    for (std::size_t s = 0; s < serverDrawW.size(); ++s)
        serverDrawWatts[s] = Watts(serverDrawW[s]);

    // Memo caches: drop and let the next step refill them.
    idleSpecCache = nullptr;

    // The maintained view: rebuild from the restored state at the
    // restored snapshot epoch and restamp its freshness generation.
    buildViewInto(liveView);
    liveView.ownerGeneration = &viewGeneration;
    stampView();
}

std::uint64_t
ClusterSim::configDigest() const
{
    // Everything that shapes the serialized state's layout or the
    // deterministic reconstruction at restore: entity counts, trace
    // shape, seeds, horizon/step, policies, and the fault plan. Two
    // configs with equal digests produce interchangeable
    // checkpoints.
    Archive ar = Archive::writer();
    auto u64 = [&ar](std::uint64_t v) { ar.value(v); };
    auto i64 = [&ar](std::int64_t v) { ar.value(v); };
    auto f64 = [&ar](double v) { ar.value(v); };
    u64(cfg.seed);
    i64(cfg.horizon);
    i64(cfg.stepLength);
    u64(static_cast<std::uint64_t>(cfg.mode));
    u64(static_cast<std::uint64_t>(cfg.layout.aisleCount));
    u64(static_cast<std::uint64_t>(cfg.layout.rowsPerAisle));
    u64(static_cast<std::uint64_t>(cfg.layout.racksPerRow));
    u64(static_cast<std::uint64_t>(cfg.layout.serversPerRack));
    u64(static_cast<std::uint64_t>(cfg.layout.sku));
    u64(static_cast<std::uint64_t>(cfg.layout.upsCount));
    u64(static_cast<std::uint64_t>(cfg.oversubscriptionPct));
    u64(static_cast<std::uint64_t>(cfg.policy.placeEnabled));
    u64(static_cast<std::uint64_t>(cfg.policy.routeEnabled));
    u64(static_cast<std::uint64_t>(cfg.policy.configEnabled));
    u64(static_cast<std::uint64_t>(
        cfg.policy.sensorQuarantineEnabled));
    i64(cfg.policy.riskRefreshPeriod);
    u64(static_cast<std::uint64_t>(cfg.vmTrace.targetVmCount));
    u64(static_cast<std::uint64_t>(cfg.vmTrace.endpointCount));
    u64(static_cast<std::uint64_t>(cfg.vmTrace.iaasCustomerCount));
    f64(cfg.vmTrace.saasFraction);
    i64(cfg.vmTrace.horizon);
    i64(cfg.telemetryRetention);
    f64(cfg.endpointPeakUtil);
    f64(cfg.demandPeakHour);
    f64(cfg.demandNoiseSigma);
    u64(static_cast<std::uint64_t>(cfg.opTableEnabled));
    f64(cfg.opTableStepTps);
    f64(cfg.inletLimitC);
    i64(cfg.profileRefitPeriod);
    u64(cfg.failures.size());
    for (const FailureEvent &event : cfg.failures) {
        i64(event.at);
        i64(event.until);
        u64(static_cast<std::uint64_t>(event.thermal));
        f64(event.remainingFrac);
    }
    f64(cfg.faults.ahu.mtbfS);
    f64(cfg.faults.ups.mtbfS);
    f64(cfg.faults.chiller.mtbfS);
    f64(cfg.faults.sensor.mtbfS);
    u64(cfg.faults.scripted.size());
    for (const ScriptedFault &fault : cfg.faults.scripted) {
        i64(fault.at);
        i64(fault.until);
        u64(static_cast<std::uint64_t>(fault.kind));
        u64(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(fault.target)));
        f64(fault.remainingFrac);
        u64(static_cast<std::uint64_t>(fault.sensor));
    }
    return fnv1a64(ar.buffer().data(), ar.buffer().size());
}

Error
ClusterSim::saveCheckpoint(const std::string &path)
{
    std::vector<CheckpointSection> sections;
    sections.reserve(std::size(kAllSections));
    for (std::uint32_t id : kAllSections) {
        Archive ar = Archive::writer();
        switch (id) {
        case kSecCore:
            checkpointCore(ar);
            break;
        case kSecVms:
            vmTable.checkpointState(ar);
            break;
        case kSecTelemetry:
            store.checkpointState(ar);
            break;
        case kSecProfiles:
            bank.checkpointState(ar);
            break;
        case kSecController:
            tapas->checkpointState(ar);
            break;
        case kSecFailures:
            checkpointFailures(ar);
            break;
        case kSecMetrics:
            simMetrics.checkpointState(ar);
            break;
        }
        tapas_assert(ar.ok(),
                     "checkpoint write walk cannot fail (%s)",
                     sectionName(id));
        CheckpointSection section;
        section.id = id;
        section.payload = ar.takeBuffer();
        sections.push_back(std::move(section));
    }
    return writeCheckpointFile(path, configDigest(), sections);
}

Error
ClusterSim::restoreCheckpoint(const std::string &path)
{
    Result<CheckpointData> read = readCheckpointFile(path);
    if (!read.ok())
        return read.error();
    const CheckpointData &data = read.value();

    if (data.configDigest != configDigest()) {
        return Error::mismatch(
            "checkpoint '" + path +
            "' was written by a different configuration");
    }
    for (std::uint32_t id : kAllSections) {
        if (!data.find(id))
            return Error::corrupt("checkpoint '" + path +
                                  "': missing section '" +
                                  sectionName(id) + "'");
    }

    // All file-level validation passed (CRCs, lengths, config
    // digest); apply the sections. A payload that decodes
    // inconsistently past this point still surfaces as a structured
    // error, but the sim must then be discarded.
    for (std::uint32_t id : kAllSections) {
        const CheckpointSection *section = data.find(id);
        Archive ar = Archive::reader(section->payload);
        switch (id) {
        case kSecCore:
            checkpointCore(ar);
            break;
        case kSecVms:
            vmTable.checkpointState(ar);
            break;
        case kSecTelemetry:
            store.checkpointState(ar);
            break;
        case kSecProfiles:
            bank.checkpointState(ar);
            break;
        case kSecController:
            tapas->checkpointState(ar);
            break;
        case kSecFailures:
            checkpointFailures(ar);
            break;
        case kSecMetrics:
            simMetrics.checkpointState(ar);
            break;
        }
        if (!ar.done())
            return Error::corrupt(
                "checkpoint '" + path + "': section '" +
                sectionName(id) +
                "' payload does not decode to this configuration");
    }
    rebuildDerivedState();
    return Error::okValue();
}

std::uint64_t
ClusterSim::stateDigest()
{
    // Digest of the same canonical byte streams a checkpoint would
    // contain, chained across sections. Two sims with equal digests
    // step identically (everything stepping reads is either in the
    // stream or deterministically derived from it).
    std::uint64_t digest = fnv1a64(nullptr, 0);
    for (std::uint32_t id : kAllSections) {
        Archive ar = Archive::writer();
        switch (id) {
        case kSecCore:
            checkpointCore(ar);
            break;
        case kSecVms:
            vmTable.checkpointState(ar);
            break;
        case kSecTelemetry:
            store.checkpointState(ar);
            break;
        case kSecProfiles:
            bank.checkpointState(ar);
            break;
        case kSecController:
            tapas->checkpointState(ar);
            break;
        case kSecFailures:
            checkpointFailures(ar);
            break;
        case kSecMetrics:
            simMetrics.checkpointState(ar);
            break;
        }
        digest = fnv1a64(ar.buffer().data(), ar.buffer().size(),
                         digest);
    }
    return digest;
}

} // namespace tapas
