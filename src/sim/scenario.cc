#include "sim/scenario.hh"

namespace tapas {

SimConfig
realClusterScenario(std::uint64_t seed)
{
    SimConfig cfg;
    cfg.layout.aisleCount = 1;
    cfg.layout.rowsPerAisle = 2;
    cfg.layout.racksPerRow = 10;
    cfg.layout.serversPerRack = 4;
    cfg.layout.sku = GpuSku::A100;
    cfg.layout.upsCount = 2;
    // Rows are provisioned with a production diversity factor: the
    // whole row never draws nameplate TDP simultaneously.
    cfg.power.rowProvisionFactor = 0.90;
    cfg.thermal.airflowProvisionFactor = 0.90;
    cfg.mode = SimMode::RequestLevel;
    cfg.stepLength = kMinute;
    cfg.horizon = kHour;
    cfg.vmTrace.saasFraction = 0.5;
    cfg.vmTrace.endpointCount = 10;
    cfg.weather.climate = Climate::Temperate;
    // The one-hour window covers the demand peak (the paper's real
    // cluster experiment runs at load).
    cfg.demandPeakHour = 0.5;
    cfg.seed = seed;
    return cfg;
}

SimConfig
largeScaleScenario(std::uint64_t seed)
{
    SimConfig cfg;
    cfg.layout.aisleCount = 12;
    cfg.layout.rowsPerAisle = 2;
    cfg.layout.racksPerRow = 10;
    cfg.layout.serversPerRack = 4;
    cfg.layout.sku = GpuSku::A100;
    cfg.layout.upsCount = 4;
    // Rows are provisioned with a production diversity factor: the
    // whole row never draws nameplate TDP simultaneously.
    cfg.power.rowProvisionFactor = 0.90;
    cfg.thermal.airflowProvisionFactor = 0.90;
    cfg.mode = SimMode::FlowLevel;
    cfg.stepLength = 5 * kMinute;
    cfg.horizon = kWeek;
    cfg.vmTrace.saasFraction = 0.5;
    cfg.vmTrace.endpointCount = 10;
    cfg.weather.climate = Climate::Temperate;
    cfg.seed = seed;
    return cfg;
}

SimConfig
smallTestScenario(std::uint64_t seed)
{
    SimConfig cfg;
    cfg.layout.aisleCount = 2;
    cfg.layout.rowsPerAisle = 2;
    cfg.layout.racksPerRow = 3;
    cfg.layout.serversPerRack = 4;
    cfg.layout.sku = GpuSku::A100;
    cfg.layout.upsCount = 4;
    // Rows are provisioned with a production diversity factor: the
    // whole row never draws nameplate TDP simultaneously.
    cfg.power.rowProvisionFactor = 0.90;
    cfg.thermal.airflowProvisionFactor = 0.90;
    cfg.mode = SimMode::FlowLevel;
    cfg.stepLength = 5 * kMinute;
    cfg.horizon = kDay;
    cfg.vmTrace.saasFraction = 0.5;
    cfg.vmTrace.endpointCount = 4;
    cfg.seed = seed;
    return cfg;
}

SimConfig
faultDrillScenario(std::uint64_t seed)
{
    SimConfig cfg = smallTestScenario(seed);
    // Heat wave: hot region, strong day-night swing, peaking
    // mid-afternoon.
    cfg.weather.climate = Climate::Hot;
    cfg.weather.annualMeanC = 30.0;
    cfg.weather.diurnalAmpC = 9.0;
    // Demand peaks into the hottest hours (the synchronized diurnal
    // the paper exploits, here working against the plant).
    cfg.demandPeakHour = 14.0;
    cfg.endpointPeakUtil = 0.55;
    // Tight airflow provisioning: the drill probes the cooling
    // margin, not nameplate slack.
    cfg.thermal.airflowProvisionFactor = 0.82;
    // Scripted chiller derate through the afternoon peak: the plant
    // loses a quarter of its cooling capacity fleet-wide while the
    // heat wave and the demand peak stack on top.
    ScriptedFault chiller;
    chiller.kind = FaultKind::Chiller;
    chiller.at = 11 * kHour;
    chiller.until = 18 * kHour;
    chiller.remainingFrac = 0.75;
    cfg.faults.scripted.push_back(chiller);
    return cfg;
}

} // namespace tapas
