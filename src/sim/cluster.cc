#include "sim/cluster.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

namespace {

/** Telemetry cadence (the paper's 10-minute sensor interval). */
constexpr SimTime kTelemetryPeriod = 10 * kMinute;
/** History span required before templates are trusted. */
constexpr SimTime kMinHistory = kDay;
/** Hardware frequency floor under capping. */
constexpr double kFreqFloor = 0.4;
/** Perf scaling exponent versus frequency (prefill-dominated). */
constexpr double kPerfFreqExponent = 0.8;

VmTraceConfig
normalizedVmTrace(const SimConfig &cfg)
{
    VmTraceConfig out = cfg.vmTrace;
    out.horizon = cfg.horizon;
    if (out.targetVmCount <= 0) {
        const int base = cfg.layout.aisleCount *
            cfg.layout.rowsPerAisle * cfg.layout.racksPerRow *
            cfg.layout.serversPerRack;
        const int base_racks = base / cfg.layout.serversPerRack;
        const int extra_racks =
            (base_racks * cfg.oversubscriptionPct + 99) / 100;
        const int total =
            base + extra_racks * cfg.layout.serversPerRack;
        // Keep ~15% placement slack: full clusters leave the
        // allocator no choices and starve every policy.
        out.targetVmCount = std::max(1, (total * 85) / 100);
    }
    return out;
}

WeatherConfig
normalizedWeather(const SimConfig &cfg)
{
    WeatherConfig out = cfg.weather;
    out.horizon = cfg.horizon + kDay;
    return out;
}

/**
 * Telemetry ring capacity: every series keeps at most the configured
 * retention window (default: the full horizon, so behavior matches
 * an unbounded store), in sensor-cadence samples.
 */
std::size_t
telemetryCapacity(const SimConfig &cfg)
{
    const SimTime retention = cfg.telemetryRetention > 0
        ? cfg.telemetryRetention
        : cfg.horizon;
    return static_cast<std::size_t>(retention / kTelemetryPeriod) + 2;
}

} // namespace

ClusterSim::ClusterSim(const SimConfig &config)
    : cfg(config), layout(cfg.layout),
      thermal(layout, cfg.thermal, mixSeed(cfg.seed, 0x111)),
      powerModel(cfg.power), cooling(layout, thermal),
      hierarchy(layout, powerModel),
      weatherModel(normalizedWeather(cfg), mixSeed(cfg.seed, 0x222)),
      vmGen(normalizedVmTrace(cfg), mixSeed(cfg.seed, 0x333)),
      bank(layout),
      perf(PerfModel::withReferenceSlo(
          layout.specs().front(),
          PerfParams::forSku(layout.specs().front().sku))),
      store(telemetryCapacity(config)),
      noiseRng(mixSeed(cfg.seed, 0x444))
{
    tapas_assert(cfg.stepLength > 0 && cfg.horizon > 0,
                 "step length and horizon must be positive");

    // Oversubscription racks are added after the plants froze their
    // provisioning (the budgets stay at design capacity).
    if (cfg.oversubscriptionPct > 0) {
        const int base_racks = static_cast<int>(layout.rackCount());
        const int extra_racks =
            (base_racks * cfg.oversubscriptionPct + 99) / 100;
        for (int i = 0; i < extra_racks; ++i) {
            layout.addRack(RowId(static_cast<std::uint32_t>(
                i % layout.rowCount())));
        }
        thermal.extend();
    }

    bank.offlineProfile(thermal, powerModel, mixSeed(cfg.seed, 0x555));
    refProfile = perf.profile(referenceConfig());
    refGoodput = refProfile.goodputTps;

    if (cfg.opTableEnabled) {
        const double step = cfg.opTableStepTps > 0.0
            ? cfg.opTableStepTps
            : refGoodput / 256.0;
        // The reference config has the largest goodput and flow
        // routing caps per-VM demand at 1.2x goodput, so 2x the
        // reference covers every profile's reachable demand; rarer
        // demands past the grid fall back to the exact solve.
        perf.enableOperatingPointTable(step, refGoodput * 2.0);
    }

    tapas = std::make_unique<TapasController>(
        cfg.policy, layout, cooling, hierarchy, &bank, &perf);
    failureMgr =
        std::make_unique<FailureManager>(cooling, hierarchy, layout);

    // Endpoint demand sized from the steady-state SaaS fleet share.
    const auto &sizes = vmGen.endpointVmCounts();
    double size_total = 0.0;
    for (int s : sizes)
        size_total += s;
    const double saas_steady =
        vmGen.config().targetVmCount * vmGen.config().saasFraction;
    std::vector<EndpointDemand> endpoints;
    for (std::size_t e = 0; e < sizes.size(); ++e) {
        EndpointDemand ep;
        ep.id = EndpointId(static_cast<std::uint32_t>(e));
        const double share =
            size_total > 0.0 ? sizes[e] / size_total : 0.0;
        ep.peakTokensPerS =
            cfg.endpointPeakUtil * refGoodput * saas_steady * share;
        // SaaS inference demand is synchronized across endpoints
        // (business-hours diurnal), the effect the paper exploits.
        ep.peakHour = cfg.demandPeakHour - 1.0 +
            static_cast<double>(e % 3);
        ep.customerCount = 40 + 10 * static_cast<int>(e % 4);
        endpoints.push_back(ep);
    }
    DemandNoise demand_noise;
    demand_noise.sigma = cfg.demandNoiseSigma;
    requestGen = std::make_unique<RequestGenerator>(
        std::move(endpoints), LengthDistribution{},
        mixSeed(cfg.seed, 0x666), demand_noise);

    vmTable.reset(vmGen.records().size());
    saasOpGpuPowerW.assign(vmGen.records().size(), 0.0);
    serverVm.assign(layout.serverCount(), npos);
    serverLoads.assign(layout.serverCount(), 0.0);
    serverDrawW.assign(layout.serverCount(), 0.0);
    gpusPerServer = layout.specs().front().gpusPerServer;
    const std::size_t gpus = layout.serverCount() *
        static_cast<std::size_t>(gpusPerServer);
    gpuPowerW.assign(gpus, 0.0);
    gpuTempC.assign(gpus, 25.0);
    hottestGpuC.assign(layout.serverCount(), 25.0);
    inletC.assign(layout.serverCount(), 22.0);

    // Fault engine: the configured plan plus the legacy scheduled
    // failures translated to scripted faults (thermal = every
    // aisle's AHU group, power = UPS 0 — the exact semantics the
    // old schedule walker applied). No plan, no engine, no step
    // overhead.
    {
        FaultPlan plan = cfg.faults;
        for (const FailureEvent &event : cfg.failures) {
            ScriptedFault fault;
            fault.at = event.at;
            fault.until = event.until;
            fault.kind =
                event.thermal ? FaultKind::Ahu : FaultKind::Ups;
            fault.target = event.thermal ? -1 : 0;
            fault.remainingFrac = event.remainingFrac;
            plan.scripted.push_back(fault);
        }
        if (plan.any()) {
            faultEngine = std::make_unique<FaultEngine>(
                plan, layout, cfg.horizon, cfg.seed);
        }
    }

    throttleAtC.reserve(layout.serverCount());
    for (const Server &server : layout.servers())
        throttleAtC.push_back(
            layout.specOf(server.id).throttleTemp.value());

    routeIndex.resize(vmGen.endpointVmCounts().size());
    buildViewInto(liveView);
    liveView.ownerGeneration = &viewGeneration;
    stampView();
    serverDrawWatts.assign(layout.serverCount(), Watts(0.0));
    drawsScratch.assign(static_cast<std::size_t>(gpusPerServer),
                        Watts(0.0));
    customerPowerScratch.assign(
        static_cast<std::size_t>(vmGen.config().iaasCustomerCount),
        0.0);
    customerCountScratch.assign(customerPowerScratch.size(), 0);
    endpointPowerScratch.assign(sizes.size(), 0.0);
    endpointCountScratch.assign(sizes.size(), 0);
}

std::size_t
ClusterSim::activeVmCount() const
{
    return activeVms.size();
}

void
ClusterSim::run()
{
    while (!finished())
        step();
}

void
ClusterSim::runSteps(int steps)
{
    for (int i = 0; i < steps && !finished(); ++i)
        step();
}

double
ClusterSim::vmPredictedPeakLoad(const VmRecord &record) const
{
    if (record.kind == VmKind::IaaS)
        return store.customerPredictedPeak(record.customer,
                                           kMinHistory);
    return store.endpointPredictedPeak(record.endpoint, kMinHistory);
}

void
ClusterSim::buildViewInto(ClusterView &out) const
{
    // Full rebuild (construction, tests, and the debug cross-check
    // against the incrementally maintained liveView). Everything
    // needed lives in the hot VM arrays; the cached predicted peaks
    // are exact because the underlying telemetry digests only move
    // on telemetry ticks (see refreshPredictedPeaks).
    out.layout = &layout;
    out.cooling = &cooling;
    out.power = &hierarchy;
    out.profiles = &bank;
    out.now = currentTime;
    out.outsideC = weatherModel.outsideAt(currentTime).value();
    out.dcLoadFrac = dcLoadFrac;
    out.serverLoads = serverLoads;
    out.occupied.assign(layout.serverCount(), false);
    for (std::size_t s = 0; s < serverVm.size(); ++s)
        out.occupied[s] = serverVm[s] != npos;
    out.vms.clear();
    const std::size_t n = vmTable.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (vmTable.active(i))
            out.vms.push_back(placedVmView(i));
    }
    out.snapshotEpoch = viewLoadEpoch;
}

void
ClusterSim::stampView()
{
    ++viewGeneration;
    liveView.stampedGeneration = viewGeneration;
}

void
ClusterSim::refreshViewSnapshot()
{
    // Lazy load/time re-sync of the maintained view: membership
    // (vms, occupied) is kept current eagerly by
    // viewInsertVm/viewRemoveVm and the migration planner, so only
    // the per-step snapshot fields move here — two packed-array
    // reads per placed VM instead of the full rebuild the old
    // makeView() paid two to three times per step.
    liveView.now = currentTime;
    liveView.outsideC = weatherModel.outsideAt(currentTime).value();
    liveView.dcLoadFrac = dcLoadFrac;
    liveView.serverLoads = serverLoads;
    for (PlacedVmView &pv : liveView.vms) {
        pv.currentLoad = vmTable.load[pv.id.index];
        pv.predictedPeakLoad = vmTable.predictedPeak[pv.id.index];
    }
    liveView.snapshotEpoch = viewLoadEpoch;
    stampView();
}

const ClusterView &
ClusterSim::currentView()
{
    if (liveView.snapshotEpoch != viewLoadEpoch)
        refreshViewSnapshot();
    return liveView;
}

std::size_t
ClusterSim::viewIndexOf(std::uint32_t vm_id) const
{
    // liveView.vms stays sorted by VM id (insertions keep it so),
    // mirroring the ascending-id order of a full rebuild.
    std::size_t lo = 0;
    std::size_t hi = liveView.vms.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (liveView.vms[mid].id.index < vm_id) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

void
ClusterSim::viewInsertVm(std::size_t vm_index)
{
    const std::size_t at =
        viewIndexOf(static_cast<std::uint32_t>(vm_index));
    // placedVmView() is the single construction site shared with the
    // full rebuild, so the incremental entry is field-for-field what
    // buildViewInto would produce.
    liveView.vms.insert(liveView.vms.begin() +
                            static_cast<std::ptrdiff_t>(at),
                        placedVmView(vm_index));
    liveView.occupied[vmTable.serverOf[vm_index]] = true;
    stampView();
}

void
ClusterSim::viewRemoveVm(std::size_t vm_index)
{
    const std::size_t at =
        viewIndexOf(static_cast<std::uint32_t>(vm_index));
    tapas_assert(at < liveView.vms.size() &&
                     liveView.vms[at].id.index == vm_index,
                 "VM %zu missing from the maintained view",
                 vm_index);
    liveView.vms.erase(liveView.vms.begin() +
                       static_cast<std::ptrdiff_t>(at));
    liveView.occupied[vmTable.serverOf[vm_index]] = false;
    stampView();
}

bool
ClusterSim::verifyClusterView()
{
    const ClusterView &live = currentView();
    if (live.snapshotEpoch != viewLoadEpoch)
        return false;
    buildViewInto(debugViewScratch);
    const ClusterView &fresh = debugViewScratch;
    if (live.now != fresh.now || live.outsideC != fresh.outsideC ||
        live.dcLoadFrac != fresh.dcLoadFrac ||
        live.serverLoads != fresh.serverLoads ||
        live.occupied != fresh.occupied ||
        live.vms.size() != fresh.vms.size()) {
        return false;
    }
    for (std::size_t i = 0; i < fresh.vms.size(); ++i) {
        const PlacedVmView &a = live.vms[i];
        const PlacedVmView &b = fresh.vms[i];
        if (a.id != b.id || a.kind != b.kind ||
            a.server != b.server || a.endpoint != b.endpoint ||
            a.customer != b.customer ||
            a.predictedPeakLoad != b.predictedPeakLoad ||
            a.currentLoad != b.currentLoad) {
            return false;
        }
    }
    return true;
}

PlacedVmView
ClusterSim::placedVmView(std::size_t vm_index) const
{
    // Single construction site for view entries: the full rebuild
    // (buildViewInto) and the incremental membership updates must
    // agree field for field.
    PlacedVmView pv;
    pv.id = VmId(static_cast<std::uint32_t>(vm_index));
    pv.kind =
        vmTable.isSaas(vm_index) ? VmKind::SaaS : VmKind::IaaS;
    pv.server = vmTable.server(vm_index);
    pv.endpoint = EndpointId(vmTable.endpointOf[vm_index]);
    pv.customer = CustomerId(vmTable.customerOf[vm_index]);
    pv.predictedPeakLoad = vmTable.predictedPeak[vm_index];
    pv.currentLoad = vmTable.load[vm_index];
    return pv;
}

void
ClusterSim::processFaults()
{
    if (faultEngine)
        faultEngine->advanceTo(currentTime, *failureMgr);
}

const std::vector<double> &
ClusterSim::observedGpuPower()
{
    // What the controller's sensors report. With no active sensor
    // fault this IS the ground-truth vector (no copy); under a fault
    // the affected servers' slices are corrupted in a scratch copy.
    if (!faultEngine || !faultEngine->anySensorFaultActive())
        return gpuPowerW;
    observedGpuPowerW = gpuPowerW;
    const int gpus = gpusPerServer;
    for (const Server &server : layout.servers()) {
        if (!faultEngine->sensorFaultActive(server.id))
            continue;
        faultEngine->corruptObservedGpuPower(
            server.id, currentTime,
            &observedGpuPowerW[server.id.index *
                               static_cast<std::size_t>(gpus)],
            gpus);
    }
    return observedGpuPowerW;
}

void
ClusterSim::maybeRefitProfiles()
{
    if (cfg.profileRefitPeriod <= 0 || currentTime == 0 ||
        currentTime % cfg.profileRefitPeriod != 0) {
        return;
    }
    bank.refitPowerFromTelemetry(store);
}

void
ClusterSim::processDepartures()
{
    // Hot scan over the placed VMs only (one SimTime read each);
    // the cold record is only touched for the rare VM actually
    // departing. Survivors compact into the scratch list, which
    // preserves ascending-id order.
    activeScratch.clear();
    for (std::uint32_t i : activeVms) {
        if (vmTable.departureAt[i] > currentTime) {
            activeScratch.push_back(i);
            continue;
        }
        if (vmTable.isSaas(i))
            routeIndexRemove(i);
        viewRemoveVm(i);
        serverVm[vmTable.serverOf[i]] = npos;
        vmTable.depart(i);
    }
    activeVms.swap(activeScratch);
}

void
ClusterSim::routeIndexAdd(std::size_t vm_index)
{
    const std::uint32_t endpoint = vmTable.endpointOf[vm_index];
    tapas_assert(endpoint < routeIndex.size(),
                 "endpoint %u beyond routing index", endpoint);
    std::vector<RouteCandidate> &list = routeIndex[endpoint];
    RouteCandidate cand;
    cand.vm = VmId(static_cast<std::uint32_t>(vm_index));
    cand.server = vmTable.server(vm_index);
    cand.engine = vmTable.engine[vm_index];
    // Keep the list sorted by VM id so candidates appear in the same
    // order a fresh VM-table scan would produce them.
    auto it = list.begin();
    while (it != list.end() && it->vm.index < cand.vm.index)
        ++it;
    list.insert(it, cand);
}

void
ClusterSim::routeIndexRemove(std::size_t vm_index)
{
    const std::uint32_t endpoint = vmTable.endpointOf[vm_index];
    tapas_assert(endpoint < routeIndex.size(),
                 "endpoint %u beyond routing index", endpoint);
    std::vector<RouteCandidate> &list = routeIndex[endpoint];
    for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->vm.index == vm_index) {
            list.erase(it);
            return;
        }
    }
    panic("VM %zu missing from its endpoint's routing index",
          vm_index);
}

void
ClusterSim::routeIndexUpdateServer(std::size_t vm_index)
{
    std::vector<RouteCandidate> &list =
        routeIndex[vmTable.endpointOf[vm_index]];
    for (RouteCandidate &cand : list) {
        if (cand.vm.index == vm_index) {
            cand.server = vmTable.server(vm_index);
            return;
        }
    }
    panic("VM %zu missing from its endpoint's routing index",
          vm_index);
}

bool
ClusterSim::verifyEndpointList(std::size_t endpoint_index) const
{
    std::size_t count = 0;
    const std::vector<RouteCandidate> &list =
        routeIndex[endpoint_index];
    for (std::size_t i = 0; i < vmTable.size(); ++i) {
        if (!vmTable.isSaas(i) ||
            vmTable.endpointOf[i] != endpoint_index) {
            continue;
        }
        if (count >= list.size())
            return false;
        const RouteCandidate &cand = list[count];
        if (cand.vm.index != i ||
            cand.server.index != vmTable.serverOf[i] ||
            cand.engine != vmTable.engine[i]) {
            return false;
        }
        ++count;
    }
    return count == list.size();
}

bool
ClusterSim::verifyRoutingIndex() const
{
    for (std::size_t e = 0; e < routeIndex.size(); ++e) {
        if (!verifyEndpointList(e))
            return false;
    }
    return true;
}

bool
ClusterSim::verifyVmTable() const
{
    if (!vmTable.consistent())
        return false;
    // The active-index list must hold exactly the placed VMs in
    // ascending order (the sweeps' iteration contract).
    {
        std::size_t pos = 0;
        for (std::size_t i = 0; i < vmTable.size(); ++i) {
            if (!vmTable.active(i))
                continue;
            if (pos >= activeVms.size() || activeVms[pos] != i)
                return false;
            ++pos;
        }
        if (pos != activeVms.size())
            return false;
    }
    // serverVm and the hot server column must be mutual inverses.
    std::size_t placed = 0;
    for (std::size_t i = 0; i < vmTable.size(); ++i) {
        if (!vmTable.active(i))
            continue;
        ++placed;
        const std::uint32_t s = vmTable.serverOf[i];
        if (s >= serverVm.size() || serverVm[s] != i)
            return false;
        // The cached peak must always equal a fresh store lookup.
        if (vmTable.predictedPeak[i] !=
            vmPredictedPeakLoad(vmTable.record(i))) {
            return false;
        }
    }
    std::size_t mapped = 0;
    for (std::size_t s = 0; s < serverVm.size(); ++s) {
        if (serverVm[s] == npos)
            continue;
        ++mapped;
        if (vmTable.serverOf[serverVm[s]] != s)
            return false;
    }
    return placed == mapped;
}

bool
ClusterSim::tryPlace(std::uint32_t vm_index)
{
    const VmRecord &rec = vmTable.record(vm_index);
    PlacementRequest request;
    request.id = rec.id;
    request.kind = rec.kind;
    request.endpoint = rec.endpoint;
    request.customer = rec.customer;
    request.predictedPeakLoad = vmPredictedPeakLoad(rec);

    const auto pick =
        tapas->allocator().place(request, currentView());
    if (!pick.has_value())
        return false;
    tapas_assert(serverVm[pick->index] == npos,
                 "allocator picked an occupied server");
    std::unique_ptr<InferenceEngine> engine;
    if (rec.kind == VmKind::SaaS) {
        engine = std::make_unique<InferenceEngine>(refProfile,
                                                   perf.slo());
    }
    vmTable.place(vm_index, *pick, std::move(engine),
                  request.predictedPeakLoad);
    serverVm[pick->index] = vm_index;
    // Sorted insert keeps the active list in the ascending-id order
    // the sweeps (and the maintained view) rely on.
    activeVms.insert(std::lower_bound(activeVms.begin(),
                                      activeVms.end(), vm_index),
                     vm_index);
    if (rec.kind == VmKind::SaaS)
        routeIndexAdd(vm_index);
    // place() stored the request's predicted peak, so the shared
    // construction site reproduces exactly what a view rebuild
    // would add.
    viewInsertVm(vm_index);
    ++simMetrics.vmsPlaced;
    return true;
}

void
ClusterSim::processArrivals()
{
    const auto &records = vmGen.records();
    while (arrivalCursor < records.size() &&
           records[arrivalCursor].arrival <= currentTime) {
        const VmRecord &record = records[arrivalCursor];
        ++arrivalCursor;
        if (record.departure <= currentTime)
            continue; // arrived and left between steps
        vmTable.admitRecord(record);
        if (!tryPlace(record.id.index)) {
            ++simMetrics.vmsRejected;
            waitingVms.push_back(record.id.index);
        }
    }
}

void
ClusterSim::tryPlaceWaiting()
{
    waitingScratch.clear();
    for (std::uint32_t vm_index : waitingVms) {
        if (vmTable.record(vm_index).departure <= currentTime)
            continue; // gave up waiting
        if (!tryPlace(vm_index))
            waitingScratch.push_back(vm_index);
    }
    waitingVms.swap(waitingScratch);
}

const std::vector<RouteCandidate> &
ClusterSim::endpointCandidates(EndpointId id)
{
    tapas_assert(id.index < routeIndex.size(),
                 "unknown endpoint %u", id.index);
#ifndef NDEBUG
    // Per-endpoint check only: the full-index sweep would make
    // debug routing quadratic in endpoint count per step.
    tapas_assert(verifyEndpointList(id.index),
                 "routing index diverged for endpoint %u", id.index);
#endif
    return routeIndex[id.index];
}

double
ClusterSim::effectiveGoodput(std::size_t vm_index) const
{
    const InferenceEngine *engine = vmTable.engine[vm_index];
    if (!engine || !engine->accepting())
        return 0.0;
    const double goodput = engine->profile().goodputTps;
    const double cap = vmTable.freqCap[vm_index];
    // pow(1, e) == 1 exactly; skip the call on the common path.
    return cap == 1.0 ? goodput
                      : goodput * std::pow(cap, kPerfFreqExponent);
}

void
ClusterSim::assignSaasLoadRequestMode(SimTime from, SimTime to)
{
    const double dt = static_cast<double>(to - from);
    const int gpus = gpusPerServer;
    stepDemandTps = 0.0;

    // Route this step's requests endpoint by endpoint.
    routedTokensScratch.assign(vmTable.size(), 0.0);
    demandFloorScratch.assign(vmTable.size(), 0.0);
    std::vector<double> &routed_tokens = routedTokensScratch;
    std::vector<double> &demand_floor = demandFloorScratch;
    for (const EndpointDemand &ep : requestGen->endpoints()) {
        const auto &candidates = endpointCandidates(ep.id);
        requestGen->generate(ep.id, from, to, requestsScratch);
        stepDemandTps += requestGen->demandTokensPerS(ep.id, from);
        if (candidates.empty())
            continue;
        // Configuration floor: even a VM that received little load
        // this step must stay provisioned for its fair share of the
        // endpoint (concentration shifts are sudden).
        const double fair_share =
            requestGen->demandTokensPerS(ep.id, from) /
            static_cast<double>(candidates.size());
        for (const RouteCandidate &cand : candidates)
            demand_floor[cand.vm.index] = fair_share;
        for (const Request &request : requestsScratch) {
            const VmId target = tapas->router().route(
                request, candidates, tapas->riskAssessor());
            if (!target.valid())
                continue;
            vmTable.engine[target.index]->enqueue(request);
            routed_tokens[target.index] +=
                request.promptTokens + request.outputTokens;
        }
    }

    // Advance every engine; harvest latency/quality metrics.
    for (std::uint32_t i : activeVms) {
        if (!vmTable.isSaas(i))
            continue;
        InferenceEngine *engine = vmTable.engine[i];
        engine->step(static_cast<double>(from),
                     static_cast<double>(to));
        const int active_gpus = engine->profile().activeGpus;
        vmTable.load[i] = engine->lastUtilization() *
            static_cast<double>(active_gpus) /
            static_cast<double>(gpus);
        vmTable.demandTps[i] = routed_tokens[i] / dt;
        vmTable.demandEmaTps[i] = std::max(
            0.6 * vmTable.demandEmaTps[i] +
                0.4 * vmTable.demandTps[i],
            demand_floor[i]);

        for (const CompletedRequest &done :
             engine->lastCompletions()) {
            ++simMetrics.requestsCompleted;
            simMetrics.ttftS.add(done.ttftS);
            simMetrics.tbtS.add(done.tbtS);
            const double tokens = done.request.promptTokens +
                done.request.outputTokens;
            simMetrics.totalTokens += tokens;
            simMetrics.qualityWeightedTokens +=
                tokens * done.quality;
            if (done.metSlo) {
                simMetrics.goodputTokens += tokens;
            } else {
                ++simMetrics.sloViolations;
            }
        }
    }
}

void
ClusterSim::assignSaasLoadFlowMode(SimTime from, SimTime to)
{
    // tapas-hot begin(flow-assign): per-step routing/assignment
    // sweep; allocation-free by contract (member scratch only —
    // tapas-lint rule R3 enforces this region).
    const SimTime mid = from + (to - from) / 2;
    const int gpus = gpusPerServer;
    const RiskAssessor *risk = tapas->riskAssessor();
    stepDemandTps = 0.0;

    // Clear stale assignments (reconfiguring VMs receive nothing).
    for (std::uint32_t i : activeVms) {
        if (vmTable.isSaas(i))
            vmTable.demandTps[i] = 0.0;
    }

    // Row budgets for the slack weighting, hoisted out of the
    // per-candidate loop (a handful of rows versus one provision
    // call per routable VM).
    const bool use_risk = risk && risk->fresh();
    if (use_risk) {
        rowPowerScratch.resize(layout.rowCount());
        for (const Row &row : layout.rows()) {
            rowPowerScratch[row.id.index] =
                hierarchy.effectiveRowProvision(row.id).value();
        }
    }

    for (const EndpointDemand &ep : requestGen->endpoints()) {
        const auto &candidates = endpointCandidates(ep.id);
        const double demand =
            requestGen->demandTokensPerS(ep.id, mid);
        stepDemandTps += demand;
        if (candidates.empty())
            continue;

        // Risk filter (TAPAS) with fallback to the full set.
        safeScratch.clear();
        std::vector<const RouteCandidate *> &safe = safeScratch;
        for (const RouteCandidate &cand : candidates) {
            if (!cand.engine->accepting())
                continue;
            if (use_risk && risk->risk(cand.server).any())
                continue;
            safeScratch.push_back(&cand);
        }
        if (safe.empty()) {
            for (const RouteCandidate &cand : candidates) {
                if (cand.engine->accepting())
                    safeScratch.push_back(&cand);
            }
        }
        if (safe.empty())
            continue;

        // Slack-weighted split (paper 4.2: route on the power and
        // thermal slacks of the underlying infrastructure), with
        // overload spill. Weight = capacity x row-power headroom.
        double total_cap = 0.0;
        double total_weight = 0.0;
        weightsScratch.assign(safe.size(), 0.0);
        std::vector<double> &weights = weightsScratch;
        for (std::size_t i = 0; i < safe.size(); ++i) {
            const double cap = safe[i]->engine->profile().goodputTps;
            double slack = 1.0;
            if (use_risk) {
                const ServerRisk &entry =
                    risk->risk(safe[i]->server);
                const double budget = rowPowerScratch
                    [layout.server(safe[i]->server).row.index];
                slack = budget > 0.0
                    ? std::clamp(entry.rowHeadroomW / budget, 0.05,
                                 1.0)
                    : 1.0;
            }
            weights[i] = cap * slack;
            total_cap += cap;
            total_weight += weights[i];
        }
        for (std::size_t i = 0; i < safe.size(); ++i) {
            const std::size_t vm = safe[i]->vm.index;
            const double cap = safe[i]->engine->profile().goodputTps;
            double share = total_weight > 0.0
                ? demand * weights[i] / total_weight
                : demand / static_cast<double>(safe.size());
            if (demand > total_cap) {
                share = cap +
                    (demand - total_cap) /
                        static_cast<double>(safe.size());
            }
            vmTable.demandTps[vm] = std::min(share, cap * 1.2);
            vmTable.demandEmaTps[vm] =
                0.6 * vmTable.demandEmaTps[vm] +
                0.4 * vmTable.demandTps[vm];
        }
    }

    // Advance engines (blackout progression) and pack the VMs with
    // demand into stride-1 lanes for one batched solve; zero-demand
    // VMs keep their exact fast path (zero busy time, idle GPU
    // power) without occupying a lane.
    opProfScratch.clear();
    opDemandScratch.clear();
    opVmScratch.clear();
    for (std::uint32_t i : activeVms) {
        if (!vmTable.isSaas(i))
            continue;
        InferenceEngine *engine = vmTable.engine[i];
        engine->step(static_cast<double>(from),
                     static_cast<double>(to));
        if (vmTable.demandTps[i] == 0.0) {
            vmTable.load[i] = 0.0;
            saasOpGpuPowerW[i] = perf.spec().gpuIdlePower.value();
            continue;
        }
        opProfScratch.push_back(&engine->profile());
        opDemandScratch.push_back(vmTable.demandTps[i]);
        opVmScratch.push_back(i);
    }

    // GPU-only batch: this pass never reads serverPower.
    opPointScratch.resize(opVmScratch.size());
    perf.operatingGpuPointBatch(opProfScratch.data(),
                                opDemandScratch.data(),
                                opVmScratch.size(),
                                opPointScratch.data());

    for (std::size_t lane = 0; lane < opVmScratch.size(); ++lane) {
        const std::uint32_t i = opVmScratch[lane];
        const PerfModel::OperatingPoint &op = opPointScratch[lane];
        vmTable.load[i] = op.busyFrac *
            static_cast<double>(opProfScratch[lane]->activeGpus) /
            static_cast<double>(gpus);
        // Demand and profile are now fixed for the step: cache the
        // base GPU power so computeDraws (and its capping/thermal
        // re-passes) read it instead of re-solving the perf model.
        saasOpGpuPowerW[i] = op.gpuPower.value();
    }
    // tapas-hot end(flow-assign)
}

void
ClusterSim::replayIaasLoads(SimTime t)
{
    // tapas-hot begin(iaas-replay)
    for (std::uint32_t i : activeVms) {
        if (vmTable.isIaas(i)) {
            vmTable.load[i] =
                vmGen.iaasLoadAt(vmTable.record(i), t);
        }
    }
    // tapas-hot end(iaas-replay)
}

void
ClusterSim::computeDraws()
{
    // tapas-hot begin(draws): the fleet power sweep, re-entered by
    // the capping and thermal loops; member scratch only (R3).
    const int gpus = gpusPerServer;
    drawsScratch.resize(static_cast<std::size_t>(gpus));
    std::vector<Watts> &draws = drawsScratch;

    for (const Server &server : layout.servers()) {
        const ServerSpec &spec = layout.specOf(server.id);
        const std::size_t s = server.id.index;
        const std::size_t vm_index = serverVm[s];

        if (vm_index == npos) {
            // Empty server: all-idle draws are deterministic per
            // spec, so compute heat/power once and replay the cached
            // values (bit-identical: same code path, same inputs).
            if (idleSpecCache != &spec) {
                for (int g = 0; g < gpus; ++g)
                    draws[static_cast<std::size_t>(g)] =
                        spec.gpuIdlePower;
                idleHeatCache = PowerModel::heatFraction(spec, draws);
                idleDrawWCache =
                    powerModel.serverPower(spec, draws,
                                           idleHeatCache)
                        .value();
                idleSpecCache = &spec;
            }
            serverLoads[s] = idleHeatCache;
            const double idle_w = spec.gpuIdlePower.value();
            for (int g = 0; g < gpus; ++g) {
                gpuPowerW[s * static_cast<std::size_t>(gpus) +
                          static_cast<std::size_t>(g)] = idle_w;
            }
            serverDrawW[s] = idleDrawWCache;
            serverDrawWatts[s] = Watts(idleDrawWCache);
            continue;
        }
        {
            if (vmTable.isIaas(vm_index)) {
                const Watts w = powerModel.gpuPower(
                    spec, vmTable.load[vm_index],
                    vmTable.freqCap[vm_index]);
                for (int g = 0; g < gpus; ++g)
                    draws[static_cast<std::size_t>(g)] = w;
            } else {
                InferenceEngine *engine = vmTable.engine[vm_index];
                const ConfigProfile &profile = engine->profile();
                const double idle = spec.gpuIdlePower.value();
                double base = idle;
                if (cfg.mode == SimMode::RequestLevel) {
                    // Measured operating point from the engine.
                    const double busy = engine->lastUtilization();
                    const double ps = engine->lastPrefillShare();
                    const double decode_w =
                        perf.decodeGpuPowerAt(
                                profile, engine->lastDecodeBatch())
                            .value();
                    const double prefill_w =
                        profile.prefill.gpuPower.value();
                    base = idle * (1.0 - busy) +
                        busy * (ps * prefill_w +
                                (1.0 - ps) * decode_w);
                } else {
                    // Same value assignSaasLoadFlowMode computed
                    // when it set this VM's load (bit-identical:
                    // operatingPointAt is deterministic in profile
                    // and demand, both unchanged since).
                    base = saasOpGpuPowerW[vm_index];
                }
                // Most servers run uncapped; skip the pow() then.
                const double cap = vmTable.freqCap[vm_index];
                const double capped = cap == 1.0
                    ? base
                    : idle + (base - idle) * std::pow(cap, 2.4);
                for (int g = 0; g < gpus; ++g) {
                    draws[static_cast<std::size_t>(g)] =
                        g < profile.activeGpus ? Watts(capped)
                                               : spec.gpuIdlePower;
                }
            }
        }

        // Server "load" for fans/airflow/telemetry is the normalized
        // GPU heat output, consistent with the fitted power curves.
        const double heat = PowerModel::heatFraction(spec, draws);
        serverLoads[s] = heat;
        for (int g = 0; g < gpus; ++g) {
            gpuPowerW[s * static_cast<std::size_t>(gpus) +
                      static_cast<std::size_t>(g)] =
                draws[static_cast<std::size_t>(g)].value();
        }
        const double draw_w =
            powerModel.serverPower(spec, draws, heat).value();
        serverDrawW[s] = draw_w;
        serverDrawWatts[s] = Watts(draw_w);
    }
    // tapas-hot end(draws)
}

void
ClusterSim::enforcePowerBudgets()
{
    // tapas-hot begin(power-cap)
    // computeDraws keeps serverDrawWatts current; assess writes into
    // the member scratch, so the capping loop allocates nothing.
    PowerAssessment &assessment = assessScratch;
    hierarchy.assess(serverDrawWatts, assessment);
    if (!assessment.anyViolation()) {
        lastPowerViolation = false;
        return;
    }
    ++simMetrics.powerCapSteps;

    const bool iaas_first = tapas->capIaasFirst();
    for (int iter = 0; iter < 6; ++iter) {
        if (!assessment.anyViolation())
            break;

        // Collect rows needing reduction (row-level or via UPS).
        rowOverScratch.assign(layout.rowCount(), 0);
        std::vector<char> &row_over = rowOverScratch;
        for (RowId row : assessment.overBudgetRows)
            row_over[row.index] = 1;
        for (UpsId ups : assessment.overBudgetUpses) {
            for (RowId row : layout.ups(ups).rows)
                row_over[row.index] = 1;
        }

        for (const Row &row : layout.rows()) {
            if (!row_over[row.id.index])
                continue;
            const double draw = assessment.rowDrawW[row.id.index];
            const double budget =
                assessment.rowBudgetW[row.id.index];
            const double ratio =
                std::clamp(budget / draw, 0.5, 1.0);

            // TAPAS spares SaaS while IaaS still has cap headroom.
            bool iaas_headroom = false;
            if (iaas_first) {
                for (ServerId sid : row.servers) {
                    const std::size_t vi = serverVm[sid.index];
                    if (vi != npos && vmTable.isIaas(vi) &&
                        vmTable.freqCap[vi] > kFreqFloor + 0.01) {
                        iaas_headroom = true;
                        break;
                    }
                }
            }

            for (ServerId sid : row.servers) {
                const std::size_t vi = serverVm[sid.index];
                if (vi == npos)
                    continue;
                if (iaas_first && iaas_headroom &&
                    vmTable.isSaas(vi)) {
                    continue;
                }
                vmTable.freqCap[vi] = std::max(
                    kFreqFloor,
                    vmTable.freqCap[vi] * std::pow(ratio, 0.6));
            }
        }
        computeDraws();
        hierarchy.assess(serverDrawWatts, assessment);
    }
    // A violation the capping loop could not converge away is a
    // genuine budget excursion (robustness accounting).
    lastPowerViolation = assessment.anyViolation();
    // tapas-hot end(power-cap)
}

void
ClusterSim::evaluateThermal(bool enforce)
{
    // tapas-hot begin(thermal)
    const int gpus = gpusPerServer;
    const Celsius outside = weatherModel.outsideAt(currentTime);

    // One sensor-noise draw per server per step; a noiseless model
    // needs no draws at all (the draw at sigma 0 is identically
    // zero). Bulk draws use the ziggurat stream (one uniform and a
    // table compare on ~98% of calls, versus log/sqrt/sincos per
    // Box-Muller pair) — the same distribution PR-2 adopted for the
    // profiling noise.
    noiseScratch.resize(layout.serverCount());
    if (cfg.thermal.noiseSigmaC > 0.0) {
        for (double &n : noiseScratch)
            n = noiseRng.gaussianFast(0.0, cfg.thermal.noiseSigmaC);
    } else {
        std::fill(noiseScratch.begin(), noiseScratch.end(), 0.0);
    }

    auto evaluate = [&]() {
        // Incremental aisle demand: one fused pass over the load
        // vector instead of a per-server fan-curve walk per aisle.
        cooling.updateDemands(serverLoads);
        overdrawScratch.resize(layout.aisleCount());
        for (const Aisle &aisle : layout.aisles()) {
            overdrawScratch[aisle.id.index] =
                cooling.cachedOverdrawFraction(aisle.id);
        }
        thermal.inletTemperatures(outside, dcLoadFrac,
                                  overdrawScratch, inletC);
        bool any_over = false;
        for (const Server &server : layout.servers()) {
            const std::size_t s = server.id.index;
            inletC[s] += noiseScratch[s];
            const std::size_t base =
                s * static_cast<std::size_t>(gpus);
            thermal.gpuTemperatures(server.id, Celsius(inletC[s]),
                                    &gpuPowerW[base],
                                    &gpuTempC[base]);
            // One fused scan: track the server's hottest GPU (fed
            // to telemetry/metrics) and the throttle breach (max >
            // throttle iff any GPU is over).
            double hottest =
                gpuTempC[base];
            for (int g = 1; g < gpus; ++g) {
                hottest = std::max(
                    hottest,
                    gpuTempC[base + static_cast<std::size_t>(g)]);
            }
            hottestGpuC[s] = hottest;
            if (hottest > throttleAtC[s])
                any_over = true;
        }
        return any_over;
    };

    bool over = evaluate();
    if (over)
        ++simMetrics.thermalThrottleSteps;
    if (!enforce)
        return;

    for (int iter = 0; iter < 5 && over; ++iter) {
        // Hardware throttle on every server with a hot GPU (the
        // evaluation above just refreshed the hottest-GPU cache).
        for (const Server &server : layout.servers()) {
            const std::size_t s = server.id.index;
            const bool hot = hottestGpuC[s] > throttleAtC[s];
            const std::size_t vi = serverVm[s];
            if (hot && vi != npos) {
                vmTable.freqCap[vi] = std::max(
                    kFreqFloor, vmTable.freqCap[vi] * 0.85);
            }
        }
        computeDraws();
        over = evaluate();
    }
    // tapas-hot end(thermal)
}

void
ClusterSim::recordTelemetry(SimTime t)
{
    if (t % kTelemetryPeriod != 0)
        return;
    const double outside = weatherModel.outsideAt(t).value();

    rowPowerScratch.assign(layout.rowCount(), 0.0);
    std::vector<double> &row_power = rowPowerScratch;
    for (const Server &server : layout.servers()) {
        const std::size_t s = server.id.index;
        ServerSample sample;
        sample.time = t;
        sample.inletC = static_cast<float>(inletC[s]);
        sample.hottestGpuC = static_cast<float>(hottestGpuC[s]);
        sample.serverPowerW = static_cast<float>(serverDrawW[s]);
        sample.gpuLoad = static_cast<float>(serverLoads[s]);
        sample.outsideC = static_cast<float>(outside);
        sample.dcLoadFrac = static_cast<float>(dcLoadFrac);
        // Sensor faults corrupt (or drop) the recorded sample; row
        // power keeps the true draw — PDU metering is a separate
        // instrument from the server's onboard sensors.
        if (!faultEngine ||
            !faultEngine->sensorFaultActive(server.id) ||
            faultEngine->corruptSample(server.id, t, sample)) {
            store.recordServer(server.id, sample);
        }
        row_power[server.row.index] += serverDrawW[s];
    }
    for (const Row &row : layout.rows())
        store.recordRowPower(row.id, t, row_power[row.id.index]);

    // Per-VM power attributed to customers/endpoints + load digests.
    // Flat accumulators indexed by customer/endpoint id instead of
    // per-call hash maps.
    std::fill(customerPowerScratch.begin(),
              customerPowerScratch.end(), 0.0);
    std::fill(customerCountScratch.begin(),
              customerCountScratch.end(), 0);
    std::fill(endpointPowerScratch.begin(),
              endpointPowerScratch.end(), 0.0);
    std::fill(endpointCountScratch.begin(),
              endpointCountScratch.end(), 0);
    for (std::uint32_t i : activeVms) {
        const std::uint32_t s = vmTable.serverOf[i];
        const double draw = serverDrawW[s];
        store.recordVmLoad(VmId(static_cast<std::uint32_t>(i)),
                           CustomerId(vmTable.customerOf[i]),
                           EndpointId(vmTable.endpointOf[i]), t,
                           serverLoads[s]);
        if (vmTable.isIaas(i)) {
            const std::uint32_t customer = vmTable.customerOf[i];
            tapas_assert(customer < customerPowerScratch.size(),
                         "customer %u beyond accumulator", customer);
            customerPowerScratch[customer] += draw;
            ++customerCountScratch[customer];
        } else {
            const std::uint32_t endpoint = vmTable.endpointOf[i];
            tapas_assert(endpoint < endpointPowerScratch.size(),
                         "endpoint %u beyond accumulator", endpoint);
            endpointPowerScratch[endpoint] += draw;
            ++endpointCountScratch[endpoint];
        }
    }
    for (std::size_t c = 0; c < customerPowerScratch.size(); ++c) {
        if (customerCountScratch[c] > 0) {
            store.recordCustomerVmPower(
                CustomerId(static_cast<std::uint32_t>(c)), t,
                customerPowerScratch[c] / customerCountScratch[c]);
        }
    }
    for (std::size_t e = 0; e < endpointPowerScratch.size(); ++e) {
        if (endpointCountScratch[e] > 0) {
            store.recordEndpointVmPower(
                EndpointId(static_cast<std::uint32_t>(e)), t,
                endpointPowerScratch[e] / endpointCountScratch[e]);
        }
    }

    // The load digests just moved: refresh the cached peaks so view
    // builds can read them without store lookups.
    refreshPredictedPeaks();
}

void
ClusterSim::refreshPredictedPeaks()
{
    // The digests are per customer/endpoint, so query each key once
    // into flat accumulator-sized scratch instead of one store
    // lookup per VM (many VMs share a key).
    std::vector<double> &customer_peak = customerPowerScratch;
    std::vector<double> &endpoint_peak = endpointPowerScratch;
    for (std::size_t c = 0; c < customer_peak.size(); ++c) {
        customer_peak[c] = store.customerPredictedPeak(
            CustomerId(static_cast<std::uint32_t>(c)), kMinHistory);
    }
    for (std::size_t e = 0; e < endpoint_peak.size(); ++e) {
        endpoint_peak[e] = store.endpointPredictedPeak(
            EndpointId(static_cast<std::uint32_t>(e)), kMinHistory);
    }
    for (std::uint32_t i : activeVms) {
        vmTable.predictedPeak[i] = vmTable.isIaas(i)
            ? customer_peak[vmTable.customerOf[i]]
            : endpoint_peak[vmTable.endpointOf[i]];
    }
}

void
ClusterSim::configuratorPass()
{
    if (!cfg.policy.configEnabled)
        return;
    const bool emergency = failureMgr->active() !=
        EmergencyKind::None;
    const bool emergency_changed = emergency != lastEmergency;
    lastEmergency = emergency;

    // Re-decide only when something material changed: demand moved
    // >15%, the emergency state flipped, or 15 minutes elapsed.
    instancesScratch.clear();
    std::vector<SaasInstanceRef> &instances = instancesScratch;
    for (std::uint32_t i : activeVms) {
        if (!vmTable.isSaas(i))
            continue;
        const double demand = std::max(vmTable.demandTps[i],
                                       vmTable.demandEmaTps[i]);
        VmTable::Cold &gate = vmTable.cold[i];
        const bool stale = gate.lastConfigAt < 0 ||
            currentTime - gate.lastConfigAt >= 15 * kMinute;
        const bool moved = gate.lastConfigDemand < 0.0 ||
            std::abs(demand - gate.lastConfigDemand) >
                0.15 * std::max(gate.lastConfigDemand, 1.0);
        if (!emergency_changed && !stale && !moved)
            continue;
        gate.lastConfigDemand = demand;
        gate.lastConfigAt = currentTime;
        SaasInstanceRef ref;
        ref.id = VmId(static_cast<std::uint32_t>(i));
        ref.server = vmTable.server(i);
        ref.engine = vmTable.engine[i];
        ref.demandTps = demand;
        instances.push_back(ref);
    }
    if (instances.empty())
        return;
    tapas->configurePass(currentView(), instances);
    simMetrics.reconfigs = tapas->reconfigsIssued();
}

void
ClusterSim::migrationPass()
{
    if (!cfg.policy.migrationEnabled ||
        !cfg.policy.placeEnabled || currentTime == 0 ||
        currentTime % cfg.policy.migrationPeriod != 0) {
        return;
    }
    MigrationPlanner planner(cfg.policy);
    // The planner explores what-ifs by overlay/undo on the live
    // view and leaves accepted moves applied to it; the table
    // updates below keep the simulator state consistent with what
    // the view already reflects.
    currentView();
    for (const MigrationPlan &move :
         planner.plan(liveView, cfg.policy.migrationMaxMoves)) {
        const std::size_t vm_index = serverVm[move.from.index];
        tapas_assert(vm_index != npos, "migration donor is empty");
        tapas_assert(vmTable.isSaas(vm_index),
                     "only SaaS VMs migrate");
        serverVm[move.from.index] = npos;
        serverVm[move.to.index] = vm_index;
        vmTable.serverOf[vm_index] = move.to.index;
        routeIndexUpdateServer(vm_index);
        vmTable.engine[vm_index]->beginMigration(
            cfg.policy.migrationDelayS);
        ++simMetrics.migrations;
    }
    // The planner rewrote view entries in place; restamp so any
    // copies detached before the pass read as stale.
    stampView();
}

void
ClusterSim::collectMetrics(bool power_capped, bool thermal_throttled)
{
    const double dt = static_cast<double>(cfg.stepLength);

    // Row draws and datacenter power.
    rowPowerScratch.assign(layout.rowCount(), 0.0);
    std::vector<double> &row_power = rowPowerScratch;
    double dc_power = 0.0;
    for (const Server &server : layout.servers()) {
        row_power[server.row.index] +=
            serverDrawW[server.id.index];
        dc_power += serverDrawW[server.id.index];
    }
    double peak_row = 0.0;
    double peak_row_frac = 0.0;
    for (const Row &row : layout.rows()) {
        peak_row = std::max(peak_row, row_power[row.id.index]);
        const double prov = hierarchy.rowProvision(row.id).value();
        if (prov > 0.0) {
            peak_row_frac = std::max(
                peak_row_frac, row_power[row.id.index] / prov);
        }
    }
    simMetrics.peakRowPowerW.add(currentTime, peak_row);
    simMetrics.peakRowPowerFrac.add(currentTime, peak_row_frac);
    simMetrics.datacenterPowerW.add(currentTime, dc_power);

    // Max of the per-server hottest-GPU cache equals the max over
    // every GPU (max of maxes), without the fleet*gpus rescan.
    double max_temp = 0.0;
    for (double t : hottestGpuC)
        max_temp = std::max(max_temp, t);
    simMetrics.maxGpuTempC.add(currentTime, max_temp);
    // IaaS performance penalty (capping deficit).
    double penalty = 0.0;
    int iaas_count = 0;
    for (std::uint32_t i : activeVms) {
        if (vmTable.isIaas(i)) {
            penalty += 1.0 - vmTable.freqCap[i];
            ++iaas_count;
        }
    }
    simMetrics.iaasPerfPenalty.add(
        currentTime, iaas_count ? penalty / iaas_count : 0.0);

    // SaaS service metrics.
    double served = 0.0;
    double quality_weighted = 0.0;
    if (cfg.mode == SimMode::FlowLevel) {
        const double mean_tokens =
            requestGen->meanTokensPerRequest();
        for (std::uint32_t i : activeVms) {
            if (!vmTable.isSaas(i))
                continue;
            const double goodput = effectiveGoodput(i);
            const double demand = vmTable.demandTps[i];
            const double vm_served = std::min(demand, goodput);
            served += vm_served;
            const double quality =
                vmTable.engine[i]->profile().quality;
            quality_weighted += vm_served * quality;
            simMetrics.totalTokens += vm_served * dt;
            simMetrics.qualityWeightedTokens +=
                vm_served * dt * quality;
            const double reqs = vm_served * dt / mean_tokens;
            simMetrics.requestsCompleted +=
                static_cast<std::uint64_t>(reqs);
            // Proportional SLO accounting: a transient overload
            // degrades the excess fraction of the VM's traffic,
            // not every request it serves that interval.
            const double excess =
                std::max(0.0, demand - goodput);
            const double viol_frac =
                demand > 0.0 ? excess / demand : 0.0;
            simMetrics.sloViolations +=
                static_cast<std::uint64_t>(reqs * viol_frac);
            simMetrics.goodputTokens +=
                vm_served * dt * (1.0 - viol_frac);
        }
    } else {
        for (std::uint32_t i : activeVms) {
            if (!vmTable.isSaas(i))
                continue;
            for (const CompletedRequest &done :
                 vmTable.engine[i]->lastCompletions()) {
                const double tokens = done.request.promptTokens +
                    done.request.outputTokens;
                served += tokens / dt;
                quality_weighted += done.quality * tokens / dt;
            }
        }
    }
    simMetrics.saasServedTps.add(currentTime, served);
    simMetrics.saasQuality.add(
        currentTime, served > 0.0 ? quality_weighted / served : 1.0);

    // --- Robustness accounting (fault drills). ---
    bool inlet_over = false;
    for (double c : inletC) {
        if (c > cfg.inletLimitC) {
            inlet_over = true;
            break;
        }
    }
    if (inlet_over)
        ++simMetrics.inletExcursionSteps;
    if (thermal_throttled)
        ++simMetrics.gpuExcursionSteps;
    if (lastPowerViolation)
        ++simMetrics.powerViolationSteps;

    const bool faults_active =
        faultEngine && faultEngine->anyComponentFaultActive();
    if (faults_active) {
        ++simMetrics.faultSteps;
        simMetrics.faultActiveS += cfg.stepLength;
        simMetrics.faultDemandTokens += stepDemandTps * dt;
        simMetrics.faultServedTokens += served * dt;
    }
    if (const RiskAssessor *risk = tapas->riskAssessor())
        simMetrics.quarantinedServerSteps += risk->quarantinedNow();

    // Time-to-recover: from a fault clearing to the first step the
    // plant runs clean (no excursion, violation, throttle, or cap).
    const bool stressed = inlet_over || lastPowerViolation ||
        thermal_throttled || power_capped;
    if (prevFaultsActive && !faults_active) {
        faultClearAt = currentTime;
        recoveringFromFault = true;
    }
    if (recoveringFromFault && !faults_active && !stressed) {
        const SimTime recovery = currentTime - faultClearAt;
        simMetrics.recoverySumS += recovery;
        simMetrics.maxRecoveryS =
            std::max(simMetrics.maxRecoveryS, recovery);
        ++simMetrics.recoveries;
        recoveringFromFault = false;
    }
    prevFaultsActive = faults_active;

    ++simMetrics.totalSteps;
}

void
ClusterSim::step()
{
    // Per-phase wall accounting: one clock read per phase boundary,
    // only when a perf harness asked for it (enablePhaseTiming) —
    // the clock reads are measurable against a small layout's step.
    const bool timing = phaseTiming_;
    auto mark = timing ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{};
    auto lap = [&mark, timing](double &acc) {
        if (!timing)
            return;
        const auto now = std::chrono::steady_clock::now();
        acc += std::chrono::duration<double>(now - mark).count();
        mark = now;
    };

    processFaults();
    processDepartures();
    // Placement and the risk refresh below share the maintained
    // view at the pre-load snapshot (last step's loads, this step's
    // membership) — the same state the per-phase rebuilds observed.
    processArrivals();
    tryPlaceWaiting();
    lap(phaseTimes_.placeS);

    // Risk refresh uses last step's sensor data (5-min cadence).
    // Skip even the lazy view re-sync on steps where the cache is
    // still fresh.
    if (tapas->riskRefreshDue(currentTime))
        tapas->maybeRefreshRisk(currentView(), observedGpuPower());
    lap(phaseTimes_.riskS);

    // Reset this step's hardware caps.
    std::fill(vmTable.freqCap.begin(), vmTable.freqCap.end(), 1.0);

    const SimTime from = currentTime;
    const SimTime to = currentTime + cfg.stepLength;
    if (cfg.mode == SimMode::RequestLevel) {
        assignSaasLoadRequestMode(from, to);
    } else {
        assignSaasLoadFlowMode(from, to);
    }
    replayIaasLoads(from);
    lap(phaseTimes_.assignS);

    computeDraws();
    lap(phaseTimes_.drawsS);
    const std::uint64_t caps_before = simMetrics.powerCapSteps;
    enforcePowerBudgets();
    lap(phaseTimes_.powerS);
    const std::uint64_t throttles_before =
        simMetrics.thermalThrottleSteps;
    evaluateThermal(true);

    // Hardware throttles carry into the next step's engine work.
    for (std::uint32_t i : activeVms) {
        if (vmTable.isSaas(i)) {
            vmTable.engine[i]->setHardwareThrottle(
                vmTable.freqCap[i]);
        }
    }
    lap(phaseTimes_.thermalS);

    recordTelemetry(from);
    maybeRefitProfiles();
    lap(phaseTimes_.telemetryS);
    // Loads (and on telemetry ticks, predicted peaks) moved: advance
    // the snapshot epoch so the configurator/migration phases see
    // this step's post-load state, exactly as their per-phase
    // rebuilds used to.
    ++viewLoadEpoch;
    configuratorPass();
    lap(phaseTimes_.configureS);
    migrationPass();
    lap(phaseTimes_.migrateS);
    collectMetrics(simMetrics.powerCapSteps > caps_before,
                   simMetrics.thermalThrottleSteps >
                       throttles_before);

    // Datacenter load feeds next step's inlet model.
    double dc_power = 0.0;
    for (double w : serverDrawW)
        dc_power += w;
    const double provision = hierarchy.totalProvision().value();
    dcLoadFrac = provision > 0.0
        ? std::clamp(dc_power / provision, 0.0, 1.5)
        : 0.5;

    currentTime = to;
    // Step boundary: time and the datacenter load fraction moved.
    ++viewLoadEpoch;
    lap(phaseTimes_.metricsS);

#ifndef NDEBUG
    tapas_assert(verifyVmTable(),
                 "SoA VM table diverged from the cold side table");
    tapas_assert(verifyClusterView(),
                 "incremental ClusterView diverged from a fresh "
                 "rebuild");
#endif
}

} // namespace tapas
