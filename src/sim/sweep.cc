#include "sim/sweep.hh"

#include "common/timer.hh"

namespace tapas {

std::vector<SweepOutcome>
ScenarioSweep::run(const std::vector<SweepJob> &jobs,
                   const Inspect &inspect) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    // One task per job: replications are coarse enough that finer
    // chunking buys nothing, and job-granular tasks keep the pool's
    // queue trivially balanced.
    pool.parallelChunks(
        jobs.size(),
        [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const SweepJob &job = jobs[i];
                WallTimer timer;
                ClusterSim sim(job.config);
                sim.run();
                SweepOutcome &out = outcomes[i];
                out.wallS = timer.elapsedS();
                out.name = job.name;
                out.seed = job.config.seed;
                out.metrics = sim.metrics();
                if (inspect)
                    inspect(job, sim);
            }
        },
        jobs.size());
    return outcomes;
}

std::vector<SweepJob>
ScenarioSweep::crossSeeds(const std::vector<SweepJob> &variants,
                          const std::vector<std::uint64_t> &seeds)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * seeds.size());
    for (const SweepJob &variant : variants) {
        for (std::uint64_t seed : seeds) {
            SweepJob job = variant;
            job.config.seed = seed;
            job.name = variant.name + "/s" + std::to_string(seed);
            out.push_back(job);
        }
    }
    return out;
}

} // namespace tapas
