#include "sim/sweep.hh"

#include <stdexcept>

#include "common/timer.hh"

namespace tapas {

std::vector<SweepOutcome>
ScenarioSweep::run(const std::vector<SweepJob> &jobs,
                   const Inspect &inspect) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    // One task per job: replications are coarse enough that finer
    // chunking buys nothing, and job-granular tasks keep the pool's
    // queue trivially balanced.
    pool.parallelChunks(
        jobs.size(),
        [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const SweepJob &job = jobs[i];
                // A failure in a grid of hundreds of replications is
                // undebuggable without knowing which one died:
                // rethrow with the job's identity (name carries the
                // grid coordinates, seed the replication) attached.
                try {
                    WallTimer timer;
                    ClusterSim sim(job.config);
                    sim.run();
                    SweepOutcome &out = outcomes[i];
                    out.wallS = timer.elapsedS();
                    out.name = job.name;
                    out.seed = job.config.seed;
                    out.metrics = sim.metrics();
                    if (inspect)
                        inspect(job, sim);
                } catch (const std::exception &err) {
                    throw std::runtime_error(
                        "sweep job '" + job.name + "' (index " +
                        std::to_string(i) + ", seed " +
                        std::to_string(job.config.seed) +
                        ") failed: " + err.what());
                } catch (...) {
                    throw std::runtime_error(
                        "sweep job '" + job.name + "' (index " +
                        std::to_string(i) + ", seed " +
                        std::to_string(job.config.seed) +
                        ") failed with a non-standard exception");
                }
            }
        },
        jobs.size());
    return outcomes;
}

std::vector<SweepJob>
ScenarioSweep::crossSeeds(const std::vector<SweepJob> &variants,
                          const std::vector<std::uint64_t> &seeds)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * seeds.size());
    for (const SweepJob &variant : variants) {
        for (std::uint64_t seed : seeds) {
            SweepJob job = variant;
            job.config.seed = seed;
            job.name = variant.name + "/s" + std::to_string(seed);
            out.push_back(job);
        }
    }
    return out;
}

std::vector<SweepJob>
ScenarioSweep::crossPolicies(const std::vector<SweepJob> &variants,
                             const std::vector<PolicyVariant>
                                 &policies)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * policies.size());
    for (const SweepJob &variant : variants) {
        for (const PolicyVariant &policy : policies) {
            SweepJob job = variant;
            job.config = variant.config.withPolicies(
                policy.place, policy.route, policy.config);
            job.name = variant.name + "/" + policy.name;
            out.push_back(job);
        }
    }
    return out;
}

std::vector<SweepJob>
ScenarioSweep::crossOversubscription(
    const std::vector<SweepJob> &variants,
    const std::vector<int> &percents)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * percents.size());
    for (const SweepJob &variant : variants) {
        for (int pct : percents) {
            SweepJob job = variant;
            job.config.oversubscriptionPct = pct;
            job.name =
                variant.name + "/os" + std::to_string(pct);
            out.push_back(job);
        }
    }
    return out;
}

std::vector<PolicyVariant>
ScenarioSweep::ablationMatrix()
{
    return {
        {"baseline", false, false, false},
        {"place", true, false, false},
        {"route", false, true, false},
        {"config", false, false, true},
        {"place+route", true, true, false},
        {"place+config", true, false, true},
        {"route+config", false, true, true},
        {"tapas", true, true, true},
    };
}

bool
writeSweepBenchJson(const std::string &path,
                    const std::string &bench,
                    const std::string &mode,
                    const std::vector<SweepOutcome> &outcomes)
{
    std::vector<BenchCase> cases;
    cases.reserve(outcomes.size());
    for (const SweepOutcome &outcome : outcomes) {
        BenchCase c;
        c.name = outcome.name;
        const SimMetrics &m = outcome.metrics;
        c.set("seed", static_cast<double>(outcome.seed));
        c.set("wall_s", outcome.wallS);
        c.set("steps", static_cast<double>(m.totalSteps));
        if (outcome.wallS > 0.0) {
            c.set("steps_per_s",
                  static_cast<double>(m.totalSteps) / outcome.wallS);
        }
        c.set("peak_row_power_frac", m.peakRowPowerFrac.maxValue());
        c.set("dc_power_mean_w", m.datacenterPowerW.mean());
        c.set("max_gpu_temp_c", m.maxGpuTempC.maxValue());
        c.set("power_capped_frac", m.powerCappedFraction());
        c.set("thermal_capped_frac", m.thermalCappedFraction());
        c.set("slo_attainment", m.sloAttainment());
        c.set("mean_quality", m.meanQuality());
        c.set("total_tokens", m.totalTokens);
        cases.push_back(std::move(c));
    }
    return writeBenchJson(path, bench, mode, cases);
}

} // namespace tapas
