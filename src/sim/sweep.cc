#include "sim/sweep.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/timer.hh"

namespace tapas {

namespace {

/** "grid/s11" -> "grid_s11": safe as a single path component. */
std::string
sanitizeJobName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool keep = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '-' || c == '.' || c == '_';
        if (!keep)
            c = '_';
    }
    return out;
}

/**
 * Attempt sidecar (next to the snapshot): how many times a process
 * has STARTED this job. Written before the job runs so that a crash
 * — even kill -9 — still consumes the attempt.
 */
std::string
attemptsPathFor(const std::string &ckpt_path)
{
    return ckpt_path + ".attempts";
}

int
readAttempts(const std::string &ckpt_path)
{
    Result<std::string> text =
        readFileText(attemptsPathFor(ckpt_path));
    if (!text.ok())
        return 0;
    int n = 0;
    for (char c : text.value()) {
        if (c < '0' || c > '9')
            break;
        n = n * 10 + (c - '0');
        if (n > 1000000)
            break;
    }
    return n;
}

void
writeAttempts(const std::string &ckpt_path, int attempts)
{
    const Error err = atomicWriteFile(
        attemptsPathFor(ckpt_path), std::to_string(attempts));
    if (!err.ok())
        warn("sweep recovery: cannot record attempt: %s",
             err.message().c_str());
}

/** One job's identity for failure reports. */
std::string
jobIdentity(const SweepJob &job, std::size_t index)
{
    return "sweep job '" + job.name + "' (index " +
        std::to_string(index) + ", seed " +
        std::to_string(job.config.seed) + ")";
}

} // namespace

std::string
SweepRecovery::pathFor(const std::string &job_name,
                       std::uint64_t seed) const
{
    return checkpointDir + "/" + sanitizeJobName(job_name) + "_s" +
        std::to_string(seed) + ".tapasckp";
}

std::vector<SweepOutcome>
ScenarioSweep::run(const std::vector<SweepJob> &jobs,
                   const Inspect &inspect,
                   const SweepRecovery &recovery) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    // Per-slot failure messages (empty = success): each worker
    // writes only its own slots, so no lock is needed, and the
    // aggregate report below comes out in job order.
    std::vector<std::string> failures(jobs.size());

    // One task per job: replications are coarse enough that finer
    // chunking buys nothing, and job-granular tasks keep the pool's
    // queue trivially balanced.
    pool.parallelChunks(
        jobs.size(),
        [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const SweepJob &job = jobs[i];
                const std::string ckpt = recovery.enabled()
                    ? recovery.pathFor(job.name, job.config.seed)
                    : std::string();
                SweepOutcome &out = outcomes[i];

                // Quarantine gate: a job whose process died
                // maxAttempts times is deterministically crashing —
                // report it instead of wedging the sweep on it
                // forever.
                if (recovery.enabled()) {
                    const int attempts = readAttempts(ckpt);
                    if (attempts >= recovery.maxAttempts) {
                        failures[i] = jobIdentity(job, i) +
                            " quarantined after " +
                            std::to_string(attempts) +
                            " crashing attempts; remove '" +
                            attemptsPathFor(ckpt) + "' to retry";
                        continue;
                    }
                    out.attempts = attempts + 1;
                    writeAttempts(ckpt, out.attempts);
                }

                // A failure in a grid of hundreds of replications
                // is undebuggable without knowing which one died:
                // record it with the job's identity (name carries
                // the grid coordinates, seed the replication) and
                // keep running the rest. The snapshot and attempt
                // sidecar are deliberately left behind so a
                // restarted sweep resumes — or quarantines — this
                // job.
                try {
                    WallTimer timer;
                    ClusterSim sim(job.config);
                    if (recovery.enabled() && fileExists(ckpt)) {
                        const Error err = sim.restoreCheckpoint(ckpt);
                        if (err.ok()) {
                            out.resumed = true;
                        } else {
                            // A torn or stale snapshot is
                            // recoverable: start the job over.
                            warn("sweep job '%s': discarding "
                                 "unusable snapshot: %s",
                                 job.name.c_str(),
                                 err.message().c_str());
                        }
                    }
                    if (recovery.enabled()) {
                        const SimTime step =
                            std::max<SimTime>(1,
                                              job.config.stepLength);
                        const int chunk =
                            static_cast<int>(std::clamp<SimTime>(
                                recovery.checkpointPeriod / step, 1,
                                1 << 30));
                        while (!sim.finished()) {
                            sim.runSteps(chunk);
                            const Error err = sim.saveCheckpoint(ckpt);
                            if (!err.ok())
                                warn("sweep job '%s': snapshot "
                                     "failed: %s",
                                     job.name.c_str(),
                                     err.message().c_str());
                        }
                    } else {
                        sim.run();
                    }
                    out.wallS = timer.elapsedS();
                    out.name = job.name;
                    out.seed = job.config.seed;
                    out.metrics = sim.metrics();
                    if (inspect)
                        inspect(job, sim);
                    if (recovery.enabled()) {
                        removeFileIfExists(ckpt);
                        removeFileIfExists(attemptsPathFor(ckpt));
                    }
                } catch (const std::exception &err) {
                    failures[i] = jobIdentity(job, i) +
                        " failed: " + err.what();
                } catch (...) {
                    failures[i] = jobIdentity(job, i) +
                        " failed with a non-standard exception";
                }
            }
        },
        jobs.size());

    const std::size_t failed = static_cast<std::size_t>(
        std::count_if(failures.begin(), failures.end(),
                      [](const std::string &f) {
                          return !f.empty();
                      }));
    if (failed) {
        std::string report = std::to_string(failed) + " of " +
            std::to_string(jobs.size()) + " sweep jobs failed:";
        for (const std::string &f : failures) {
            if (!f.empty())
                report += "\n  " + f;
        }
        throw std::runtime_error(report);
    }
    return outcomes;
}

std::vector<SweepJob>
ScenarioSweep::crossSeeds(const std::vector<SweepJob> &variants,
                          const std::vector<std::uint64_t> &seeds)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * seeds.size());
    for (const SweepJob &variant : variants) {
        for (std::uint64_t seed : seeds) {
            SweepJob job = variant;
            job.config.seed = seed;
            job.name = variant.name + "/s" + std::to_string(seed);
            out.push_back(job);
        }
    }
    return out;
}

std::vector<SweepJob>
ScenarioSweep::crossPolicies(const std::vector<SweepJob> &variants,
                             const std::vector<PolicyVariant>
                                 &policies)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * policies.size());
    for (const SweepJob &variant : variants) {
        for (const PolicyVariant &policy : policies) {
            SweepJob job = variant;
            job.config = variant.config.withPolicies(
                policy.place, policy.route, policy.config);
            job.name = variant.name + "/" + policy.name;
            out.push_back(job);
        }
    }
    return out;
}

std::vector<SweepJob>
ScenarioSweep::crossOversubscription(
    const std::vector<SweepJob> &variants,
    const std::vector<int> &percents)
{
    std::vector<SweepJob> out;
    out.reserve(variants.size() * percents.size());
    for (const SweepJob &variant : variants) {
        for (int pct : percents) {
            SweepJob job = variant;
            job.config.oversubscriptionPct = pct;
            job.name =
                variant.name + "/os" + std::to_string(pct);
            out.push_back(job);
        }
    }
    return out;
}

std::vector<PolicyVariant>
ScenarioSweep::ablationMatrix()
{
    return {
        {"baseline", false, false, false},
        {"place", true, false, false},
        {"route", false, true, false},
        {"config", false, false, true},
        {"place+route", true, true, false},
        {"place+config", true, false, true},
        {"route+config", false, true, true},
        {"tapas", true, true, true},
    };
}

bool
writeSweepBenchJson(const std::string &path,
                    const std::string &bench,
                    const std::string &mode,
                    const std::vector<SweepOutcome> &outcomes)
{
    std::vector<BenchCase> cases;
    cases.reserve(outcomes.size());
    for (const SweepOutcome &outcome : outcomes) {
        BenchCase c;
        c.name = outcome.name;
        const SimMetrics &m = outcome.metrics;
        c.set("seed", static_cast<double>(outcome.seed));
        c.set("wall_s", outcome.wallS);
        c.set("steps", static_cast<double>(m.totalSteps));
        if (outcome.wallS > 0.0) {
            c.set("steps_per_s",
                  static_cast<double>(m.totalSteps) / outcome.wallS);
        }
        c.set("peak_row_power_frac", m.peakRowPowerFrac.maxValue());
        c.set("dc_power_mean_w", m.datacenterPowerW.mean());
        c.set("max_gpu_temp_c", m.maxGpuTempC.maxValue());
        c.set("power_capped_frac", m.powerCappedFraction());
        c.set("thermal_capped_frac", m.thermalCappedFraction());
        c.set("slo_attainment", m.sloAttainment());
        c.set("mean_quality", m.meanQuality());
        c.set("total_tokens", m.totalTokens);
        cases.push_back(std::move(c));
    }
    return writeBenchJson(path, bench, mode, cases);
}

} // namespace tapas
