/**
 * @file
 * Structure-of-arrays VM table for the cluster simulator's hot path.
 *
 * Every per-step sweep (demand assignment, draw computation, power
 * capping, thermal throttling, metric collection) walks the whole VM
 * population but touches only a handful of scalar fields. Keeping
 * those fields in parallel arrays means a sweep streams a few packed
 * bytes per VM instead of dragging the full record/engine state
 * through cache. Cold state — the trace record, engine ownership, and
 * the configurator's change-gate — lives in a side table indexed by
 * the same VM id and is only touched on placement, departure, and
 * configuration events.
 */

#ifndef TAPAS_SIM_VMTABLE_HH
#define TAPAS_SIM_VMTABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "workload/vmtrace.hh"

namespace tapas {

class Archive;
class InferenceEngine;

/** Hot placement/service state of a VM slot (Empty = not placed). */
enum class VmSlot : std::uint8_t { Empty = 0, Iaas = 1, Saas = 2 };

/**
 * SoA VM table: hot per-step arrays plus a cold side table, all
 * indexed by VmId (the trace pre-assigns dense ids).
 */
class VmTable
{
  public:
    static constexpr std::uint32_t kNoServer =
        Id<ServerTag>::invalidIndex;

    /** Size every array for @p n VM slots, all empty. */
    void reset(std::size_t n);

    std::size_t size() const { return slot.size(); }

    // ------------------------------------------------ hot arrays --
    // Public by design: the simulator's sweeps iterate them directly.

    /** Active flag and service kind in one byte. */
    std::vector<VmSlot> slot;
    /** Hosting server index; kNoServer while unplaced. */
    std::vector<std::uint32_t> serverOf;
    /** GPU load fraction this step. */
    std::vector<double> load;
    /** Hardware frequency cap applied this step (1 = uncapped). */
    std::vector<double> freqCap;
    /** Token demand routed this step (SaaS). */
    std::vector<double> demandTps;
    /** Smoothed demand used for configuration decisions. */
    std::vector<double> demandEmaTps;
    /** Departure time, mirrored hot for the per-step departure scan. */
    std::vector<SimTime> departureAt;
    /** Raw serving-engine pointer (SaaS); cold table owns it. */
    std::vector<InferenceEngine *> engine;
    /** Owning endpoint index, mirrored hot for view building. */
    std::vector<std::uint32_t> endpointOf;
    /** Owning customer index, mirrored hot for view building. */
    std::vector<std::uint32_t> customerOf;
    /**
     * Cached predicted peak load. The underlying telemetry digests
     * only change on telemetry ticks, so the cache is refreshed
     * there (and on placement) and is otherwise exact.
     */
    std::vector<double> predictedPeak;

    // ------------------------------------------- cold side table --

    /** Rarely-touched per-VM state. */
    struct Cold
    {
        VmRecord record;
        /** SaaS only. */
        std::unique_ptr<InferenceEngine> engineOwner;
        /** Demand at the last configuration decision (change gate). */
        double lastConfigDemand = -1.0;
        /** Time of the last configuration decision. */
        SimTime lastConfigAt = -1;
    };

    std::vector<Cold> cold;

    // ------------------------------------------------- accessors --

    bool active(std::size_t i) const
    { return slot[i] != VmSlot::Empty; }

    bool isSaas(std::size_t i) const
    { return slot[i] == VmSlot::Saas; }

    bool isIaas(std::size_t i) const
    { return slot[i] == VmSlot::Iaas; }

    ServerId server(std::size_t i) const
    { return ServerId(serverOf[i]); }

    const VmRecord &record(std::size_t i) const
    { return cold[i].record; }

    InferenceEngine *engineAt(std::size_t i) const
    { return engine[i]; }

    // ------------------------------------------------ mutations --

    /**
     * Install an arriving VM's trace record (it may wait unplaced;
     * only place() flips the slot active).
     */
    void admitRecord(const VmRecord &record);

    /**
     * Mark slot @p i placed on @p server, taking engine ownership
     * (null for IaaS) and caching @p predicted_peak.
     */
    void place(std::size_t i, ServerId server,
               std::unique_ptr<InferenceEngine> engine_owner,
               double predicted_peak);

    /** Release slot @p i (departure): engine destroyed, state reset. */
    void depart(std::size_t i);

    /**
     * Structural consistency of the hot mirrors against the cold
     * side table (tests; debug builds assert it per step).
     */
    bool consistent() const;

    /**
     * Serialize/restore every hot array and the cold side table,
     * including owned engine state; the raw engine mirror is
     * re-derived from the restored owners.
     */
    void checkpointState(Archive &ar);
};

} // namespace tapas

#endif // TAPAS_SIM_VMTABLE_HH
