/**
 * @file
 * ScenarioSweep: parallel execution of independent ClusterSim
 * replications (seeds x configurations) across a thread pool.
 *
 * Every job is a self-contained simulation — its own layout, models,
 * and RNG streams derived from the job's seed — so running jobs
 * concurrently is deterministic: results depend only on each job's
 * SimConfig, never on thread count or scheduling. This is what the
 * paper's Fig. 16 Pareto sweeps, Fig. 19 week-long runs, and the
 * ablation grids need to finish at interactive speed.
 */

#ifndef TAPAS_SIM_SWEEP_HH
#define TAPAS_SIM_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "sim/cluster.hh"
#include "sim/config.hh"

namespace tapas {

/** One replication: a named, fully specified simulation. */
struct SweepJob
{
    std::string name;
    SimConfig config;
};

/** One named policy-toggle combination for policy-matrix grids. */
struct PolicyVariant
{
    std::string name;
    bool place = false;
    bool route = false;
    bool config = false;
};

/** Result of one replication. */
struct SweepOutcome
{
    std::string name;
    std::uint64_t seed = 0;
    /** Wall-clock seconds this replication took. */
    double wallS = 0.0;
    /** Full metric set of the finished run. */
    SimMetrics metrics;
    /** True when this run resumed from a recovery snapshot. */
    bool resumed = false;
    /** Process attempts this job has consumed (1 = first try). */
    int attempts = 1;
};

/**
 * Crash-recovery policy for long sweeps. With a checkpoint
 * directory set, every job periodically snapshots its state
 * (atomic write-rename), a restarted sweep resumes each incomplete
 * job from its last good snapshot, and a job whose process keeps
 * dying is quarantined after @ref maxAttempts rather than wedging
 * the sweep forever (see docs/checkpoint-format.md).
 */
struct SweepRecovery
{
    /**
     * Directory (must exist) for per-job snapshots and attempt
     * sidecars; empty disables recovery entirely.
     */
    std::string checkpointDir;
    /** Simulated time between snapshots. */
    SimTime checkpointPeriod = kHour;
    /**
     * Attempts (first try included) a job may consume before it is
     * quarantined as deterministically crashing. Attempts are
     * counted in a sidecar written BEFORE the job runs, so a
     * kill -9 mid-job still consumes one.
     */
    int maxAttempts = 3;

    bool enabled() const { return !checkpointDir.empty(); }

    /** Snapshot path for @p job_name / @p seed (name sanitized). */
    std::string pathFor(const std::string &job_name,
                        std::uint64_t seed) const;
};

/** Parallel scenario-sweep driver. */
class ScenarioSweep
{
  public:
    /**
     * Callback run on the finished simulation (same worker thread)
     * before it is destroyed; use it to extract state beyond
     * SimMetrics (telemetry, profiles, layouts).
     */
    using Inspect =
        std::function<void(const SweepJob &, ClusterSim &)>;

    explicit ScenarioSweep(ThreadPool &pool) : pool(pool) {}

    /**
     * Run every job to its horizon; outcomes are returned in job
     * order regardless of completion order.
     *
     * A failing job does NOT abandon the rest of the grid: every
     * remaining job still runs, and the failures are then reported
     * together in one std::runtime_error whose message carries each
     * dead job's identity (name, index, seed) and cause.
     *
     * With @p recovery enabled, each job snapshots periodically,
     * resumes from its last good snapshot when one exists (corrupt
     * snapshots are discarded with a warning and the job starts
     * fresh), and is quarantined — reported as failed without
     * running — once it has consumed recovery.maxAttempts attempts.
     */
    std::vector<SweepOutcome>
    run(const std::vector<SweepJob> &jobs,
        const Inspect &inspect = {},
        const SweepRecovery &recovery = {}) const;

    /** Cartesian helper: one job per (base variant, seed). */
    static std::vector<SweepJob>
    crossSeeds(const std::vector<SweepJob> &variants,
               const std::vector<std::uint64_t> &seeds);

    /** Cartesian helper: one job per (variant, policy combo). */
    static std::vector<SweepJob>
    crossPolicies(const std::vector<SweepJob> &variants,
                  const std::vector<PolicyVariant> &policies);

    /**
     * Cartesian helper: one job per (variant, oversubscription
     * percentage) — racks added beyond frozen provisioning.
     */
    static std::vector<SweepJob>
    crossOversubscription(const std::vector<SweepJob> &variants,
                          const std::vector<int> &percents);

    /**
     * The paper's eight-way ablation matrix (Fig. 20): every
     * combination of the place/route/config policies from Baseline
     * to full TAPAS.
     */
    static std::vector<PolicyVariant> ablationMatrix();

  private:
    ThreadPool &pool;
};

/**
 * Emit sweep outcomes as a machine-readable `BENCH_<name>.json`
 * (same trajectory format as the perf benches): one case per
 * outcome carrying wall time, steps/s, and the headline evaluation
 * metrics. Returns false (after warning) if the file cannot be
 * written.
 */
bool writeSweepBenchJson(const std::string &path,
                         const std::string &bench,
                         const std::string &mode,
                         const std::vector<SweepOutcome> &outcomes);

} // namespace tapas

#endif // TAPAS_SIM_SWEEP_HH
