/**
 * @file
 * The discrete-time cluster simulator (paper Section 5.1).
 *
 * Each step: VM departures/arrivals (via the placement policy), SaaS
 * demand generation and routing, engine execution (request-level) or
 * flow assignment (flow-level), IaaS load replay, ground-truth power
 * aggregation with capping enforcement, airflow/thermal evaluation
 * with hardware throttling, telemetry recording, the TAPAS risk and
 * configuration passes, and metric collection.
 *
 * Ground truth (dcsim models) advances the world; TAPAS reads only
 * its fitted profiles (telemetry/ProfileBank) and observed sensor
 * values, mirroring the production methodology.
 *
 * The VM population lives in a structure-of-arrays table
 * (sim/vmtable.hh): per-step sweeps iterate packed hot arrays; the
 * trace records, engines, and configuration-gate state sit in a cold
 * side table touched only on placement/departure/configuration.
 */

#ifndef TAPAS_SIM_CLUSTER_HH
#define TAPAS_SIM_CLUSTER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/failure.hh"
#include "core/faults.hh"
#include "core/migration.hh"
#include "core/tapas.hh"
#include "llm/engine.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/vmtable.hh"
#include "telemetry/history.hh"
#include "telemetry/templates.hh"
#include "workload/requests.hh"
#include "workload/vmtrace.hh"
#include "workload/weather.hh"

namespace tapas {

class Archive;

/**
 * Cumulative wall-clock seconds spent in each step-loop phase since
 * construction. Off by default — the clock reads are measurable
 * against a small layout's ~10us step — and switched on by perf
 * harnesses via enablePhaseTiming(); bench_step_loop emits the
 * per-step breakdown into BENCH_step_loop.json.
 */
struct StepPhaseTimes
{
    /** Failure schedule + departures/arrivals + placement. */
    double placeS = 0.0;
    /** Risk-assessor refresh. */
    double riskS = 0.0;
    /** SaaS load assignment (flow or request mode) + IaaS replay. */
    double assignS = 0.0;
    /** Ground-truth draw aggregation (first computeDraws). */
    double drawsS = 0.0;
    /** Power-budget enforcement (capping iterations). */
    double powerS = 0.0;
    /** Airflow/thermal evaluation + hardware throttling. */
    double thermalS = 0.0;
    /** Telemetry recording + predicted-peak refresh. */
    double telemetryS = 0.0;
    /** Configurator pass. */
    double configureS = 0.0;
    /** Migration pass. */
    double migrateS = 0.0;
    /** Metric collection + step bookkeeping. */
    double metricsS = 0.0;
};

/** End-to-end cluster simulation. */
class ClusterSim
{
  public:
    explicit ClusterSim(const SimConfig &config);

    /** Run to the horizon. */
    void run();

    /** Run a limited number of steps (incremental drive for tests). */
    void runSteps(int steps);

    SimTime now() const { return currentTime; }
    bool finished() const { return currentTime >= cfg.horizon; }

    const SimConfig &config() const { return cfg; }
    const SimMetrics &metrics() const { return simMetrics; }
    const DatacenterLayout &datacenter() const { return layout; }
    const ProfileBank &profiles() const { return bank; }
    const TelemetryStore &telemetry() const { return store; }
    const PerfModel &perfModel() const { return perf; }
    TapasController &controller() { return *tapas; }
    FailureManager &failures() { return *failureMgr; }
    /** The fault-injection engine, or nullptr when the config has
     *  neither a fault plan nor legacy failure events. */
    FaultEngine *faultInjector() { return faultEngine.get(); }
    const FaultEngine *faultInjector() const
    { return faultEngine.get(); }
    const WeatherModel &weather() const { return weatherModel; }
    const VmTraceGenerator &vmTrace() const { return vmGen; }

    /** Live VM table (index = VmId), structure-of-arrays. */
    const VmTable &vms() const { return vmTable; }

    /** Count of currently placed VMs. */
    std::size_t activeVmCount() const;

    /** Reference goodput of the default SaaS configuration. */
    double referenceGoodputTps() const { return refGoodput; }

    /** Per-server draw of the last completed step, watts. */
    const std::vector<double> &lastServerDrawW() const
    { return serverDrawW; }

    /** Cumulative per-phase step-loop timing since construction. */
    const StepPhaseTimes &phaseTimes() const { return phaseTimes_; }

    /** Turn on per-phase step timing (see StepPhaseTimes). */
    void enablePhaseTiming() { phaseTiming_ = true; }

    /** Per-GPU temperature of the last completed step. */
    const std::vector<double> &lastGpuTempC() const
    { return gpuTempC; }

    /**
     * Consistency check of the persistent per-endpoint routing index
     * against a fresh scan of the VM table (tests; debug builds also
     * assert this on every candidate lookup).
     */
    bool verifyRoutingIndex() const;

    /**
     * Consistency of the SoA hot arrays against the cold side table
     * and the server map — what a fresh AoS scan would contain
     * (tests; debug builds assert it every step).
     */
    bool verifyVmTable() const;

    /**
     * Consistency of the incrementally maintained ClusterView
     * against a freshly rebuilt one at the current snapshot epoch
     * (tests; debug builds assert it every step). Re-syncs the
     * maintained view to the current epoch first.
     */
    bool verifyClusterView();

    // ------------------------------- checkpoint/restore (durability)

    /**
     * Persist the complete stepping state to @p path (atomic
     * write-rename; see docs/checkpoint-format.md). A sim restored
     * from the file steps bit-identically to this one: every metric
     * and stateDigest() match a straight-through run at every later
     * step boundary, fault timelines and sensor corruption included.
     */
    Error saveCheckpoint(const std::string &path);

    /**
     * Replace this sim's state with a checkpoint written by a sim of
     * the SAME configuration. The target must be freshly constructed
     * or otherwise share the checkpoint writer's SimConfig: a config
     * digest mismatch is rejected with ErrorCode::Mismatch, and
     * corrupted or truncated files with ErrorCode::Corrupt /
     * ErrorCode::Version. The sim is untouched by errors detected
     * before state application (bad magic/CRC/length/version/config
     * — every realistic crash artifact); a payload that passes those
     * checks but decodes inconsistently still returns Corrupt, but
     * the sim must then be discarded.
     */
    Error restoreCheckpoint(const std::string &path);

    /**
     * 64-bit FNV-1a digest over the full serialized fleet state:
     * cheap divergence detection between a restored and a
     * straight-through run. Not const: building the byte stream
     * walks the same checkpointState() code path as saveCheckpoint.
     */
    std::uint64_t stateDigest();

    /**
     * Digest of the configuration knobs that shape serialized state
     * (layout sizes, horizon, seed, policies, fault plan...); stored
     * in every checkpoint header and checked on restore.
     */
    std::uint64_t configDigest() const;

  private:
    SimConfig cfg;
    DatacenterLayout layout;
    ThermalModel thermal;
    PowerModel powerModel;
    CoolingPlant cooling;
    PowerHierarchy hierarchy;
    WeatherModel weatherModel;
    VmTraceGenerator vmGen;
    ProfileBank bank;
    PerfModel perf;
    std::unique_ptr<TapasController> tapas;
    std::unique_ptr<FailureManager> failureMgr;
    std::unique_ptr<RequestGenerator> requestGen;
    TelemetryStore store;
    SimMetrics simMetrics;
    Rng noiseRng;

    SimTime currentTime = 0;
    std::size_t arrivalCursor = 0;
    VmTable vmTable;
    /**
     * Indices of currently placed VMs, ascending. The VM table keeps
     * a slot per trace record for the whole horizon, so per-step
     * sweeps iterate this dense list (same ascending-id order as a
     * full table scan) instead of walking every slot that ever
     * existed. Maintained on place/depart; debug builds verify it
     * against the slot flags every step.
     */
    std::vector<std::uint32_t> activeVms;
    /** Compaction scratch for the departure sweep. */
    std::vector<std::uint32_t> activeScratch;
    /** server index -> vm index (or npos). */
    std::vector<std::size_t> serverVm;
    std::vector<std::uint32_t> waitingVms;
    /** Fault-injection timeline (nullptr = faults disabled). */
    std::unique_ptr<FaultEngine> faultEngine;
    double dcLoadFrac = 0.5;
    double refGoodput = 0.0;
    bool lastEmergency = false;
    ConfigProfile refProfile;

    /** State of the last step, indexed by server/GPU. */
    std::vector<double> serverLoads;
    std::vector<double> serverDrawW;
    std::vector<double> gpuPowerW;
    std::vector<double> gpuTempC;
    /** Per-server hottest GPU of the last thermal evaluation;
     *  telemetry and metrics read this instead of re-scanning the
     *  per-GPU temperatures. */
    std::vector<double> hottestGpuC;
    std::vector<double> inletC;

    /** GPUs per server (uniform fleet), hoisted from the spec. */
    int gpusPerServer = 0;
    /**
     * Cached all-idle draw of an empty server (heat fraction and
     * wall power), keyed by spec identity: empty servers produce
     * the same deterministic values every step, so computeDraws
     * evaluates them once per spec instead of per server per pass.
     */
    const ServerSpec *idleSpecCache = nullptr;
    double idleHeatCache = 0.0;
    double idleDrawWCache = 0.0;
    /** Per-server throttle temperature, hoisted from the specs. */
    std::vector<double> throttleAtC;

    /**
     * Persistent per-endpoint routing candidates, maintained on VM
     * placement/departure/migration instead of being rebuilt from the
     * whole VM table on every routing pass. Entries stay sorted by VM
     * id so lookups are identical to a fresh table scan.
     */
    std::vector<std::vector<RouteCandidate>> routeIndex;

    /** Reusable step-loop scratch (hoisted per-step temporaries). */
    std::vector<Watts> serverDrawWatts;
    std::vector<Watts> drawsScratch;
    std::vector<double> noiseScratch;
    std::vector<double> overdrawScratch;
    std::vector<char> rowOverScratch;
    std::vector<double> rowPowerScratch;
    std::vector<double> routedTokensScratch;
    std::vector<double> demandFloorScratch;
    std::vector<double> weightsScratch;
    std::vector<const RouteCandidate *> safeScratch;
    std::vector<SaasInstanceRef> instancesScratch;
    std::vector<Request> requestsScratch;
    std::vector<std::uint32_t> waitingScratch;
    /**
     * Flow-mode per-VM base GPU power cache, filled by
     * assignSaasLoadFlowMode from the same operating point that set
     * the VM's load. Demand and profile are fixed for the rest of
     * the step, so the capping/thermal iterations of computeDraws
     * reuse it instead of re-evaluating the perf model per pass.
     */
    std::vector<double> saasOpGpuPowerW;
    /**
     * Packed lanes of the flow-mode batched operating-point solve:
     * per-VM profile pointers, demands, VM indices and the solved
     * points (only VMs with non-zero demand occupy a lane).
     */
    std::vector<const ConfigProfile *> opProfScratch;
    std::vector<double> opDemandScratch;
    std::vector<std::uint32_t> opVmScratch;
    std::vector<PerfModel::OperatingPoint> opPointScratch;
    std::vector<double> customerPowerScratch;
    std::vector<int> customerCountScratch;
    std::vector<double> endpointPowerScratch;
    std::vector<int> endpointCountScratch;
    PowerAssessment assessScratch;
    /**
     * Observation-path copy of gpuPowerW with sensor faults applied
     * (what the risk assessor "sees"). Only populated while a sensor
     * fault is active; otherwise observedGpuPower() hands out the
     * ground-truth vector directly, so fault-free runs pay nothing.
     */
    std::vector<double> observedGpuPowerW;

    // --- Robustness bookkeeping (see collectMetrics) ---
    /** Whether the last enforcePowerBudgets pass ended violated. */
    bool lastPowerViolation = false;
    /** Component-fault activity of the previous step. */
    bool prevFaultsActive = false;
    /** A fault cleared and the plant has not run clean since. */
    bool recoveringFromFault = false;
    SimTime faultClearAt = 0;
    /** Total SaaS token demand of this step (flow mode). */
    double stepDemandTps = 0.0;

    /**
     * The single maintained ClusterView shared by the placement,
     * risk, configurator, and migration phases. Membership changes
     * (place/depart/migrate) are applied eagerly; the load/time
     * snapshot re-syncs lazily when the sim's snapshot epoch has
     * moved past the view's (see currentView()). Debug builds
     * cross-check it against a freshly rebuilt view every step.
     */
    ClusterView liveView;
    /** Snapshot epoch: bumped whenever the observable load/time
     *  state moves (post-load update, step boundary). */
    std::uint64_t viewLoadEpoch = 0;
    /** Staleness generation backing ClusterView::assertFresh(). */
    std::uint64_t viewGeneration = 0;
    /** Fresh-rebuild scratch for the debug cross-check. */
    ClusterView debugViewScratch;

    /** Per-phase step-loop wall time (see StepPhaseTimes). */
    StepPhaseTimes phaseTimes_;
    bool phaseTiming_ = false;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    void step();
    void processFaults();
    const std::vector<double> &observedGpuPower();
    void maybeRefitProfiles();
    void processDepartures();
    void processArrivals();
    void tryPlaceWaiting();
    bool tryPlace(std::uint32_t vm_index);
    const ClusterView &currentView();
    void refreshViewSnapshot();
    void stampView();
    void buildViewInto(ClusterView &out) const;
    std::size_t viewIndexOf(std::uint32_t vm_id) const;
    void viewInsertVm(std::size_t vm_index);
    void viewRemoveVm(std::size_t vm_index);
    void assignSaasLoadRequestMode(SimTime from, SimTime to);
    void assignSaasLoadFlowMode(SimTime from, SimTime to);
    void replayIaasLoads(SimTime t);
    void computeDraws();
    void enforcePowerBudgets();
    void evaluateThermal(bool enforce);
    void recordTelemetry(SimTime t);
    void refreshPredictedPeaks();
    void collectMetrics(bool power_capped, bool thermal_throttled);
    void configuratorPass();
    void migrationPass();
    double vmPredictedPeakLoad(const VmRecord &record) const;
    PlacedVmView placedVmView(std::size_t vm_index) const;
    const std::vector<RouteCandidate> &
    endpointCandidates(EndpointId id);
    bool verifyEndpointList(std::size_t endpoint_index) const;
    void routeIndexAdd(std::size_t vm_index);
    void routeIndexRemove(std::size_t vm_index);
    void routeIndexUpdateServer(std::size_t vm_index);
    double effectiveGoodput(std::size_t vm_index) const;

    // Checkpoint plumbing (sim/checkpoint.cc).
    void checkpointCore(Archive &ar);
    void checkpointFailures(Archive &ar);
    void rebuildDerivedState();
};

} // namespace tapas

#endif // TAPAS_SIM_CLUSTER_HH
