/**
 * @file
 * Canned experiment scenarios matching the paper's evaluation setups
 * (Section 5.1). Every bench and example builds on these.
 */

#ifndef TAPAS_SIM_SCENARIO_HH
#define TAPAS_SIM_SCENARIO_HH

#include "sim/config.hh"

namespace tapas {

/**
 * The paper's "real cluster" setup: 80 servers in two rows sharing
 * one cold aisle, 50/50 IaaS/SaaS, one hour at 1-minute steps,
 * request-level fidelity.
 */
SimConfig realClusterScenario(std::uint64_t seed);

/**
 * The paper's large-scale simulation: ~1000 servers (12 aisles x
 * 2 rows x 10 racks x 4 servers), one week at 5-minute steps,
 * flow-level fidelity.
 */
SimConfig largeScaleScenario(std::uint64_t seed);

/**
 * A small flow-level scenario for fast integration tests:
 * 48 servers, one day.
 */
SimConfig smallTestScenario(std::uint64_t seed);

/**
 * Compound-emergency fault drill: the small cluster on a heat-wave
 * day (hot climate, amplified diurnal swing), demand peaking
 * mid-afternoon on top of it, and a scripted chiller derate through
 * the afternoon — the three stressors the paper's emergency analysis
 * (Table 2) composes. Shared by bench_fault_drill, the failure-drill
 * example, and the robustness integration tests.
 */
SimConfig faultDrillScenario(std::uint64_t seed);

} // namespace tapas

#endif // TAPAS_SIM_SCENARIO_HH
