/**
 * @file
 * Configuration of a cluster-simulation experiment (paper §5.1).
 */

#ifndef TAPAS_SIM_CONFIG_HH
#define TAPAS_SIM_CONFIG_HH

#include <cstdint>
#include <vector>

#include "core/context.hh"
#include "core/faults.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "workload/vmtrace.hh"
#include "workload/weather.hh"

namespace tapas {

/** Simulation fidelity. */
enum class SimMode
{
    /** Every request simulated through every engine (real-cluster
     *  scale experiments). */
    RequestLevel,
    /** Aggregate token flows with utilization-law latency estimates
     *  (datacenter-scale, week-long sweeps). */
    FlowLevel,
};

/** A scheduled infrastructure failure. */
struct FailureEvent
{
    SimTime at = 0;
    SimTime until = 0;
    /** True = thermal (AHU, 90%), false = power (UPS, 75%). */
    bool thermal = false;
    double remainingFrac = 0.75;
};

/** Full experiment description. */
struct SimConfig
{
    LayoutConfig layout;
    ThermalConfig thermal;
    PowerConfig power;
    WeatherConfig weather;
    VmTraceConfig vmTrace;
    TapasPolicyConfig policy;

    SimMode mode = SimMode::FlowLevel;
    SimTime stepLength = 5 * kMinute;
    SimTime horizon = kWeek;
    std::uint64_t seed = 1;

    /** Extra racks added beyond provisioning, percent of base. */
    int oversubscriptionPct = 0;

    /**
     * Telemetry retention window: every telemetry series keeps at
     * most this much history (ring-buffer bound; the weekly refit
     * window in production). 0 = retain the full horizon, matching
     * the historical unbounded-store behavior.
     */
    SimTime telemetryRetention = 0;

    double endpointPeakUtil = 0.45;

    /**
     * Hour-of-day around which SaaS endpoint demand peaks. Short
     * experiments (the 1-hour real-cluster run) set this near 0 so
     * the window covers the busy period.
     */
    double demandPeakHour = 14.0;

    /** Lognormal sigma of per-endpoint 5-minute demand spikes. */
    double demandNoiseSigma = 0.18;

    /**
     * Answer the hot-loop operating-point queries from a precomputed
     * (config, quantized-demand) interpolation table instead of the
     * exact batched solve. Off by default — the exact solve is the
     * reference; tests/sim/test_integration.cc A/B-gates the table
     * against it on a scenario suite before it is worth flipping on
     * for what-if sweeps.
     */
    bool opTableEnabled = false;
    /** Demand grid spacing of the table, tokens/s; 0 = auto
     *  (reference goodput / 256). */
    double opTableStepTps = 0.0;

    /** Peak demand as a fraction of fleet goodput (production LLM
     *  fleets provision for spikes; typical peaks sit well below
     *  capacity). */

    /** Scheduled failures. Legacy shorthand: each event is fed to
     *  the FaultEngine as a scripted fault (thermal = every aisle's
     *  AHU group, power = UPS 0), exactly the old semantics. */
    std::vector<FailureEvent> failures;

    /**
     * Fault-injection plan: stochastic MTBF/MTTR component and
     * sensor fault processes plus scripted windows (core/faults.hh).
     * Empty plan + empty failures = no engine, zero step overhead.
     */
    FaultPlan faults;

    /**
     * Inlet temperature excursion limit used by the robustness
     * accounting (ASHRAE-ish allowable envelope; steps with any
     * server's true inlet above it count as excursion steps).
     */
    double inletLimitC = 32.0;

    /**
     * Cadence of online profile refits from telemetry (0 = never,
     * the historical behavior). Each refit runs through the
     * ProfileBank sanity gate, which quarantines diverging fits.
     */
    SimTime profileRefitPeriod = 0;

    /** Make the baseline (all policies off) variant of this config. */
    SimConfig
    asBaseline() const
    {
        SimConfig out = *this;
        out.policy.placeEnabled = false;
        out.policy.routeEnabled = false;
        out.policy.configEnabled = false;
        return out;
    }

    /** Make the full-TAPAS variant of this config. */
    SimConfig
    asTapas() const
    {
        SimConfig out = *this;
        out.policy.placeEnabled = true;
        out.policy.routeEnabled = true;
        out.policy.configEnabled = true;
        return out;
    }

    /** Variant with a chosen subset of policies. */
    SimConfig
    withPolicies(bool place, bool route, bool config) const
    {
        SimConfig out = *this;
        out.policy.placeEnabled = place;
        out.policy.routeEnabled = route;
        out.policy.configEnabled = config;
        return out;
    }
};

} // namespace tapas

#endif // TAPAS_SIM_CONFIG_HH
