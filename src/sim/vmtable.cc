#include "sim/vmtable.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "llm/engine.hh"

namespace tapas {

void
VmTable::reset(std::size_t n)
{
    slot.assign(n, VmSlot::Empty);
    serverOf.assign(n, kNoServer);
    load.assign(n, 0.0);
    freqCap.assign(n, 1.0);
    demandTps.assign(n, 0.0);
    demandEmaTps.assign(n, 0.0);
    departureAt.assign(n, 0);
    engine.assign(n, nullptr);
    endpointOf.assign(n, Id<EndpointTag>::invalidIndex);
    customerOf.assign(n, Id<CustomerTag>::invalidIndex);
    predictedPeak.assign(n, 1.0);
    cold.clear();
    cold.resize(n);
}

void
VmTable::admitRecord(const VmRecord &record)
{
    tapas_assert(record.id.index < size(),
                 "trace id %u beyond pre-sized table",
                 record.id.index);
    const std::size_t i = record.id.index;
    cold[i].record = record;
    endpointOf[i] = record.endpoint.index;
    customerOf[i] = record.customer.index;
    departureAt[i] = record.departure;
}

void
VmTable::place(std::size_t i, ServerId server,
               std::unique_ptr<InferenceEngine> engine_owner,
               double predicted_peak)
{
    tapas_assert(slot[i] == VmSlot::Empty,
                 "placing an already-active VM %zu", i);
    const VmRecord &rec = cold[i].record;
    slot[i] =
        rec.kind == VmKind::SaaS ? VmSlot::Saas : VmSlot::Iaas;
    serverOf[i] = server.index;
    cold[i].engineOwner = std::move(engine_owner);
    engine[i] = cold[i].engineOwner.get();
    predictedPeak[i] = predicted_peak;
    departureAt[i] = rec.departure;
}

void
VmTable::depart(std::size_t i)
{
    slot[i] = VmSlot::Empty;
    serverOf[i] = kNoServer;
    cold[i].engineOwner.reset();
    engine[i] = nullptr;
    load[i] = 0.0;
    demandTps[i] = 0.0;
}

bool
VmTable::consistent() const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const Cold &c = cold[i];
        if (engine[i] != c.engineOwner.get())
            return false;
        if (slot[i] == VmSlot::Empty) {
            if (serverOf[i] != kNoServer || engine[i] != nullptr)
                return false;
            continue;
        }
        if (serverOf[i] == kNoServer)
            return false;
        if (c.record.id.index != i)
            return false;
        const VmSlot expect = c.record.kind == VmKind::SaaS
            ? VmSlot::Saas
            : VmSlot::Iaas;
        if (slot[i] != expect)
            return false;
        if (slot[i] == VmSlot::Saas && engine[i] == nullptr)
            return false;
        if (slot[i] == VmSlot::Iaas && engine[i] != nullptr)
            return false;
        if (endpointOf[i] != c.record.endpoint.index ||
            customerOf[i] != c.record.customer.index ||
            departureAt[i] != c.record.departure) {
            return false;
        }
    }
    return true;
}

namespace {

void
recordFields(Archive &ar, VmRecord &r)
{
    ar.value(r.id);
    ar.value(r.kind);
    ar.value(r.arrival);
    ar.value(r.departure);
    ar.value(r.endpoint);
    ar.value(r.customer);
    ar.value(r.pattern.base);
    ar.value(r.pattern.amplitude);
    ar.value(r.pattern.peakHour);
    ar.value(r.pattern.noiseSigma);
}

} // namespace

void
VmTable::checkpointState(Archive &ar)
{
    std::size_t n = size();
    ar.count(n);
    if (!ar.writing()) {
        if (n > 1u << 26) { // corrupt-size guard (~64M VM slots)
            ar.fail();
            return;
        }
        reset(n);
    }
    ar.podVector(slot);
    ar.podVector(serverOf);
    ar.podVector(load);
    ar.podVector(freqCap);
    ar.podVector(demandTps);
    ar.podVector(demandEmaTps);
    ar.podVector(departureAt);
    ar.podVector(endpointOf);
    ar.podVector(customerOf);
    ar.podVector(predictedPeak);
    if (slot.size() != n || serverOf.size() != n ||
        load.size() != n || freqCap.size() != n ||
        demandTps.size() != n || demandEmaTps.size() != n ||
        departureAt.size() != n || endpointOf.size() != n ||
        customerOf.size() != n || predictedPeak.size() != n) {
        ar.fail();
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        Cold &c = cold[i];
        recordFields(ar, c.record);
        ar.value(c.lastConfigDemand);
        ar.value(c.lastConfigAt);
        bool has_engine = c.engineOwner != nullptr;
        ar.value(has_engine);
        if (!ar.writing() && has_engine) {
            c.engineOwner = std::make_unique<InferenceEngine>(
                ConfigProfile{}, SloSpec{});
        }
        if (has_engine && c.engineOwner)
            c.engineOwner->checkpointState(ar);
        if (!ar.writing())
            engine[i] = c.engineOwner.get();
    }
}

} // namespace tapas
