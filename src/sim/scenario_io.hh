/**
 * @file
 * Structured-error loading of scenario specifications from files.
 *
 * A spec is a line-based `key = value` description that starts from
 * one of the canned scenarios (sim/scenario.hh) and overrides the
 * experiment knobs that sweeps and drills actually vary. All input
 * problems — unreadable file, unknown scenario or key, malformed
 * value — surface as tapas::Error (ErrorCode::Io / Invalid), never
 * as an assertion: specs are user input, not internal invariants.
 *
 * Example spec:
 *
 *     # compound-emergency drill, deterministic seed
 *     scenario = fault-drill
 *     seed = 41
 *     policy = tapas
 *     horizon_s = 86400
 *     sensor_quarantine = true
 *     faults.sensor.mtbf_s = 43200
 */

#ifndef TAPAS_SIM_SCENARIO_IO_HH
#define TAPAS_SIM_SCENARIO_IO_HH

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "sim/config.hh"

namespace tapas {

/**
 * Canned scenario by CLI-friendly name: "small", "fault-drill",
 * "real-cluster", or "large-scale". Unknown names are Invalid.
 */
Result<SimConfig> scenarioByName(const std::string &name,
                                 std::uint64_t seed);

/**
 * Parse a spec from text (see file comment for the format);
 * @p origin names the source in error messages.
 */
Result<SimConfig> parseScenarioSpec(const std::string &text,
                                    const std::string &origin);

/** Load and parse a spec file (readFileText + parseScenarioSpec). */
Result<SimConfig> loadScenarioSpec(const std::string &path);

} // namespace tapas

#endif // TAPAS_SIM_SCENARIO_IO_HH
