/**
 * @file
 * Metrics collected by the cluster simulator: the quantities behind
 * every evaluation figure (peak power, max temperature, capping
 * fractions, latency percentiles, goodput, quality).
 */

#ifndef TAPAS_SIM_METRICS_HH
#define TAPAS_SIM_METRICS_HH

#include <algorithm>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace tapas {

class Archive;

/** Per-run metric aggregation. */
struct SimMetrics
{
    /** Max GPU temperature across the cluster, per step. */
    TimeSeries maxGpuTempC;
    /** Peak row power draw (W), per step. */
    TimeSeries peakRowPowerW;
    /** Peak row power as a fraction of row provisioning, per step. */
    TimeSeries peakRowPowerFrac;
    /** Whole-datacenter draw (W), per step. */
    TimeSeries datacenterPowerW;
    /** Mean IaaS frequency-cap deficit (1 - freqCap), per step. */
    TimeSeries iaasPerfPenalty;
    /** SaaS tokens served per second, per step. */
    TimeSeries saasServedTps;
    /** Mean quality of SaaS service, per step. */
    TimeSeries saasQuality;

    /** Steps where any row/UPS exceeded its power budget. */
    std::uint64_t powerCapSteps = 0;
    /** Steps where any GPU crossed the thermal throttle point. */
    std::uint64_t thermalThrottleSteps = 0;
    std::uint64_t totalSteps = 0;

    /** Request-level latency samples (empty in flow mode). */
    QuantileSample ttftS;
    QuantileSample tbtS;

    std::uint64_t requestsCompleted = 0;
    std::uint64_t sloViolations = 0;
    double totalTokens = 0.0;
    double goodputTokens = 0.0;
    double qualityWeightedTokens = 0.0;

    std::uint64_t vmsPlaced = 0;
    std::uint64_t vmsRejected = 0;
    std::uint64_t reconfigs = 0;
    std::uint64_t migrations = 0;

    // --- Robustness accounting (fault drills; bench_fault_drill
    // emits these as the per-run robustness report). ---

    /** Steps with any server's true inlet above the configured
     *  excursion limit (SimConfig::inletLimitC). */
    std::uint64_t inletExcursionSteps = 0;
    /** Steps where hardware throttling engaged (some GPU crossed its
     *  throttle point before enforcement). */
    std::uint64_t gpuExcursionSteps = 0;
    /** Steps that ended with an unresolved power-budget violation
     *  (after capping convergence). */
    std::uint64_t powerViolationSteps = 0;

    /** Steps with any component (AHU/UPS/chiller) fault active. */
    std::uint64_t faultSteps = 0;
    /** Simulated seconds with any component fault active. */
    SimTime faultActiveS = 0;
    /** SaaS token demand and delivery during fault steps (flow
     *  mode); their gap is the throughput lost to faults. */
    double faultDemandTokens = 0.0;
    double faultServedTokens = 0.0;

    /** Sum over steps of servers under sensor quarantine. */
    std::uint64_t quarantinedServerSteps = 0;

    /** Time from each fault-clear to the first clean step (no
     *  excursion, violation, throttle, or cap). */
    SimTime recoverySumS = 0;
    SimTime maxRecoveryS = 0;
    std::uint64_t recoveries = 0;

    double
    powerCappedFraction() const
    {
        return totalSteps
            ? static_cast<double>(powerCapSteps) / totalSteps
            : 0.0;
    }

    double
    thermalCappedFraction() const
    {
        return totalSteps
            ? static_cast<double>(thermalThrottleSteps) / totalSteps
            : 0.0;
    }

    double
    meanQuality() const
    {
        return totalTokens > 0.0
            ? qualityWeightedTokens / totalTokens
            : 0.0;
    }

    double
    inletExcursionFraction() const
    {
        return totalSteps
            ? static_cast<double>(inletExcursionSteps) / totalSteps
            : 0.0;
    }

    /** Fraction of fault-window token demand that went unserved. */
    double
    faultThroughputLossFrac() const
    {
        if (faultDemandTokens <= 0.0)
            return 0.0;
        const double served =
            std::min(faultServedTokens, faultDemandTokens);
        return 1.0 - served / faultDemandTokens;
    }

    double
    meanRecoveryS() const
    {
        return recoveries
            ? static_cast<double>(recoverySumS) /
                static_cast<double>(recoveries)
            : 0.0;
    }

    double
    sloAttainment() const
    {
        return requestsCompleted
            ? 1.0 -
                static_cast<double>(sloViolations) /
                static_cast<double>(requestsCompleted)
            : 1.0;
    }

    /**
     * Serialize/restore every field (checkpointing). Tests also use
     * the serialized byte stream as a canonical full-equality
     * comparison between two metric sets.
     */
    void checkpointState(Archive &ar);
};

} // namespace tapas

#endif // TAPAS_SIM_METRICS_HH
