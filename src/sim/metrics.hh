/**
 * @file
 * Metrics collected by the cluster simulator: the quantities behind
 * every evaluation figure (peak power, max temperature, capping
 * fractions, latency percentiles, goodput, quality).
 */

#ifndef TAPAS_SIM_METRICS_HH
#define TAPAS_SIM_METRICS_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace tapas {

/** Per-run metric aggregation. */
struct SimMetrics
{
    /** Max GPU temperature across the cluster, per step. */
    TimeSeries maxGpuTempC;
    /** Peak row power draw (W), per step. */
    TimeSeries peakRowPowerW;
    /** Peak row power as a fraction of row provisioning, per step. */
    TimeSeries peakRowPowerFrac;
    /** Whole-datacenter draw (W), per step. */
    TimeSeries datacenterPowerW;
    /** Mean IaaS frequency-cap deficit (1 - freqCap), per step. */
    TimeSeries iaasPerfPenalty;
    /** SaaS tokens served per second, per step. */
    TimeSeries saasServedTps;
    /** Mean quality of SaaS service, per step. */
    TimeSeries saasQuality;

    /** Steps where any row/UPS exceeded its power budget. */
    std::uint64_t powerCapSteps = 0;
    /** Steps where any GPU crossed the thermal throttle point. */
    std::uint64_t thermalThrottleSteps = 0;
    std::uint64_t totalSteps = 0;

    /** Request-level latency samples (empty in flow mode). */
    QuantileSample ttftS;
    QuantileSample tbtS;

    std::uint64_t requestsCompleted = 0;
    std::uint64_t sloViolations = 0;
    double totalTokens = 0.0;
    double goodputTokens = 0.0;
    double qualityWeightedTokens = 0.0;

    std::uint64_t vmsPlaced = 0;
    std::uint64_t vmsRejected = 0;
    std::uint64_t reconfigs = 0;
    std::uint64_t migrations = 0;

    double
    powerCappedFraction() const
    {
        return totalSteps
            ? static_cast<double>(powerCapSteps) / totalSteps
            : 0.0;
    }

    double
    thermalCappedFraction() const
    {
        return totalSteps
            ? static_cast<double>(thermalThrottleSteps) / totalSteps
            : 0.0;
    }

    double
    meanQuality() const
    {
        return totalTokens > 0.0
            ? qualityWeightedTokens / totalTokens
            : 0.0;
    }

    double
    sloAttainment() const
    {
        return requestsCompleted
            ? 1.0 -
                static_cast<double>(sloViolations) /
                static_cast<double>(requestsCompleted)
            : 1.0;
    }
};

} // namespace tapas

#endif // TAPAS_SIM_METRICS_HH
