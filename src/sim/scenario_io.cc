#include "sim/scenario_io.hh"

#include <cstdlib>

#include "common/serialize.hh"
#include "sim/scenario.hh"

namespace tapas {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r'))
        ++begin;
    while (end > begin &&
           (s[end - 1] == ' ' || s[end - 1] == '\t' ||
            s[end - 1] == '\r'))
        --end;
    return s.substr(begin, end - begin);
}

Error
badValue(const std::string &origin, int line,
         const std::string &key, const std::string &value,
         const char *expected)
{
    return Error::invalid(origin + ":" + std::to_string(line) +
                          ": key '" + key + "': cannot parse '" +
                          value + "' as " + expected);
}

Result<double>
parseDouble(const std::string &origin, int line,
            const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        return badValue(origin, line, key, value, "a number");
    return parsed;
}

Result<std::int64_t>
parseInt(const std::string &origin, int line,
         const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        return badValue(origin, line, key, value, "an integer");
    return static_cast<std::int64_t>(parsed);
}

Result<bool>
parseBool(const std::string &origin, int line,
          const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes" ||
        value == "on")
        return true;
    if (value == "false" || value == "0" || value == "no" ||
        value == "off")
        return false;
    return badValue(origin, line, key, value, "a boolean");
}

/** The stochastic fault process a "faults.<name>.*" key targets. */
FaultProcess *
faultProcessFor(SimConfig &cfg, const std::string &name)
{
    if (name == "ahu")
        return &cfg.faults.ahu;
    if (name == "ups")
        return &cfg.faults.ups;
    if (name == "chiller")
        return &cfg.faults.chiller;
    if (name == "sensor")
        return &cfg.faults.sensor;
    return nullptr;
}

} // namespace

Result<SimConfig>
scenarioByName(const std::string &name, std::uint64_t seed)
{
    if (name == "small")
        return smallTestScenario(seed);
    if (name == "fault-drill")
        return faultDrillScenario(seed);
    if (name == "real-cluster")
        return realClusterScenario(seed);
    if (name == "large-scale")
        return largeScaleScenario(seed);
    return Error::invalid(
        "unknown scenario '" + name +
        "' (expected small, fault-drill, real-cluster, or "
        "large-scale)");
}

Result<SimConfig>
parseScenarioSpec(const std::string &text,
                  const std::string &origin)
{
    // Two passes over the key/value lines: the scenario key seeds
    // the config, every other key then overrides one knob on it.
    struct Entry
    {
        int line;
        std::string key;
        std::string value;
    };
    std::vector<Entry> entries;
    std::string scenario;
    std::uint64_t seed = 1;
    int scenario_line = 0;

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string raw = text.substr(
            pos, eol == std::string::npos ? std::string::npos
                                          : eol - pos);
        pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
        ++line_no;

        std::string line = raw;
        const std::size_t comment = line.find('#');
        if (comment != std::string::npos)
            line.resize(comment);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return Error::invalid(
                origin + ":" + std::to_string(line_no) +
                ": expected 'key = value', got '" + trim(raw) +
                "'");
        Entry entry;
        entry.line = line_no;
        entry.key = trim(line.substr(0, eq));
        entry.value = trim(line.substr(eq + 1));
        if (entry.key.empty() || entry.value.empty())
            return Error::invalid(
                origin + ":" + std::to_string(line_no) +
                ": empty key or value");
        if (entry.key == "scenario") {
            scenario = entry.value;
            scenario_line = line_no;
        } else if (entry.key == "seed") {
            Result<std::int64_t> parsed =
                parseInt(origin, line_no, entry.key, entry.value);
            if (!parsed.ok())
                return parsed.error();
            seed = static_cast<std::uint64_t>(parsed.value());
        } else {
            entries.push_back(std::move(entry));
        }
    }

    if (scenario.empty())
        return Error::invalid(origin +
                              ": missing required key 'scenario'");
    Result<SimConfig> base = scenarioByName(scenario, seed);
    if (!base.ok())
        return Error::invalid(origin + ":" +
                              std::to_string(scenario_line) + ": " +
                              base.error().message());
    SimConfig cfg = base.value();

    for (const Entry &entry : entries) {
        const int line = entry.line;
        const std::string &key = entry.key;
        const std::string &value = entry.value;
        if (key == "policy") {
            if (value == "tapas") {
                cfg = cfg.asTapas();
            } else if (value == "baseline") {
                cfg = cfg.asBaseline();
            } else {
                return badValue(origin, line, key, value,
                                "'tapas' or 'baseline'");
            }
        } else if (key == "horizon_s") {
            Result<std::int64_t> parsed =
                parseInt(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            if (parsed.value() <= 0)
                return badValue(origin, line, key, value,
                                "a positive duration");
            cfg.horizon = parsed.value();
            cfg.vmTrace.horizon = parsed.value();
        } else if (key == "step_length_s") {
            Result<std::int64_t> parsed =
                parseInt(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            if (parsed.value() <= 0)
                return badValue(origin, line, key, value,
                                "a positive duration");
            cfg.stepLength = parsed.value();
        } else if (key == "oversubscription_pct") {
            Result<std::int64_t> parsed =
                parseInt(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            cfg.oversubscriptionPct =
                static_cast<int>(parsed.value());
        } else if (key == "sensor_quarantine") {
            Result<bool> parsed =
                parseBool(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            cfg.policy.sensorQuarantineEnabled = parsed.value();
        } else if (key == "inlet_limit_c") {
            Result<double> parsed =
                parseDouble(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            cfg.inletLimitC = parsed.value();
        } else if (key.rfind("faults.", 0) == 0) {
            const std::size_t dot = key.find('.', 7);
            if (dot == std::string::npos)
                return Error::invalid(
                    origin + ":" + std::to_string(line) +
                    ": expected faults.<process>.<field>, got '" +
                    key + "'");
            FaultProcess *proc =
                faultProcessFor(cfg, key.substr(7, dot - 7));
            if (!proc)
                return Error::invalid(
                    origin + ":" + std::to_string(line) +
                    ": unknown fault process in '" + key +
                    "' (expected ahu, ups, chiller, or sensor)");
            const std::string field = key.substr(dot + 1);
            Result<double> parsed =
                parseDouble(origin, line, key, value);
            if (!parsed.ok())
                return parsed.error();
            if (field == "mtbf_s") {
                proc->mtbfS = parsed.value();
            } else if (field == "mttr_s") {
                proc->mttrS = parsed.value();
            } else if (field == "remaining_frac") {
                proc->remainingFrac = parsed.value();
            } else {
                return Error::invalid(
                    origin + ":" + std::to_string(line) +
                    ": unknown fault field '" + field +
                    "' (expected mtbf_s, mttr_s, or "
                    "remaining_frac)");
            }
        } else {
            return Error::invalid(origin + ":" +
                                  std::to_string(line) +
                                  ": unknown key '" + key + "'");
        }
    }
    return cfg;
}

Result<SimConfig>
loadScenarioSpec(const std::string &path)
{
    Result<std::string> text = readFileText(path);
    if (!text.ok())
        return text.error();
    return parseScenarioSpec(text.value(), path);
}

} // namespace tapas
