/**
 * @file
 * GPU server hardware specifications.
 *
 * Numbers follow the published DGX A100 / DGX H100 envelopes cited by
 * the paper: 6.5 kW / 10.2 kW system TDP, 8 GPUs per server, and fan
 * airflow of 840 / 1105 CFM at 80% PWM duty.
 */

#ifndef TAPAS_DCSIM_SPECS_HH
#define TAPAS_DCSIM_SPECS_HH

#include <string>

#include "common/units.hh"

namespace tapas {

/** GPU generation hosted by a server. */
enum class GpuSku { A100, H100 };

/** Printable SKU name. */
const char *gpuSkuName(GpuSku sku);

/**
 * Static description of one GPU server model. All servers of a SKU
 * share a spec; per-unit manufacturing variation is modeled separately
 * by the thermal model (process variation offsets).
 */
struct ServerSpec
{
    GpuSku sku = GpuSku::A100;
    int gpusPerServer = 8;

    /** Per-GPU electrical envelope. */
    Watts gpuIdlePower{60.0};
    Watts gpuMaxPower{400.0};

    /** Chassis draw excluding GPUs and fans (CPUs, NICs, storage). */
    Watts chassisIdlePower{900.0};
    /** Additional chassis draw at full load (memory, CPUs feeding). */
    Watts chassisActivePower{500.0};
    /** Fan power at 100% duty (cubic fan law below that). */
    Watts fanMaxPower{600.0};

    /**
     * Fan airflow at 80% PWM duty, per manufacturer spec. The fan
     * curve is linear in load and passes through this point.
     */
    Cfm airflowAt80Pct{840.0};

    /** Nominal (max boost) GPU clock in GHz. */
    double maxFreqGhz = 1.41;

    /** HBM capacity per GPU, in GiB. */
    double hbmGb = 80.0;

    /** Hardware thermal throttle trip point. */
    Celsius throttleTemp{85.0};

    /** Whole-server thermal design power. */
    Watts tdp() const;

    /** DGX A100 style server. */
    static ServerSpec a100();

    /** DGX H100 style server. */
    static ServerSpec h100();
};

} // namespace tapas

#endif // TAPAS_DCSIM_SPECS_HH
