#include "dcsim/layout.hh"

#include "common/logging.hh"

namespace tapas {

DatacenterLayout::DatacenterLayout(const LayoutConfig &config)
    : cfg(config)
{
    if (cfg.aisleCount < 1 || cfg.rowsPerAisle < 1 ||
        cfg.racksPerRow < 1 || cfg.serversPerRack < 1) {
        fatal("layout config must have at least one of every entity");
    }
    if (cfg.upsCount < 1)
        fatal("layout needs at least one UPS");

    specList.push_back(cfg.sku == GpuSku::A100 ? ServerSpec::a100()
                                               : ServerSpec::h100());

    for (int u = 0; u < cfg.upsCount; ++u) {
        Ups ups;
        ups.id = UpsId(static_cast<std::uint32_t>(u));
        upsList.push_back(ups);
    }

    const int total_rows = cfg.aisleCount * cfg.rowsPerAisle;
    for (int a = 0; a < cfg.aisleCount; ++a) {
        Aisle aisle;
        aisle.id = AisleId(static_cast<std::uint32_t>(a));
        aisleList.push_back(aisle);
    }

    for (int r = 0; r < total_rows; ++r) {
        const auto row_id = RowId(static_cast<std::uint32_t>(r));
        const auto aisle_id =
            AisleId(static_cast<std::uint32_t>(r / cfg.rowsPerAisle));

        // One PDU pair per row; PDU pairs stripe across the UPSes so a
        // UPS failure touches rows spread through the plant (4N/3).
        Pdu pdu;
        pdu.id = PduId(static_cast<std::uint32_t>(r));
        pdu.ups = UpsId(static_cast<std::uint32_t>(r % cfg.upsCount));
        pdu.rows.push_back(row_id);
        pduList.push_back(pdu);

        Row row;
        row.id = row_id;
        row.aisle = aisle_id;
        row.pdu = pdu.id;
        rowList.push_back(row);

        aisleList[aisle_id.index].rows.push_back(row_id);
        upsList[pdu.ups.index].pdus.push_back(pdu.id);
        upsList[pdu.ups.index].rows.push_back(row_id);

        for (int k = 0; k < cfg.racksPerRow; ++k)
            addRack(row_id);
    }
}

std::vector<ServerId>
DatacenterLayout::addRack(RowId row_id)
{
    tapas_assert(row_id.index < rowList.size(), "unknown row %u",
                 row_id.index);
    Row &row = rowList[row_id.index];

    Rack rack;
    rack.id = RackId(static_cast<std::uint32_t>(rackList.size()));
    rack.row = row_id;
    rack.rowPosition = static_cast<int>(row.racks.size());

    std::vector<ServerId> added;
    for (int slot = 0; slot < cfg.serversPerRack; ++slot) {
        Server server;
        server.id =
            ServerId(static_cast<std::uint32_t>(serverList.size()));
        server.rack = rack.id;
        server.row = row_id;
        server.aisle = row.aisle;
        server.pdu = row.pdu;
        server.ups = pduList[row.pdu.index].ups;
        server.rackSlot = slot;
        server.rowPosition = rack.rowPosition;
        server.specIndex = 0;

        rack.servers.push_back(server.id);
        row.servers.push_back(server.id);
        aisleList[row.aisle.index].servers.push_back(server.id);
        added.push_back(server.id);
        serverList.push_back(server);
    }

    row.racks.push_back(rack.id);
    rackList.push_back(std::move(rack));
    return added;
}

const Server &
DatacenterLayout::server(ServerId id) const
{
    tapas_assert(id.index < serverList.size(), "unknown server %u",
                 id.index);
    return serverList[id.index];
}

const Rack &
DatacenterLayout::rack(RackId id) const
{
    tapas_assert(id.index < rackList.size(), "unknown rack %u",
                 id.index);
    return rackList[id.index];
}

const Row &
DatacenterLayout::row(RowId id) const
{
    tapas_assert(id.index < rowList.size(), "unknown row %u", id.index);
    return rowList[id.index];
}

const Aisle &
DatacenterLayout::aisle(AisleId id) const
{
    tapas_assert(id.index < aisleList.size(), "unknown aisle %u",
                 id.index);
    return aisleList[id.index];
}

const Ups &
DatacenterLayout::ups(UpsId id) const
{
    tapas_assert(id.index < upsList.size(), "unknown UPS %u", id.index);
    return upsList[id.index];
}

const Pdu &
DatacenterLayout::pdu(PduId id) const
{
    tapas_assert(id.index < pduList.size(), "unknown PDU %u", id.index);
    return pduList[id.index];
}

const ServerSpec &
DatacenterLayout::specOf(ServerId id) const
{
    return specList[server(id).specIndex];
}

} // namespace tapas
