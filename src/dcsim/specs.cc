#include "dcsim/specs.hh"

namespace tapas {

const char *
gpuSkuName(GpuSku sku)
{
    switch (sku) {
      case GpuSku::A100:
        return "A100";
      case GpuSku::H100:
        return "H100";
    }
    return "unknown";
}

Watts
ServerSpec::tdp() const
{
    return Watts(chassisIdlePower.value() + chassisActivePower.value() +
                 fanMaxPower.value() +
                 gpuMaxPower.value() * gpusPerServer);
}

ServerSpec
ServerSpec::a100()
{
    ServerSpec spec;
    spec.sku = GpuSku::A100;
    spec.gpuIdlePower = Watts(60.0);
    spec.gpuMaxPower = Watts(400.0);
    spec.chassisIdlePower = Watts(2300.0);
    spec.chassisActivePower = Watts(400.0);
    spec.fanMaxPower = Watts(600.0);
    spec.airflowAt80Pct = Cfm(840.0);
    spec.maxFreqGhz = 1.41;
    spec.hbmGb = 80.0;
    spec.throttleTemp = Celsius(85.0);
    return spec;
}

ServerSpec
ServerSpec::h100()
{
    ServerSpec spec;
    spec.sku = GpuSku::H100;
    spec.gpuIdlePower = Watts(75.0);
    spec.gpuMaxPower = Watts(700.0);
    spec.chassisIdlePower = Watts(2600.0);
    spec.chassisActivePower = Watts(1200.0);
    spec.fanMaxPower = Watts(800.0);
    spec.airflowAt80Pct = Cfm(1105.0);
    spec.maxFreqGhz = 1.98;
    spec.hbmGb = 80.0;
    spec.throttleTemp = Celsius(85.0);
    return spec;
}

} // namespace tapas
