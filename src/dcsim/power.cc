#include "dcsim/power.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "dcsim/thermal.hh"

namespace tapas {

Watts
PowerModel::gpuPower(const ServerSpec &spec, double load_frac,
                     double freq_frac) const
{
    const double load = std::clamp(load_frac, 0.0, 1.0);
    const double freq = std::clamp(freq_frac, 0.0, 1.0);
    const double dynamic_span =
        spec.gpuMaxPower.value() - spec.gpuIdlePower.value();
    // pow(1, e) == 1 exactly; most servers run uncapped, so skip
    // the libm call on that path.
    const double freq_factor =
        freq == 1.0 ? 1.0 : std::pow(freq, cfg.freqPowerExponent);
    return Watts(spec.gpuIdlePower.value() +
                 dynamic_span * load * freq_factor);
}

double
PowerModel::heatFraction(const ServerSpec &spec,
                         const std::vector<Watts> &gpu_draws)
{
    double total = 0.0;
    for (const Watts &w : gpu_draws)
        total += w.value();
    const double idle =
        spec.gpuIdlePower.value() * spec.gpusPerServer;
    const double max =
        spec.gpuMaxPower.value() * spec.gpusPerServer;
    if (max <= idle)
        return 0.0;
    return std::clamp((total - idle) / (max - idle), 0.0, 1.0);
}

Watts
PowerModel::serverPower(const ServerSpec &spec,
                        const std::vector<Watts> &gpu_draws,
                        double heat_frac) const
{
    tapas_assert(static_cast<int>(gpu_draws.size()) ==
                 spec.gpusPerServer,
                 "expected %d GPU draws, got %zu", spec.gpusPerServer,
                 gpu_draws.size());
    const double heat = std::clamp(heat_frac, 0.0, 1.0);
    double total = spec.chassisIdlePower.value() +
        spec.chassisActivePower.value() * heat;
    for (const Watts &w : gpu_draws)
        total += w.value();
    const double speed = ThermalModel::fanSpeed(heat);
    total += spec.fanMaxPower.value() * speed * speed * speed;
    return Watts(total);
}

Watts
PowerModel::serverPowerAtLoad(const ServerSpec &spec, double load_frac,
                              double freq_frac) const
{
    std::vector<Watts> draws(
        static_cast<std::size_t>(spec.gpusPerServer),
        gpuPower(spec, load_frac, freq_frac));
    return serverPower(spec, draws, load_frac);
}

Watts
PowerModel::serverPeakPower(const ServerSpec &spec) const
{
    return serverPowerAtLoad(spec, 1.0, 1.0);
}

PowerHierarchy::PowerHierarchy(const DatacenterLayout &layout_,
                               const PowerModel &model)
    : layout(layout_)
{
    rowProvisionW.resize(layout.rowCount(), 0.0);
    upsProvisionW.resize(layout.upsCount(), 0.0);
    upsFailed.resize(layout.upsCount(), false);
    upsRemainingFrac.resize(layout.upsCount(), 1.0);

    const double row_factor = model.config().rowProvisionFactor;
    const double ups_factor = model.config().upsProvisionFactor;

    for (const Row &row : layout.rows()) {
        double peak = 0.0;
        for (ServerId sid : row.servers)
            peak += model.serverPeakPower(layout.specOf(sid)).value();
        rowProvisionW[row.id.index] = peak * row_factor;
    }
    for (const Ups &ups : layout.upses()) {
        double total = 0.0;
        for (RowId rid : ups.rows)
            total += rowProvisionW[rid.index];
        upsProvisionW[ups.id.index] = total * ups_factor;
    }
    rowUps.reserve(layout.rowCount());
    for (const Row &row : layout.rows())
        rowUps.push_back(layout.pdu(row.pdu).ups.index);
}

Watts
PowerHierarchy::rowProvision(RowId id) const
{
    tapas_assert(id.index < rowProvisionW.size(), "unknown row %u",
                 id.index);
    return Watts(rowProvisionW[id.index]);
}

Watts
PowerHierarchy::effectiveRowProvision(RowId id) const
{
    return Watts(rowProvisionW[id.index] * deratingFrac);
}

Watts
PowerHierarchy::upsProvision(UpsId id) const
{
    tapas_assert(id.index < upsProvisionW.size(), "unknown UPS %u",
                 id.index);
    return Watts(upsProvisionW[id.index]);
}

Watts
PowerHierarchy::effectiveUpsProvision(UpsId id) const
{
    return Watts(upsProvisionW[id.index] * deratingFrac);
}

Watts
PowerHierarchy::totalProvision() const
{
    double total = 0.0;
    for (double w : rowProvisionW)
        total += w;
    return Watts(total);
}

void
PowerHierarchy::failUps(UpsId id, double remaining_frac)
{
    tapas_assert(id.index < upsFailed.size(), "unknown UPS %u",
                 id.index);
    tapas_assert(remaining_frac > 0.0 && remaining_frac <= 1.0,
                 "derating fraction must be in (0,1]");
    upsFailed[id.index] = true;
    upsRemainingFrac[id.index] = remaining_frac;
    recomputeDerating();
}

void
PowerHierarchy::restoreUps(UpsId id)
{
    tapas_assert(id.index < upsFailed.size(), "unknown UPS %u",
                 id.index);
    upsFailed[id.index] = false;
    upsRemainingFrac[id.index] = 1.0;
    recomputeDerating();
}

void
PowerHierarchy::recomputeDerating()
{
    double frac = 1.0;
    for (std::size_t i = 0; i < upsFailed.size(); ++i) {
        if (upsFailed[i])
            frac = std::min(frac, upsRemainingFrac[i]);
    }
    deratingFrac = frac;
}

double
PowerHierarchy::upsDerate(UpsId id) const
{
    tapas_assert(id.index < upsRemainingFrac.size(),
                 "unknown UPS %u", id.index);
    return upsRemainingFrac[id.index];
}

bool
PowerHierarchy::anyFailure() const
{
    for (bool failed : upsFailed) {
        if (failed)
            return true;
    }
    return false;
}

PowerAssessment
PowerHierarchy::assess(const std::vector<Watts> &server_draws) const
{
    PowerAssessment out;
    assess(server_draws, out);
    return out;
}

void
PowerHierarchy::assess(const std::vector<Watts> &server_draws,
                       PowerAssessment &out) const
{
    tapas_assert(server_draws.size() == layout.serverCount(),
                 "per-server draw vector has wrong size: %zu vs %zu",
                 server_draws.size(), layout.serverCount());

    out.clear();
    out.rowDrawW.resize(layout.rowCount(), 0.0);
    out.rowBudgetW.resize(layout.rowCount(), 0.0);
    out.upsDrawW.resize(layout.upsCount(), 0.0);
    out.upsBudgetW.resize(layout.upsCount(), 0.0);

    for (const Server &server : layout.servers()) {
        out.rowDrawW[server.row.index] +=
            server_draws[server.id.index].value();
    }
    for (const Row &row : layout.rows()) {
        out.rowBudgetW[row.id.index] =
            effectiveRowProvision(row.id).value();
        out.upsDrawW[rowUps[row.id.index]] +=
            out.rowDrawW[row.id.index];
        if (out.rowDrawW[row.id.index] >
            out.rowBudgetW[row.id.index]) {
            out.overBudgetRows.push_back(row.id);
        }
    }
    for (const Ups &ups : layout.upses()) {
        out.upsBudgetW[ups.id.index] =
            effectiveUpsProvision(ups.id).value();
        if (out.upsDrawW[ups.id.index] > out.upsBudgetW[ups.id.index])
            out.overBudgetUpses.push_back(ups.id);
    }
}

} // namespace tapas
