#include "dcsim/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

ThermalModel::ThermalModel(const DatacenterLayout &layout_,
                           const ThermalConfig &config,
                           std::uint64_t seed)
    : layout(layout_), cfg(config),
      extendRng(mixSeed(seed, 0x65787464ULL)),
      gpusPerServer(layout_.specs().front().gpusPerServer)
{
    Rng rng(mixSeed(seed, 0x7468726dULL));

    // Fixed per-row offsets and per-row thermal gradient direction:
    // some rows are warmer at one end than the other (construction
    // and airflow differences the paper reports in Fig. 1).
    rowOffsets.reserve(layout.rowCount());
    for (std::size_t r = 0; r < layout.rowCount(); ++r) {
        rowOffsets.push_back(rng.uniform(0.0, cfg.rowSpreadC));
        rowDirs.push_back(rng.bernoulli(0.5) ? 1 : -1);
    }

    serverOffsets.reserve(layout.serverCount());
    gpuCoeffs.reserve(layout.serverCount() * gpusPerServer);
    gpuOffsets.reserve(layout.serverCount() * gpusPerServer);

    for (const Server &server : layout.servers())
        materializeServer(server, rng);
}

void
ThermalModel::extend()
{
    const std::size_t done = serverOffsets.size();
    for (std::size_t s = done; s < layout.serverCount(); ++s) {
        materializeServer(
            layout.server(ServerId(static_cast<std::uint32_t>(s))),
            extendRng);
    }
}

void
ThermalModel::materializeServer(const Server &server, Rng &rng)
{
    const std::vector<double> &row_offsets = rowOffsets;
    const std::vector<int> &row_dirs = rowDirs;
    tapas_assert(server.id.index == serverOffsets.size(),
                 "servers must be materialized in id order");
    const int racks_in_row = std::max(
        1, static_cast<int>(layout.row(server.row).racks.size()));
    const int slots = std::max(1, layout.config().serversPerRack);

    double pos_frac = racks_in_row > 1
        ? static_cast<double>(server.rowPosition) / (racks_in_row - 1)
        : 0.5;
    if (row_dirs[server.row.index] < 0)
        pos_frac = 1.0 - pos_frac;

    const double height_frac = slots > 1
        ? static_cast<double>(server.rackSlot) / (slots - 1)
        : 0.5;

    serverOffsets.push_back(row_offsets[server.row.index] +
                            cfg.rackSpreadC * pos_frac +
                            cfg.heightSpreadC * height_frac +
                            rng.gaussian(0.0, 0.15));

    for (int g = 0; g < gpusPerServer; ++g) {
        const double coeff =
            rng.gaussian(cfg.gpuCoeffMean, cfg.gpuCoeffSigma);
        gpuCoeffs.push_back(std::max(0.02, coeff));
        double offset =
            rng.gaussian(cfg.gpuOffsetMeanC, cfg.gpuOffsetSigmaC);
        if (g % 2 == 1)
            offset += cfg.oddGpuBiasC;
        gpuOffsets.push_back(std::max(0.0, offset));
    }
}

double
ThermalModel::coolingCurve(Celsius outside) const
{
    const double t = outside.value();
    if (t <= cfg.coldKneeC) {
        // Cooling holds the floor to avoid humidity-driven failures;
        // a tiny residual slope keeps the regression well-posed.
        return cfg.humidityFloorC + 0.02 * (t - cfg.coldKneeC);
    }
    const double mid_top = cfg.humidityFloorC +
        cfg.midSlope * (cfg.hotKneeC - cfg.coldKneeC);
    if (t <= cfg.hotKneeC)
        return cfg.humidityFloorC + cfg.midSlope * (t - cfg.coldKneeC);
    return mid_top + cfg.hotSlope * (t - cfg.hotKneeC);
}

Celsius
ThermalModel::inletTemperature(ServerId id, Celsius outside,
                               double dc_load_frac,
                               double aisle_overdraw_frac,
                               Rng *noise) const
{
    tapas_assert(dc_load_frac >= 0.0 && dc_load_frac <= 1.5,
                 "implausible datacenter load fraction %f",
                 dc_load_frac);
    tapas_assert(aisle_overdraw_frac >= 0.0,
                 "overdraw fraction must be non-negative");
    tapas_assert(id.index < serverOffsets.size(),
                 "server %u not materialized (missing extend()?)",
                 id.index);

    double t = coolingCurve(outside);
    t += cfg.loadSlopeC * dc_load_frac;
    t += serverOffsets[id.index];
    t += cfg.recircSlopeC * aisle_overdraw_frac;
    if (noise)
        t += noise->gaussian(0.0, cfg.noiseSigmaC);
    return Celsius(t);
}

Celsius
ThermalModel::gpuTemperature(ServerId id, int gpu, Celsius inlet,
                             Watts gpu_power) const
{
    tapas_assert(gpu >= 0 && gpu < gpusPerServer,
                 "gpu index %d out of range", gpu);
    const std::size_t idx =
        id.index * static_cast<std::size_t>(gpusPerServer) +
        static_cast<std::size_t>(gpu);
    return inlet + gpuOffsets[idx] + gpuCoeffs[idx] * gpu_power.value();
}

void
ThermalModel::inletTemperatures(Celsius outside, double dc_load_frac,
                                const std::vector<double>
                                    &aisle_overdraw_frac,
                                std::vector<double> &out_inlet_c)
    const
{
    tapas_assert(dc_load_frac >= 0.0 && dc_load_frac <= 1.5,
                 "implausible datacenter load fraction %f",
                 dc_load_frac);
    tapas_assert(aisle_overdraw_frac.size() == layout.aisleCount(),
                 "per-aisle overdraw vector has wrong size");

    const double base =
        coolingCurve(outside) + cfg.loadSlopeC * dc_load_frac;
    out_inlet_c.resize(layout.serverCount());
    for (const Server &server : layout.servers()) {
        const std::size_t s = server.id.index;
        out_inlet_c[s] = base + serverOffsets[s] +
            cfg.recircSlopeC *
                aisle_overdraw_frac[server.aisle.index];
    }
}

void
ThermalModel::gpuTemperatures(ServerId id, Celsius inlet,
                              const double *gpu_power_w,
                              double *out_c) const
{
    const std::size_t base =
        id.index * static_cast<std::size_t>(gpusPerServer);
    const double inlet_c = inlet.value();
    for (int g = 0; g < gpusPerServer; ++g) {
        const std::size_t idx =
            base + static_cast<std::size_t>(g);
        out_c[g] =
            inlet_c + gpuOffsets[idx] + gpuCoeffs[idx] * gpu_power_w[g];
    }
}

Celsius
ThermalModel::memTemperature(ServerId id, int gpu, Celsius inlet,
                             Watts gpu_power,
                             double mem_bound_frac) const
{
    const double frac = std::clamp(mem_bound_frac, 0.0, 1.0);
    const Celsius die = gpuTemperature(id, gpu, inlet, gpu_power);
    const double offset = cfg.memOffsetComputeC +
        (cfg.memOffsetMemBoundC - cfg.memOffsetComputeC) * frac;
    return die + offset;
}

double
ThermalModel::fanSpeed(double load_frac)
{
    const double load = std::clamp(load_frac, 0.0, 1.0);
    // Fans idle at 35% duty and reach 100% at full load; the
    // manufacturer's 80%-duty spec point lands at ~69% load.
    return 0.35 + 0.65 * load;
}

Cfm
ThermalModel::serverAirflow(ServerId id, double load_frac) const
{
    const ServerSpec &spec = layout.specOf(id);
    const double max_cfm = spec.airflowAt80Pct.value() / 0.8;
    return Cfm(max_cfm * fanSpeed(load_frac));
}

double
ThermalModel::spatialOffset(ServerId id) const
{
    return serverOffsets[id.index];
}

double
ThermalModel::gpuCoeff(ServerId id, int gpu) const
{
    return gpuCoeffs[id.index * static_cast<std::size_t>(gpusPerServer)
                     + static_cast<std::size_t>(gpu)];
}

double
ThermalModel::gpuOffset(ServerId id, int gpu) const
{
    return gpuOffsets[id.index * static_cast<std::size_t>(gpusPerServer)
                      + static_cast<std::size_t>(gpu)];
}

double
ThermalModel::meanSpatialOffset() const
{
    double sum = 0.0;
    for (double v : serverOffsets)
        sum += v;
    return serverOffsets.empty()
        ? 0.0 : sum / static_cast<double>(serverOffsets.size());
}

CoolingPlant::CoolingPlant(const DatacenterLayout &layout_,
                           const ThermalModel &thermal_)
    : layout(layout_), thermal(thermal_)
{
    provisionCfm.resize(layout.aisleCount(), 0.0);
    deratingFrac.resize(layout.aisleCount(), 1.0);
    for (const Aisle &aisle : layout.aisles()) {
        double total = 0.0;
        for (ServerId sid : aisle.servers)
            total += thermal.serverAirflow(sid, 1.0).value();
        provisionCfm[aisle.id.index] =
            total * thermal.config().airflowProvisionFactor;
    }
    demandCfm.resize(layout.aisleCount(), 0.0);
    extendDecomposition();
}

void
CoolingPlant::extendDecomposition()
{
    baseCfm.resize(layout.aisleCount(), 0.0);
    for (std::size_t s = slopeCfm.size(); s < layout.serverCount();
         ++s) {
        const ServerId sid(static_cast<std::uint32_t>(s));
        // serverAirflow is linear in load: f(l) = f(0) + slope * l.
        const double idle = thermal.serverAirflow(sid, 0.0).value();
        const double full = thermal.serverAirflow(sid, 1.0).value();
        slopeCfm.push_back(full - idle);
        const std::uint32_t aisle =
            layout.server(sid).aisle.index;
        serverAisle.push_back(aisle);
        baseCfm[aisle] += idle;
    }
}

void
CoolingPlant::updateDemands(const std::vector<double> &server_loads)
{
    tapas_assert(server_loads.size() == layout.serverCount(),
                 "per-server load vector has wrong size");
    if (slopeCfm.size() < layout.serverCount())
        extendDecomposition();

    demandCfm.assign(layout.aisleCount(), 0.0);
    for (std::size_t s = 0; s < server_loads.size(); ++s) {
        const double load =
            std::clamp(server_loads[s], 0.0, 1.0);
        demandCfm[serverAisle[s]] += slopeCfm[s] * load;
    }
    for (std::size_t a = 0; a < demandCfm.size(); ++a)
        demandCfm[a] += baseCfm[a];
    demandsFresh = true;

#ifndef NDEBUG
    // Cross-check the decomposition against the full recompute.
    for (const Aisle &aisle : layout.aisles()) {
        const double full = demand(aisle.id, server_loads).value();
        const double inc = demandCfm[aisle.id.index];
        tapas_assert(std::abs(full - inc) <=
                     1e-9 * std::max(1.0, std::abs(full)),
                     "incremental aisle demand diverged: %f vs %f",
                     inc, full);
    }
#endif
}

Cfm
CoolingPlant::cachedDemand(AisleId id) const
{
    tapas_assert(demandsFresh,
                 "cachedDemand before any updateDemands pass");
    tapas_assert(id.index < demandCfm.size(), "unknown aisle %u",
                 id.index);
    return Cfm(demandCfm[id.index]);
}

double
CoolingPlant::cachedOverdrawFraction(AisleId id) const
{
    const double prov = effectiveProvision(id).value();
    if (prov <= 0.0)
        return 0.0;
    return std::max(0.0, cachedDemand(id).value() / prov - 1.0);
}

Cfm
CoolingPlant::provision(AisleId id) const
{
    tapas_assert(id.index < provisionCfm.size(), "unknown aisle %u",
                 id.index);
    return Cfm(provisionCfm[id.index]);
}

Cfm
CoolingPlant::effectiveProvision(AisleId id) const
{
    return Cfm(provisionCfm[id.index] * deratingFrac[id.index]);
}

void
CoolingPlant::failAhu(AisleId id, double remaining_frac)
{
    tapas_assert(remaining_frac > 0.0 && remaining_frac <= 1.0,
                 "derating fraction must be in (0,1]");
    deratingFrac[id.index] = remaining_frac;
}

void
CoolingPlant::restoreAhu(AisleId id)
{
    deratingFrac[id.index] = 1.0;
}

bool
CoolingPlant::anyFailure() const
{
    for (double f : deratingFrac) {
        if (f < 1.0)
            return true;
    }
    return false;
}

Cfm
CoolingPlant::demand(AisleId id,
                     const std::vector<double> &server_loads) const
{
    tapas_assert(server_loads.size() == layout.serverCount(),
                 "per-server load vector has wrong size");
    double total = 0.0;
    for (ServerId sid : layout.aisle(id).servers)
        total += thermal.serverAirflow(sid,
                                       server_loads[sid.index]).value();
    return Cfm(total);
}

double
CoolingPlant::overdrawFraction(AisleId id,
                               const std::vector<double> &server_loads)
    const
{
    const double prov = effectiveProvision(id).value();
    if (prov <= 0.0)
        return 0.0;
    const double need = demand(id, server_loads).value();
    return std::max(0.0, need / prov - 1.0);
}

} // namespace tapas
