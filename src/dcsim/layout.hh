/**
 * @file
 * Physical datacenter layout: aisles, rows, racks, servers, and the
 * power-distribution hierarchy (ATS -> UPS -> PDU pairs -> rows).
 *
 * Mirrors the paper's Section 2 description: servers sit in racks,
 * racks form rows, two facing rows share a contained cold aisle fed
 * by a group of AHUs, and each row hangs off a PDU pair which in turn
 * hangs off one of the UPS units (4N/3 redundancy at the UPS level).
 */

#ifndef TAPAS_DCSIM_LAYOUT_HH
#define TAPAS_DCSIM_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dcsim/specs.hh"

namespace tapas {

/** One physical GPU server and its position in the plant. */
struct Server
{
    ServerId id;
    RackId rack;
    RowId row;
    AisleId aisle;
    UpsId ups;
    PduId pdu;
    /** Slot within the rack, 0 = bottom. */
    int rackSlot = 0;
    /** Position of the enclosing rack within its row, 0 = aisle end. */
    int rowPosition = 0;
    /** Index into DatacenterLayout::specs(). */
    int specIndex = 0;
};

/** A rack: a column of servers within a row. */
struct Rack
{
    RackId id;
    RowId row;
    int rowPosition = 0;
    std::vector<ServerId> servers;
};

/** A row of racks; the unit of power budgeting (Eq. 4). */
struct Row
{
    RowId id;
    AisleId aisle;
    PduId pdu;
    std::vector<RackId> racks;
    std::vector<ServerId> servers;
};

/** A contained cold aisle shared by two rows; the unit of airflow. */
struct Aisle
{
    AisleId id;
    std::vector<RowId> rows;
    std::vector<ServerId> servers;
};

/** A PDU pair feeding one row. */
struct Pdu
{
    PduId id;
    UpsId ups;
    std::vector<RowId> rows;
};

/** A UPS unit feeding several PDU pairs (4N/3 redundancy). */
struct Ups
{
    UpsId id;
    std::vector<PduId> pdus;
    std::vector<RowId> rows;
};

/** Knobs for building a synthetic datacenter. */
struct LayoutConfig
{
    int aisleCount = 4;
    int rowsPerAisle = 2;
    int racksPerRow = 10;
    int serversPerRack = 4;
    GpuSku sku = GpuSku::A100;
    int upsCount = 4;
};

/**
 * Immutable physical layout. Built once per experiment; every other
 * module references entities by id.
 */
class DatacenterLayout
{
  public:
    explicit DatacenterLayout(const LayoutConfig &config);

    const LayoutConfig &config() const { return cfg; }

    std::size_t serverCount() const { return serverList.size(); }
    std::size_t rackCount() const { return rackList.size(); }
    std::size_t rowCount() const { return rowList.size(); }
    std::size_t aisleCount() const { return aisleList.size(); }
    std::size_t upsCount() const { return upsList.size(); }
    std::size_t pduCount() const { return pduList.size(); }

    const Server &server(ServerId id) const;
    const Rack &rack(RackId id) const;
    const Row &row(RowId id) const;
    const Aisle &aisle(AisleId id) const;
    const Ups &ups(UpsId id) const;
    const Pdu &pdu(PduId id) const;

    const std::vector<Server> &servers() const { return serverList; }
    const std::vector<Row> &rows() const { return rowList; }
    const std::vector<Aisle> &aisles() const { return aisleList; }
    const std::vector<Ups> &upses() const { return upsList; }

    /** Spec for a given server. */
    const ServerSpec &specOf(ServerId id) const;
    const std::vector<ServerSpec> &specs() const { return specList; }

    /**
     * Append one rack of servers to an existing row. Used by the
     * oversubscription experiments, which add racks without adding
     * cooling/power provisioning. Returns the new server ids.
     */
    std::vector<ServerId> addRack(RowId row_id);

  private:
    LayoutConfig cfg;
    std::vector<ServerSpec> specList;
    std::vector<Server> serverList;
    std::vector<Rack> rackList;
    std::vector<Row> rowList;
    std::vector<Aisle> aisleList;
    std::vector<Pdu> pduList;
    std::vector<Ups> upsList;
};

} // namespace tapas

#endif // TAPAS_DCSIM_LAYOUT_HH
