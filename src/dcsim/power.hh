/**
 * @file
 * Ground-truth power model and power-distribution hierarchy (Eq. 4).
 *
 * Server power is idle-dominated-plus-load-dependent as the paper
 * characterizes: chassis idle, per-GPU dynamic power (frequency-
 * sensitive), fan power (cubic in fan speed), and load-dependent
 * component power. The hierarchy aggregates draw per row and per UPS,
 * compares against frozen provisioning, and reports capping needs.
 */

#ifndef TAPAS_DCSIM_POWER_HH
#define TAPAS_DCSIM_POWER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"
#include "dcsim/layout.hh"

namespace tapas {

/** Tunable constants of the ground-truth power model. */
struct PowerConfig
{
    /** Exponent on frequency for GPU dynamic power (f * V^2 law). */
    double freqPowerExponent = 2.4;
    /**
     * Row provisioning as a fraction of the row's worst-case draw at
     * construction time. 1.0 = provisioned exactly for peak.
     */
    double rowProvisionFactor = 1.0;
    /**
     * UPS provisioning as a fraction of the sum of its rows'
     * provisioned power.
     */
    double upsProvisionFactor = 1.0;
};

/** Converts load/frequency to electrical draw for one server. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &config) : cfg(config) {}

    const PowerConfig &config() const { return cfg; }

    /**
     * One GPU's power draw.
     *
     * @param spec server hardware spec
     * @param load_frac GPU utilization [0,1]
     * @param freq_frac clock as a fraction of max [0,1]
     */
    Watts gpuPower(const ServerSpec &spec, double load_frac,
                   double freq_frac = 1.0) const;

    /**
     * Whole-server power from per-GPU draws plus chassis, component,
     * and fan power. @p heat_frac is the normalized GPU heat output
     * ((sum draw - sum idle) / (sum max - sum idle)); fans and the
     * load-dependent chassis components track heat, not busy time.
     */
    Watts serverPower(const ServerSpec &spec,
                      const std::vector<Watts> &gpu_draws,
                      double heat_frac) const;

    /** Normalized GPU heat output of a server, in [0, 1]. */
    static double heatFraction(const ServerSpec &spec,
                               const std::vector<Watts> &gpu_draws);

    /** Convenience: server power when all GPUs run at equal load. */
    Watts serverPowerAtLoad(const ServerSpec &spec, double load_frac,
                            double freq_frac = 1.0) const;

    /** Worst-case server draw (all GPUs at max, fans at full). */
    Watts serverPeakPower(const ServerSpec &spec) const;

  private:
    PowerConfig cfg;
};

/** Result of comparing current draw against provisioned budgets. */
struct PowerAssessment
{
    std::vector<double> rowDrawW;
    std::vector<double> rowBudgetW;
    std::vector<double> upsDrawW;
    std::vector<double> upsBudgetW;

    /** Rows currently exceeding their effective budget. */
    std::vector<RowId> overBudgetRows;
    /** UPS units currently exceeding their effective budget. */
    std::vector<UpsId> overBudgetUpses;

    bool anyViolation() const
    { return !overBudgetRows.empty() || !overBudgetUpses.empty(); }

    /** Reset for reuse as assess() scratch, keeping capacity. */
    void
    clear()
    {
        rowDrawW.clear();
        rowBudgetW.clear();
        upsDrawW.clear();
        upsBudgetW.clear();
        overBudgetRows.clear();
        overBudgetUpses.clear();
    }

    /** Row headroom in watts (can be negative). */
    double rowHeadroomW(RowId id) const
    { return rowBudgetW[id.index] - rowDrawW[id.index]; }
};

/**
 * The three-level power delivery hierarchy with frozen provisioning
 * and UPS failure support. Provisioning freezes at construction;
 * oversubscription racks added afterwards share the budgets.
 */
class PowerHierarchy
{
  public:
    PowerHierarchy(const DatacenterLayout &layout,
                   const PowerModel &model);

    /** Provisioned row power budget. */
    Watts rowProvision(RowId id) const;

    /** Budget after any emergency derating. */
    Watts effectiveRowProvision(RowId id) const;

    Watts upsProvision(UpsId id) const;
    Watts effectiveUpsProvision(UpsId id) const;

    /** Total provisioned datacenter power. */
    Watts totalProvision() const;

    /**
     * Fail a UPS: per the paper's emergency semantics, the remaining
     * units absorb its load and every row's effective budget drops to
     * the given fraction (75% in the paper's 4N/3 design). The
     * fraction is stored per UPS (absolute, latest call wins for that
     * unit); with several units down the datacenter-wide derate is
     * the minimum over the failed units, so restores are exact — no
     * compounding across overlapping failures.
     */
    void failUps(UpsId id, double remaining_frac = 0.75);

    /** Restore a failed UPS and recompute the effective derate. */
    void restoreUps(UpsId id);

    bool anyFailure() const;

    /** Stored remaining fraction of a UPS (1.0 when healthy). */
    double upsDerate(UpsId id) const;

    /** Datacenter-wide derate: min over failed units, 1.0 if none. */
    double datacenterDerate() const { return deratingFrac; }

    /**
     * Aggregate per-server draws up the hierarchy and flag every
     * level that exceeds its effective budget.
     */
    PowerAssessment assess(const std::vector<Watts> &server_draws)
        const;

    /**
     * Allocation-free variant: writes into a caller-owned scratch
     * assessment, reusing its vectors' capacity. The step loop calls
     * this up to 7x per step during capping convergence.
     */
    void assess(const std::vector<Watts> &server_draws,
                PowerAssessment &out) const;

  private:
    const DatacenterLayout &layout;
    std::vector<double> rowProvisionW;
    std::vector<double> upsProvisionW;
    std::vector<bool> upsFailed;
    /** Per-UPS remaining fraction while failed (1.0 otherwise). */
    std::vector<double> upsRemainingFrac;
    /** Cached row -> UPS index (avoids PDU hops in assess()). */
    std::vector<std::uint32_t> rowUps;
    double deratingFrac = 1.0;

    void recomputeDerating();
};

} // namespace tapas

#endif // TAPAS_DCSIM_POWER_HH
