/**
 * @file
 * Continuous-batching LLM inference engine (vLLM-style substrate).
 *
 * A fluid-flow engine: requests queue FIFO, get admitted into the
 * running batch up to the configured max batch size, prefill one at a
 * time (interleaved with decode as chunked-prefill schedulers do),
 * then decode together. Progress advances continuously within a step,
 * so TTFT/TBT have full resolution regardless of the simulator's step
 * size. Reconfiguration drains the batch, then blacks out for the
 * model-reload delay before the new profile takes effect, matching
 * the overheads Section 4.3 accounts for.
 */

#ifndef TAPAS_LLM_ENGINE_HH
#define TAPAS_LLM_ENGINE_HH

#include <deque>
#include <vector>

#include "common/stats.hh"
#include "llm/perf.hh"
#include "llm/request.hh"

namespace tapas {

class Archive;

/** Aggregate engine counters. */
struct EngineStats
{
    std::uint64_t enqueued = 0;
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;
    double totalTokens = 0.0;
    /** Tokens from requests that met both SLOs. */
    double goodputTokens = 0.0;
    double qualitySum = 0.0;
    QuantileSample ttftS;
    QuantileSample tbtS;

    double meanQuality() const
    { return completed ? qualitySum / completed : 0.0; }
};

/** One LLM inference instance. */
class InferenceEngine
{
  public:
    InferenceEngine(const ConfigProfile &profile, const SloSpec &slo);

    const ConfigProfile &profile() const { return activeProfile; }
    const SloSpec &slo() const { return sloSpec; }

    /** Whether the engine is accepting new requests right now. */
    bool accepting() const { return !draining && !inBlackout; }

    /** True while draining or reloading for a pending reconfig. */
    bool reconfiguring() const { return draining || inBlackout; }

    /** Queue + running batch depth. */
    std::size_t outstanding() const
    { return queue.size() + running.size() + (prefillActive ? 1 : 0); }

    std::size_t queueDepth() const { return queue.size(); }
    std::size_t runningBatch() const
    { return running.size() + (prefillActive ? 1 : 0); }

    /** Add a request. Panics if called while not accepting. */
    void enqueue(const Request &request);

    /**
     * Begin a reconfiguration. Frequency/batch-only changes apply
     * immediately; others drain the running batch and then black out
     * for @p reload_delay_s.
     */
    void requestReconfig(const ConfigProfile &next,
                         double reload_delay_s);

    /**
     * Drain and black out without a config change: models the
     * traffic cutover while a SaaS VM migrates to another server.
     */
    void beginMigration(double delay_s);

    /**
     * Advance the engine over [from_s, to_s), processing admissions,
     * prefill, decode, completions, and reconfiguration.
     */
    void step(double from_s, double to_s);

    /**
     * Hardware frequency throttle (thermal/power capping): scales
     * processing rates without touching the software configuration.
     */
    void setHardwareThrottle(double frac);

    double hardwareThrottle() const { return hwThrottle; }

    /** Completions produced by the last step() call. */
    const std::vector<CompletedRequest> &lastCompletions() const
    { return completions; }

    /** Busy fraction of the last step, in [0,1]. */
    double lastUtilization() const { return lastUtil; }

    /** Share of busy time spent prefilling in the last step. */
    double lastPrefillShare() const { return lastPrefill; }

    /** Time-weighted mean running decode batch in the last step. */
    double lastDecodeBatch() const { return lastBatch; }

    /** Cumulative statistics. */
    const EngineStats &stats() const { return engineStats; }

    /**
     * Estimated sustainable load fraction: outstanding token demand
     * versus capacity over a horizon. Used by routers for
     * least-loaded decisions.
     */
    double loadFraction(double horizon_s) const;

    /**
     * Estimated TTFT a request routed now would see: the pending
     * prefill backlog divided by the prefill rate available while
     * decode work shares the GPU. The router's load signal.
     */
    double estimatedTtftS() const;

    /**
     * Serialize/restore the complete engine state — profiles, queue,
     * running batch, reconfig latches, stats (checkpointing).
     */
    void checkpointState(Archive &ar);

  private:
    struct Active
    {
        Request request;
        double prefillRemaining = 0.0;
        double decodeRemaining = 0.0;
        double ttftS = -1.0;
        double firstTokenAt = -1.0;
    };

    ConfigProfile activeProfile;
    ConfigProfile pendingProfile;
    SloSpec sloSpec;

    std::deque<Active> queue;
    std::vector<Active> running;
    bool prefillActive = false;
    Active prefillSlot;

    bool draining = false;
    bool inBlackout = false;
    bool hasPending = false;
    double blackoutUntil = 0.0;
    double reloadDelayS = 0.0;

    std::vector<CompletedRequest> completions;
    EngineStats engineStats;
    double lastUtil = 0.0;
    double lastPrefill = 0.0;
    double lastBatch = 0.0;
    double hwThrottle = 1.0;

    void admit(double now);
    void finish(Active &item, double now);
    double decodeRate() const;
    void maybeStartBlackout(double now);
};

} // namespace tapas

#endif // TAPAS_LLM_ENGINE_HH
