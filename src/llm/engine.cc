#include "llm/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

namespace {
/** Token-remainder tolerance for completion detection. */
constexpr double kEps = 1e-9;
/**
 * Share of GPU time prefill gets when decode also has work.
 * Production schedulers (vLLM, Orca) prioritize prefill so TTFT
 * tracks the unloaded prefill rate; decode retains a small share,
 * stretching TBT within its (much looser) SLO.
 */
constexpr double kPrefillShare = 0.9;
} // namespace

InferenceEngine::InferenceEngine(const ConfigProfile &profile,
                                 const SloSpec &slo)
    : activeProfile(profile), pendingProfile(profile), sloSpec(slo)
{
}

void
InferenceEngine::enqueue(const Request &request)
{
    tapas_assert(accepting(),
                 "enqueue on a reconfiguring engine; the router must "
                 "check accepting()");
    Active item;
    item.request = request;
    item.prefillRemaining = request.promptTokens;
    item.decodeRemaining = std::max(0, request.outputTokens - 1);
    queue.push_back(item);
    ++engineStats.enqueued;
}

void
InferenceEngine::requestReconfig(const ConfigProfile &next,
                                 double reload_delay_s)
{
    if (!next.config.requiresReload(activeProfile.config)) {
        // Frequency/batch changes take effect immediately.
        activeProfile = next;
        return;
    }
    pendingProfile = next;
    hasPending = true;
    draining = true;
    reloadDelayS = reload_delay_s;
}

void
InferenceEngine::beginMigration(double delay_s)
{
    pendingProfile = activeProfile;
    hasPending = true;
    draining = true;
    reloadDelayS = delay_s;
}

void
InferenceEngine::admit(double now)
{
    if (draining || inBlackout)
        return;
    const auto limit =
        static_cast<std::size_t>(activeProfile.config.maxBatchSize);
    while (!prefillActive && !queue.empty() &&
           queue.front().request.arrivalS <= now + kEps &&
           running.size() + 1 <= limit) {
        prefillSlot = queue.front();
        queue.pop_front();
        prefillActive = true;
    }
}

double
InferenceEngine::decodeRate() const
{
    const std::size_t batch = running.size();
    if (batch == 0)
        return 0.0;
    const double b = static_cast<double>(batch);
    const double tau = activeProfile.decodeWeightS +
        activeProfile.decodeKvS * b;
    return hwThrottle * b / tau;
}

void
InferenceEngine::setHardwareThrottle(double frac)
{
    tapas_assert(frac > 0.0 && frac <= 1.0,
                 "throttle fraction %f out of (0,1]", frac);
    hwThrottle = frac;
}

void
InferenceEngine::finish(Active &item, double now)
{
    CompletedRequest done;
    done.request = item.request;
    done.ttftS = item.ttftS;
    done.finishS = now;
    const int extra_tokens =
        std::max(0, item.request.outputTokens - 1);
    done.tbtS = extra_tokens > 0
        ? (now - item.firstTokenAt) / extra_tokens
        : 0.0;
    done.quality = activeProfile.quality;
    done.metSlo =
        done.ttftS <= sloSpec.ttftSloFor(item.request.promptTokens) &&
        done.tbtS <= sloSpec.tbtS;

    ++engineStats.completed;
    engineStats.qualitySum += done.quality;
    engineStats.ttftS.add(done.ttftS);
    engineStats.tbtS.add(done.tbtS);
    const double tokens = item.request.promptTokens +
        item.request.outputTokens;
    if (done.metSlo) {
        engineStats.goodputTokens += tokens;
    } else {
        ++engineStats.sloViolations;
    }
    completions.push_back(done);
}

void
InferenceEngine::maybeStartBlackout(double now)
{
    if (draining && running.empty() && !prefillActive) {
        draining = false;
        inBlackout = true;
        blackoutUntil = now + reloadDelayS;
    }
}

void
InferenceEngine::step(double from_s, double to_s)
{
    tapas_assert(to_s > from_s, "empty step [%f, %f)", from_s, to_s);
    completions.clear();

    double now = from_s;
    double busy = 0.0;
    double prefill_busy = 0.0;
    double decode_time = 0.0;
    double decode_batch_time = 0.0;

    int guard = 0;
    while (now < to_s - kEps) {
        tapas_assert(++guard < 1000000, "engine step did not converge");

        if (inBlackout) {
            if (blackoutUntil >= to_s)
                break;
            now = std::max(now, blackoutUntil);
            inBlackout = false;
            if (hasPending) {
                activeProfile = pendingProfile;
                hasPending = false;
            }
            continue;
        }

        maybeStartBlackout(now);
        if (inBlackout)
            continue;

        admit(now);

        const bool has_prefill = prefillActive;
        const bool has_decode = !running.empty();
        if (!has_prefill && !has_decode) {
            // Idle until the next queued arrival (if any) or the end
            // of the step.
            if (!queue.empty() &&
                queue.front().request.arrivalS < to_s) {
                now = std::max(now,
                               queue.front().request.arrivalS);
                continue;
            }
            break;
        }

        const double phi = has_prefill
            ? (has_decode ? kPrefillShare : 1.0)
            : 0.0;
        const double prefill_rate =
            phi * hwThrottle * activeProfile.prefill.throughputTps;
        const double decode_share = has_decode
            ? (has_prefill ? 1.0 - kPrefillShare : 1.0)
            : 0.0;
        const double decode_total = decode_share * decodeRate();
        const double per_request = has_decode
            ? decode_total / static_cast<double>(running.size())
            : 0.0;

        // Earliest of: prefill completion, first decode completion,
        // next queued arrival, end of step.
        double dt = to_s - now;
        if (!prefillActive && !queue.empty() &&
            queue.front().request.arrivalS > now) {
            dt = std::min(dt,
                          queue.front().request.arrivalS - now);
        }
        if (has_prefill && prefill_rate > 0.0) {
            dt = std::min(dt,
                          prefillSlot.prefillRemaining / prefill_rate);
        }
        if (has_decode && per_request > 0.0) {
            double min_remaining = 1e300;
            for (const Active &item : running) {
                min_remaining =
                    std::min(min_remaining, item.decodeRemaining);
            }
            dt = std::min(dt, min_remaining / per_request);
        }
        dt = std::max(dt, 0.0);

        if (has_prefill)
            prefillSlot.prefillRemaining -= prefill_rate * dt;
        for (Active &item : running)
            item.decodeRemaining -= per_request * dt;
        engineStats.totalTokens +=
            prefill_rate * dt + decode_total * dt;
        busy += dt;
        prefill_busy += dt * phi;
        if (has_decode) {
            decode_time += dt;
            decode_batch_time +=
                dt * static_cast<double>(running.size());
        }
        now += dt;

        // Prefill completion: first token emitted now.
        if (has_prefill && prefillSlot.prefillRemaining <= kEps) {
            prefillSlot.ttftS = now - prefillSlot.request.arrivalS;
            prefillSlot.firstTokenAt = now;
            prefillActive = false;
            if (prefillSlot.decodeRemaining <= kEps) {
                finish(prefillSlot, now);
            } else {
                running.push_back(prefillSlot);
            }
        }

        // Decode completions.
        for (std::size_t i = 0; i < running.size();) {
            if (running[i].decodeRemaining <= kEps) {
                finish(running[i], now);
                running[i] = running.back();
                running.pop_back();
            } else {
                ++i;
            }
        }
    }

    const double span = to_s - from_s;
    lastUtil = std::clamp(busy / span, 0.0, 1.0);
    lastPrefill = busy > 0.0 ? prefill_busy / busy : 0.0;
    lastBatch = decode_time > 0.0
        ? decode_batch_time / decode_time
        : 0.0;
}

double
InferenceEngine::estimatedTtftS() const
{
    double pending = prefillActive ? prefillSlot.prefillRemaining
                                   : 0.0;
    for (const Active &item : queue)
        pending += item.prefillRemaining;
    // Conservative: assume decode keeps its share of the GPU.
    const double rate = kPrefillShare * hwThrottle *
        activeProfile.prefill.throughputTps;
    return rate > 0.0 ? pending / rate : 1e9;
}

double
InferenceEngine::loadFraction(double horizon_s) const
{
    tapas_assert(horizon_s > 0.0, "horizon must be positive");
    double prefill_tokens = 0.0;
    double decode_tokens = 0.0;
    auto count = [&](const Active &item) {
        prefill_tokens += std::max(0.0, item.prefillRemaining);
        decode_tokens += std::max(0.0, item.decodeRemaining);
    };
    for (const Active &item : queue)
        count(item);
    for (const Active &item : running)
        count(item);
    if (prefillActive)
        count(prefillSlot);

    const double prefill_s =
        prefill_tokens / activeProfile.prefill.throughputTps;
    const double decode_s = decode_tokens > 0.0
        ? decode_tokens / activeProfile.decode.throughputTps
        : 0.0;
    return (prefill_s + decode_s) / horizon_s;
}

namespace {

void
requestFields(Archive &ar, Request &r)
{
    ar.value(r.id);
    ar.value(r.endpoint);
    ar.value(r.customer);
    ar.value(r.arrivalS);
    ar.value(r.promptTokens);
    ar.value(r.outputTokens);
}

void
completedFields(Archive &ar, CompletedRequest &c)
{
    requestFields(ar, c.request);
    ar.value(c.ttftS);
    ar.value(c.tbtS);
    ar.value(c.finishS);
    ar.value(c.quality);
    ar.value(c.metSlo);
}

void
instanceConfigFields(Archive &ar, InstanceConfig &c)
{
    ar.value(c.model);
    ar.value(c.quant);
    ar.value(c.tensorParallel);
    ar.value(c.maxBatchSize);
    ar.value(c.freqFrac);
}

void
phaseProfileFields(Archive &ar, PhaseProfile &p)
{
    ar.value(p.throughputTps);
    ar.value(p.gpuPower.watts);
    ar.value(p.memBoundFrac);
}

void
configProfileFields(Archive &ar, ConfigProfile &p)
{
    instanceConfigFields(ar, p.config);
    phaseProfileFields(ar, p.prefill);
    phaseProfileFields(ar, p.decode);
    ar.value(p.decodeWeightS);
    ar.value(p.decodeKvS);
    ar.value(p.activeGpus);
    ar.value(p.quality);
    ar.value(p.unloadedTtftS);
    ar.value(p.unloadedTbtS);
    ar.value(p.capacityTps);
    ar.value(p.goodputTps);
    ar.value(p.decodePowerBatch1W);
    ar.value(p.decodePowerBatchMaxW);
}

void
sloFields(Archive &ar, SloSpec &s)
{
    ar.value(s.ttftS);
    ar.value(s.tbtS);
    ar.value(s.ttftPerPromptTokenS);
}

void
engineStatsFields(Archive &ar, EngineStats &s)
{
    ar.value(s.enqueued);
    ar.value(s.completed);
    ar.value(s.sloViolations);
    ar.value(s.totalTokens);
    ar.value(s.goodputTokens);
    ar.value(s.qualitySum);
    s.ttftS.checkpointState(ar);
    s.tbtS.checkpointState(ar);
}

} // namespace

void
InferenceEngine::checkpointState(Archive &ar)
{
    const auto active = [](Archive &a, Active &item) {
        requestFields(a, item.request);
        a.value(item.prefillRemaining);
        a.value(item.decodeRemaining);
        a.value(item.ttftS);
        a.value(item.firstTokenAt);
    };
    configProfileFields(ar, activeProfile);
    configProfileFields(ar, pendingProfile);
    sloFields(ar, sloSpec);
    ar.eachDeque(queue, active);
    ar.each(running, active);
    ar.value(prefillActive);
    active(ar, prefillSlot);
    ar.value(draining);
    ar.value(inBlackout);
    ar.value(hasPending);
    ar.value(blackoutUntil);
    ar.value(reloadDelayS);
    ar.each(completions, completedFields);
    engineStatsFields(ar, engineStats);
    ar.value(lastUtil);
    ar.value(lastPrefill);
    ar.value(lastBatch);
    ar.value(hwThrottle);
}

} // namespace tapas
