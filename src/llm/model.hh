/**
 * @file
 * LLM catalog: the Llama2-style model family the paper profiles
 * (70B/13B/7B) with quantization variants and quality scores.
 *
 * Quality follows the paper's Section 3.3 numbers: the 7B model loses
 * 30-40% quality versus 70B; quantization costs 2-20% depending on
 * precision.
 */

#ifndef TAPAS_LLM_MODEL_HH
#define TAPAS_LLM_MODEL_HH

#include <string>

namespace tapas {

/** Parameter-count variant of the served model family. */
enum class ModelSize { B70, B13, B7 };

/** Weight precision. */
enum class Quantization { FP16, FP8, INT4 };

/** All sizes, largest first (preference order for quality). */
inline constexpr ModelSize kAllModelSizes[] = {
    ModelSize::B70, ModelSize::B13, ModelSize::B7};

/** All precisions, highest first. */
inline constexpr Quantization kAllQuantizations[] = {
    Quantization::FP16, Quantization::FP8, Quantization::INT4};

/** Billions of parameters for a size. */
double modelParamsB(ModelSize size);

/** Bytes per parameter at a precision. */
double quantBytesPerParam(Quantization quant);

/**
 * Relative output quality in [0,1]. 70B FP16 = 1.0; smaller and
 * lower-precision variants multiply penalties.
 */
double modelQuality(ModelSize size, Quantization quant);

/**
 * Relative arithmetic throughput gain of a precision versus FP16
 * (reduced bytes moved and higher tensor-core rates).
 */
double quantSpeedup(Quantization quant);

/** Human-readable names. */
const char *modelSizeName(ModelSize size);
const char *quantizationName(Quantization quant);

/** Weights footprint in GiB for a (size, quant) pair. */
double modelWeightsGb(ModelSize size, Quantization quant);

} // namespace tapas

#endif // TAPAS_LLM_MODEL_HH
