/**
 * @file
 * LLM inference request records shared by the engine, router, and
 * workload generator.
 */

#ifndef TAPAS_LLM_REQUEST_HH
#define TAPAS_LLM_REQUEST_HH

#include "common/types.hh"

namespace tapas {

/** One user inference request. */
struct Request
{
    RequestId id;
    EndpointId endpoint;
    CustomerId customer;
    /** Arrival time, continuous seconds since simulation start. */
    double arrivalS = 0.0;
    int promptTokens = 0;
    int outputTokens = 0;
};

/** Completion record emitted by the engine. */
struct CompletedRequest
{
    Request request;
    /** Time to first token, seconds. */
    double ttftS = 0.0;
    /** Mean time between output tokens, seconds. */
    double tbtS = 0.0;
    /** Completion timestamp. */
    double finishS = 0.0;
    /** Quality of the serving model variant, in [0,1]. */
    double quality = 1.0;
    /** True if both TTFT and TBT SLOs were met. */
    bool metSlo = false;
};

} // namespace tapas

#endif // TAPAS_LLM_REQUEST_HH
