#include "llm/config.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace tapas {

std::string
InstanceConfig::label() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s/%s/TP%d/B%d/F%.2f",
                  modelSizeName(model), quantizationName(quant),
                  tensorParallel, maxBatchSize, freqFrac);
    return buf;
}

bool
InstanceConfig::requiresReload(const InstanceConfig &from) const
{
    return model != from.model || quant != from.quant ||
        tensorParallel != from.tensorParallel;
}

std::size_t
InstanceConfigHash::operator()(const InstanceConfig &c) const
{
    // SplitMix64-style mix over the packed discrete knobs plus the
    // bit pattern of the frequency fraction.
    std::uint64_t h = static_cast<std::uint64_t>(c.model);
    h = h * 31 + static_cast<std::uint64_t>(c.quant);
    h = h * 31 + static_cast<std::uint64_t>(c.tensorParallel);
    h = h * 31 + static_cast<std::uint64_t>(c.maxBatchSize);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(c.freqFrac));
    std::memcpy(&bits, &c.freqFrac, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return static_cast<std::size_t>(h);
}

const std::vector<int> &
ConfigSpace::tpDegrees()
{
    static const std::vector<int> degrees = {2, 4, 8};
    return degrees;
}

const std::vector<int> &
ConfigSpace::batchSizes()
{
    static const std::vector<int> sizes = {1, 4, 16, 64};
    return sizes;
}

const std::vector<double> &
ConfigSpace::freqSteps()
{
    static const std::vector<double> steps = {0.6, 0.7, 0.8, 0.9, 1.0};
    return steps;
}

bool
ConfigSpace::memoryFeasible(const InstanceConfig &config,
                            const ServerSpec &spec)
{
    return kvHeadroomFraction(config, spec) >= 0.2;
}

double
ConfigSpace::kvHeadroomFraction(const InstanceConfig &config,
                                const ServerSpec &spec)
{
    tapas_assert(config.tensorParallel >= 1 &&
                 config.tensorParallel <= spec.gpusPerServer,
                 "TP degree %d out of range", config.tensorParallel);
    const double group_hbm =
        spec.hbmGb * static_cast<double>(config.tensorParallel);
    const double weights = modelWeightsGb(config.model, config.quant);
    return (group_hbm - weights) / group_hbm;
}

std::vector<InstanceConfig>
ConfigSpace::enumerate(const ServerSpec &spec)
{
    std::vector<InstanceConfig> out;
    for (ModelSize model : kAllModelSizes) {
        for (Quantization quant : kAllQuantizations) {
            for (int tp : tpDegrees()) {
                for (int batch : batchSizes()) {
                    for (double freq : freqSteps()) {
                        InstanceConfig config;
                        config.model = model;
                        config.quant = quant;
                        config.tensorParallel = tp;
                        config.maxBatchSize = batch;
                        config.freqFrac = freq;
                        if (memoryFeasible(config, spec))
                            out.push_back(config);
                    }
                }
            }
        }
    }
    return out;
}

} // namespace tapas
