/**
 * @file
 * Analytic LLM performance/power model (paper Section 3.3).
 *
 * Prefill is modeled compute-bound (throughput scales with TFLOPs,
 * frequency, TP width and quantization speedup); decode is modeled
 * memory-bound (a batched decode step streams the weights once plus
 * per-sequence KV state, so step time is affine in batch size). Phase
 * power and memory-boundedness follow the characterization in
 * Figs. 15-16:
 *
 *  - lower TP concentrates work: whole-server power drops but
 *    per-GPU power (and thus the hottest GPU's temperature) rises;
 *  - smaller batches cut power but raise the decode memory-bound
 *    fraction (more per-token fetch overhead heats HBM);
 *  - smaller/quantized models cut both power and quality;
 *  - lower frequency cuts power superlinearly at a modest
 *    performance cost, with no quality impact.
 *
 * Goodput = tokens/s sustainable within TTFT/TBT SLOs, the paper's
 * definition (SLO = 5x execution time on an unloaded system).
 */

#ifndef TAPAS_LLM_PERF_HH
#define TAPAS_LLM_PERF_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/units.hh"
#include "dcsim/specs.hh"
#include "llm/config.hh"

namespace tapas {

/**
 * Latency SLOs for an endpoint. The paper defines SLOs as 5x the
 * execution time on an unloaded system; TTFT therefore scales with
 * the request's prompt length (floored at the reference-prompt
 * anchor so tiny prompts are not impossible to serve).
 */
struct SloSpec
{
    /** TTFT anchor for the reference prompt, seconds. */
    double ttftS = 0.0;
    /** TBT bound, seconds per output token. */
    double tbtS = 0.0;
    /** TTFT seconds per prompt token (5 / reference prefill rate). */
    double ttftPerPromptTokenS = 0.0;

    /** Effective TTFT SLO for a given prompt length. */
    double
    ttftSloFor(int prompt_tokens) const
    {
        return std::max(ttftS,
                        ttftPerPromptTokenS * prompt_tokens);
    }
};

/** Request-mix assumptions used for capacity computations. */
struct RequestMix
{
    double promptTokens = 512.0;
    double outputTokens = 128.0;

    double prefillFraction() const
    { return promptTokens / (promptTokens + outputTokens); }
    double decodeFraction() const
    { return outputTokens / (promptTokens + outputTokens); }
};

/** Hardware/efficiency constants of the analytic model. */
struct PerfParams
{
    /** Dense FP16 TFLOPs of one GPU at max clock. */
    double gpuTflops = 312.0;
    /** HBM bandwidth of one GPU, TB/s. */
    double hbmTbPerS = 1.94;
    /** Model FLOPs utilization achieved in prefill. */
    double prefillMfu = 0.55;
    /** Memory bandwidth utilization achieved in decode. */
    double decodeMbu = 0.55;
    /** KV bytes streamed per sequence per decode step, FP16. */
    double kvBytesPerSeq = 0.33e6 * 576.0;
    /** Exponent for frequency's effect on dynamic power. */
    double freqPowerExponent = 2.4;
    RequestMix mix;

    /** Defaults tuned per SKU. */
    static PerfParams forSku(GpuSku sku);
};

/** Per-phase operating point of one configuration. */
struct PhaseProfile
{
    /** Phase-saturated throughput, tokens/s (prefill) — see below. */
    double throughputTps = 0.0;
    /** Per-active-GPU power when this phase saturates the GPU. */
    Watts gpuPower{0.0};
    /** Fraction of traffic that is memory-system-bound. */
    double memBoundFrac = 0.0;
};

/** Complete derived profile of one instance configuration. */
struct ConfigProfile
{
    InstanceConfig config;

    PhaseProfile prefill;
    PhaseProfile decode;

    /** Decode step time components: tau(B) = weightS + kvS * B. */
    double decodeWeightS = 0.0;
    double decodeKvS = 0.0;

    /** GPUs used by the instance (= TP degree). */
    int activeGpus = 0;

    /** Output quality in [0,1]. */
    double quality = 0.0;

    /** Unloaded time to first token for the reference prompt. */
    double unloadedTtftS = 0.0;
    /** Unloaded time between tokens at batch 1. */
    double unloadedTbtS = 0.0;

    /**
     * Aggregate token capacity (prefill+decode interleaved on the
     * same GPUs) at the configured max batch, tokens/s.
     */
    double capacityTps = 0.0;

    /** Max tokens/s sustainable within the given SLOs. */
    double goodputTps = 0.0;

    /**
     * Cached decode GPU power at batch 1 and at the configured max
     * batch — the two endpoints the operating-point solver hits on
     * almost every evaluation (sub-saturated decode pins batch to
     * 1; saturated decode clamps to the max). Negative = not
     * precomputed; PerfModel falls back to the full formula.
     */
    double decodePowerBatch1W = -1.0;
    double decodePowerBatchMaxW = -1.0;

    /** Decode throughput at batch size b: b / tau(b). */
    double decodeTpsAt(int b) const;
};

/** Derives ConfigProfiles and server-power estimates. */
class PerfModel
{
  public:
    PerfModel(const ServerSpec &spec, const PerfParams &params,
              const SloSpec &slo);

    PerfModel(const PerfModel &other);
    PerfModel &operator=(const PerfModel &other);

    /**
     * Convenience: model with the paper's SLO definition — 5x the
     * unloaded latencies of the reference (largest) configuration.
     */
    static PerfModel withReferenceSlo(const ServerSpec &spec,
                                      const PerfParams &params,
                                      double slo_factor = 5.0);

    const ServerSpec &spec() const { return hwSpec; }
    const PerfParams &params() const { return perfParams; }
    const SloSpec &slo() const { return sloSpec; }

    /**
     * Derive the full profile of one configuration. Memoized: the
     * config space is small and profiles are pure functions of the
     * config, so repeated queries hit a cache keyed on the config.
     * Safe to call concurrently (the cache is internally locked).
     */
    ConfigProfile profile(const InstanceConfig &config) const;

    /** Profile cache hits so far (perf counters for tests/benches). */
    std::uint64_t
    profileCacheHits() const
    {
        // Counters mutate under cacheMutex (profile() hot path);
        // reading them unlocked here was a latent data race the
        // thread-safety annotations now reject.
        MutexLock lock(cacheMutex);
        return cacheHits;
    }
    /** Profile cache misses so far. */
    std::uint64_t
    profileCacheMisses() const
    {
        MutexLock lock(cacheMutex);
        return cacheMisses;
    }

    /** Profiles for every feasible configuration. */
    std::vector<ConfigProfile> allProfiles() const;

    /**
     * Estimated whole-server power when this instance runs at the
     * given utilization (busy fraction) with the standard request
     * mix. Inactive GPUs idle.
     */
    Watts estimateServerPower(const ConfigProfile &profile,
                              double utilization) const;

    /** Per-active-GPU power at a utilization with the standard mix. */
    Watts estimateGpuPower(const ConfigProfile &profile,
                           double utilization) const;

    /** Traffic-weighted memory-bound fraction at the standard mix. */
    double mixMemBoundFrac(const ConfigProfile &profile) const;

    /**
     * Steady-state operating point of an instance serving a token
     * demand: continuous batching keeps decode running at a small
     * batch whenever work exists, so busy time saturates quickly
     * while power tracks the (low) batch intensity.
     */
    struct OperatingPoint
    {
        /** GPU busy fraction (prefill + decode share). */
        double busyFrac = 0.0;
        /** Share of busy time spent prefilling. */
        double prefillShare = 0.0;
        /** Steady decode batch size. */
        double decodeBatch = 0.0;
        /** Mean per-active-GPU power. */
        Watts gpuPower{0.0};
        /** Whole-server power (inactive GPUs idle). */
        Watts serverPower{0.0};
    };

    /**
     * Evaluate the operating point at a token demand (tokens/s).
     *
     * scalar-op-solve-deprecated: the per-call solves below survive
     * for tests, cold paths (configurator fallback/hysteresis), and
     * debug cross-checks only. Decision hot loops (flow-mode load
     * assignment, the configurator candidate walk) must go through
     * the batched passes further down, which gather the profile
     * scalars once per lane and run the solve body branch-free over
     * packed spans. The batched passes evaluate the exact same
     * expressions element-wise, so results are bit-identical to
     * these scalar calls (pinned by tests/llm/test_perf_op_batch.cc).
     */
    OperatingPoint operatingPointAt(const ConfigProfile &profile,
                                    double demand_tps) const;

    /**
     * Same solve without the whole-server power term (left at 0):
     * for callers that only need utilization and GPU power.
     * scalar-op-solve-deprecated — see operatingPointAt.
     */
    OperatingPoint operatingGpuPointAt(const ConfigProfile &profile,
                                       double demand_tps) const;

    // ------------------------------------------------------------
    // Batched operating-point solver (the hot-loop entry points).
    //
    // Packed spans of (profile, demand_tps) in, caller-owned
    // OperatingPoint spans out. The solve body is restructured
    // branch-free (the sub-saturated/saturated decode split becomes
    // select/clamp arithmetic over chunked stride-1 arrays) so the
    // autovectorizer gets through; only the rare mid-range decode
    // batch falls back to the scalar power formula per lane.
    // Results are bit-identical to the scalar solves above in the
    // default FP mode (-ffp-contract=off pins this even under
    // -march=native).
    //
    // When the optional operating-point table is enabled (see
    // enableOperatingPointTable), these entry points answer from the
    // precomputed (config, quantized-demand) grid with linear
    // interpolation instead of the exact solve; the scalar calls
    // above always stay exact.
    // ------------------------------------------------------------

    /** Batched full solve over packed (profile-index, demand)
     *  lanes; profile_idx indexes into the packed profiles span. */
    void operatingPointBatch(const ConfigProfile *profiles,
                             const std::uint32_t *profile_idx,
                             const double *demand_tps, std::size_t n,
                             OperatingPoint *out) const;

    /** Batched GPU-only solve (serverPower left 0), index lanes. */
    void operatingGpuPointBatch(const ConfigProfile *profiles,
                                const std::uint32_t *profile_idx,
                                const double *demand_tps,
                                std::size_t n,
                                OperatingPoint *out) const;

    /** Batched full solve over per-lane profile pointers (callers
     *  holding heterogeneous profile refs, e.g. per-VM engines). */
    void operatingPointBatch(const ConfigProfile *const *profiles,
                             const double *demand_tps, std::size_t n,
                             OperatingPoint *out) const;

    /** Batched GPU-only solve over per-lane profile pointers. */
    void operatingGpuPointBatch(const ConfigProfile *const *profiles,
                                const double *demand_tps,
                                std::size_t n,
                                OperatingPoint *out) const;

    /**
     * Enable the precomputed (config, quantized-demand) →
     * operating-point table consulted by the batch entry points:
     * per-config demand grids at @p demand_step_tps spacing over
     * [0, max_demand_tps], built lazily per config and answered with
     * linear interpolation. Demands at/beyond the grid end fall back
     * to the exact solve, as do the scalar entry points. Off by
     * default (SimConfig::opTableEnabled gates it in simulations);
     * tests A/B-gate it against the exact batched path.
     */
    void enableOperatingPointTable(double demand_step_tps,
                                   double max_demand_tps);

    /** Whether the interpolated operating-point table is active. */
    bool operatingPointTableEnabled() const
    { return opTableStepTps > 0.0; }

    /** Decode per-GPU power at an arbitrary running batch size. */
    Watts decodeGpuPowerAt(const ConfigProfile &profile,
                           double batch) const;

    /** Whole-server power from GPU draw (chassis + fans on heat). */
    Watts serverPowerFromGpu(double active_gpu_w, int active_gpus,
                             double prefill_share) const;

    /**
     * Pareto frontier over (goodput up, metric down). @p use_power
     * selects per-server power as the metric; otherwise the hottest
     * GPU's power (temperature proxy) is used.
     */
    static std::vector<ConfigProfile>
    paretoFrontier(const std::vector<ConfigProfile> &profiles,
                   bool use_power);

    /** TP communication efficiency factor. */
    static double tpEfficiency(int tp);

    /** Per-GPU power concentration factor (lower TP -> hotter GPU). */
    static double perGpuPowerFactor(int tp);

  private:
    ServerSpec hwSpec;
    PerfParams perfParams;
    SloSpec sloSpec;

    /** Uncached profile derivation (the actual analytic model). */
    ConfigProfile computeProfile(const InstanceConfig &config) const;

    /** Lanes per chunk of the batched solve (stack-resident SoA). */
    static constexpr std::size_t kOpChunk = 32;

    /**
     * One chunk (<= kOpChunk lanes) of the branch-free batched
     * operating-point solve; the shared kernel behind all four batch
     * entry points. @p server_power selects the full solve (inlined
     * serverPowerFromGpu arithmetic) versus the GPU-only variant.
     */
    void solveOpChunk(const ConfigProfile *const *profiles,
                      const double *demand_tps, std::size_t m,
                      OperatingPoint *out, bool server_power) const;

    /** Chunked dispatch over pointer lanes (exact path). */
    void solveOpBatch(const ConfigProfile *const *profiles,
                      const double *demand_tps, std::size_t n,
                      OperatingPoint *out, bool server_power) const;

    /** Per-config demand grid of the interpolated table. */
    struct OpTableGrid
    {
        double stepTps = 0.0;
        double maxDemandTps = 0.0;
        /** Exact operating points at demand j * stepTps (full solve
         *  including serverPower; the GPU-only entry points zero it
         *  on output). */
        std::vector<OperatingPoint> nodes;
    };

    /** Lazily built grid for one config (locks opTableMutex). */
    const OpTableGrid *opGridFor(const ConfigProfile &profile) const;

    /** Table-mode batch answer (falls back to exact past the grid). */
    void tableOpBatch(const ConfigProfile *const *profiles,
                      const double *demand_tps, std::size_t n,
                      OperatingPoint *out, bool server_power) const;

    mutable Mutex cacheMutex;
    mutable std::unordered_map<InstanceConfig, ConfigProfile,
                               InstanceConfigHash>
        profileCache TAPAS_GUARDED_BY(cacheMutex);
    mutable std::uint64_t cacheHits TAPAS_GUARDED_BY(cacheMutex) = 0;
    mutable std::uint64_t cacheMisses TAPAS_GUARDED_BY(cacheMutex) =
        0;

    /**
     * Interpolated-table state; stepTps <= 0 means disabled. The
     * step/max scalars are configure-time constants (set by
     * enableOperatingPointTable before the model is shared across
     * threads) read locklessly by the batch hot paths; only the
     * lazily grown grid map needs the mutex. Grids are immutable
     * once inserted and unique_ptr-stable, so the pointer opGridFor
     * returns stays valid after the lock drops.
     */
    double opTableStepTps = 0.0;
    double opTableMaxTps = 0.0;
    mutable Mutex opTableMutex;
    mutable std::unordered_map<InstanceConfig,
                               std::unique_ptr<OpTableGrid>,
                               InstanceConfigHash>
        opTables TAPAS_GUARDED_BY(opTableMutex);
};

/** The reference configuration the paper's SLOs anchor on. */
InstanceConfig referenceConfig();

} // namespace tapas

#endif // TAPAS_LLM_PERF_HH
