/**
 * @file
 * Instance configuration: the five knobs the paper's Table 1 studies
 * (model size, quantization, tensor parallelism, batch size, GPU
 * frequency), plus feasibility checks and config-space enumeration.
 */

#ifndef TAPAS_LLM_CONFIG_HH
#define TAPAS_LLM_CONFIG_HH

#include <string>
#include <vector>

#include "dcsim/specs.hh"
#include "llm/model.hh"

namespace tapas {

/** One complete configuration of an LLM inference instance. */
struct InstanceConfig
{
    ModelSize model = ModelSize::B70;
    Quantization quant = Quantization::FP16;
    /** Tensor-parallel degree: GPUs cooperating per instance. */
    int tensorParallel = 8;
    /** Continuous-batching admission limit. */
    int maxBatchSize = 64;
    /** GPU clock as a fraction of max boost. */
    double freqFrac = 1.0;

    bool operator==(const InstanceConfig &) const = default;

    /** "70B/FP16/TP8/B64/F1.00" style label. */
    std::string label() const;

    /**
     * True if switching from @p from requires a model reload
     * (model size, quantization, or parallelism changed). Frequency
     * and batch-size changes apply instantly.
     */
    bool requiresReload(const InstanceConfig &from) const;
};

/** Hash for InstanceConfig (profile caches and lookup tables). */
struct InstanceConfigHash
{
    std::size_t operator()(const InstanceConfig &c) const;
};

/** Enumeration and feasibility rules for the config space. */
class ConfigSpace
{
  public:
    /** Tensor-parallel degrees compatible with the KV-head counts. */
    static const std::vector<int> &tpDegrees();

    /** Batch-size steps. */
    static const std::vector<int> &batchSizes();

    /** Frequency steps (fractions of max clock). */
    static const std::vector<double> &freqSteps();

    /**
     * Whether weights fit in the TP group's HBM with working-set
     * headroom for KV cache and activations.
     */
    static bool memoryFeasible(const InstanceConfig &config,
                               const ServerSpec &spec);

    /** All memory-feasible configurations on the given server. */
    static std::vector<InstanceConfig>
    enumerate(const ServerSpec &spec);

    /** Fraction of HBM left for KV cache after loading weights. */
    static double kvHeadroomFraction(const InstanceConfig &config,
                                     const ServerSpec &spec);
};

} // namespace tapas

#endif // TAPAS_LLM_CONFIG_HH
