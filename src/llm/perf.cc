#include "llm/perf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tapas {

PerfParams
PerfParams::forSku(GpuSku sku)
{
    PerfParams params;
    if (sku == GpuSku::H100) {
        params.gpuTflops = 990.0;
        params.hbmTbPerS = 3.35;
    }
    return params;
}

namespace {

/**
 * Saturated power intensity factors: smaller models keep tensor
 * cores less utilized (lower MFU at small matmul shapes) and
 * reduced-precision kernels move fewer bytes per token, so both
 * draw measurably less power at saturation (paper Fig. 15c and the
 * quantization row of Table 1).
 */
double
sizeIntensityFactor(ModelSize size)
{
    switch (size) {
      case ModelSize::B70:
        return 1.0;
      case ModelSize::B13:
        return 0.93;
      case ModelSize::B7:
        return 0.88;
    }
    return 1.0;
}

double
quantIntensityFactor(Quantization quant)
{
    switch (quant) {
      case Quantization::FP16:
        return 1.0;
      case Quantization::FP8:
        return 0.92;
      case Quantization::INT4:
        return 0.85;
    }
    return 1.0;
}

} // namespace

double
ConfigProfile::decodeTpsAt(int b) const
{
    tapas_assert(b >= 1, "batch size must be positive");
    const double batch = static_cast<double>(b);
    return batch / (decodeWeightS + decodeKvS * batch);
}

InstanceConfig
referenceConfig()
{
    InstanceConfig config;
    config.model = ModelSize::B70;
    config.quant = Quantization::FP16;
    config.tensorParallel = 8;
    config.maxBatchSize = 64;
    config.freqFrac = 1.0;
    return config;
}

PerfModel::PerfModel(const ServerSpec &spec, const PerfParams &params,
                     const SloSpec &slo)
    : hwSpec(spec), perfParams(params), sloSpec(slo)
{
}

PerfModel::PerfModel(const PerfModel &other)
    : hwSpec(other.hwSpec), perfParams(other.perfParams),
      sloSpec(other.sloSpec)
{
    std::lock_guard<std::mutex> lock(other.cacheMutex);
    profileCache = other.profileCache;
    cacheHits = other.cacheHits;
    cacheMisses = other.cacheMisses;
}

PerfModel &
PerfModel::operator=(const PerfModel &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(cacheMutex, other.cacheMutex);
    hwSpec = other.hwSpec;
    perfParams = other.perfParams;
    sloSpec = other.sloSpec;
    profileCache = other.profileCache;
    cacheHits = other.cacheHits;
    cacheMisses = other.cacheMisses;
    return *this;
}

PerfModel
PerfModel::withReferenceSlo(const ServerSpec &spec,
                            const PerfParams &params,
                            double slo_factor)
{
    PerfModel unconstrained(spec, params, SloSpec{1e9, 1e9});
    const ConfigProfile ref =
        unconstrained.profile(referenceConfig());
    SloSpec slo;
    slo.ttftS = slo_factor * ref.unloadedTtftS;
    slo.tbtS = slo_factor * ref.unloadedTbtS;
    slo.ttftPerPromptTokenS =
        slo_factor / ref.prefill.throughputTps;
    return PerfModel(spec, params, slo);
}

double
PerfModel::tpEfficiency(int tp)
{
    // All-reduce cost grows with group width.
    return 1.02 - 0.025 * static_cast<double>(tp);
}

double
PerfModel::perGpuPowerFactor(int tp)
{
    // Narrower TP concentrates the same work on fewer GPUs: each one
    // stalls less on communication and burns closer to its envelope.
    return 1.03 - 0.026 * static_cast<double>(tp);
}

ConfigProfile
PerfModel::profile(const InstanceConfig &config) const
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = profileCache.find(config);
        if (it != profileCache.end()) {
            ++cacheHits;
#ifndef NDEBUG
            // Cross-check: cached profiles must match a recompute.
            const ConfigProfile fresh = computeProfile(config);
            tapas_assert(fresh.goodputTps == it->second.goodputTps &&
                         fresh.capacityTps ==
                             it->second.capacityTps &&
                         fresh.quality == it->second.quality &&
                         fresh.prefill.gpuPower.value() ==
                             it->second.prefill.gpuPower.value() &&
                         fresh.decode.gpuPower.value() ==
                             it->second.decode.gpuPower.value(),
                         "profile cache diverged for %s",
                         config.label().c_str());
#endif
            return it->second;
        }
    }
    ConfigProfile out = computeProfile(config);
    std::lock_guard<std::mutex> lock(cacheMutex);
    ++cacheMisses;
    profileCache.emplace(config, out);
    return out;
}

ConfigProfile
PerfModel::computeProfile(const InstanceConfig &config) const
{
    tapas_assert(ConfigSpace::memoryFeasible(config, hwSpec),
                 "profiling infeasible config %s",
                 config.label().c_str());

    ConfigProfile out;
    out.config = config;
    out.activeGpus = config.tensorParallel;
    out.quality = modelQuality(config.model, config.quant);

    const double params_b = modelParamsB(config.model);
    const double tp = static_cast<double>(config.tensorParallel);
    const double freq = config.freqFrac;
    const double qspeed = quantSpeedup(config.quant);
    const double tp_eff = tpEfficiency(config.tensorParallel);

    // --- Prefill: compute bound. ---
    const double flops_per_token = 2.0 * params_b * 1e9;
    const double group_flops =
        tp * perfParams.gpuTflops * 1e12 * freq * perfParams.prefillMfu;
    out.prefill.throughputTps =
        group_flops * tp_eff * qspeed / flops_per_token;
    out.prefill.memBoundFrac = 0.15;

    // --- Decode: memory bound. tau(B) = weight stream + B * KV. ---
    const double group_bw =
        tp * perfParams.hbmTbPerS * 1e12 * perfParams.decodeMbu;
    // Decode is only mildly clock-sensitive.
    const double decode_freq_factor = 0.7 + 0.3 * freq;
    const double weight_bytes =
        modelWeightsGb(config.model, config.quant) * 1e9;
    const double kv_bytes = perfParams.kvBytesPerSeq *
        (quantBytesPerParam(config.quant) / 2.0 * 0.5 + 0.5);
    out.decodeWeightS =
        weight_bytes / (group_bw * decode_freq_factor);
    out.decodeKvS = kv_bytes / (group_bw * decode_freq_factor);
    out.decode.throughputTps = out.decodeTpsAt(config.maxBatchSize);
    const double batch_frac =
        std::log2(static_cast<double>(config.maxBatchSize)) /
        std::log2(64.0);
    out.decode.memBoundFrac = 0.60 + 0.25 * (1.0 - batch_frac);

    // --- Phase power, per active GPU. ---
    const double span =
        hwSpec.gpuMaxPower.value() - hwSpec.gpuIdlePower.value();
    const double concentration =
        perGpuPowerFactor(config.tensorParallel);
    const double freq_pow =
        std::pow(freq, perfParams.freqPowerExponent);
    const double model_factor = sizeIntensityFactor(config.model) *
        quantIntensityFactor(config.quant);
    const double prefill_intensity = 0.95 * model_factor;
    const double decode_intensity =
        (0.35 + 0.35 * batch_frac) * model_factor;
    out.prefill.gpuPower = Watts(
        hwSpec.gpuIdlePower.value() +
        span * prefill_intensity * concentration * freq_pow);
    out.decode.gpuPower = Watts(
        hwSpec.gpuIdlePower.value() +
        span * decode_intensity * concentration * freq * freq);

    // Precompute the solver's decode-power endpoints with the same
    // formula the fallback path uses (bit-identical fast path).
    out.decodePowerBatch1W = decodeGpuPowerAt(out, 1.0).value();
    out.decodePowerBatchMaxW =
        decodeGpuPowerAt(
            out, static_cast<double>(config.maxBatchSize))
            .value();

    // --- Latency anchors. ---
    out.unloadedTtftS =
        perfParams.mix.promptTokens / out.prefill.throughputTps;
    out.unloadedTbtS = out.decodeWeightS + out.decodeKvS;

    // --- Capacity: phases interleave on the same GPUs. ---
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    // Largest batch meeting the TBT SLO (decode step = TBT).
    int usable_batch = 0;
    for (int b = 1; b <= config.maxBatchSize; b *= 2) {
        const double step = out.decodeWeightS + out.decodeKvS * b;
        if (step <= sloSpec.tbtS)
            usable_batch = b;
    }
    out.capacityTps = 1.0 /
        (fp / out.prefill.throughputTps +
         fd / out.decode.throughputTps);

    if (usable_batch == 0 || out.unloadedTtftS >= sloSpec.ttftS) {
        out.goodputTps = 0.0;
        return out;
    }
    const double usable_capacity = 1.0 /
        (fp / out.prefill.throughputTps +
         fd / out.decodeTpsAt(usable_batch));
    // M/M/1-style queueing headroom on TTFT.
    const double rho_max =
        std::max(0.0, 1.0 - out.unloadedTtftS / sloSpec.ttftS);
    out.goodputTps = usable_capacity * rho_max;
    return out;
}

std::vector<ConfigProfile>
PerfModel::allProfiles() const
{
    std::vector<ConfigProfile> out;
    for (const InstanceConfig &config :
         ConfigSpace::enumerate(hwSpec)) {
        out.push_back(profile(config));
    }
    return out;
}

double
PerfModel::mixMemBoundFrac(const ConfigProfile &profile) const
{
    // Weight by the share of GPU *time* each phase occupies.
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    const double t_prefill = fp / profile.prefill.throughputTps;
    const double t_decode = fd / profile.decode.throughputTps;
    const double total = t_prefill + t_decode;
    if (total <= 0.0)
        return 0.0;
    return (profile.prefill.memBoundFrac * t_prefill +
            profile.decode.memBoundFrac * t_decode) / total;
}

Watts
PerfModel::estimateGpuPower(const ConfigProfile &profile,
                            double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    const double t_prefill = fp / profile.prefill.throughputTps;
    const double t_decode = fd / profile.decode.throughputTps;
    const double total = t_prefill + t_decode;
    const double busy_power = total > 0.0
        ? (profile.prefill.gpuPower.value() * t_prefill +
           profile.decode.gpuPower.value() * t_decode) / total
        : hwSpec.gpuIdlePower.value();
    return Watts(hwSpec.gpuIdlePower.value() * (1.0 - util) +
                 busy_power * util);
}

Watts
PerfModel::estimateServerPower(const ConfigProfile &profile,
                               double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    const Watts active = estimateGpuPower(profile, util);
    const double idle_gpus =
        static_cast<double>(hwSpec.gpusPerServer - profile.activeGpus);
    const double gpu_total =
        active.value() * profile.activeGpus +
        hwSpec.gpuIdlePower.value() * idle_gpus;
    // Chassis components and fans track the heat the GPUs shed, not
    // busy time: a down-clocked instance really does cool the box.
    const double idle_sum =
        hwSpec.gpuIdlePower.value() * hwSpec.gpusPerServer;
    const double max_sum =
        hwSpec.gpuMaxPower.value() * hwSpec.gpusPerServer;
    const double heat = max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
    double total = hwSpec.chassisIdlePower.value() +
        hwSpec.chassisActivePower.value() * heat + gpu_total;
    const double speed = 0.35 + 0.65 * heat;
    total += hwSpec.fanMaxPower.value() * speed * speed * speed;
    return Watts(total);
}

Watts
PerfModel::decodeGpuPowerAt(const ConfigProfile &profile,
                            double batch) const
{
    // Endpoint fast paths: batch <= 1 evaluates exactly like batch
    // 1 (the log2 term clamps to zero), and the saturated solver
    // clamps to the configured max batch. Both cached values were
    // produced by the formula below, so the shortcut is
    // bit-identical.
    if (batch <= 1.0 && profile.decodePowerBatch1W >= 0.0)
        return Watts(profile.decodePowerBatch1W);
    if (batch ==
            static_cast<double>(profile.config.maxBatchSize) &&
        profile.decodePowerBatchMaxW >= 0.0) {
        return Watts(profile.decodePowerBatchMaxW);
    }
    const double span =
        hwSpec.gpuMaxPower.value() - hwSpec.gpuIdlePower.value();
    const double batch_frac =
        std::log2(std::max(1.0, batch)) / std::log2(64.0);
    const double intensity =
        (0.35 + 0.35 * std::clamp(batch_frac, 0.0, 1.0)) *
        sizeIntensityFactor(profile.config.model) *
        quantIntensityFactor(profile.config.quant);
    const double concentration =
        perGpuPowerFactor(profile.config.tensorParallel);
    const double freq_pow =
        profile.config.freqFrac * profile.config.freqFrac;
    return Watts(hwSpec.gpuIdlePower.value() +
                 span * intensity * concentration * freq_pow);
}

Watts
PerfModel::serverPowerFromGpu(double active_gpu_w, int active_gpus,
                              double prefill_share) const
{
    (void)prefill_share;
    const double idle_gpus =
        static_cast<double>(hwSpec.gpusPerServer - active_gpus);
    const double gpu_total = active_gpu_w * active_gpus +
        hwSpec.gpuIdlePower.value() * idle_gpus;
    const double idle_sum =
        hwSpec.gpuIdlePower.value() * hwSpec.gpusPerServer;
    const double max_sum =
        hwSpec.gpuMaxPower.value() * hwSpec.gpusPerServer;
    const double heat = max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
    double total = hwSpec.chassisIdlePower.value() +
        hwSpec.chassisActivePower.value() * heat + gpu_total;
    const double speed = 0.35 + 0.65 * heat;
    total += hwSpec.fanMaxPower.value() * speed * speed * speed;
    return Watts(total);
}

PerfModel::OperatingPoint
PerfModel::operatingPointAt(const ConfigProfile &profile,
                            double demand_tps) const
{
    OperatingPoint out = operatingGpuPointAt(profile, demand_tps);
    out.serverPower = serverPowerFromGpu(
        out.gpuPower.value(), profile.activeGpus, out.prefillShare);
    return out;
}

PerfModel::OperatingPoint
PerfModel::operatingGpuPointAt(const ConfigProfile &profile,
                               double demand_tps) const
{
    OperatingPoint out;
    const double demand = std::max(0.0, demand_tps);
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();

    // Prefill is bursty: busy exactly its work fraction.
    const double u_p = std::min(
        1.0, demand * fp / profile.prefill.throughputTps);

    // Decode runs continuously whenever sequences are in flight,
    // at whatever batch the demand sustains.
    const double r = demand * fd; // decode tokens/s
    const double tau1 =
        profile.decodeWeightS + profile.decodeKvS;
    double u_d = 0.0;
    double batch = 0.0;
    if (r > 0.0) {
        const double share = std::max(0.05, 1.0 - u_p);
        if (r * tau1 < share) {
            // Sub-saturated even at batch 1: idles between tokens.
            batch = 1.0;
            u_d = r * tau1;
        } else {
            // Decode fills all non-prefill time; batch grows until
            // share * B / tau(B) = r.
            const double denom = share - profile.decodeKvS * r;
            batch = denom > 1e-9
                ? profile.decodeWeightS * r / denom
                : static_cast<double>(profile.config.maxBatchSize);
            batch = std::clamp(
                batch, 1.0,
                static_cast<double>(profile.config.maxBatchSize));
            u_d = share;
        }
    }

    out.busyFrac = std::min(1.0, u_p + u_d);
    out.prefillShare =
        out.busyFrac > 0.0 ? u_p / (u_p + u_d) : 0.0;
    out.decodeBatch = batch;

    const double idle = hwSpec.gpuIdlePower.value();
    // Idle decode contributes u_d * decode_w == 0 regardless of the
    // decode power, so skip its evaluation (and the log2 inside)
    // when decode is not running.
    const double decode_w =
        u_d > 0.0 ? decodeGpuPowerAt(profile, batch).value() : 0.0;
    const double prefill_w = profile.prefill.gpuPower.value();
    out.gpuPower = Watts(idle * (1.0 - out.busyFrac) +
                         u_p * prefill_w + u_d * decode_w);
    return out;
}

std::vector<ConfigProfile>
PerfModel::paretoFrontier(const std::vector<ConfigProfile> &profiles,
                          bool use_power)
{
    auto metric = [use_power](const ConfigProfile &p) {
        if (use_power) {
            // Whole-instance power at saturation.
            return p.prefill.gpuPower.value() * p.activeGpus;
        }
        // Hottest-GPU proxy: per-GPU power drives temperature.
        return p.prefill.gpuPower.value();
    };
    std::vector<ConfigProfile> frontier;
    for (const ConfigProfile &cand : profiles) {
        if (cand.goodputTps <= 0.0)
            continue;
        bool dominated = false;
        for (const ConfigProfile &other : profiles) {
            if (&other == &cand)
                continue;
            const bool better_goodput =
                other.goodputTps >= cand.goodputTps;
            const bool better_metric = metric(other) <= metric(cand);
            const bool strictly =
                other.goodputTps > cand.goodputTps ||
                metric(other) < metric(cand);
            if (better_goodput && better_metric && strictly) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(cand);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const ConfigProfile &a, const ConfigProfile &b) {
                  return a.goodputTps < b.goodputTps;
              });
    return frontier;
}

} // namespace tapas
