#include "llm/perf.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tapas {

PerfParams
PerfParams::forSku(GpuSku sku)
{
    PerfParams params;
    if (sku == GpuSku::H100) {
        params.gpuTflops = 990.0;
        params.hbmTbPerS = 3.35;
    }
    return params;
}

namespace {

/**
 * Saturated power intensity factors: smaller models keep tensor
 * cores less utilized (lower MFU at small matmul shapes) and
 * reduced-precision kernels move fewer bytes per token, so both
 * draw measurably less power at saturation (paper Fig. 15c and the
 * quantization row of Table 1).
 */
double
sizeIntensityFactor(ModelSize size)
{
    switch (size) {
      case ModelSize::B70:
        return 1.0;
      case ModelSize::B13:
        return 0.93;
      case ModelSize::B7:
        return 0.88;
    }
    return 1.0;
}

double
quantIntensityFactor(Quantization quant)
{
    switch (quant) {
      case Quantization::FP16:
        return 1.0;
      case Quantization::FP8:
        return 0.92;
      case Quantization::INT4:
        return 0.85;
    }
    return 1.0;
}

} // namespace

double
ConfigProfile::decodeTpsAt(int b) const
{
    tapas_assert(b >= 1, "batch size must be positive");
    const double batch = static_cast<double>(b);
    return batch / (decodeWeightS + decodeKvS * batch);
}

InstanceConfig
referenceConfig()
{
    InstanceConfig config;
    config.model = ModelSize::B70;
    config.quant = Quantization::FP16;
    config.tensorParallel = 8;
    config.maxBatchSize = 64;
    config.freqFrac = 1.0;
    return config;
}

PerfModel::PerfModel(const ServerSpec &spec, const PerfParams &params,
                     const SloSpec &slo)
    : hwSpec(spec), perfParams(params), sloSpec(slo)
{
}

PerfModel::PerfModel(const PerfModel &other)
    : hwSpec(other.hwSpec), perfParams(other.perfParams),
      sloSpec(other.sloSpec)
{
    {
        MutexLock lock(other.cacheMutex);
        profileCache = other.profileCache;
        cacheHits = other.cacheHits;
        cacheMisses = other.cacheMisses;
    }
    // Table grids rebuild lazily (pure functions of spec + params),
    // so copying the enable parameters is enough.
    MutexLock lock(other.opTableMutex);
    opTableStepTps = other.opTableStepTps;
    opTableMaxTps = other.opTableMaxTps;
}

PerfModel &
PerfModel::operator=(const PerfModel &other)
{
    if (this == &other)
        return *this;
    {
        MutexLock2 lock(cacheMutex, other.cacheMutex);
        hwSpec = other.hwSpec;
        perfParams = other.perfParams;
        sloSpec = other.sloSpec;
        profileCache = other.profileCache;
        cacheHits = other.cacheHits;
        cacheMisses = other.cacheMisses;
    }
    MutexLock2 lock(opTableMutex, other.opTableMutex);
    opTableStepTps = other.opTableStepTps;
    opTableMaxTps = other.opTableMaxTps;
    opTables.clear();
    return *this;
}

PerfModel
PerfModel::withReferenceSlo(const ServerSpec &spec,
                            const PerfParams &params,
                            double slo_factor)
{
    PerfModel unconstrained(spec, params, SloSpec{1e9, 1e9});
    const ConfigProfile ref =
        unconstrained.profile(referenceConfig());
    SloSpec slo;
    slo.ttftS = slo_factor * ref.unloadedTtftS;
    slo.tbtS = slo_factor * ref.unloadedTbtS;
    slo.ttftPerPromptTokenS =
        slo_factor / ref.prefill.throughputTps;
    return PerfModel(spec, params, slo);
}

double
PerfModel::tpEfficiency(int tp)
{
    // All-reduce cost grows with group width.
    return 1.02 - 0.025 * static_cast<double>(tp);
}

double
PerfModel::perGpuPowerFactor(int tp)
{
    // Narrower TP concentrates the same work on fewer GPUs: each one
    // stalls less on communication and burns closer to its envelope.
    return 1.03 - 0.026 * static_cast<double>(tp);
}

ConfigProfile
PerfModel::profile(const InstanceConfig &config) const
{
    {
        MutexLock lock(cacheMutex);
        auto it = profileCache.find(config);
        if (it != profileCache.end()) {
            ++cacheHits;
#ifndef NDEBUG
            // Cross-check: cached profiles must match a recompute.
            const ConfigProfile fresh = computeProfile(config);
            tapas_assert(fresh.goodputTps == it->second.goodputTps &&
                         fresh.capacityTps ==
                             it->second.capacityTps &&
                         fresh.quality == it->second.quality &&
                         fresh.prefill.gpuPower.value() ==
                             it->second.prefill.gpuPower.value() &&
                         fresh.decode.gpuPower.value() ==
                             it->second.decode.gpuPower.value(),
                         "profile cache diverged for %s",
                         config.label().c_str());
#endif
            return it->second;
        }
    }
    ConfigProfile out = computeProfile(config);
    MutexLock lock(cacheMutex);
    ++cacheMisses;
    profileCache.emplace(config, out);
    return out;
}

ConfigProfile
PerfModel::computeProfile(const InstanceConfig &config) const
{
    tapas_assert(ConfigSpace::memoryFeasible(config, hwSpec),
                 "profiling infeasible config %s",
                 config.label().c_str());

    ConfigProfile out;
    out.config = config;
    out.activeGpus = config.tensorParallel;
    out.quality = modelQuality(config.model, config.quant);

    const double params_b = modelParamsB(config.model);
    const double tp = static_cast<double>(config.tensorParallel);
    const double freq = config.freqFrac;
    const double qspeed = quantSpeedup(config.quant);
    const double tp_eff = tpEfficiency(config.tensorParallel);

    // --- Prefill: compute bound. ---
    const double flops_per_token = 2.0 * params_b * 1e9;
    const double group_flops =
        tp * perfParams.gpuTflops * 1e12 * freq * perfParams.prefillMfu;
    out.prefill.throughputTps =
        group_flops * tp_eff * qspeed / flops_per_token;
    out.prefill.memBoundFrac = 0.15;

    // --- Decode: memory bound. tau(B) = weight stream + B * KV. ---
    const double group_bw =
        tp * perfParams.hbmTbPerS * 1e12 * perfParams.decodeMbu;
    // Decode is only mildly clock-sensitive.
    const double decode_freq_factor = 0.7 + 0.3 * freq;
    const double weight_bytes =
        modelWeightsGb(config.model, config.quant) * 1e9;
    const double kv_bytes = perfParams.kvBytesPerSeq *
        (quantBytesPerParam(config.quant) / 2.0 * 0.5 + 0.5);
    out.decodeWeightS =
        weight_bytes / (group_bw * decode_freq_factor);
    out.decodeKvS = kv_bytes / (group_bw * decode_freq_factor);
    out.decode.throughputTps = out.decodeTpsAt(config.maxBatchSize);
    const double batch_frac =
        std::log2(static_cast<double>(config.maxBatchSize)) /
        std::log2(64.0);
    out.decode.memBoundFrac = 0.60 + 0.25 * (1.0 - batch_frac);

    // --- Phase power, per active GPU. ---
    const double span =
        hwSpec.gpuMaxPower.value() - hwSpec.gpuIdlePower.value();
    const double concentration =
        perGpuPowerFactor(config.tensorParallel);
    const double freq_pow =
        std::pow(freq, perfParams.freqPowerExponent);
    const double model_factor = sizeIntensityFactor(config.model) *
        quantIntensityFactor(config.quant);
    const double prefill_intensity = 0.95 * model_factor;
    const double decode_intensity =
        (0.35 + 0.35 * batch_frac) * model_factor;
    out.prefill.gpuPower = Watts(
        hwSpec.gpuIdlePower.value() +
        span * prefill_intensity * concentration * freq_pow);
    out.decode.gpuPower = Watts(
        hwSpec.gpuIdlePower.value() +
        span * decode_intensity * concentration * freq * freq);

    // Precompute the solver's decode-power endpoints with the same
    // formula the fallback path uses (bit-identical fast path).
    out.decodePowerBatch1W = decodeGpuPowerAt(out, 1.0).value();
    out.decodePowerBatchMaxW =
        decodeGpuPowerAt(
            out, static_cast<double>(config.maxBatchSize))
            .value();

    // --- Latency anchors. ---
    out.unloadedTtftS =
        perfParams.mix.promptTokens / out.prefill.throughputTps;
    out.unloadedTbtS = out.decodeWeightS + out.decodeKvS;

    // --- Capacity: phases interleave on the same GPUs. ---
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    // Largest batch meeting the TBT SLO (decode step = TBT).
    int usable_batch = 0;
    for (int b = 1; b <= config.maxBatchSize; b *= 2) {
        const double step = out.decodeWeightS + out.decodeKvS * b;
        if (step <= sloSpec.tbtS)
            usable_batch = b;
    }
    out.capacityTps = 1.0 /
        (fp / out.prefill.throughputTps +
         fd / out.decode.throughputTps);

    if (usable_batch == 0 || out.unloadedTtftS >= sloSpec.ttftS) {
        out.goodputTps = 0.0;
        return out;
    }
    const double usable_capacity = 1.0 /
        (fp / out.prefill.throughputTps +
         fd / out.decodeTpsAt(usable_batch));
    // M/M/1-style queueing headroom on TTFT.
    const double rho_max =
        std::max(0.0, 1.0 - out.unloadedTtftS / sloSpec.ttftS);
    out.goodputTps = usable_capacity * rho_max;
    return out;
}

std::vector<ConfigProfile>
PerfModel::allProfiles() const
{
    std::vector<ConfigProfile> out;
    for (const InstanceConfig &config :
         ConfigSpace::enumerate(hwSpec)) {
        out.push_back(profile(config));
    }
    return out;
}

double
PerfModel::mixMemBoundFrac(const ConfigProfile &profile) const
{
    // Weight by the share of GPU *time* each phase occupies.
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    const double t_prefill = fp / profile.prefill.throughputTps;
    const double t_decode = fd / profile.decode.throughputTps;
    const double total = t_prefill + t_decode;
    if (total <= 0.0)
        return 0.0;
    return (profile.prefill.memBoundFrac * t_prefill +
            profile.decode.memBoundFrac * t_decode) / total;
}

Watts
PerfModel::estimateGpuPower(const ConfigProfile &profile,
                            double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    const double t_prefill = fp / profile.prefill.throughputTps;
    const double t_decode = fd / profile.decode.throughputTps;
    const double total = t_prefill + t_decode;
    const double busy_power = total > 0.0
        ? (profile.prefill.gpuPower.value() * t_prefill +
           profile.decode.gpuPower.value() * t_decode) / total
        : hwSpec.gpuIdlePower.value();
    return Watts(hwSpec.gpuIdlePower.value() * (1.0 - util) +
                 busy_power * util);
}

Watts
PerfModel::estimateServerPower(const ConfigProfile &profile,
                               double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    const Watts active = estimateGpuPower(profile, util);
    const double idle_gpus =
        static_cast<double>(hwSpec.gpusPerServer - profile.activeGpus);
    const double gpu_total =
        active.value() * profile.activeGpus +
        hwSpec.gpuIdlePower.value() * idle_gpus;
    // Chassis components and fans track the heat the GPUs shed, not
    // busy time: a down-clocked instance really does cool the box.
    const double idle_sum =
        hwSpec.gpuIdlePower.value() * hwSpec.gpusPerServer;
    const double max_sum =
        hwSpec.gpuMaxPower.value() * hwSpec.gpusPerServer;
    const double heat = max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
    double total = hwSpec.chassisIdlePower.value() +
        hwSpec.chassisActivePower.value() * heat + gpu_total;
    const double speed = 0.35 + 0.65 * heat;
    total += hwSpec.fanMaxPower.value() * speed * speed * speed;
    return Watts(total);
}

Watts
PerfModel::decodeGpuPowerAt(const ConfigProfile &profile,
                            double batch) const
{
    // Endpoint fast paths: batch <= 1 evaluates exactly like batch
    // 1 (the log2 term clamps to zero), and the saturated solver
    // clamps to the configured max batch. Both cached values were
    // produced by the formula below, so the shortcut is
    // bit-identical.
    if (batch <= 1.0 && profile.decodePowerBatch1W >= 0.0)
        return Watts(profile.decodePowerBatch1W);
    if (batch ==
            static_cast<double>(profile.config.maxBatchSize) &&
        profile.decodePowerBatchMaxW >= 0.0) {
        return Watts(profile.decodePowerBatchMaxW);
    }
    const double span =
        hwSpec.gpuMaxPower.value() - hwSpec.gpuIdlePower.value();
    const double batch_frac =
        std::log2(std::max(1.0, batch)) / std::log2(64.0);
    const double intensity =
        (0.35 + 0.35 * std::clamp(batch_frac, 0.0, 1.0)) *
        sizeIntensityFactor(profile.config.model) *
        quantIntensityFactor(profile.config.quant);
    const double concentration =
        perGpuPowerFactor(profile.config.tensorParallel);
    const double freq_pow =
        profile.config.freqFrac * profile.config.freqFrac;
    return Watts(hwSpec.gpuIdlePower.value() +
                 span * intensity * concentration * freq_pow);
}

Watts
PerfModel::serverPowerFromGpu(double active_gpu_w, int active_gpus,
                              double prefill_share) const
{
    (void)prefill_share;
    const double idle_gpus =
        static_cast<double>(hwSpec.gpusPerServer - active_gpus);
    const double gpu_total = active_gpu_w * active_gpus +
        hwSpec.gpuIdlePower.value() * idle_gpus;
    const double idle_sum =
        hwSpec.gpuIdlePower.value() * hwSpec.gpusPerServer;
    const double max_sum =
        hwSpec.gpuMaxPower.value() * hwSpec.gpusPerServer;
    const double heat = max_sum > idle_sum
        ? std::clamp((gpu_total - idle_sum) / (max_sum - idle_sum),
                     0.0, 1.0)
        : 0.0;
    double total = hwSpec.chassisIdlePower.value() +
        hwSpec.chassisActivePower.value() * heat + gpu_total;
    const double speed = 0.35 + 0.65 * heat;
    total += hwSpec.fanMaxPower.value() * speed * speed * speed;
    return Watts(total);
}

PerfModel::OperatingPoint
PerfModel::operatingPointAt(const ConfigProfile &profile,
                            double demand_tps) const
{
    OperatingPoint out = operatingGpuPointAt(profile, demand_tps);
    out.serverPower = serverPowerFromGpu(
        out.gpuPower.value(), profile.activeGpus, out.prefillShare);
    return out;
}

PerfModel::OperatingPoint
PerfModel::operatingGpuPointAt(const ConfigProfile &profile,
                               double demand_tps) const
{
    OperatingPoint out;
    const double demand = std::max(0.0, demand_tps);
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();

    // Prefill is bursty: busy exactly its work fraction.
    const double u_p = std::min(
        1.0, demand * fp / profile.prefill.throughputTps);

    // Decode runs continuously whenever sequences are in flight,
    // at whatever batch the demand sustains.
    const double r = demand * fd; // decode tokens/s
    const double tau1 =
        profile.decodeWeightS + profile.decodeKvS;
    double u_d = 0.0;
    double batch = 0.0;
    if (r > 0.0) {
        const double share = std::max(0.05, 1.0 - u_p);
        if (r * tau1 < share) {
            // Sub-saturated even at batch 1: idles between tokens.
            batch = 1.0;
            u_d = r * tau1;
        } else {
            // Decode fills all non-prefill time; batch grows until
            // share * B / tau(B) = r.
            const double denom = share - profile.decodeKvS * r;
            batch = denom > 1e-9
                ? profile.decodeWeightS * r / denom
                : static_cast<double>(profile.config.maxBatchSize);
            batch = std::clamp(
                batch, 1.0,
                static_cast<double>(profile.config.maxBatchSize));
            u_d = share;
        }
    }

    out.busyFrac = std::min(1.0, u_p + u_d);
    out.prefillShare =
        out.busyFrac > 0.0 ? u_p / (u_p + u_d) : 0.0;
    out.decodeBatch = batch;

    const double idle = hwSpec.gpuIdlePower.value();
    // Idle decode contributes u_d * decode_w == 0 regardless of the
    // decode power, so skip its evaluation (and the log2 inside)
    // when decode is not running.
    const double decode_w =
        u_d > 0.0 ? decodeGpuPowerAt(profile, batch).value() : 0.0;
    const double prefill_w = profile.prefill.gpuPower.value();
    out.gpuPower = Watts(idle * (1.0 - out.busyFrac) +
                         u_p * prefill_w + u_d * decode_w);
    return out;
}

void
PerfModel::solveOpChunk(const ConfigProfile *const *profiles,
                        const double *demand_tps, std::size_t m,
                        OperatingPoint *out, bool server_power) const
{
    tapas_assert(m <= kOpChunk, "operating-point chunk overflow");
    const double fp = perfParams.mix.prefillFraction();
    const double fd = perfParams.mix.decodeFraction();
    const double idle = hwSpec.gpuIdlePower.value();

    double prefT[kOpChunk], wS[kOpChunk], kS[kOpChunk];
    double maxB[kOpChunk], b1W[kOpChunk], bMaxW[kOpChunk];
    double prefW[kOpChunk], act[kOpChunk];
    double upA[kOpChunk], udA[kOpChunk], batchA[kOpChunk];
    double busyA[kOpChunk], pshareA[kOpChunk], dwA[kOpChunk];
    double gwA[kOpChunk];

    // Gather: one pass of pointer-chasing, then everything below is
    // stride-1 arithmetic over the stack arrays.
    for (std::size_t i = 0; i < m; ++i) {
        const ConfigProfile &p = *profiles[i];
        prefT[i] = p.prefill.throughputTps;
        wS[i] = p.decodeWeightS;
        kS[i] = p.decodeKvS;
        maxB[i] = static_cast<double>(p.config.maxBatchSize);
        b1W[i] = p.decodePowerBatch1W;
        bMaxW[i] = p.decodePowerBatchMaxW;
        prefW[i] = p.prefill.gpuPower.value();
        act[i] = static_cast<double>(p.activeGpus);
    }

    // Branch-free solve: the scalar sub-saturated/saturated decode
    // split becomes selects over speculatively computed values. The
    // speculative division wS*r/denom is only selected when
    // denom > 1e-9, and every lane that reaches the select keeps it
    // finite (r == 0 forces denom = share > 0), so no NaN/inf
    // survives selection. Expression order mirrors
    // operatingGpuPointAt term for term — the std::min/max/clamp
    // calls are spelled as the ternaries they expand to, because
    // their by-reference returns block the loop vectorizer — so with
    // -ffp-contract=off every lane is bit-identical to the scalar
    // solve.
    for (std::size_t i = 0; i < m; ++i) {
        const double d_raw = demand_tps[i];
        const double demand = 0.0 < d_raw ? d_raw : 0.0;
        const double u_raw = demand * fp / prefT[i];
        const double u_p = u_raw < 1.0 ? u_raw : 1.0;
        const double r = demand * fd;
        const double tau1 = wS[i] + kS[i];
        const double s_raw = 1.0 - u_p;
        const double share = 0.05 < s_raw ? s_raw : 0.05;
        const double rt = r * tau1;
        const double denom = share - kS[i] * r;
        const double braw = wS[i] * r / denom;
        const double bsel = denom > 1e-9 ? braw : maxB[i];
        const double bsat = bsel < 1.0
            ? 1.0
            : (maxB[i] < bsel ? maxB[i] : bsel);
        const bool sat = !(rt < share);
        double batch = sat ? bsat : 1.0;
        double u_d = sat ? share : rt;
        batch = r > 0.0 ? batch : 0.0;
        u_d = r > 0.0 ? u_d : 0.0;
        const double sum = u_p + u_d;
        const double busy = sum < 1.0 ? sum : 1.0;
        upA[i] = u_p;
        udA[i] = u_d;
        batchA[i] = batch;
        busyA[i] = busy;
        pshareA[i] = busy > 0.0 ? u_p / sum : 0.0;
        // Decode power endpoints (the two cases continuous batching
        // actually lands on, batch <= 1 taking priority like the
        // scalar fast path); -1 marks the rare mid-range-batch or
        // uncached-endpoint lanes for the scalar fixup below.
        double dw = (batch == maxB[i] && bMaxW[i] >= 0.0)
            ? bMaxW[i]
            : -1.0;
        dw = (batch <= 1.0 && b1W[i] >= 0.0) ? b1W[i] : dw;
        dwA[i] = u_d > 0.0 ? dw : 0.0;
    }

    // Scalar fixup: lanes whose decode power needs the full log2
    // formula (or whose profile lacks cached endpoints) go through
    // the very function the scalar path uses.
    for (std::size_t i = 0; i < m; ++i) {
        if (dwA[i] < 0.0)
            dwA[i] =
                decodeGpuPowerAt(*profiles[i], batchA[i]).value();
    }

    for (std::size_t i = 0; i < m; ++i) {
        gwA[i] = idle * (1.0 - busyA[i]) + upA[i] * prefW[i] +
            udA[i] * dwA[i];
    }

    if (server_power) {
        // serverPowerFromGpu, element-wise, with the loop-invariant
        // spec terms hoisted (same values, same per-lane expression
        // order as the scalar function).
        const double gps =
            static_cast<double>(hwSpec.gpusPerServer);
        const double idle_sum = idle * gps;
        const double max_sum = hwSpec.gpuMaxPower.value() * gps;
        const double span_sum = max_sum - idle_sum;
        const bool has_span = max_sum > idle_sum;
        const double chassis_idle = hwSpec.chassisIdlePower.value();
        const double chassis_active =
            hwSpec.chassisActivePower.value();
        const double fan_max = hwSpec.fanMaxPower.value();
        for (std::size_t i = 0; i < m; ++i) {
            const double gpu_total =
                gwA[i] * act[i] + idle * (gps - act[i]);
            const double h_raw = (gpu_total - idle_sum) / span_sum;
            const double h_clamped =
                h_raw < 0.0 ? 0.0 : (1.0 < h_raw ? 1.0 : h_raw);
            const double heat = has_span ? h_clamped : 0.0;
            double total = chassis_idle + chassis_active * heat +
                gpu_total;
            const double speed = 0.35 + 0.65 * heat;
            total += fan_max * speed * speed * speed;
            out[i].serverPower = Watts(total);
        }
    } else {
        for (std::size_t i = 0; i < m; ++i)
            out[i].serverPower = Watts(0.0);
    }

    for (std::size_t i = 0; i < m; ++i) {
        out[i].busyFrac = busyA[i];
        out[i].prefillShare = pshareA[i];
        out[i].decodeBatch = batchA[i];
        out[i].gpuPower = Watts(gwA[i]);
    }
}

void
PerfModel::solveOpBatch(const ConfigProfile *const *profiles,
                        const double *demand_tps, std::size_t n,
                        OperatingPoint *out, bool server_power) const
{
    for (std::size_t base = 0; base < n; base += kOpChunk) {
        const std::size_t m = std::min(kOpChunk, n - base);
        solveOpChunk(profiles + base, demand_tps + base, m,
                     out + base, server_power);
    }
}

void
PerfModel::operatingPointBatch(const ConfigProfile *const *profiles,
                               const double *demand_tps,
                               std::size_t n,
                               OperatingPoint *out) const
{
    if (operatingPointTableEnabled()) {
        tableOpBatch(profiles, demand_tps, n, out, true);
        return;
    }
    solveOpBatch(profiles, demand_tps, n, out, true);
}

void
PerfModel::operatingGpuPointBatch(
    const ConfigProfile *const *profiles, const double *demand_tps,
    std::size_t n, OperatingPoint *out) const
{
    if (operatingPointTableEnabled()) {
        tableOpBatch(profiles, demand_tps, n, out, false);
        return;
    }
    solveOpBatch(profiles, demand_tps, n, out, false);
}

void
PerfModel::operatingPointBatch(const ConfigProfile *profiles,
                               const std::uint32_t *profile_idx,
                               const double *demand_tps,
                               std::size_t n,
                               OperatingPoint *out) const
{
    const ConfigProfile *ptrs[kOpChunk];
    for (std::size_t base = 0; base < n; base += kOpChunk) {
        const std::size_t m = std::min(kOpChunk, n - base);
        for (std::size_t i = 0; i < m; ++i)
            ptrs[i] = profiles + profile_idx[base + i];
        if (operatingPointTableEnabled())
            tableOpBatch(ptrs, demand_tps + base, m, out + base,
                         true);
        else
            solveOpChunk(ptrs, demand_tps + base, m, out + base,
                         true);
    }
}

void
PerfModel::operatingGpuPointBatch(const ConfigProfile *profiles,
                                  const std::uint32_t *profile_idx,
                                  const double *demand_tps,
                                  std::size_t n,
                                  OperatingPoint *out) const
{
    const ConfigProfile *ptrs[kOpChunk];
    for (std::size_t base = 0; base < n; base += kOpChunk) {
        const std::size_t m = std::min(kOpChunk, n - base);
        for (std::size_t i = 0; i < m; ++i)
            ptrs[i] = profiles + profile_idx[base + i];
        if (operatingPointTableEnabled())
            tableOpBatch(ptrs, demand_tps + base, m, out + base,
                         false);
        else
            solveOpChunk(ptrs, demand_tps + base, m, out + base,
                         false);
    }
}

void
PerfModel::enableOperatingPointTable(double demand_step_tps,
                                     double max_demand_tps)
{
    tapas_assert(demand_step_tps > 0.0 &&
                     max_demand_tps > demand_step_tps,
                 "operating-point table needs positive step < max");
    MutexLock lock(opTableMutex);
    opTableStepTps = demand_step_tps;
    opTableMaxTps = max_demand_tps;
    opTables.clear();
}

const PerfModel::OpTableGrid *
PerfModel::opGridFor(const ConfigProfile &profile) const
{
    MutexLock lock(opTableMutex);
    auto it = opTables.find(profile.config);
    if (it != opTables.end())
        return it->second.get();
    auto grid = std::make_unique<OpTableGrid>();
    grid->stepTps = opTableStepTps;
    // One node past the configured max so the last interpolation
    // interval still has a right endpoint.
    const std::size_t nodes = static_cast<std::size_t>(
                                  opTableMaxTps / opTableStepTps) +
        2;
    grid->nodes.resize(nodes);
    for (std::size_t j = 0; j < nodes; ++j) {
        // Exact full solve at each grid node (the scalar reference
        // path); the GPU-only entry points zero serverPower on
        // output.
        grid->nodes[j] = operatingPointAt(
            profile, grid->stepTps * static_cast<double>(j));
    }
    // Demands at/past the last node fall back to the exact solve.
    grid->maxDemandTps =
        grid->stepTps * static_cast<double>(nodes - 1);
    const OpTableGrid *out = grid.get();
    opTables.emplace(profile.config, std::move(grid));
    return out;
}

void
PerfModel::tableOpBatch(const ConfigProfile *const *profiles,
                        const double *demand_tps, std::size_t n,
                        OperatingPoint *out, bool server_power) const
{
    // Consecutive lanes usually share a profile (demand-sorted
    // sweeps, per-candidate blocks), so memoize the last grid lookup
    // on the profile pointer before falling back to the map.
    const ConfigProfile *last_p = nullptr;
    const OpTableGrid *grid = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        const ConfigProfile *p = profiles[i];
        if (p != last_p) {
            grid = opGridFor(*p);
            last_p = p;
        }
        const double d = std::max(0.0, demand_tps[i]);
        if (d >= grid->maxDemandTps) {
            // Beyond the grid: exact solve — the table is a pure
            // accelerator, never an extrapolator.
            solveOpChunk(&p, &d, 1, &out[i], server_power);
            continue;
        }
        const std::size_t j =
            static_cast<std::size_t>(d / grid->stepTps);
        const double t =
            (d - grid->stepTps * static_cast<double>(j)) /
            grid->stepTps;
        const OperatingPoint &a = grid->nodes[j];
        const OperatingPoint &b = grid->nodes[j + 1];
        OperatingPoint &o = out[i];
        o.busyFrac = a.busyFrac + t * (b.busyFrac - a.busyFrac);
        o.prefillShare =
            a.prefillShare + t * (b.prefillShare - a.prefillShare);
        o.decodeBatch =
            a.decodeBatch + t * (b.decodeBatch - a.decodeBatch);
        o.gpuPower =
            Watts(a.gpuPower.value() +
                  t * (b.gpuPower.value() - a.gpuPower.value()));
        o.serverPower = server_power
            ? Watts(a.serverPower.value() +
                    t * (b.serverPower.value() -
                         a.serverPower.value()))
            : Watts(0.0);
    }
}

std::vector<ConfigProfile>
PerfModel::paretoFrontier(const std::vector<ConfigProfile> &profiles,
                          bool use_power)
{
    auto metric = [use_power](const ConfigProfile &p) {
        if (use_power) {
            // Whole-instance power at saturation.
            return p.prefill.gpuPower.value() * p.activeGpus;
        }
        // Hottest-GPU proxy: per-GPU power drives temperature.
        return p.prefill.gpuPower.value();
    };
    // Single-pass dominance sweep instead of the all-pairs scan:
    // sorted by goodput descending, a candidate is dominated iff a
    // strictly-higher-goodput candidate has metric <= its own, or an
    // equal-goodput candidate has a strictly smaller metric. Both
    // are prefix minima of the sweep, so one ordered pass decides
    // every candidate (O(n log n) versus the old O(n^2)); exact
    // duplicates (equal goodput and metric) all survive, as before.
    // Survivors are collected in input order and run through the
    // same final sort, so the output — tie order included — matches
    // the old scan element for element (pinned by
    // tests/llm/test_perf.cc).
    struct Entry
    {
        double goodput;
        double metric;
        std::uint32_t index;
    };
    std::vector<Entry> entries;
    entries.reserve(profiles.size());
    for (std::uint32_t i = 0; i < profiles.size(); ++i) {
        if (profiles[i].goodputTps <= 0.0)
            continue;
        entries.push_back(
            {profiles[i].goodputTps, metric(profiles[i]), i});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.goodput > b.goodput;
              });

    std::vector<char> survives(profiles.size(), 0);
    constexpr double inf = std::numeric_limits<double>::infinity();
    // Min metric among strictly higher goodputs seen so far.
    double best_above = inf;
    for (std::size_t lo = 0; lo < entries.size();) {
        // Group of equal goodputs.
        std::size_t hi = lo;
        double group_min = inf;
        while (hi < entries.size() &&
               entries[hi].goodput == entries[lo].goodput) {
            group_min = std::min(group_min, entries[hi].metric);
            ++hi;
        }
        for (std::size_t k = lo; k < hi; ++k) {
            const double m = entries[k].metric;
            if (best_above > m && group_min >= m)
                survives[entries[k].index] = 1;
        }
        best_above = std::min(best_above, group_min);
        lo = hi;
    }

    std::vector<ConfigProfile> frontier;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (survives[i])
            frontier.push_back(profiles[i]);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const ConfigProfile &a, const ConfigProfile &b) {
                  return a.goodputTps < b.goodputTps;
              });
    return frontier;
}

} // namespace tapas
