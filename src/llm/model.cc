#include "llm/model.hh"

#include "common/logging.hh"

namespace tapas {

double
modelParamsB(ModelSize size)
{
    switch (size) {
      case ModelSize::B70:
        return 70.0;
      case ModelSize::B13:
        return 13.0;
      case ModelSize::B7:
        return 7.0;
    }
    panic("unknown model size");
}

double
quantBytesPerParam(Quantization quant)
{
    switch (quant) {
      case Quantization::FP16:
        return 2.0;
      case Quantization::FP8:
        return 1.0;
      case Quantization::INT4:
        return 0.5;
    }
    panic("unknown quantization");
}

double
modelQuality(ModelSize size, Quantization quant)
{
    double base = 0.0;
    switch (size) {
      case ModelSize::B70:
        base = 1.0;
        break;
      case ModelSize::B13:
        base = 0.72;
        break;
      case ModelSize::B7:
        // Paper: 7B reduces result quality by 30-40% vs 70B.
        base = 0.62;
        break;
    }
    switch (quant) {
      case Quantization::FP16:
        return base;
      case Quantization::FP8:
        // Paper: quantization costs 2-20% accuracy.
        return base * 0.97;
      case Quantization::INT4:
        return base * 0.88;
    }
    panic("unknown quantization");
}

double
quantSpeedup(Quantization quant)
{
    switch (quant) {
      case Quantization::FP16:
        return 1.0;
      case Quantization::FP8:
        return 1.7;
      case Quantization::INT4:
        return 2.6;
    }
    panic("unknown quantization");
}

const char *
modelSizeName(ModelSize size)
{
    switch (size) {
      case ModelSize::B70:
        return "70B";
      case ModelSize::B13:
        return "13B";
      case ModelSize::B7:
        return "7B";
    }
    return "unknown";
}

const char *
quantizationName(Quantization quant)
{
    switch (quant) {
      case Quantization::FP16:
        return "FP16";
      case Quantization::FP8:
        return "FP8";
      case Quantization::INT4:
        return "INT4";
    }
    return "unknown";
}

double
modelWeightsGb(ModelSize size, Quantization quant)
{
    return modelParamsB(size) * quantBytesPerParam(quant);
}

} // namespace tapas
