/**
 * @file
 * Core identifier and simulation-time types shared across modules.
 */

#ifndef TAPAS_COMMON_TYPES_HH
#define TAPAS_COMMON_TYPES_HH

#include <cstdint>
#include <functional>

namespace tapas {

/**
 * Simulation time in seconds since the start of the run.
 * A plain signed integer: all schedulers in this library operate on
 * second granularity or coarser, and signed arithmetic keeps interval
 * math (t - dt) safe.
 */
using SimTime = std::int64_t;

/** Common durations, in seconds. */
constexpr SimTime kSecond = 1;
constexpr SimTime kMinute = 60;
constexpr SimTime kHour = 3600;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kWeek = 7 * kDay;

/**
 * Strongly typed integer id. The Tag parameter makes ServerId,
 * RowId, etc. mutually unassignable while keeping the full
 * convenience of an integer key.
 */
template <typename Tag>
struct Id
{
    /** Sentinel for "no entity". */
    static constexpr std::uint32_t invalidIndex = 0xffffffff;

    std::uint32_t index = invalidIndex;

    constexpr Id() = default;
    constexpr explicit Id(std::uint32_t idx) : index(idx) {}

    constexpr bool valid() const { return index != invalidIndex; }

    constexpr bool operator==(const Id &) const = default;
    constexpr bool operator<(const Id &o) const { return index < o.index; }
};

struct ServerTag {};
struct RackTag {};
struct RowTag {};
struct AisleTag {};
struct UpsTag {};
struct PduTag {};
struct VmTag {};
struct EndpointTag {};
struct CustomerTag {};
struct RequestTag {};

using ServerId = Id<ServerTag>;
using RackId = Id<RackTag>;
using RowId = Id<RowTag>;
using AisleId = Id<AisleTag>;
using UpsId = Id<UpsTag>;
using PduId = Id<PduTag>;
using VmId = Id<VmTag>;
using EndpointId = Id<EndpointTag>;
using CustomerId = Id<CustomerTag>;
using RequestId = Id<RequestTag>;

} // namespace tapas

namespace std {

template <typename Tag>
struct hash<tapas::Id<Tag>>
{
    size_t
    operator()(const tapas::Id<Tag> &id) const noexcept
    {
        return std::hash<std::uint32_t>{}(id.index);
    }
};

} // namespace std

#endif // TAPAS_COMMON_TYPES_HH
