#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a ^ (b * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
    splitMix64(state);
    return splitMix64(state);
}

namespace {
inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 mantissa bits of uniformity.
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    tapas_assert(lo <= hi, "empty integer range [%lld, %lld]",
                 static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

namespace {

/**
 * Ziggurat tables (Doornik ZIGNOR, 128 layers): layer edges x_i and
 * the edge ratios used for the fast accept test.
 */
struct ZigguratTables
{
    static constexpr int kLayers = 128;
    /** Tail start. */
    static constexpr double kR = 3.442619855899;
    /** Area of each layer (and the tail box). */
    static constexpr double kV = 9.91256303526217e-3;

    double x[kLayers + 1];
    double ratio[kLayers];

    ZigguratTables()
    {
        const double f = std::exp(-0.5 * kR * kR);
        x[0] = kV / f; // pseudo-edge covering the tail box
        x[1] = kR;
        x[kLayers] = 0.0;
        for (int i = 2; i < kLayers; ++i) {
            x[i] = std::sqrt(-2.0 *
                             std::log(kV / x[i - 1] +
                                      std::exp(-0.5 * x[i - 1] *
                                               x[i - 1])));
        }
        for (int i = 0; i < kLayers; ++i)
            ratio[i] = x[i + 1] / x[i];
    }
};

const ZigguratTables &
zigTables()
{
    static const ZigguratTables tables;
    return tables;
}

} // namespace

double
Rng::gaussianFast()
{
    const ZigguratTables &zig = zigTables();
    for (;;) {
        // One raw draw: 7 low bits pick the layer, the top 53 bits
        // form the uniform (the bit ranges are disjoint).
        const std::uint64_t bits = next();
        const int layer =
            static_cast<int>(bits & (ZigguratTables::kLayers - 1));
        const double u =
            2.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53) -
            1.0;
        if (std::abs(u) < zig.ratio[layer])
            return u * zig.x[layer];
        if (layer == 0) {
            // Tail: Marsaglia's exact method beyond R.
            double tx = 0.0;
            double ty = 0.0;
            do {
                double u1 = 0.0;
                do {
                    u1 = uniform();
                } while (u1 <= 1e-300);
                tx = std::log(u1) / ZigguratTables::kR;
                double u2 = 0.0;
                do {
                    u2 = uniform();
                } while (u2 <= 1e-300);
                ty = std::log(u2);
            } while (-2.0 * ty < tx * tx);
            return u < 0.0 ? tx - ZigguratTables::kR
                           : ZigguratTables::kR - tx;
        }
        const double cand = u * zig.x[layer];
        const double f0 = std::exp(
            -0.5 * (zig.x[layer] * zig.x[layer] - cand * cand));
        const double f1 = std::exp(
            -0.5 *
            (zig.x[layer + 1] * zig.x[layer + 1] - cand * cand));
        if (f1 + uniform() * (f0 - f1) < 1.0)
            return cand;
    }
}

double
Rng::gaussianFast(double mean, double stddev)
{
    return mean + stddev * gaussianFast();
}

double
Rng::exponential(double rate)
{
    tapas_assert(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
Rng::pareto(double x_m, double alpha)
{
    tapas_assert(x_m > 0.0 && alpha > 0.0, "invalid pareto parameters");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return x_m / std::pow(u, 1.0 / alpha);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::poisson(double mean)
{
    tapas_assert(mean >= 0.0, "poisson mean must be non-negative");
    if (mean <= 0.0)
        return 0;
    if (mean > 60.0) {
        // Normal approximation keeps large-rate sampling O(1).
        const double v = gaussian(mean, std::sqrt(mean));
        return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
    }
    // Knuth's method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    int count = 0;
    while (prod > limit) {
        prod *= uniform();
        ++count;
    }
    return count;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        tapas_assert(w >= 0.0, "negative sampling weight");
        total += w;
    }
    tapas_assert(total > 0.0, "all sampling weights are zero");
    double pick = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

int
Rng::zipf(int n, double s)
{
    tapas_assert(n >= 1, "zipf needs at least one rank");
    double norm = 0.0;
    for (int k = 1; k <= n; ++k)
        norm += 1.0 / std::pow(k, s);
    double pick = uniform() * norm;
    for (int k = 1; k <= n; ++k) {
        pick -= 1.0 / std::pow(k, s);
        if (pick < 0.0)
            return k;
    }
    return n;
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    return Rng(mixSeed(next(), stream_id));
}

void
Rng::checkpointState(Archive &ar)
{
    for (std::uint64_t &word : s)
        ar.value(word);
    ar.value(cachedGaussian);
    ar.value(hasCachedGaussian);
}

} // namespace tapas
