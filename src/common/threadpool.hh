/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel simulation work:
 * independent scenario replications, sweep grids, and bench trial
 * fan-out. Tasks must not submit further tasks and then block on
 * them from inside a worker (classic self-deadlock); the intended
 * pattern is a driver thread submitting leaf work. parallelFor /
 * parallelChunks enforce the rule at runtime (they assert the caller
 * is not one of this pool's own workers), and the queue state is
 * annotated for clang's thread-safety analysis (scripts/check.sh
 * build-clang leg).
 */

#ifndef TAPAS_COMMON_THREADPOOL_HH
#define TAPAS_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hh"

namespace tapas {

/** Work-queue thread pool; destruction drains and joins. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    { return static_cast<unsigned>(workers.size()); }

    /**
     * Process-wide shared pool (hardware concurrency), created on
     * first use. For coarse construction-time parallelism (batched
     * profile refits) where plumbing a pool through every
     * constructor is not worth it. Callers must check
     * onWorkerThread() first and fall back to serial execution when
     * already inside a pool (sweep jobs construct simulators on
     * worker threads; nested blocking would deadlock).
     */
    static ThreadPool &shared();

    /** True when the calling thread is any ThreadPool's worker. */
    static bool onWorkerThread();

    /** Enqueue a task; the future carries its result/exception. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            MutexLock lock(queueMutex);
            queue.emplace_back([task]() { (*task)(); });
        }
        queueCv.notify_one();
        return result;
    }

    /**
     * Run fn(index) for every index in [0, count), distributing
     * fixed chunks across the pool; blocks until all complete. The
     * chunking is deterministic in @p chunks (not in thread count),
     * so per-chunk seeding yields machine-independent results.
     * @p chunks 0 picks 4 chunks per worker.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t chunks = 0);

    /**
     * Chunk-granular variant: fn(chunk_index, begin, end) per chunk.
     * Use when each chunk carries its own state (e.g. an Rng seeded
     * by chunk index). Asserts the caller is not one of this pool's
     * own workers: blocking on futures served by the queue you are
     * currently draining is the self-deadlock the file comment bans.
     */
    void parallelChunks(
        std::size_t count,
        const std::function<void(std::size_t, std::size_t,
                                 std::size_t)> &fn,
        std::size_t chunks = 0);

  private:
    std::vector<std::thread> workers;
    Mutex queueMutex;
    std::deque<std::function<void()>> queue
        TAPAS_GUARDED_BY(queueMutex);
    bool stopping TAPAS_GUARDED_BY(queueMutex) = false;
    /** _any: waits on the annotated UniqueLock, not std::mutex. */
    std::condition_variable_any queueCv;

    void workerLoop();
};

} // namespace tapas

#endif // TAPAS_COMMON_THREADPOOL_HH
