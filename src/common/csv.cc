#include "common/csv.hh"

#include <sstream>

#include "common/logging.hh"

namespace tapas {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : filePath(path), out(path), columns(header.size())
{
    if (!out.is_open())
        fatal("cannot open CSV output file '%s'", path.c_str());
    writeRow(header);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    tapas_assert(cells.size() == columns,
                 "CSV row width %zu != header width %zu",
                 cells.size(), columns);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss << v;
        text.push_back(ss.str());
    }
    writeRow(text);
}

} // namespace tapas
