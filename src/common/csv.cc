#include "common/csv.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : filePath(path), columns(header.size())
{
    writeRow(header);
}

CsvWriter::~CsvWriter()
{
    const Error err = flush();
    if (!err.ok())
        warn("CSV export lost: %s", err.message().c_str());
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    tapas_assert(cells.size() == columns,
                 "CSV row width %zu != header width %zu",
                 cells.size(), columns);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            pending += ',';
        pending += escape(cells[i]);
    }
    pending += '\n';
    dirty = true;
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss << v;
        text.push_back(ss.str());
    }
    writeRow(text);
}

Error
CsvWriter::flush()
{
    if (!dirty)
        return Error::okValue();
    const Error err = atomicWriteFile(filePath, pending);
    if (err.ok())
        dirty = false;
    return err;
}

} // namespace tapas
