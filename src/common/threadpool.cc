#include "common/threadpool.hh"

#include <algorithm>
#include <exception>

#include "common/logging.hh"

namespace tapas {

namespace {
thread_local bool on_worker_thread = false;
} // namespace

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return on_worker_thread;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    on_worker_thread = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this]() {
                return stopping || !queue.empty();
            });
            if (queue.empty()) {
                // stopping && drained
                return;
            }
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelChunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &fn,
    std::size_t chunks)
{
    if (count == 0)
        return;
    std::size_t n = chunks != 0
        ? chunks
        : static_cast<std::size_t>(size()) * 4;
    n = std::clamp<std::size_t>(n, 1, count);

    std::vector<std::future<void>> pending;
    pending.reserve(n);
    const std::size_t per = count / n;
    const std::size_t extra = count % n;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t len = per + (c < extra ? 1 : 0);
        const std::size_t end = begin + len;
        pending.push_back(
            submit([&fn, c, begin, end]() { fn(c, begin, end); }));
        begin = end;
    }
    tapas_assert(begin == count, "chunking must cover the range");
    // Drain every chunk before rethrowing: unwinding while workers
    // still run tasks that reference the caller's frame would be a
    // use-after-free. The first exception wins; later ones drop.
    std::exception_ptr first_error;
    for (std::future<void> &f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t chunks)
{
    parallelChunks(
        count,
        [&fn](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        },
        chunks);
}

} // namespace tapas
