#include "common/threadpool.hh"

#include <algorithm>
#include <exception>

#include "common/logging.hh"

namespace tapas {

namespace {
/**
 * Pool whose workerLoop owns this thread (null on non-worker
 * threads). Tracking the owning pool — not just a bool — lets
 * parallelChunks distinguish the fatal case (blocking on your own
 * pool's queue from inside it) from the benign one (a worker of pool
 * A fanning out across pool B, whose workers make progress
 * independently).
 */
thread_local const ThreadPool *worker_pool = nullptr;
} // namespace

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return worker_pool != nullptr;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    worker_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            UniqueLock lock(queueMutex);
            // Manual predicate loop (not wait(lock, pred)): the
            // predicate reads queue/stopping, which the analysis
            // only accepts with queueMutex visibly held — true here,
            // opaque inside a lambda handed to wait().
            while (!stopping && queue.empty())
                queueCv.wait(lock);
            if (queue.empty()) {
                // stopping && drained
                return;
            }
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelChunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &fn,
    std::size_t chunks)
{
    if (count == 0)
        return;
    // The ThreadPool self-deadlock rule, enforced: every chunk below
    // waits on a future served by this pool's queue, so blocking
    // here from one of this pool's own workers can wedge the whole
    // pool (all workers parked in f.get(), nobody left to drain).
    tapas_assert(worker_pool != this,
                 "ThreadPool::parallelChunks called from one of this "
                 "pool's own workers (self-deadlock); submit leaf "
                 "work from a driver thread instead");
    std::size_t n = chunks != 0
        ? chunks
        : static_cast<std::size_t>(size()) * 4;
    n = std::clamp<std::size_t>(n, 1, count);

    std::vector<std::future<void>> pending;
    pending.reserve(n);
    const std::size_t per = count / n;
    const std::size_t extra = count % n;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t len = per + (c < extra ? 1 : 0);
        const std::size_t end = begin + len;
        pending.push_back(
            submit([&fn, c, begin, end]() { fn(c, begin, end); }));
        begin = end;
    }
    tapas_assert(begin == count, "chunking must cover the range");
    // Drain every chunk before rethrowing: unwinding while workers
    // still run tasks that reference the caller's frame would be a
    // use-after-free. The first exception wins; later ones drop.
    std::exception_ptr first_error;
    for (std::future<void> &f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t chunks)
{
    parallelChunks(
        count,
        [&fn](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        },
        chunks);
}

} // namespace tapas
