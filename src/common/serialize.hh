/**
 * @file
 * Versioned binary serialization: the durability layer under the
 * simulator's checkpoint/restore subsystem.
 *
 * Three pieces:
 *
 *  - Archive: a bidirectional byte-stream codec. One
 *    checkpointState(Archive&) method per class walks its fields in
 *    a fixed order; the same code path runs for save and load, so
 *    the two directions cannot drift apart. All primitives are
 *    written as fixed-width little-endian values (doubles/floats as
 *    their IEEE-754 bit patterns), so archives are bit-exact across
 *    hosts and the serialized stream doubles as a canonical state
 *    digest input.
 *
 *  - Checkpoint files: magic + format version + per-section framing
 *    ([id][length][payload][crc32]). Truncation, bit flips, and
 *    version skew are *detected* (length/CRC/magic checks) and
 *    surfaced as tapas::Error — never undefined behavior, never a
 *    silent wrong resume. Bump kCheckpointFormatVersion whenever any
 *    serialized struct changes shape (docs/checkpoint-format.md).
 *
 *  - atomicWriteFile: write-to-temp + fsync + rename. Every durable
 *    write in the repo goes through it (lint rule R8 bans raw
 *    fopen/fwrite/ofstream elsewhere), so a crash mid-write leaves
 *    the previous good file, not a torn one.
 */

#ifndef TAPAS_COMMON_SERIALIZE_HH
#define TAPAS_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace tapas {

/** CRC-32 (IEEE 802.3 polynomial, reflected). */
std::uint32_t crc32(const void *data, std::size_t size);

/** FNV-1a 64-bit hash; @p seed chains multi-buffer digests. */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/**
 * Write-to-temp + fsync + rename. The destination either keeps its
 * previous contents or atomically becomes the new ones; a crash (or
 * SIGKILL) at any point never leaves a torn file behind.
 */
Error atomicWriteFile(const std::string &path, const void *data,
                      std::size_t size);
Error atomicWriteFile(const std::string &path,
                      const std::string &text);

/** Whole-file reads with structured errors (no raw I/O at callers). */
Result<std::vector<std::uint8_t>>
readFileBytes(const std::string &path);
Result<std::string> readFileText(const std::string &path);

/** True when @p path names a readable file (resume discovery). */
bool fileExists(const std::string &path);

/** Best-effort delete; missing files are not an error. */
void removeFileIfExists(const std::string &path);

/**
 * Bidirectional field codec over a byte buffer. Write mode appends;
 * read mode consumes with bounds checks. A read past the end (or a
 * semantic mismatch flagged by fail()) latches ok() to false and
 * turns every later read into a zero-fill no-op — callers run the
 * full checkpointState walk and check ok() once at the end.
 */
class Archive
{
  public:
    static Archive
    writer()
    {
        return Archive();
    }

    static Archive
    reader(const std::uint8_t *data, std::size_t size)
    {
        Archive ar;
        ar.readMode = true;
        ar.readData = data;
        ar.readSize = size;
        return ar;
    }

    static Archive
    reader(const std::vector<std::uint8_t> &bytes)
    {
        return reader(bytes.data(), bytes.size());
    }

    bool writing() const { return !readMode; }
    bool ok() const { return okFlag; }

    /** Latch the failure flag (semantic mismatch during a read). */
    void fail() { okFlag = false; }

    /** Serialized bytes (write mode). */
    const std::vector<std::uint8_t> &buffer() const { return buf; }
    std::vector<std::uint8_t> takeBuffer() { return std::move(buf); }

    /** Unconsumed bytes (read mode). */
    std::size_t
    remaining() const
    {
        return readSize - readPos;
    }

    /** A fully consumed, error-free read. */
    bool done() const { return okFlag && remaining() == 0; }

    // ------------------------------------------------ primitives --

    /** Arithmetic, bool, and enum fields (fixed-width LE). */
    template <typename T>
    void
    value(T &v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "value() takes arithmetic or enum fields");
        if constexpr (std::is_enum_v<T>) {
            auto raw =
                static_cast<std::underlying_type_t<T>>(v);
            value(raw);
            v = static_cast<T>(raw);
        } else if constexpr (std::is_same_v<T, bool>) {
            std::uint8_t raw = v ? 1 : 0;
            fixed(raw);
            v = raw != 0;
        } else if constexpr (std::is_same_v<T, double>) {
            std::uint64_t bits;
            std::memcpy(&bits, &v, sizeof bits);
            fixed(bits);
            std::memcpy(&v, &bits, sizeof v);
        } else if constexpr (std::is_same_v<T, float>) {
            std::uint32_t bits;
            std::memcpy(&bits, &v, sizeof bits);
            fixed(bits);
            std::memcpy(&v, &bits, sizeof v);
        } else {
            static_assert(std::is_integral_v<T>);
            auto raw = static_cast<std::make_unsigned_t<T>>(v);
            fixed(raw);
            v = static_cast<T>(raw);
        }
    }

    /** Strongly typed ids (their raw u32 index). */
    template <typename Tag>
    void
    value(Id<Tag> &id)
    {
        value(id.index);
    }

    /** size_t fields travel as u64 (width-stable across hosts). */
    void
    count(std::size_t &n)
    {
        std::uint64_t wide = n;
        value(wide);
        n = static_cast<std::size_t>(wide);
    }

    void
    str(std::string &s)
    {
        std::size_t n = s.size();
        count(n);
        if (!readMode) {
            putBytes(s.data(), n);
            return;
        }
        if (!checkCount(n, 1)) {
            s.clear();
            return;
        }
        s.assign(reinterpret_cast<const char *>(readData + readPos),
                 n);
        readPos += n;
    }

    // ------------------------------------------------ containers --

    /** Vector of arithmetic/enum/Id elements. */
    template <typename T>
    void
    podVector(std::vector<T> &v)
    {
        std::size_t n = v.size();
        count(n);
        if (readMode) {
            if (!checkCount(n, 1)) {
                v.clear();
                return;
            }
            v.resize(n);
        }
        for (T &elem : v)
            value(elem);
    }

    /** Vector of composite elements; @p fn(Archive&, T&) per slot. */
    template <typename T, typename Fn>
    void
    each(std::vector<T> &v, Fn fn)
    {
        std::size_t n = v.size();
        count(n);
        if (readMode) {
            if (!checkCount(n, 1)) {
                v.clear();
                return;
            }
            v.clear();
            v.resize(n);
        }
        for (T &elem : v)
            fn(*this, elem);
    }

    /** Deque variant of each() (engine queues). */
    template <typename T, typename Fn>
    void
    eachDeque(std::deque<T> &v, Fn fn)
    {
        std::size_t n = v.size();
        count(n);
        if (readMode) {
            if (!checkCount(n, 1)) {
                v.clear();
                return;
            }
            v.clear();
            v.resize(n);
        }
        for (T &elem : v)
            fn(*this, elem);
    }

  private:
    Archive() = default;

    template <typename U>
    void
    fixed(U &raw)
    {
        static_assert(std::is_unsigned_v<U>);
        std::uint8_t bytes[sizeof(U)];
        if (!readMode) {
            for (std::size_t i = 0; i < sizeof(U); ++i)
                bytes[i] =
                    static_cast<std::uint8_t>(raw >> (8 * i));
            putBytes(bytes, sizeof(U));
            return;
        }
        if (!getBytes(bytes, sizeof(U))) {
            raw = 0;
            return;
        }
        raw = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            raw |= static_cast<U>(bytes[i]) << (8 * i);
    }

    void
    putBytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }

    bool
    getBytes(void *p, std::size_t n)
    {
        if (!okFlag || n > remaining()) {
            okFlag = false;
            return false;
        }
        std::memcpy(p, readData + readPos, n);
        readPos += n;
        return true;
    }

    /**
     * Guard container sizes read from untrusted bytes: a corrupt
     * length must fail the archive, not drive a multi-gigabyte
     * resize.
     */
    bool
    checkCount(std::size_t n, std::size_t min_elem_bytes)
    {
        if (!okFlag ||
            n > remaining() / (min_elem_bytes ? min_elem_bytes
                                              : 1)) {
            okFlag = false;
            return false;
        }
        return true;
    }

    bool readMode = false;
    bool okFlag = true;
    std::vector<std::uint8_t> buf;
    const std::uint8_t *readData = nullptr;
    std::size_t readSize = 0;
    std::size_t readPos = 0;
};

// ---------------------------------------------- checkpoint files --

/**
 * Bump on ANY serialized-struct change (field added, removed,
 * reordered, or retyped anywhere under a checkpointState walk).
 * Readers reject other versions with ErrorCode::Version; there is no
 * cross-version migration — a checkpoint is a resume token, not an
 * interchange format (docs/checkpoint-format.md).
 */
constexpr std::uint32_t kCheckpointFormatVersion = 1;

/** One framed section of a checkpoint file. */
struct CheckpointSection
{
    std::uint32_t id = 0;
    std::vector<std::uint8_t> payload;
};

/** Parsed, CRC-verified checkpoint file contents. */
struct CheckpointData
{
    std::uint32_t version = 0;
    /** Digest of the writing simulation's configuration. */
    std::uint64_t configDigest = 0;
    std::vector<CheckpointSection> sections;

    const CheckpointSection *
    find(std::uint32_t id) const
    {
        for (const CheckpointSection &s : sections) {
            if (s.id == id)
                return &s;
        }
        return nullptr;
    }
};

/** Serialize + atomically write a checkpoint file. */
Error writeCheckpointFile(
    const std::string &path, std::uint64_t config_digest,
    const std::vector<CheckpointSection> &sections);

/**
 * Read + fully validate a checkpoint file: magic, header CRC,
 * version, per-section length bounds and frame CRCs (each section's
 * CRC seals its id, length, and payload). Any
 * truncation or bit flip yields ErrorCode::Corrupt (wrong version:
 * ErrorCode::Version); payload bytes are returned only when every
 * check passed.
 */
Result<CheckpointData> readCheckpointFile(const std::string &path);

} // namespace tapas

#endif // TAPAS_COMMON_SERIALIZE_HH
