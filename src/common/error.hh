/**
 * @file
 * Structured recoverable errors.
 *
 * The library draws a hard line between invariant violations and
 * recoverable failures. Invariants (a corrupted routing index, an
 * out-of-range id) stay on tapas_assert/panic: they mean the program
 * itself is wrong and must die loudly. Recoverable failures — a
 * missing file, a truncated or bit-flipped checkpoint, a malformed
 * scenario spec — are *inputs* being wrong, and callers need to
 * branch on them: report, retry, fall back to a fresh start. Those
 * paths return tapas::Error (or Result<T>) instead of aborting.
 */

#ifndef TAPAS_COMMON_ERROR_HH
#define TAPAS_COMMON_ERROR_HH

#include <string>
#include <utility>

#include "common/logging.hh"

namespace tapas {

/** Category of a recoverable failure. */
enum class ErrorCode
{
    /** No error (the Error is "ok"). */
    None = 0,
    /** The operating system refused an I/O operation. */
    Io,
    /** Data failed a structural check (CRC, length, magic). */
    Corrupt,
    /** Data was written by an incompatible format version. */
    Version,
    /** Data is valid but belongs to a different configuration. */
    Mismatch,
    /** Malformed input (bad scenario spec, unknown key/value). */
    Invalid,
};

/** A recoverable failure: a category plus a human-readable message. */
class Error
{
  public:
    /** Success value. */
    Error() = default;

    Error(ErrorCode code, std::string message)
        : codeValue(code), messageText(std::move(message))
    {}

    static Error okValue() { return Error(); }

    static Error
    io(std::string message)
    {
        return Error(ErrorCode::Io, std::move(message));
    }

    static Error
    corrupt(std::string message)
    {
        return Error(ErrorCode::Corrupt, std::move(message));
    }

    static Error
    version(std::string message)
    {
        return Error(ErrorCode::Version, std::move(message));
    }

    static Error
    mismatch(std::string message)
    {
        return Error(ErrorCode::Mismatch, std::move(message));
    }

    static Error
    invalid(std::string message)
    {
        return Error(ErrorCode::Invalid, std::move(message));
    }

    bool ok() const { return codeValue == ErrorCode::None; }
    ErrorCode code() const { return codeValue; }
    const std::string &message() const { return messageText; }

    /** Short category name ("io", "corrupt", ...) for reports. */
    const char *
    codeName() const
    {
        switch (codeValue) {
        case ErrorCode::None:
            return "ok";
        case ErrorCode::Io:
            return "io";
        case ErrorCode::Corrupt:
            return "corrupt";
        case ErrorCode::Version:
            return "version";
        case ErrorCode::Mismatch:
            return "mismatch";
        case ErrorCode::Invalid:
            return "invalid";
        }
        return "unknown";
    }

  private:
    ErrorCode codeValue = ErrorCode::None;
    std::string messageText;
};

/**
 * A value or an Error. Accessing the value of a failed Result is an
 * invariant violation (the caller must branch on ok() first).
 */
template <typename T>
class Result
{
  public:
    Result(T value) // NOLINT(google-explicit-constructor)
        : val(std::move(value))
    {}

    Result(Error error) // NOLINT(google-explicit-constructor)
        : err(std::move(error))
    {
        tapas_assert(!err.ok(),
                     "Result constructed from an ok Error; return "
                     "the value instead");
    }

    bool ok() const { return err.ok(); }
    const Error &error() const { return err; }

    T &
    value()
    {
        tapas_assert(err.ok(), "Result::value() on error: %s",
                     err.message().c_str());
        return val;
    }

    const T &
    value() const
    {
        tapas_assert(err.ok(), "Result::value() on error: %s",
                     err.message().c_str());
        return val;
    }

  private:
    T val{};
    Error err;
};

} // namespace tapas

#endif // TAPAS_COMMON_ERROR_HH
