#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace tapas {

ConsoleTable::ConsoleTable(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    tapas_assert(!headers.empty(), "table needs at least one column");
}

void
ConsoleTable::addRow(std::vector<std::string> cells)
{
    tapas_assert(cells.size() == headers.size(),
                 "row has %zu cells, table has %zu columns",
                 cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

std::string
ConsoleTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
ConsoleTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
ConsoleTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                for (std::size_t pad = cells[c].size();
                     pad < widths[c] + 2; ++pad) {
                    os << ' ';
                }
            }
        }
        os << '\n';
    };

    print_row(headers);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    for (std::size_t i = 0; i < rule; ++i)
        os << '-';
    os << '\n';
    for (const auto &row : rows)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace tapas
