/**
 * @file
 * Wall-clock timing and benchmark-result emission shared by the bench
 * harnesses. Every perf bench writes a machine-readable
 * `BENCH_<name>.json` next to its console output so successive runs
 * form a trajectory that tooling can diff.
 */

#ifndef TAPAS_COMMON_TIMER_HH
#define TAPAS_COMMON_TIMER_HH

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace tapas {

/** Monotonic wall-clock stopwatch; starts on construction. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    void reset() { start = std::chrono::steady_clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsedS() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** One named benchmark case: ordered (metric, value) pairs. */
struct BenchCase
{
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;

    void
    set(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }
};

/**
 * Write benchmark results as JSON:
 *   {"bench": ..., "mode": ..., "cases": [{"name": ..., <metrics>}]}
 * Numeric values are emitted with enough precision to round-trip.
 * Returns false (after warning) if the file cannot be written.
 */
bool writeBenchJson(const std::string &path, const std::string &bench,
                    const std::string &mode,
                    const std::vector<BenchCase> &cases);

} // namespace tapas

#endif // TAPAS_COMMON_TIMER_HH
