/**
 * @file
 * Wall-clock timing and benchmark-result emission shared by the bench
 * harnesses. Every perf bench writes a machine-readable
 * `BENCH_<name>.json` next to its console output so successive runs
 * form a trajectory that tooling can diff.
 */

#ifndef TAPAS_COMMON_TIMER_HH
#define TAPAS_COMMON_TIMER_HH

#include <chrono>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace tapas {

/** Monotonic wall-clock stopwatch; starts on construction. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    void reset() { start = std::chrono::steady_clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsedS() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Process-CPU-time stopwatch; starts on construction. On shared or
 * oversubscribed hosts, wall time charges hypervisor steal and
 * preemption to the benchmark; CPU time only advances while the
 * process actually runs, so single-threaded hot-loop rates measured
 * with it are stable across load. Not meaningful around multi-thread
 * phases (CPU time sums across threads).
 */
class CpuTimer
{
  public:
    CpuTimer() { reset(); }

    void reset() { start = now(); }

    /** CPU seconds since construction or the last reset(). */
    double elapsedS() const { return now() - start; }

  private:
    static double
    now()
    {
        timespec ts{};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
            static_cast<double>(ts.tv_nsec) * 1e-9;
    }

    double start = 0.0;
};

/** One named benchmark case: ordered (metric, value) pairs. */
struct BenchCase
{
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;

    void
    set(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }
};

/**
 * Write benchmark results as JSON:
 *   {"bench": ..., "mode": ..., "cases": [{"name": ..., <metrics>}]}
 * Numeric values are emitted with enough precision to round-trip.
 * Returns false (after warning) if the file cannot be written.
 */
bool writeBenchJson(const std::string &path, const std::string &bench,
                    const std::string &mode,
                    const std::vector<BenchCase> &cases);

} // namespace tapas

#endif // TAPAS_COMMON_TIMER_HH
