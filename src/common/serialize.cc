/**
 * @file
 * Checkpoint file I/O, CRC32/FNV hashing, and the atomic
 * write-rename helper. This file is the one place in the library
 * allowed to touch raw stdio (lint rule R8 exempts it); everything
 * else writes durable files through atomicWriteFile().
 */

#include "common/serialize.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace tapas {

namespace {

const std::uint32_t *
crcTable()
{
    static const auto table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " '" + path + "': " + std::strerror(errno);
}

/** RAII stdio handle so every error path closes the file. */
struct FileHandle
{
    std::FILE *fp = nullptr;

    explicit FileHandle(std::FILE *f) : fp(f) {}
    ~FileHandle()
    {
        if (fp)
            std::fclose(fp);
    }
    FileHandle(const FileHandle &) = delete;
    FileHandle &operator=(const FileHandle &) = delete;

    /** Close explicitly; true when the flush-to-OS succeeded. */
    bool
    close()
    {
        if (!fp)
            return true;
        const bool ok = std::fclose(fp) == 0;
        fp = nullptr;
        return ok;
    }
};

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    const std::uint32_t *table = crcTable();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

Error
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size)
{
    const std::string tmp = path + ".tmp";
    FileHandle out(std::fopen(tmp.c_str(), "wb"));
    if (!out.fp)
        return Error::io(errnoMessage("cannot create", tmp));

    if (size > 0 &&
        std::fwrite(data, 1, size, out.fp) != size) {
        std::remove(tmp.c_str());
        return Error::io(errnoMessage("short write to", tmp));
    }
    // Flush user-space buffers, then force the bytes to disk before
    // the rename publishes the file: rename-before-fsync can expose
    // an empty file after a power cut.
    if (std::fflush(out.fp) != 0 || fsync(fileno(out.fp)) != 0) {
        std::remove(tmp.c_str());
        return Error::io(errnoMessage("cannot flush", tmp));
    }
    if (!out.close()) {
        std::remove(tmp.c_str());
        return Error::io(errnoMessage("cannot close", tmp));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Error::io(errnoMessage("cannot rename into", path));
    }
    return Error::okValue();
}

Error
atomicWriteFile(const std::string &path, const std::string &text)
{
    return atomicWriteFile(path, text.data(), text.size());
}

Result<std::vector<std::uint8_t>>
readFileBytes(const std::string &path)
{
    FileHandle in(std::fopen(path.c_str(), "rb"));
    if (!in.fp)
        return Error::io(errnoMessage("cannot open", path));

    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const std::size_t got =
            std::fread(chunk, 1, sizeof chunk, in.fp);
        bytes.insert(bytes.end(), chunk, chunk + got);
        if (got < sizeof chunk) {
            if (std::ferror(in.fp))
                return Error::io(
                    errnoMessage("read failed on", path));
            break;
        }
    }
    return bytes;
}

Result<std::string>
readFileText(const std::string &path)
{
    Result<std::vector<std::uint8_t>> bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.error();
    return std::string(bytes.value().begin(), bytes.value().end());
}

bool
fileExists(const std::string &path)
{
    return access(path.c_str(), R_OK) == 0;
}

void
removeFileIfExists(const std::string &path)
{
    std::remove(path.c_str());
}

namespace {

constexpr char kMagic[8] = {'T', 'A', 'P', 'A', 'S',
                            'C', 'K', 'P'};
/** magic + version + sectionCount + configDigest + headerCrc. */
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 4;
/** id + payloadLen + payloadCrc. */
constexpr std::size_t kSectionOverhead = 4 + 8 + 4;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

Error
writeCheckpointFile(const std::string &path,
                    std::uint64_t config_digest,
                    const std::vector<CheckpointSection> &sections)
{
    std::size_t total = kHeaderSize;
    for (const CheckpointSection &s : sections)
        total += kSectionOverhead + s.payload.size();

    std::vector<std::uint8_t> out;
    out.reserve(total);
    out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
    putU32(out, kCheckpointFormatVersion);
    putU32(out, static_cast<std::uint32_t>(sections.size()));
    putU64(out, config_digest);
    putU32(out, crc32(out.data(), out.size()));

    for (const CheckpointSection &s : sections) {
        // The section CRC seals the whole frame (id + length +
        // payload), so a flipped id or length is as detectable as a
        // flipped payload byte.
        const std::size_t frame_start = out.size();
        putU32(out, s.id);
        putU64(out, s.payload.size());
        out.insert(out.end(), s.payload.begin(),
                   s.payload.end());
        putU32(out, crc32(out.data() + frame_start,
                          out.size() - frame_start));
    }
    return atomicWriteFile(path, out.data(), out.size());
}

Result<CheckpointData>
readCheckpointFile(const std::string &path)
{
    Result<std::vector<std::uint8_t>> read = readFileBytes(path);
    if (!read.ok())
        return read.error();
    const std::vector<std::uint8_t> &bytes = read.value();

    if (bytes.size() < kHeaderSize)
        return Error::corrupt("checkpoint '" + path +
                              "': truncated header (" +
                              std::to_string(bytes.size()) +
                              " bytes)");
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        return Error::corrupt("checkpoint '" + path +
                              "': bad magic");
    if (getU32(bytes.data() + kHeaderSize - 4) !=
        crc32(bytes.data(), kHeaderSize - 4))
        return Error::corrupt("checkpoint '" + path +
                              "': header CRC mismatch");

    CheckpointData data;
    data.version = getU32(bytes.data() + 8);
    const std::uint32_t section_count =
        getU32(bytes.data() + 12);
    data.configDigest = getU64(bytes.data() + 16);
    if (data.version != kCheckpointFormatVersion)
        return Error::version(
            "checkpoint '" + path + "': format version " +
            std::to_string(data.version) + ", expected " +
            std::to_string(kCheckpointFormatVersion));

    std::size_t pos = kHeaderSize;
    data.sections.reserve(section_count);
    for (std::uint32_t i = 0; i < section_count; ++i) {
        if (bytes.size() - pos < 4 + 8)
            return Error::corrupt(
                "checkpoint '" + path + "': truncated at section " +
                std::to_string(i) + " frame");
        const std::size_t frame_start = pos;
        const std::uint32_t id = getU32(bytes.data() + pos);
        const std::uint64_t len = getU64(bytes.data() + pos + 4);
        pos += 4 + 8;
        if (len > bytes.size() - pos ||
            bytes.size() - pos - static_cast<std::size_t>(len) < 4)
            return Error::corrupt(
                "checkpoint '" + path + "': section " +
                std::to_string(i) + " length " +
                std::to_string(len) + " exceeds file");
        const std::uint8_t *payload = bytes.data() + pos;
        pos += static_cast<std::size_t>(len);
        const std::uint32_t stored_crc = getU32(bytes.data() + pos);
        pos += 4;
        if (stored_crc != crc32(bytes.data() + frame_start,
                                pos - 4 - frame_start))
            return Error::corrupt("checkpoint '" + path +
                                  "': section " + std::to_string(i) +
                                  " (id " + std::to_string(id) +
                                  ") CRC mismatch");
        CheckpointSection section;
        section.id = id;
        section.payload.assign(payload,
                               payload +
                                   static_cast<std::size_t>(len));
        data.sections.push_back(std::move(section));
    }
    if (pos != bytes.size())
        return Error::corrupt(
            "checkpoint '" + path + "': " +
            std::to_string(bytes.size() - pos) +
            " trailing bytes after last section");
    return data;
}

} // namespace tapas
