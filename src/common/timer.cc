#include "common/timer.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

namespace {

/** Shortest decimal form that round-trips a double. */
std::string
formatNumber(double v)
{
    // JSON has no representation for non-finite numbers.
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    if (std::abs(v) < 1e15 && v == std::floor(v)) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    double parsed = 0.0;
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        std::sscanf(buf, "%lf", &parsed);
        if (parsed == v)
            break;
    }
    return buf;
}

/** JSON string escaping for names (quotes, backslashes, controls). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

} // namespace

bool
writeBenchJson(const std::string &path, const std::string &bench,
               const std::string &mode,
               const std::vector<BenchCase> &cases)
{
    // Build the document in memory and land it atomically: a
    // crashed bench leaves either no file or a complete one.
    std::string out;
    out += "{\n  \"bench\": \"" + escapeJson(bench) + "\",\n";
    out += "  \"mode\": \"" + escapeJson(mode) +
        "\",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const BenchCase &c = cases[i];
        out += "    {\"name\": \"" + escapeJson(c.name) + "\"";
        for (const auto &[key, value] : c.metrics)
            out += ", \"" + escapeJson(key) +
                "\": " + formatNumber(value);
        out += "}";
        out += i + 1 < cases.size() ? "," : "";
        out += "\n";
    }
    out += "  ]\n}\n";
    const Error err = atomicWriteFile(path, out);
    if (!err.ok()) {
        warn("cannot write benchmark results: %s",
             err.message().c_str());
        return false;
    }
    return true;
}

} // namespace tapas
