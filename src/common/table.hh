/**
 * @file
 * Console table formatting for benchmark and example output.
 *
 * The benchmark harnesses print paper-figure data as aligned text
 * tables; this keeps them dependency-free and diffable.
 */

#ifndef TAPAS_COMMON_TABLE_HH
#define TAPAS_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tapas {

/** Accumulates rows of strings and prints them column-aligned. */
class ConsoleTable
{
  public:
    explicit ConsoleTable(std::vector<std::string> headers);

    /** Add a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format as a percentage, e.g. 0.231 -> "23.1%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render with a rule under the header. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section banner ("== title ==") used between bench stages. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace tapas

#endif // TAPAS_COMMON_TABLE_HH
