#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace tapas {

void
StatAccumulator::add(double value)
{
    ++n;
    total += value;
    const double delta = value - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (value - mu);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
}

void
StatAccumulator::merge(const StatAccumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.mu - mu;
    const auto total_n = static_cast<double>(n + other.n);
    m2 += other.m2 +
        delta * delta * static_cast<double>(n) *
        static_cast<double>(other.n) / total_n;
    mu += delta * static_cast<double>(other.n) / total_n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n += other.n;
}

double
StatAccumulator::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

void
QuantileSample::add(double value)
{
    values.push_back(value);
    sorted = false;
}

void
QuantileSample::ensureSorted() const
{
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
}

double
QuantileSample::quantile(double q) const
{
    tapas_assert(!values.empty(), "quantile of empty sample");
    tapas_assert(q >= 0.0 && q <= 1.0, "quantile out of range: %f", q);
    ensureSorted();
    if (values.size() == 1)
        return values.front();
    const double rank = q * static_cast<double>(values.size() - 1);
    const auto below = static_cast<std::size_t>(rank);
    if (below + 1 >= values.size())
        return values.back();
    const double frac = rank - static_cast<double>(below);
    return values[below] * (1.0 - frac) + values[below + 1] * frac;
}

double
QuantileSample::mean() const
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::vector<std::pair<double, double>>
QuantileSample::cdf(std::size_t points) const
{
    tapas_assert(points >= 2, "cdf needs at least two points");
    std::vector<std::pair<double, double>> out;
    if (values.empty())
        return out;
    ensureSorted();
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double q =
            static_cast<double>(i) / static_cast<double>(points - 1);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0.0)
{
    tapas_assert(hi > lo && bins > 0, "degenerate histogram bounds");
}

void
Histogram::add(double value, double weight)
{
    const double pos = (value - lo) / (hi - lo);
    auto bin = static_cast<std::int64_t>(
        pos * static_cast<double>(counts.size()));
    bin = std::clamp<std::int64_t>(
        bin, 0, static_cast<std::int64_t>(counts.size()) - 1);
    counts[static_cast<std::size_t>(bin)] += weight;
    total += weight;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo + (hi - lo) * static_cast<double>(i) /
        static_cast<double>(counts.size());
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i + 1);
}

double
Histogram::quantile(double q) const
{
    tapas_assert(total > 0.0, "quantile of empty histogram");
    const double target = q * total;
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= target)
            return 0.5 * (binLow(i) + binHigh(i));
    }
    return hi;
}

void
TimeSeries::add(SimTime t, double v)
{
    points.emplace_back(t, v);
}

double
TimeSeries::maxValue() const
{
    tapas_assert(!points.empty(), "max of empty series");
    double best = points.front().second;
    for (const auto &[t, v] : points)
        best = std::max(best, v);
    return best;
}

double
TimeSeries::minValue() const
{
    tapas_assert(!points.empty(), "min of empty series");
    double best = points.front().second;
    for (const auto &[t, v] : points)
        best = std::min(best, v);
    return best;
}

double
TimeSeries::mean() const
{
    if (points.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[t, v] : points)
        sum += v;
    return sum / static_cast<double>(points.size());
}

double
TimeSeries::fractionAbove(double threshold) const
{
    if (points.empty())
        return 0.0;
    std::size_t above = 0;
    for (const auto &[t, v] : points) {
        if (v > threshold)
            ++above;
    }
    return static_cast<double>(above) /
        static_cast<double>(points.size());
}

TimeSeries
TimeSeries::downsampleMax(std::size_t max_points) const
{
    tapas_assert(max_points > 0, "cannot downsample to zero points");
    if (points.size() <= max_points)
        return *this;
    TimeSeries out;
    const std::size_t window =
        (points.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < points.size(); i += window) {
        SimTime t = points[i].first;
        double v = points[i].second;
        for (std::size_t j = i; j < std::min(i + window, points.size());
             ++j) {
            if (points[j].second > v) {
                v = points[j].second;
                t = points[j].first;
            }
        }
        out.add(t, v);
    }
    return out;
}

double
autocorrelation(const std::vector<double> &xs, std::size_t lag)
{
    if (xs.size() <= lag + 1)
        return 0.0;
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double d = xs[i] - mean;
        den += d * d;
        if (i + lag < xs.size())
            num += d * (xs[i + lag] - mean);
    }
    return den > 0.0 ? num / den : 0.0;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    tapas_assert(xs.size() == ys.size(), "length mismatch");
    if (xs.size() < 2)
        return 0.0;
    double mx = 0.0;
    double my = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(xs.size());
    my /= static_cast<double>(ys.size());
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    const double den = std::sqrt(sxx * syy);
    return den > 0.0 ? sxy / den : 0.0;
}

void
QuantileSample::checkpointState(Archive &ar)
{
    ar.podVector(values);
    ar.value(sorted);
}

void
TimeSeries::checkpointState(Archive &ar)
{
    ar.each(points, [](Archive &a,
                       std::pair<SimTime, double> &p) {
        a.value(p.first);
        a.value(p.second);
    });
}

} // namespace tapas
