/**
 * @file
 * Physical unit helpers.
 *
 * Temperatures, powers, and airflows travel together through most of
 * the thermal/power code; mixing them up is the classic bug. Each unit
 * is a thin strong type over double with explicit construction and an
 * explicit value() accessor, plus the arithmetic that is physically
 * meaningful (adding two temperatures is intentionally awkward; adding
 * a temperature delta is not).
 */

#ifndef TAPAS_COMMON_UNITS_HH
#define TAPAS_COMMON_UNITS_HH

#include <compare>

namespace tapas {

/** Temperature in degrees Celsius. */
struct Celsius
{
    double degrees = 0.0;

    constexpr Celsius() = default;
    constexpr explicit Celsius(double c) : degrees(c) {}

    constexpr double value() const { return degrees; }

    constexpr auto operator<=>(const Celsius &) const = default;

    /** Temperature shifted by a delta (in kelvin == celsius degrees). */
    constexpr Celsius operator+(double delta) const
    { return Celsius(degrees + delta); }
    constexpr Celsius operator-(double delta) const
    { return Celsius(degrees - delta); }
    /** Difference between two temperatures, as a plain delta. */
    constexpr double operator-(const Celsius &o) const
    { return degrees - o.degrees; }

    constexpr Celsius &
    operator+=(double delta)
    {
        degrees += delta;
        return *this;
    }
};

/** Electrical power in watts. */
struct Watts
{
    double watts = 0.0;

    constexpr Watts() = default;
    constexpr explicit Watts(double w) : watts(w) {}

    constexpr double value() const { return watts; }
    constexpr double kilo() const { return watts / 1000.0; }

    constexpr auto operator<=>(const Watts &) const = default;

    constexpr Watts operator+(const Watts &o) const
    { return Watts(watts + o.watts); }
    constexpr Watts operator-(const Watts &o) const
    { return Watts(watts - o.watts); }
    constexpr Watts operator*(double k) const { return Watts(watts * k); }
    constexpr double operator/(const Watts &o) const
    { return watts / o.watts; }

    constexpr Watts &
    operator+=(const Watts &o)
    {
        watts += o.watts;
        return *this;
    }
};

/** Convenience literal-style constructor for kilowatts. */
constexpr Watts
kilowatts(double kw)
{
    return Watts(kw * 1000.0);
}

/** Volumetric airflow in cubic feet per minute. */
struct Cfm
{
    double cfm = 0.0;

    constexpr Cfm() = default;
    constexpr explicit Cfm(double c) : cfm(c) {}

    constexpr double value() const { return cfm; }

    constexpr auto operator<=>(const Cfm &) const = default;

    constexpr Cfm operator+(const Cfm &o) const { return Cfm(cfm + o.cfm); }
    constexpr Cfm operator-(const Cfm &o) const { return Cfm(cfm - o.cfm); }
    constexpr Cfm operator*(double k) const { return Cfm(cfm * k); }
    constexpr double operator/(const Cfm &o) const { return cfm / o.cfm; }

    constexpr Cfm &
    operator+=(const Cfm &o)
    {
        cfm += o.cfm;
        return *this;
    }
};

} // namespace tapas

#endif // TAPAS_COMMON_UNITS_HH
