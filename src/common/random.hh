/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that experiments are reproducible bit-for-bit. The
 * generator is xoshiro256** seeded via SplitMix64, which is both fast
 * and high quality, and — unlike std::mt19937 distributions — has
 * identical output across standard library implementations.
 */

#ifndef TAPAS_COMMON_RANDOM_HH
#define TAPAS_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace tapas {

class Archive;

/**
 * SplitMix64 stream; used for seeding and as a cheap stateless hash
 * of (seed, index) pairs for per-entity variation.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/** Stateless mix of two 64-bit values into one; for derived seeds. */
std::uint64_t mixSeed(std::uint64_t a, std::uint64_t b);

/** xoshiro256** pseudo-random generator with distribution helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x7a7061734c4c4dULL);

    /** Raw 64 uniform bits. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Standard normal via the ziggurat method (Doornik's ZIGNOR
     * layout): the same distribution as gaussian() drawn from a
     * different, ~4x cheaper consumption of the uniform stream —
     * one raw draw and a table compare on ~98% of calls instead of
     * log/sqrt/sincos per pair. For bulk noise generation (the
     * offline profiling benches draw hundreds of samples per
     * server).
     */
    double gaussianFast();

    /** Ziggurat normal with given mean and standard deviation. */
    double gaussianFast(double mean, double stddev);

    /** Exponential with given rate (mean 1/rate). */
    double exponential(double rate);

    /** Log-normal parameterized by the underlying normal's mu/sigma. */
    double logNormal(double mu, double sigma);

    /** Pareto (heavy tail) with scale x_m and shape alpha. */
    double pareto(double x_m, double alpha);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /** Poisson-distributed count with given mean (Knuth/normal appx). */
    int poisson(double mean);

    /**
     * Sample an index from unnormalized non-negative weights.
     * Panics if all weights are zero.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Zipf-distributed integer in [1, n] with exponent s, via
     * inversion on the precomputed CDF (caller should reuse via
     * ZipfSampler for hot paths; this is the convenience form).
     */
    int zipf(int n, double s);

    /** Derive an independent generator for a sub-component. */
    Rng fork(std::uint64_t stream_id);

    /** Serialize/restore the full generator state (checkpointing). */
    void checkpointState(Archive &ar);

  private:
    std::uint64_t s[4];
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
};

} // namespace tapas

#endif // TAPAS_COMMON_RANDOM_HH
