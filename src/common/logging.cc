#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tapas {

namespace {
/**
 * Atomic (relaxed): sweep jobs and parallel refits log from
 * ThreadPool workers while a driver may adjust verbosity — a plain
 * global here was a latent data race (the kind the TSan check.sh leg
 * exists to catch). Relaxed ordering is enough: the level is a
 * monotonic filter knob, not a synchronization point.
 */
std::atomic<LogLevel> globalLevel{LogLevel::Warn};

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
assertFailure(const char *expr, const char *file, int line,
              const char *fmt, ...)
{
    // One stderr line, then the message tail, then abort — the same
    // shape panic() produces, assembled in a single place so the
    // format is pinned (tests/common/test_logging.cc).
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ",
                 expr, file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace tapas
