/**
 * @file
 * Minimal CSV writer for exporting benchmark series (figure data) to
 * files that plotting scripts can consume.
 */

#ifndef TAPAS_COMMON_CSV_HH
#define TAPAS_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace tapas {

/** Streams rows to a CSV file; quotes cells containing separators. */
class CsvWriter
{
  public:
    /** Opens path for writing; fatal() if the file cannot be opened. */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    void writeRow(const std::vector<std::string> &cells);

    /** Convenience for all-numeric rows. */
    void writeRow(const std::vector<double> &cells);

    const std::string &path() const { return filePath; }

  private:
    static std::string escape(const std::string &cell);

    std::string filePath;
    std::ofstream out;
    std::size_t columns;
};

} // namespace tapas

#endif // TAPAS_COMMON_CSV_HH
