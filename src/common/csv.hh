/**
 * @file
 * Minimal CSV writer for exporting benchmark series (figure data) to
 * files that plotting scripts can consume.
 *
 * Rows accumulate in memory and land on disk through the
 * serialization layer's atomic write-rename (common/serialize.hh), so
 * a crash mid-export leaves either the previous file or the complete
 * new one — never a torn CSV.
 */

#ifndef TAPAS_COMMON_CSV_HH
#define TAPAS_COMMON_CSV_HH

#include <string>
#include <vector>

#include "common/error.hh"

namespace tapas {

/** Buffers rows, atomically written on flush() or destruction. */
class CsvWriter
{
  public:
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    /** Destructor flushes; failures are only warnings by then, so
     *  callers that care about the result call flush() themselves. */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    void writeRow(const std::vector<std::string> &cells);

    /** Convenience for all-numeric rows. */
    void writeRow(const std::vector<double> &cells);

    /**
     * Atomically write the buffered rows to the path. Idempotent
     * until the next writeRow; returns the write error, if any.
     */
    Error flush();

    const std::string &path() const { return filePath; }

  private:
    static std::string escape(const std::string &cell);

    std::string filePath;
    std::string pending;
    std::size_t columns;
    bool dirty = false;
};

} // namespace tapas

#endif // TAPAS_COMMON_CSV_HH
