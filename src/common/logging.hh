/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user/configuration errors, warn()/inform() report conditions the
 * caller should know about without stopping execution.
 */

#ifndef TAPAS_COMMON_LOGGING_HH
#define TAPAS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tapas {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log verbosity. Defaults to Warn. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report developer-facing detail, shown only at Debug verbosity. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * The single assertion-failure sink behind tapas_assert. Prints one
 * line in the pinned format
 *
 *     panic: assertion '<expr>' failed at <file>:<line>: <message>
 *
 * and aborts (tests/common/test_logging.cc pins the format with a
 * death test — every EXPECT_DEATH in the suite greps it). Keeping
 * the formatting here instead of in the macro body means the macro
 * expands to one comparison and one cold call, and the format cannot
 * drift between call sites.
 */
[[noreturn]] void assertFailure(const char *expr, const char *file,
                                int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert an invariant with a formatted message; panics on failure.
 * Enabled in all build types: the simulator is cheap enough that
 * invariant checking is always worth it.
 */
#define tapas_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::tapas::assertFailure(#cond, __FILE__, __LINE__,            \
                                   __VA_ARGS__);                         \
        }                                                                \
    } while (0)

} // namespace tapas

#endif // TAPAS_COMMON_LOGGING_HH
