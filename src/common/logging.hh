/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user/configuration errors, warn()/inform() report conditions the
 * caller should know about without stopping execution.
 */

#ifndef TAPAS_COMMON_LOGGING_HH
#define TAPAS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tapas {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log verbosity. Defaults to Warn. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report developer-facing detail, shown only at Debug verbosity. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted message; panics on failure.
 * Enabled in all build types: the simulator is cheap enough that
 * invariant checking is always worth it.
 */
#define tapas_assert(cond, fmt, ...)                                     \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::tapas::panic("assertion '%s' failed at %s:%d: " fmt,       \
                           #cond, __FILE__, __LINE__, ##__VA_ARGS__);    \
        }                                                                \
    } while (0)

} // namespace tapas

#endif // TAPAS_COMMON_LOGGING_HH
