/**
 * @file
 * Statistics primitives used by the simulator, telemetry stack, and
 * benchmark harnesses: streaming accumulators, exact quantile samples,
 * histograms/CDFs, and timestamped series.
 */

#ifndef TAPAS_COMMON_STATS_HH
#define TAPAS_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tapas {

class Archive;

/** Streaming count/mean/variance/min/max accumulator (Welford). */
class StatAccumulator
{
  public:
    void add(double value);
    void merge(const StatAccumulator &other);

    std::size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/**
 * Exact quantile tracker. Stores every sample; queries sort lazily.
 * Appropriate for the sample counts in this library (≤ tens of
 * millions); for unbounded streams use Histogram instead.
 */
class QuantileSample
{
  public:
    void add(double value);
    void reserve(std::size_t n) { values.reserve(n); }

    std::size_t count() const { return values.size(); }

    /** Quantile q in [0, 1]; linear interpolation between ranks. */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double max() const { return quantile(1.0); }
    double mean() const;

    /**
     * Empirical CDF with the given number of evenly spaced points,
     * returned as (value, cumulative_fraction) pairs.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    const std::vector<double> &raw() const { return values; }

    /**
     * Serialize/restore samples in insertion-buffer order plus the
     * lazy-sort flag, so a restored tracker sorts at exactly the
     * same future points as the original (bit-exact resume).
     */
    void checkpointState(Archive &ar);

  private:
    void ensureSorted() const;

    mutable std::vector<double> values;
    mutable bool sorted = true;
};

/** Fixed-bin histogram over [lo, hi]; out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double value, double weight = 1.0);

    std::size_t binCount() const { return counts.size(); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;
    double binWeight(std::size_t i) const { return counts[i]; }
    double totalWeight() const { return total; }

    /** Approximate quantile from bin midpoints. */
    double quantile(double q) const;

  private:
    double lo;
    double hi;
    std::vector<double> counts;
    double total = 0.0;
};

/** A (time, value) series, e.g. per-step peak row power. */
class TimeSeries
{
  public:
    void add(SimTime t, double v);
    void reserve(std::size_t n) { points.reserve(n); }

    std::size_t size() const { return points.size(); }
    bool empty() const { return points.empty(); }

    SimTime timeAt(std::size_t i) const { return points[i].first; }
    double valueAt(std::size_t i) const { return points[i].second; }

    double maxValue() const;
    double minValue() const;
    double mean() const;

    /**
     * Fraction of points whose value satisfies pred-style threshold:
     * value > threshold.
     */
    double fractionAbove(double threshold) const;

    /**
     * Downsample to at most max_points by max-pooling within windows;
     * preserves peaks, which is what the thermal/power plots need.
     */
    TimeSeries downsampleMax(std::size_t max_points) const;

    const std::vector<std::pair<SimTime, double>> &raw() const
    { return points; }

    /** Serialize/restore all points (checkpointing). */
    void checkpointState(Archive &ar);

  private:
    std::vector<std::pair<SimTime, double>> points;
};

/**
 * Lag-k autocorrelation of a sequence. Used by workload tests to
 * verify diurnal periodicity of generated traces.
 */
double autocorrelation(const std::vector<double> &xs, std::size_t lag);

/** Pearson correlation of two equal-length sequences. */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace tapas

#endif // TAPAS_COMMON_STATS_HH
