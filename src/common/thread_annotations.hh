/**
 * @file
 * Clang thread-safety annotations and the annotated mutex wrappers
 * every lock in `src/` must use (tapas-lint rule R7 bans the raw
 * `std::mutex` family outside this header).
 *
 * Under clang with `-Wthread-safety` (CMake option
 * `TAPAS_THREAD_SAFETY`, the build-clang leg of scripts/check.sh)
 * the annotations turn the repo's lock discipline — which members
 * `ThreadPool::queueMutex` and `PerfModel::cacheMutex`/`opTableMutex`
 * guard, which functions must or must not hold them — into
 * compile-time errors. Under GCC (the default toolchain) every macro
 * expands to nothing and the wrappers are zero-cost forwarding shims
 * around `std::mutex`, so annotating costs nothing at runtime.
 *
 * The macro set mirrors the clang documentation's canonical
 * mutex.h / Abseil thread_annotations.h vocabulary.
 */

#ifndef TAPAS_COMMON_THREAD_ANNOTATIONS_HH
#define TAPAS_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TAPAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TAPAS_THREAD_ANNOTATION
#define TAPAS_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define TAPAS_CAPABILITY(x) TAPAS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define TAPAS_SCOPED_CAPABILITY \
    TAPAS_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be read/written while holding the mutex. */
#define TAPAS_GUARDED_BY(x) TAPAS_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding the mutex. */
#define TAPAS_PT_GUARDED_BY(x) \
    TAPAS_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capabilities to be held on entry. */
#define TAPAS_REQUIRES(...) \
    TAPAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities (held on return). */
#define TAPAS_ACQUIRE(...) \
    TAPAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities. */
#define TAPAS_RELEASE(...) \
    TAPAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ret. */
#define TAPAS_TRY_ACQUIRE(...) \
    TAPAS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capabilities (deadlock prevention). */
#define TAPAS_EXCLUDES(...) \
    TAPAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define TAPAS_RETURN_CAPABILITY(x) \
    TAPAS_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable analysis inside one function body. */
#define TAPAS_NO_THREAD_SAFETY_ANALYSIS \
    TAPAS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tapas {

/**
 * Annotated mutex. Same interface subset as std::mutex (Lockable),
 * so std-style generic code works, but carries the capability
 * attribute the analysis tracks.
 */
class TAPAS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TAPAS_ACQUIRE() { m.lock(); }
    void unlock() TAPAS_RELEASE() { m.unlock(); }
    bool try_lock() TAPAS_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/** Annotated lock_guard equivalent over tapas::Mutex. */
class TAPAS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) TAPAS_ACQUIRE(m) : mu(m)
    { mu.lock(); }
    ~MutexLock() TAPAS_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * Annotated two-mutex scoped lock (std::scoped_lock is opaque to the
 * analysis). Address-ordered acquisition, so cross-object pairs
 * (this->cacheMutex, other.cacheMutex) cannot deadlock against the
 * mirrored assignment running concurrently.
 */
class TAPAS_SCOPED_CAPABILITY MutexLock2
{
  public:
    MutexLock2(Mutex &a, Mutex &b) TAPAS_ACQUIRE(a, b)
        : first(&a < &b ? a : b), second(&a < &b ? b : a)
    {
        first.lock();
        second.lock();
    }
    ~MutexLock2() TAPAS_RELEASE()
    {
        second.unlock();
        first.unlock();
    }

    MutexLock2(const MutexLock2 &) = delete;
    MutexLock2 &operator=(const MutexLock2 &) = delete;

  private:
    Mutex &first;
    Mutex &second;
};

/**
 * Annotated unique_lock equivalent: BasicLockable, so it can be
 * handed to std::condition_variable_any::wait (which unlocks and
 * relocks it; the capability is held at entry and at return, which
 * is exactly what the analysis sees).
 */
class TAPAS_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) TAPAS_ACQUIRE(m) : mu(m)
    { mu.lock(); }
    ~UniqueLock() TAPAS_RELEASE() { mu.unlock(); }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** BasicLockable for condition_variable_any. */
    void lock() TAPAS_ACQUIRE() { mu.lock(); }
    void unlock() TAPAS_RELEASE() { mu.unlock(); }

  private:
    Mutex &mu;
};

} // namespace tapas

#endif // TAPAS_COMMON_THREAD_ANNOTATIONS_HH
