/**
 * @file
 * Unit and property tests for the power model and hierarchy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dcsim/layout.hh"
#include "dcsim/power.hh"

namespace tapas {
namespace {

LayoutConfig
mediumConfig()
{
    LayoutConfig cfg;
    cfg.aisleCount = 2;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 5;
    cfg.serversPerRack = 4;
    return cfg;
}

class PowerTest : public ::testing::Test
{
  protected:
    PowerTest()
        : dc(mediumConfig()), model(PowerConfig{}),
          hierarchy(dc, model), spec(ServerSpec::a100())
    {}

    DatacenterLayout dc;
    PowerModel model;
    PowerHierarchy hierarchy;
    ServerSpec spec;
};

TEST_F(PowerTest, GpuIdleAndPeak)
{
    EXPECT_DOUBLE_EQ(model.gpuPower(spec, 0.0).value(), 60.0);
    EXPECT_DOUBLE_EQ(model.gpuPower(spec, 1.0).value(), 400.0);
}

TEST_F(PowerTest, GpuPowerMonotonicInLoad)
{
    double prev = 0.0;
    for (double load = 0.0; load <= 1.0; load += 0.05) {
        const double w = model.gpuPower(spec, load).value();
        EXPECT_GE(w, prev);
        prev = w;
    }
}

TEST_F(PowerTest, FrequencyCapCutsDynamicPowerSuperlinearly)
{
    const double full = model.gpuPower(spec, 1.0, 1.0).value();
    const double capped = model.gpuPower(spec, 1.0, 0.7).value();
    const double dynamic_full = full - 60.0;
    const double dynamic_capped = capped - 60.0;
    // f*V^2 law: 0.7^2.4 ~ 0.425.
    EXPECT_NEAR(dynamic_capped / dynamic_full, 0.425, 0.01);
}

TEST_F(PowerTest, ServerIdlePowerIsSubstantial)
{
    // The paper stresses that idle GPU servers still draw a lot.
    const double idle = model.serverPowerAtLoad(spec, 0.0).value();
    EXPECT_GT(idle, 1000.0);
    EXPECT_LT(idle, 0.45 * spec.tdp().value());
}

TEST_F(PowerTest, ServerPeakMatchesTdp)
{
    EXPECT_NEAR(model.serverPeakPower(spec).value(),
                spec.tdp().value(), 1.0);
}

TEST_F(PowerTest, ServerPowerCountsEveryGpu)
{
    std::vector<Watts> draws(8, Watts(100.0));
    const double total = model.serverPower(spec, draws, 0.2).value();
    draws[3] = Watts(400.0);
    const double more = model.serverPower(spec, draws, 0.2).value();
    EXPECT_NEAR(more - total, 300.0, 1e-9);
}

TEST_F(PowerTest, RowProvisionEqualsPeakSum)
{
    for (const Row &row : dc.rows()) {
        const double expected =
            static_cast<double>(row.servers.size()) *
            model.serverPeakPower(spec).value();
        EXPECT_NEAR(hierarchy.rowProvision(row.id).value(), expected,
                    1e-6);
    }
}

TEST_F(PowerTest, TotalProvisionSumsRows)
{
    double sum = 0.0;
    for (const Row &row : dc.rows())
        sum += hierarchy.rowProvision(row.id).value();
    EXPECT_NEAR(hierarchy.totalProvision().value(), sum, 1e-6);
}

TEST_F(PowerTest, AssessFindsNoViolationAtFullDesignLoad)
{
    std::vector<Watts> draws(dc.serverCount(),
                             model.serverPeakPower(spec));
    const PowerAssessment result = hierarchy.assess(draws);
    EXPECT_FALSE(result.anyViolation());
}

TEST_F(PowerTest, AssessFlagsOverBudgetRow)
{
    std::vector<Watts> draws(dc.serverCount(),
                             model.serverPeakPower(spec));
    // Push every server in row 0 over its share.
    for (ServerId sid : dc.row(RowId(0)).servers) {
        draws[sid.index] =
            Watts(model.serverPeakPower(spec).value() * 1.2);
    }
    const PowerAssessment result = hierarchy.assess(draws);
    ASSERT_EQ(result.overBudgetRows.size(), 1u);
    EXPECT_EQ(result.overBudgetRows.front(), RowId(0));
    EXPECT_LT(result.rowHeadroomW(RowId(0)), 0.0);
    EXPECT_GT(result.rowHeadroomW(RowId(1)), -1e-9);
}

TEST_F(PowerTest, UpsFailureDeratesBudgets)
{
    const double before =
        hierarchy.effectiveRowProvision(RowId(0)).value();
    hierarchy.failUps(UpsId(0), 0.75);
    EXPECT_TRUE(hierarchy.anyFailure());
    EXPECT_NEAR(hierarchy.effectiveRowProvision(RowId(0)).value(),
                before * 0.75, 1e-6);

    // Full design load now violates everywhere.
    std::vector<Watts> draws(dc.serverCount(),
                             model.serverPeakPower(spec));
    const PowerAssessment result = hierarchy.assess(draws);
    EXPECT_EQ(result.overBudgetRows.size(), dc.rowCount());

    hierarchy.restoreUps(UpsId(0));
    EXPECT_FALSE(hierarchy.anyFailure());
    EXPECT_NEAR(hierarchy.effectiveRowProvision(RowId(0)).value(),
                before, 1e-6);
}

TEST_F(PowerTest, OversubscriptionSharesFrozenBudget)
{
    const double budget = hierarchy.rowProvision(RowId(0)).value();
    dc.addRack(RowId(0));
    // Budget unchanged after adding a rack.
    EXPECT_DOUBLE_EQ(hierarchy.rowProvision(RowId(0)).value(), budget);
    // Full load on the grown row now violates.
    std::vector<Watts> draws(dc.serverCount(),
                             model.serverPeakPower(spec));
    const PowerAssessment result = hierarchy.assess(draws);
    ASSERT_FALSE(result.overBudgetRows.empty());
    EXPECT_EQ(result.overBudgetRows.front(), RowId(0));
}

TEST_F(PowerTest, H100DrawsMoreThanA100)
{
    const ServerSpec h100 = ServerSpec::h100();
    EXPECT_GT(model.serverPeakPower(h100).value(),
              model.serverPeakPower(spec).value());
}

} // namespace
} // namespace tapas
