/**
 * @file
 * Unit and property tests for the ground-truth thermal model:
 * cooling-curve regimes, spatial heterogeneity, GPU process
 * variation, fan curves, and aisle recirculation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

namespace tapas {
namespace {

LayoutConfig
mediumConfig()
{
    LayoutConfig cfg;
    cfg.aisleCount = 4;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    return cfg;
}

class ThermalTest : public ::testing::Test
{
  protected:
    ThermalTest()
        : dc(mediumConfig()), thermal(dc, ThermalConfig{}, 42)
    {}

    DatacenterLayout dc;
    ThermalModel thermal;
};

TEST_F(ThermalTest, CoolingCurveHoldsHumidityFloorWhenCold)
{
    // Below 15C outside the plant holds ~18C inlet (Fig. 3).
    EXPECT_NEAR(thermal.coolingCurve(Celsius(5.0)), 17.8, 0.5);
    EXPECT_NEAR(thermal.coolingCurve(Celsius(14.0)), 18.0, 0.2);
}

TEST_F(ThermalTest, CoolingCurveTracksLinearlyInMidBand)
{
    const double at16 = thermal.coolingCurve(Celsius(16.0));
    const double at24 = thermal.coolingCurve(Celsius(24.0));
    EXPECT_NEAR((at24 - at16) / 8.0, 0.7, 1e-9);
}

TEST_F(ThermalTest, CoolingCurveCompressesWhenHot)
{
    const double at26 = thermal.coolingCurve(Celsius(26.0));
    const double at36 = thermal.coolingCurve(Celsius(36.0));
    EXPECT_NEAR((at36 - at26) / 10.0, 0.35, 1e-9);
}

TEST_F(ThermalTest, CoolingCurveIsContinuousAtKnees)
{
    const double eps = 1e-6;
    EXPECT_NEAR(thermal.coolingCurve(Celsius(15.0 - eps)),
                thermal.coolingCurve(Celsius(15.0 + eps)), 1e-3);
    EXPECT_NEAR(thermal.coolingCurve(Celsius(25.0 - eps)),
                thermal.coolingCurve(Celsius(25.0 + eps)), 1e-3);
}

TEST_F(ThermalTest, InletMonotonicInOutsideTemperature)
{
    const ServerId sid(0);
    double prev = -1e9;
    for (double out = -5.0; out <= 40.0; out += 1.0) {
        const double t =
            thermal.inletTemperature(sid, Celsius(out), 0.5, 0.0)
                .value();
        EXPECT_GE(t, prev - 1e-9);
        prev = t;
    }
}

TEST_F(ThermalTest, InletRisesWithDatacenterLoad)
{
    const ServerId sid(3);
    const double low =
        thermal.inletTemperature(sid, Celsius(30.0), 0.1, 0.0).value();
    const double high =
        thermal.inletTemperature(sid, Celsius(30.0), 0.9, 0.0).value();
    // Fig. 5: ~2C swing between low and high load.
    EXPECT_NEAR(high - low, 2.0 * 0.8, 0.2);
}

TEST_F(ThermalTest, RecirculationPenaltyAppliesOnOverdraw)
{
    const ServerId sid(5);
    const double ok =
        thermal.inletTemperature(sid, Celsius(20.0), 0.5, 0.0).value();
    const double bad =
        thermal.inletTemperature(sid, Celsius(20.0), 0.5, 0.1).value();
    EXPECT_GT(bad, ok + 1.0);
}

TEST_F(ThermalTest, SpatialOffsetsSpreadAcrossServers)
{
    StatAccumulator acc;
    for (const Server &server : dc.servers())
        acc.add(thermal.spatialOffset(server.id));
    // Row spread (1C) + rack spread (2C) should give a visible range.
    EXPECT_GT(acc.max() - acc.min(), 1.5);
    EXPECT_LT(acc.max() - acc.min(), 5.0);
}

TEST_F(ThermalTest, SpatialOffsetsStableAcrossQueries)
{
    const ServerId sid(11);
    EXPECT_DOUBLE_EQ(thermal.spatialOffset(sid),
                     thermal.spatialOffset(sid));
}

TEST_F(ThermalTest, SameSeedSameHeterogeneity)
{
    ThermalModel other(dc, ThermalConfig{}, 42);
    for (const Server &server : dc.servers()) {
        EXPECT_DOUBLE_EQ(thermal.spatialOffset(server.id),
                         other.spatialOffset(server.id));
        EXPECT_DOUBLE_EQ(thermal.gpuCoeff(server.id, 3),
                         other.gpuCoeff(server.id, 3));
    }
}

TEST_F(ThermalTest, DifferentSeedDifferentHeterogeneity)
{
    ThermalModel other(dc, ThermalConfig{}, 43);
    int differing = 0;
    for (const Server &server : dc.servers()) {
        if (thermal.spatialOffset(server.id) !=
            other.spatialOffset(server.id)) {
            ++differing;
        }
    }
    EXPECT_GT(differing, static_cast<int>(dc.serverCount()) / 2);
}

TEST_F(ThermalTest, GpuTemperatureLinearInPower)
{
    const ServerId sid(7);
    const Celsius inlet(22.0);
    const double at100 =
        thermal.gpuTemperature(sid, 0, inlet, Watts(100)).value();
    const double at200 =
        thermal.gpuTemperature(sid, 0, inlet, Watts(200)).value();
    const double at300 =
        thermal.gpuTemperature(sid, 0, inlet, Watts(300)).value();
    EXPECT_NEAR(at300 - at200, at200 - at100, 1e-9);
    EXPECT_GT(at200, at100);
}

TEST_F(ThermalTest, EvenGpusRunCoolerOnAverage)
{
    // Fig. 9: even-indexed GPUs sit closer to the inlet.
    double even_sum = 0.0;
    double odd_sum = 0.0;
    int n = 0;
    for (const Server &server : dc.servers()) {
        for (int g = 0; g < 8; g += 2) {
            even_sum += thermal.gpuOffset(server.id, g);
            odd_sum += thermal.gpuOffset(server.id, g + 1);
            ++n;
        }
    }
    EXPECT_GT(odd_sum / n - even_sum / n, 3.0);
}

TEST_F(ThermalTest, IntraServerGpuSpreadCanExceedTenDegrees)
{
    // Fig. 8: up to ~10C spread across GPUs of one server at equal
    // load. Check that at least some servers show a wide spread.
    const PowerModel power{PowerConfig{}};
    const Watts full =
        power.gpuPower(dc.specOf(ServerId(0)), 1.0, 1.0);
    int wide = 0;
    for (const Server &server : dc.servers()) {
        double lo = 1e9;
        double hi = -1e9;
        for (int g = 0; g < 8; ++g) {
            const double t = thermal
                .gpuTemperature(server.id, g, Celsius(22.0), full)
                .value();
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        if (hi - lo >= 10.0)
            ++wide;
    }
    EXPECT_GT(wide, static_cast<int>(dc.serverCount()) / 4);
}

TEST_F(ThermalTest, MemTemperatureTracksPhase)
{
    const ServerId sid(2);
    const Celsius inlet(22.0);
    const Watts pw(300.0);
    const double die =
        thermal.gpuTemperature(sid, 0, inlet, pw).value();
    const double mem_compute =
        thermal.memTemperature(sid, 0, inlet, pw, 0.0).value();
    const double mem_decode =
        thermal.memTemperature(sid, 0, inlet, pw, 1.0).value();
    EXPECT_LT(mem_compute, die);
    EXPECT_GT(mem_decode, die);
}

TEST_F(ThermalTest, FanCurveHitsSpecPoint)
{
    // Manufacturer spec: 840 CFM at 80% PWM for A100. Our fan speed
    // hits 80% duty at ~69% load.
    const double load_at_80pct = (0.8 - 0.35) / 0.65;
    const double cfm =
        thermal.serverAirflow(ServerId(0), load_at_80pct).value();
    EXPECT_NEAR(cfm, 840.0, 1.0);
}

TEST_F(ThermalTest, AirflowMonotonicInLoad)
{
    double prev = 0.0;
    for (double load = 0.0; load <= 1.0; load += 0.1) {
        const double cfm =
            thermal.serverAirflow(ServerId(0), load).value();
        EXPECT_GT(cfm, prev);
        prev = cfm;
    }
}

TEST_F(ThermalTest, NoiseIsZeroMeanAndBounded)
{
    Rng rng(1);
    StatAccumulator acc;
    for (int i = 0; i < 5000; ++i) {
        acc.add(thermal
                    .inletTemperature(ServerId(0), Celsius(20.0), 0.5,
                                      0.0, &rng)
                    .value());
    }
    const double noiseless =
        thermal.inletTemperature(ServerId(0), Celsius(20.0), 0.5, 0.0)
            .value();
    EXPECT_NEAR(acc.mean(), noiseless, 0.05);
    EXPECT_NEAR(acc.stddev(), 0.25, 0.05);
}

class CoolingPlantTest : public ThermalTest
{
  protected:
    CoolingPlantTest() : plant(dc, thermal) {}

    CoolingPlant plant;
};

TEST_F(CoolingPlantTest, ProvisionCoversFullLoad)
{
    std::vector<double> full(dc.serverCount(), 1.0);
    for (const Aisle &aisle : dc.aisles()) {
        EXPECT_DOUBLE_EQ(plant.overdrawFraction(aisle.id, full), 0.0);
        EXPECT_NEAR(plant.demand(aisle.id, full).value(),
                    plant.provision(aisle.id).value(), 1e-6);
    }
}

TEST_F(CoolingPlantTest, AhuFailureCreatesOverdrawAtFullLoad)
{
    std::vector<double> full(dc.serverCount(), 1.0);
    const AisleId aid(0);
    plant.failAhu(aid, 0.9);
    EXPECT_TRUE(plant.anyFailure());
    EXPECT_NEAR(plant.overdrawFraction(aid, full), 1.0 / 0.9 - 1.0,
                1e-6);
    // Other aisles unaffected.
    EXPECT_DOUBLE_EQ(plant.overdrawFraction(AisleId(1), full), 0.0);
    plant.restoreAhu(aid);
    EXPECT_FALSE(plant.anyFailure());
    EXPECT_DOUBLE_EQ(plant.overdrawFraction(aid, full), 0.0);
}

TEST_F(CoolingPlantTest, IdleLoadHasAmpleHeadroom)
{
    std::vector<double> idle(dc.serverCount(), 0.0);
    for (const Aisle &aisle : dc.aisles()) {
        const double frac = plant.demand(aisle.id, idle).value() /
            plant.provision(aisle.id).value();
        EXPECT_NEAR(frac, 0.35, 0.01);
    }
}

TEST_F(CoolingPlantTest, OversubscribedRackRaisesDemand)
{
    // Adding a rack after plant construction must not grow provision.
    const Cfm before = plant.provision(AisleId(0));
    const RowId row0 = dc.aisle(AisleId(0)).rows.front();
    dc.addRack(row0);
    EXPECT_DOUBLE_EQ(plant.provision(AisleId(0)).value(),
                     before.value());
    std::vector<double> full(dc.serverCount(), 1.0);
    EXPECT_GT(plant.overdrawFraction(AisleId(0), full), 0.0);
}

} // namespace
} // namespace tapas
