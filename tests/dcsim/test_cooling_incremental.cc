/**
 * @file
 * The incremental aisle-demand decomposition must agree with the full
 * per-server recompute — across random load vectors, AHU failures and
 * restores, and layout extension (oversubscription racks).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dcsim/layout.hh"
#include "dcsim/thermal.hh"

namespace tapas {
namespace {

void
expectDemandsMatch(CoolingPlant &cooling, const DatacenterLayout &dc,
                   const std::vector<double> &loads)
{
    cooling.updateDemands(loads);
    for (const Aisle &aisle : dc.aisles()) {
        const double full = cooling.demand(aisle.id, loads).value();
        const double inc = cooling.cachedDemand(aisle.id).value();
        EXPECT_NEAR(inc, full,
                    1e-9 * std::max(1.0, std::abs(full)))
            << "aisle " << aisle.id.index;

        const double full_over =
            cooling.overdrawFraction(aisle.id, loads);
        const double inc_over =
            cooling.cachedOverdrawFraction(aisle.id);
        EXPECT_NEAR(inc_over, full_over, 1e-9)
            << "aisle " << aisle.id.index;
    }
}

TEST(CoolingIncremental, MatchesFullRecomputeAcrossRandomLoads)
{
    LayoutConfig cfg;
    cfg.aisleCount = 3;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 4;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 11);
    CoolingPlant cooling(dc, thermal);

    Rng rng(123);
    for (int round = 0; round < 50; ++round) {
        std::vector<double> loads(dc.serverCount());
        for (double &l : loads) {
            // Includes out-of-range values the fan curve clamps.
            l = rng.uniform(-0.2, 1.3);
        }
        expectDemandsMatch(cooling, dc, loads);
    }
}

TEST(CoolingIncremental, MatchesAcrossAhuFailureAndRestore)
{
    LayoutConfig cfg;
    cfg.aisleCount = 2;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 3;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 7);
    CoolingPlant cooling(dc, thermal);

    Rng rng(9);
    std::vector<double> loads(dc.serverCount());
    for (double &l : loads)
        l = rng.uniform(0.0, 1.0);

    expectDemandsMatch(cooling, dc, loads);

    cooling.failAhu(AisleId(0), 0.9);
    expectDemandsMatch(cooling, dc, loads);
    // Overdraw reflects the derated provision.
    EXPECT_GE(cooling.cachedOverdrawFraction(AisleId(0)), 0.0);

    cooling.restoreAhu(AisleId(0));
    expectDemandsMatch(cooling, dc, loads);
}

TEST(CoolingIncremental, CoversServersAddedAfterConstruction)
{
    LayoutConfig cfg;
    cfg.aisleCount = 1;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 2;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 3);
    CoolingPlant cooling(dc, thermal);

    const Cfm frozen = cooling.provision(AisleId(0));

    // Oversubscription: racks added after provisioning froze.
    dc.addRack(RowId(0));
    thermal.extend();

    Rng rng(77);
    std::vector<double> loads(dc.serverCount());
    for (double &l : loads)
        l = rng.uniform(0.0, 1.0);

    expectDemandsMatch(cooling, dc, loads);
    // Provisioning must stay frozen (paper Fig. 21 semantics).
    EXPECT_DOUBLE_EQ(cooling.provision(AisleId(0)).value(),
                     frozen.value());
}

} // namespace
} // namespace tapas
