/**
 * @file
 * Unit tests for the datacenter layout builder.
 */

#include <gtest/gtest.h>

#include <set>

#include "dcsim/layout.hh"

namespace tapas {
namespace {

LayoutConfig
smallConfig()
{
    LayoutConfig cfg;
    cfg.aisleCount = 2;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 3;
    cfg.serversPerRack = 4;
    cfg.upsCount = 4;
    return cfg;
}

TEST(Layout, EntityCounts)
{
    DatacenterLayout dc(smallConfig());
    EXPECT_EQ(dc.aisleCount(), 2u);
    EXPECT_EQ(dc.rowCount(), 4u);
    EXPECT_EQ(dc.rackCount(), 12u);
    EXPECT_EQ(dc.serverCount(), 48u);
    EXPECT_EQ(dc.upsCount(), 4u);
    EXPECT_EQ(dc.pduCount(), 4u);
}

TEST(Layout, EveryRowHasTwoRowsPerAisle)
{
    DatacenterLayout dc(smallConfig());
    for (const Aisle &aisle : dc.aisles())
        EXPECT_EQ(aisle.rows.size(), 2u);
}

TEST(Layout, ServerBackPointersConsistent)
{
    DatacenterLayout dc(smallConfig());
    for (const Server &server : dc.servers()) {
        const Rack &rack = dc.rack(server.rack);
        EXPECT_EQ(rack.row, server.row);
        const Row &row = dc.row(server.row);
        EXPECT_EQ(row.aisle, server.aisle);
        EXPECT_EQ(row.pdu, server.pdu);
        EXPECT_EQ(dc.pdu(server.pdu).ups, server.ups);
    }
}

TEST(Layout, RowsPartitionServers)
{
    DatacenterLayout dc(smallConfig());
    std::set<std::uint32_t> seen;
    for (const Row &row : dc.rows()) {
        for (ServerId sid : row.servers)
            EXPECT_TRUE(seen.insert(sid.index).second);
    }
    EXPECT_EQ(seen.size(), dc.serverCount());
}

TEST(Layout, AislesPartitionServers)
{
    DatacenterLayout dc(smallConfig());
    std::size_t total = 0;
    for (const Aisle &aisle : dc.aisles())
        total += aisle.servers.size();
    EXPECT_EQ(total, dc.serverCount());
}

TEST(Layout, UpsStripingSpreadsRows)
{
    DatacenterLayout dc(smallConfig());
    // 4 rows across 4 UPSes: one row each.
    for (const Ups &ups : dc.upses())
        EXPECT_EQ(ups.rows.size(), 1u);
}

TEST(Layout, RackSlotsAndPositionsInRange)
{
    const LayoutConfig cfg = smallConfig();
    DatacenterLayout dc(cfg);
    for (const Server &server : dc.servers()) {
        EXPECT_GE(server.rackSlot, 0);
        EXPECT_LT(server.rackSlot, cfg.serversPerRack);
        EXPECT_GE(server.rowPosition, 0);
        EXPECT_LT(server.rowPosition, cfg.racksPerRow);
    }
}

TEST(Layout, AddRackExtendsRow)
{
    DatacenterLayout dc(smallConfig());
    const std::size_t before = dc.serverCount();
    const RowId target(1);
    const auto added = dc.addRack(target);
    EXPECT_EQ(added.size(), 4u);
    EXPECT_EQ(dc.serverCount(), before + 4);
    for (ServerId sid : added) {
        EXPECT_EQ(dc.server(sid).row, target);
        EXPECT_EQ(dc.server(sid).aisle, dc.row(target).aisle);
    }
    // New rack sits at the next row position.
    EXPECT_EQ(dc.server(added.front()).rowPosition, 3);
}

TEST(Layout, SpecSelection)
{
    LayoutConfig cfg = smallConfig();
    cfg.sku = GpuSku::H100;
    DatacenterLayout dc(cfg);
    EXPECT_EQ(dc.specOf(ServerId(0)).sku, GpuSku::H100);
    EXPECT_DOUBLE_EQ(dc.specOf(ServerId(0)).airflowAt80Pct.value(),
                     1105.0);
}

TEST(LayoutDeathTest, RejectsEmptyConfig)
{
    LayoutConfig cfg = smallConfig();
    cfg.racksPerRow = 0;
    EXPECT_EXIT(DatacenterLayout dc(cfg),
                ::testing::ExitedWithCode(1), "at least one");
}

TEST(Specs, TdpMatchesPublishedEnvelopes)
{
    // Paper: A100 6.5 kW, H100 10.2 kW system TDP.
    EXPECT_NEAR(ServerSpec::a100().tdp().kilo(), 6.5, 0.3);
    EXPECT_NEAR(ServerSpec::h100().tdp().kilo(), 10.2, 0.5);
}

TEST(Specs, SkuNames)
{
    EXPECT_STREQ(gpuSkuName(GpuSku::A100), "A100");
    EXPECT_STREQ(gpuSkuName(GpuSku::H100), "H100");
}

} // namespace
} // namespace tapas
