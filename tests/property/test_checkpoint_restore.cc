/**
 * @file
 * Checkpoint restore-equivalence property suite: for N randomly
 * chosen step boundaries, under both policies, with stochastic
 * faults and sensor corruption live, a run restored at that boundary
 * must be bit-identical to the straight-through run — on
 * stateDigest() at the restore point, on stateDigest() at the
 * horizon, and on the full serialized metric state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/serialize.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<std::uint8_t>
metricsBytes(const SimMetrics &metrics)
{
    SimMetrics copy = metrics;
    Archive ar = Archive::writer();
    copy.checkpointState(ar);
    EXPECT_TRUE(ar.ok());
    return ar.takeBuffer();
}

/** 4h small-cluster scenario with every fault class live. */
SimConfig
faultyScenario(std::uint64_t seed)
{
    SimConfig cfg = smallTestScenario(seed);
    cfg.horizon = 4 * kHour;
    cfg.vmTrace.horizon = 4 * kHour;
    cfg.policy.sensorQuarantineEnabled = true;
    // Aggressive rates so faults actually fire inside 4 hours.
    cfg.faults.ahu.mtbfS = 4.0 * static_cast<double>(kHour);
    cfg.faults.ahu.mttrS = static_cast<double>(kHour);
    cfg.faults.sensor.mtbfS = 2.0 * static_cast<double>(kHour);
    cfg.faults.sensor.mttrS = static_cast<double>(kHour);
    ScriptedFault chiller;
    chiller.kind = FaultKind::Chiller;
    chiller.at = kHour;
    chiller.until = 3 * kHour;
    chiller.remainingFrac = 0.8;
    cfg.faults.scripted.push_back(chiller);
    return cfg;
}

class CheckpointRestoreEquivalence
    : public ::testing::TestWithParam<bool> // true = TAPAS policy
{
};

TEST_P(CheckpointRestoreEquivalence, RestoreAtRandomEpochsIsExact)
{
    const bool tapas_policy = GetParam();
    const SimConfig cfg = tapas_policy
        ? faultyScenario(601).asTapas()
        : faultyScenario(601).asBaseline();
    const int total =
        static_cast<int>(cfg.horizon / cfg.stepLength);

    // Straight-through reference plus its per-boundary digests.
    ClusterSim reference(cfg);
    reference.run();
    const std::uint64_t final_digest = reference.stateDigest();
    const std::vector<std::uint8_t> final_metrics =
        metricsBytes(reference.metrics());

    // N random interior step boundaries (deterministic stream so
    // failures reproduce).
    Rng rng(tapas_policy ? 0xc0ffee01u : 0xc0ffee02u);
    constexpr int kBoundaries = 6;
    for (int trial = 0; trial < kBoundaries; ++trial) {
        const int boundary = 1 + static_cast<int>(
            rng.uniformInt(0, total - 2));
        SCOPED_TRACE("restore at step " +
                     std::to_string(boundary));
        const std::string path = tmpPath(
            std::string("ckpt_prop_") +
            (tapas_policy ? "tapas_" : "base_") +
            std::to_string(trial) + ".tapasckp");

        ClusterSim writer(cfg);
        writer.runSteps(boundary);
        ASSERT_TRUE(writer.saveCheckpoint(path).ok());

        ClusterSim restored(cfg);
        ASSERT_TRUE(restored.restoreCheckpoint(path).ok());
        ASSERT_EQ(restored.stateDigest(), writer.stateDigest());

        restored.runSteps(total - boundary);
        ASSERT_TRUE(restored.finished());
        EXPECT_EQ(restored.stateDigest(), final_digest);
        EXPECT_EQ(metricsBytes(restored.metrics()), final_metrics);
        removeFileIfExists(path);
    }
}

TEST_P(CheckpointRestoreEquivalence, ChainedRestoresStayExact)
{
    // Restore-of-a-restore: checkpoint at T1, restore, run to T2,
    // checkpoint again, restore again, finish. Error would compound
    // if any restore were only approximately faithful.
    const bool tapas_policy = GetParam();
    const SimConfig cfg = tapas_policy
        ? faultyScenario(603).asTapas()
        : faultyScenario(603).asBaseline();
    const int total =
        static_cast<int>(cfg.horizon / cfg.stepLength);
    const int t1 = total / 3;
    const int t2 = 2 * total / 3;
    const std::string path = tmpPath(
        std::string("ckpt_chain_") +
        (tapas_policy ? "tapas" : "base") + ".tapasckp");

    ClusterSim reference(cfg);
    reference.run();

    ClusterSim first(cfg);
    first.runSteps(t1);
    ASSERT_TRUE(first.saveCheckpoint(path).ok());

    ClusterSim second(cfg);
    ASSERT_TRUE(second.restoreCheckpoint(path).ok());
    second.runSteps(t2 - t1);
    ASSERT_TRUE(second.saveCheckpoint(path).ok());

    ClusterSim third(cfg);
    ASSERT_TRUE(third.restoreCheckpoint(path).ok());
    third.runSteps(total - t2);
    ASSERT_TRUE(third.finished());

    EXPECT_EQ(third.stateDigest(), reference.stateDigest());
    EXPECT_EQ(metricsBytes(third.metrics()),
              metricsBytes(reference.metrics()));
    removeFileIfExists(path);
}

INSTANTIATE_TEST_SUITE_P(Policies, CheckpointRestoreEquivalence,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>
                                &info) {
                             return info.param ? "Tapas"
                                               : "Baseline";
                         });

} // namespace
} // namespace tapas
