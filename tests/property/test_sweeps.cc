/**
 * @file
 * Cross-module property sweeps (TEST_P): invariants that must hold
 * for every point of a parameter grid, not just hand-picked cases —
 * engine token conservation, allocator placement safety, router
 * liveness, and thermal monotonicity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "common/serialize.hh"
#include "common/threadpool.hh"
#include "core/allocator.hh"
#include "core/router.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "llm/engine.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"
#include "telemetry/profiles.hh"

namespace tapas {
namespace {

// --- Engine conservation across request shapes ---------------------

using EngineParam = std::tuple<int, int, int>; // prompt, output, count

class EngineConservation
    : public ::testing::TestWithParam<EngineParam>
{
};

TEST_P(EngineConservation, TokensInEqualTokensOut)
{
    const auto [prompt, output, count] = GetParam();
    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    InferenceEngine engine(perf.profile(referenceConfig()),
                           perf.slo());

    for (int i = 0; i < count; ++i) {
        Request request;
        request.id = RequestId(static_cast<std::uint32_t>(i));
        request.endpoint = EndpointId(0);
        request.customer = CustomerId(0);
        request.arrivalS = 0.1 * i;
        request.promptTokens = prompt;
        request.outputTokens = output;
        engine.enqueue(request);
    }
    double t = 0.0;
    while (engine.stats().completed <
           static_cast<std::uint64_t>(count)) {
        engine.step(t, t + 10.0);
        t += 10.0;
        ASSERT_LT(t, 24.0 * 3600.0) << "engine failed to drain";
    }

    // Processed work = prompts + (output - 1) decode tokens each
    // (the first output token is produced by prefill completion).
    const double expected = static_cast<double>(count) *
        (prompt + std::max(0, output - 1));
    EXPECT_NEAR(engine.stats().totalTokens, expected,
                expected * 1e-6 + 1.0);
    EXPECT_EQ(engine.stats().completed,
              static_cast<std::uint64_t>(count));
    EXPECT_EQ(engine.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RequestShapes, EngineConservation,
    ::testing::Values(EngineParam{16, 8, 5},
                      EngineParam{512, 128, 12},
                      EngineParam{2048, 32, 4},
                      EngineParam{4096, 1, 3},
                      EngineParam{64, 1024, 6},
                      EngineParam{1024, 512, 80}));

// --- Allocator safety across random workloads ----------------------

class AllocatorSafety : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocatorSafety, PlacementsRespectBudgetsAndOccupancy)
{
    const int seed = GetParam();
    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 2;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 4;
    layout_cfg.serversPerRack = 4;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{},
                         static_cast<std::uint64_t>(seed));
    PowerModel power{PowerConfig{}};
    CoolingPlant cooling(dc, thermal);
    PowerHierarchy hierarchy(dc, power);
    ProfileBank bank(dc);
    bank.offlineProfile(thermal, power,
                        static_cast<std::uint64_t>(seed) + 1);

    ClusterView view;
    view.layout = &dc;
    view.cooling = &cooling;
    view.power = &hierarchy;
    view.profiles = &bank;
    view.outsideC = 27.0;
    view.dcLoadFrac = 0.7;
    view.serverLoads.assign(dc.serverCount(), 0.0);
    view.occupied.assign(dc.serverCount(), false);

    TapasAllocator allocator{TapasPolicyConfig{}};
    Rng rng(static_cast<std::uint64_t>(seed) * 7 + 3);
    int placed = 0;
    for (int i = 0; i < 40; ++i) {
        PlacementRequest request;
        request.id = VmId(static_cast<std::uint32_t>(i));
        request.kind =
            rng.bernoulli(0.5) ? VmKind::SaaS : VmKind::IaaS;
        request.predictedPeakLoad = rng.uniform(0.3, 1.0);
        const auto pick = allocator.place(request, view);
        if (!pick.has_value())
            continue;
        // Never an occupied server.
        ASSERT_FALSE(view.occupied[pick->index]);
        view.occupied[pick->index] = true;
        PlacedVmView vm;
        vm.id = request.id;
        vm.kind = request.kind;
        vm.server = *pick;
        vm.predictedPeakLoad = request.predictedPeakLoad;
        view.vms.push_back(vm);
        ++placed;
    }
    EXPECT_GT(placed, 30);

    // Predicted peaks stay within every budget after the run.
    for (const Row &row : dc.rows()) {
        EXPECT_LE(TapasAllocator::predictedRowPower(
                      view, row.id, ServerId(), 0.0),
                  hierarchy.effectiveRowProvision(row.id).value() *
                      1.0001);
    }
    for (const Aisle &aisle : dc.aisles()) {
        EXPECT_LE(TapasAllocator::predictedAisleAirflow(
                      view, aisle.id, ServerId(), 0.0),
                  cooling.effectiveProvision(aisle.id).value() *
                      1.0001);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorSafety,
                         ::testing::Range(1, 9));

// --- Router liveness across load patterns ---------------------------

class RouterLiveness : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterLiveness, AlwaysPicksAnAcceptingEngine)
{
    const int seed = GetParam();
    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    const ConfigProfile profile = perf.profile(referenceConfig());

    std::vector<std::unique_ptr<InferenceEngine>> engines;
    std::vector<RouteCandidate> candidates;
    for (std::uint32_t i = 0; i < 6; ++i) {
        engines.push_back(std::make_unique<InferenceEngine>(
            profile, perf.slo()));
        candidates.push_back(
            {VmId(i), ServerId(i), engines.back().get()});
    }
    // Randomly reconfigure some engines away (non-accepting).
    Rng rng(static_cast<std::uint64_t>(seed));
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B13;
    bool any_accepting = false;
    for (auto &engine : engines) {
        if (rng.bernoulli(0.5)) {
            engine->requestReconfig(perf.profile(smaller), 60.0);
        } else {
            any_accepting = true;
        }
    }

    TapasRouter router{TapasPolicyConfig{}};
    for (std::uint32_t r = 0; r < 50; ++r) {
        Request request;
        request.id = RequestId(r);
        request.customer = CustomerId(r % 9);
        request.promptTokens = 256;
        request.outputTokens = 64;
        const VmId pick = router.route(request, candidates, nullptr);
        if (!any_accepting) {
            EXPECT_FALSE(pick.valid());
            continue;
        }
        ASSERT_TRUE(pick.valid());
        EXPECT_TRUE(engines[pick.index]->accepting());
        engines[pick.index]->enqueue(request);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterLiveness,
                         ::testing::Range(1, 9));

// --- Thermal monotonicity across the fleet --------------------------

class ThermalMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(ThermalMonotonicity, TempsIncreaseWithPowerAndOutside)
{
    const int server = GetParam();
    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 2;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 4;
    layout_cfg.serversPerRack = 4;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 99);
    const ServerId sid(static_cast<std::uint32_t>(server));

    for (int g = 0; g < 8; ++g) {
        double prev = -1e9;
        for (double watts = 60.0; watts <= 400.0; watts += 20.0) {
            const double t =
                thermal
                    .gpuTemperature(sid, g, Celsius(24.0),
                                    Watts(watts))
                    .value();
            EXPECT_GT(t, prev);
            prev = t;
        }
    }
    double prev_inlet = -1e9;
    for (double outside = 0.0; outside <= 40.0; outside += 2.0) {
        const double t =
            thermal.inletTemperature(sid, Celsius(outside), 0.5, 0.0)
                .value();
        EXPECT_GE(t, prev_inlet);
        prev_inlet = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Servers, ThermalMonotonicity,
                         ::testing::Values(0, 7, 15, 23, 31, 47,
                                           55, 63));

// --- Parallel scenario sweeps match serial replications -------------

SimConfig
sweepScenario(std::uint64_t seed)
{
    SimConfig cfg = smallTestScenario(seed);
    cfg.horizon = 4 * kHour; // keep the grid fast
    return cfg;
}

TEST(ScenarioSweepDeterminism, ParallelMatchesSerialRuns)
{
    // 2 policy variants x 2 seeds, swept in parallel.
    std::vector<SweepJob> variants;
    variants.push_back({"baseline", sweepScenario(1).asBaseline()});
    variants.push_back({"tapas", sweepScenario(1).asTapas()});
    const auto jobs = ScenarioSweep::crossSeeds(variants, {3, 11});
    ASSERT_EQ(jobs.size(), 4u);

    ThreadPool pool(4);
    ScenarioSweep sweep(pool);
    const auto outcomes = sweep.run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        ClusterSim serial(jobs[i].config);
        serial.run();
        const SimMetrics &sm = serial.metrics();
        const SimMetrics &pm = outcomes[i].metrics;

        EXPECT_EQ(outcomes[i].seed, jobs[i].config.seed);
        EXPECT_EQ(pm.totalSteps, sm.totalSteps);
        EXPECT_EQ(pm.vmsPlaced, sm.vmsPlaced);
        EXPECT_EQ(pm.requestsCompleted, sm.requestsCompleted);
        EXPECT_DOUBLE_EQ(pm.totalTokens, sm.totalTokens);
        EXPECT_DOUBLE_EQ(pm.datacenterPowerW.mean(),
                         sm.datacenterPowerW.mean());
        EXPECT_DOUBLE_EQ(pm.maxGpuTempC.maxValue(),
                         sm.maxGpuTempC.maxValue());
    }

    // Distinct seeds really are distinct replications.
    EXPECT_NE(outcomes[0].metrics.datacenterPowerW.mean(),
              outcomes[1].metrics.datacenterPowerW.mean());
}

TEST(ScenarioSweepGrids, PolicyMatrixBuildsNamedCombinations)
{
    const auto jobs = ScenarioSweep::crossPolicies(
        {{"base", sweepScenario(1)}},
        ScenarioSweep::ablationMatrix());
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs.front().name, "base/baseline");
    EXPECT_FALSE(jobs.front().config.policy.placeEnabled);
    EXPECT_EQ(jobs.back().name, "base/tapas");
    EXPECT_TRUE(jobs.back().config.policy.placeEnabled);
    EXPECT_TRUE(jobs.back().config.policy.routeEnabled);
    EXPECT_TRUE(jobs.back().config.policy.configEnabled);
    // All eight combinations are distinct.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        for (std::size_t j = i + 1; j < jobs.size(); ++j) {
            const TapasPolicyConfig &a = jobs[i].config.policy;
            const TapasPolicyConfig &b = jobs[j].config.policy;
            EXPECT_FALSE(a.placeEnabled == b.placeEnabled &&
                         a.routeEnabled == b.routeEnabled &&
                         a.configEnabled == b.configEnabled);
        }
    }
}

TEST(ScenarioSweepGrids, OversubscriptionRangeComposesWithSeeds)
{
    const auto jobs = ScenarioSweep::crossSeeds(
        ScenarioSweep::crossOversubscription(
            {{"grid", sweepScenario(1).asTapas()}}, {0, 20, 40}),
        {5, 9});
    ASSERT_EQ(jobs.size(), 6u);
    EXPECT_EQ(jobs[0].name, "grid/os0/s5");
    EXPECT_EQ(jobs[0].config.oversubscriptionPct, 0);
    EXPECT_EQ(jobs[0].config.seed, 5u);
    EXPECT_EQ(jobs[5].name, "grid/os40/s9");
    EXPECT_EQ(jobs[5].config.oversubscriptionPct, 40);
    EXPECT_EQ(jobs[5].config.seed, 9u);
}

TEST(ScenarioSweepGrids, SweepBenchEmitterWritesTrajectoryJson)
{
    std::vector<SweepJob> jobs;
    SimConfig cfg = sweepScenario(3).asTapas();
    cfg.horizon = kHour;
    jobs.push_back({"emit", cfg});
    ThreadPool pool(2);
    const auto outcomes = ScenarioSweep(pool).run(jobs);
    const std::string path = "BENCH_test_sweep_emitter.json";
    ASSERT_TRUE(
        writeSweepBenchJson(path, "test_sweep", "test", outcomes));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    EXPECT_NE(json.find("\"bench\": \"test_sweep\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"emit\""), std::string::npos);
    EXPECT_NE(json.find("\"steps_per_s\": "), std::string::npos);
    EXPECT_NE(json.find("\"peak_row_power_frac\": "),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ScenarioSweepDeterminism, ThreadCountDoesNotChangeResults)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"tapas", sweepScenario(5).asTapas()});

    ThreadPool one(1);
    ThreadPool many(3);
    const auto a = ScenarioSweep(one).run(jobs);
    const auto b = ScenarioSweep(many).run(jobs);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].metrics.totalSteps, b[0].metrics.totalSteps);
    EXPECT_DOUBLE_EQ(a[0].metrics.datacenterPowerW.mean(),
                     b[0].metrics.datacenterPowerW.mean());
    EXPECT_DOUBLE_EQ(a[0].metrics.maxGpuTempC.maxValue(),
                     b[0].metrics.maxGpuTempC.maxValue());
}

// --- Fault-path determinism across the thread pool ------------------

/** sweepScenario with every stochastic fault process enabled plus
 *  sensor quarantine and online refits — the full robustness path. */
SimConfig
faultSweepScenario(std::uint64_t seed)
{
    SimConfig cfg = sweepScenario(seed);
    cfg.policy.sensorQuarantineEnabled = true;
    cfg.profileRefitPeriod = 2 * kHour;
    cfg.faults.ahu = {3.0 * kHour, 1.0 * kHour, 0.85};
    cfg.faults.ups = {4.0 * kHour, 1.0 * kHour, 0.8};
    cfg.faults.chiller = {6.0 * kHour, 2.0 * kHour, 0.9};
    cfg.faults.sensor = {2.0 * kHour, 1.0 * kHour, 1.0};
    return cfg;
}

TEST(ScenarioSweepDeterminism, FaultPathParallelMatchesSerial)
{
    // Same seed + same fault plan => bit-identical metrics whether
    // the replication ran serially or inside the parallel sweep,
    // including every robustness counter.
    std::vector<SweepJob> variants;
    variants.push_back(
        {"baseline", faultSweepScenario(1).asBaseline()});
    variants.push_back({"tapas", faultSweepScenario(1).asTapas()});
    const auto jobs = ScenarioSweep::crossSeeds(variants, {3, 11});

    ThreadPool pool(4);
    const auto outcomes = ScenarioSweep(pool).run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());

    bool any_faults = false;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].name);
        ClusterSim serial(jobs[i].config);
        serial.run();
        const SimMetrics &sm = serial.metrics();
        const SimMetrics &pm = outcomes[i].metrics;

        EXPECT_EQ(pm.totalSteps, sm.totalSteps);
        EXPECT_DOUBLE_EQ(pm.totalTokens, sm.totalTokens);
        EXPECT_DOUBLE_EQ(pm.datacenterPowerW.mean(),
                         sm.datacenterPowerW.mean());
        EXPECT_DOUBLE_EQ(pm.maxGpuTempC.maxValue(),
                         sm.maxGpuTempC.maxValue());

        EXPECT_EQ(pm.inletExcursionSteps, sm.inletExcursionSteps);
        EXPECT_EQ(pm.gpuExcursionSteps, sm.gpuExcursionSteps);
        EXPECT_EQ(pm.powerViolationSteps, sm.powerViolationSteps);
        EXPECT_EQ(pm.faultSteps, sm.faultSteps);
        EXPECT_EQ(pm.faultActiveS, sm.faultActiveS);
        EXPECT_DOUBLE_EQ(pm.faultDemandTokens, sm.faultDemandTokens);
        EXPECT_DOUBLE_EQ(pm.faultServedTokens, sm.faultServedTokens);
        EXPECT_EQ(pm.quarantinedServerSteps,
                  sm.quarantinedServerSteps);
        EXPECT_EQ(pm.recoverySumS, sm.recoverySumS);
        EXPECT_EQ(pm.maxRecoveryS, sm.maxRecoveryS);
        EXPECT_EQ(pm.recoveries, sm.recoveries);
        any_faults = any_faults || pm.faultSteps > 0;
    }
    // The plan actually injected component faults somewhere on the
    // grid — otherwise the equalities above are vacuous.
    EXPECT_TRUE(any_faults);
}

TEST(ScenarioSweepDeterminism, FaultPathThreadCountInvariant)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"tapas", faultSweepScenario(7).asTapas()});

    ThreadPool one(1);
    ThreadPool many(3);
    const auto a = ScenarioSweep(one).run(jobs);
    const auto b = ScenarioSweep(many).run(jobs);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_DOUBLE_EQ(a[0].metrics.totalTokens,
                     b[0].metrics.totalTokens);
    EXPECT_EQ(a[0].metrics.faultSteps, b[0].metrics.faultSteps);
    EXPECT_EQ(a[0].metrics.inletExcursionSteps,
              b[0].metrics.inletExcursionSteps);
    EXPECT_EQ(a[0].metrics.quarantinedServerSteps,
              b[0].metrics.quarantinedServerSteps);
    EXPECT_EQ(a[0].metrics.recoverySumS, b[0].metrics.recoverySumS);
}

// --- Sweep failures carry the failing job's identity ----------------

TEST(ScenarioSweepErrors, FailurePropagatesJobIdentity)
{
    // A failure inside a grid of replications must surface which
    // job died (grid coordinates in the name, plus index and seed),
    // not just the raw error.
    std::vector<SweepJob> variants;
    SimConfig cfg = sweepScenario(1);
    cfg.horizon = kHour;
    variants.push_back({"grid", cfg});
    const auto jobs = ScenarioSweep::crossSeeds(variants, {3, 11});

    ThreadPool pool(2);
    ScenarioSweep sweep(pool);
    const auto poison = [](const SweepJob &job, ClusterSim &) {
        if (job.name == "grid/s11")
            throw std::runtime_error("synthetic inspect failure");
    };

    try {
        sweep.run(jobs, poison);
        FAIL() << "expected the poisoned job to propagate";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("1 of 2 sweep jobs failed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("grid/s11"), std::string::npos) << what;
        EXPECT_NE(what.find("index 1"), std::string::npos) << what;
        EXPECT_NE(what.find("seed 11"), std::string::npos) << what;
        EXPECT_NE(what.find("synthetic inspect failure"),
                  std::string::npos)
            << what;
    }
}

TEST(ScenarioSweepErrors, AllFailuresAreCollectedNotJustTheFirst)
{
    // One bad job must not abandon the rest of the grid: the healthy
    // jobs still complete, and EVERY failure is reported together.
    std::vector<SweepJob> variants;
    SimConfig cfg = sweepScenario(1);
    cfg.horizon = kHour;
    variants.push_back({"grid", cfg});
    const auto jobs =
        ScenarioSweep::crossSeeds(variants, {3, 11, 17, 23});

    ThreadPool pool(2);
    ScenarioSweep sweep(pool);
    std::atomic<int> survivors{0};
    const auto poison = [&](const SweepJob &job, ClusterSim &) {
        if (job.name == "grid/s3")
            throw std::runtime_error("first poison");
        if (job.name == "grid/s17")
            throw std::runtime_error("second poison");
        ++survivors;
    };

    try {
        sweep.run(jobs, poison);
        FAIL() << "expected the poisoned jobs to propagate";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("2 of 4 sweep jobs failed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("grid/s3"), std::string::npos) << what;
        EXPECT_NE(what.find("first poison"), std::string::npos)
            << what;
        EXPECT_NE(what.find("grid/s17"), std::string::npos) << what;
        EXPECT_NE(what.find("second poison"), std::string::npos)
            << what;
    }
    // The healthy jobs ran to completion despite the failures.
    EXPECT_EQ(survivors.load(), 2);
}

// --- Crash recovery: resume, quarantine, corrupt snapshots ----------

SweepRecovery
testRecovery()
{
    SweepRecovery recovery;
    recovery.checkpointDir = ::testing::TempDir();
    recovery.checkpointPeriod = kHour;
    return recovery;
}

TEST(ScenarioSweepRecovery, ResumedJobMatchesStraightThroughRun)
{
    // Simulate a crashed sweep: a half-finished snapshot is already
    // on disk for one job. Rerunning the sweep must pick it up
    // (outcome.resumed) and land on bit-identical metrics.
    std::vector<SweepJob> jobs;
    jobs.push_back({"recover", sweepScenario(9).asTapas()});
    const SweepRecovery recovery = testRecovery();
    const std::string ckpt =
        recovery.pathFor(jobs[0].name, jobs[0].config.seed);

    ClusterSim half(jobs[0].config);
    half.runSteps(
        static_cast<int>(jobs[0].config.horizon /
                         jobs[0].config.stepLength / 2));
    ASSERT_TRUE(half.saveCheckpoint(ckpt).ok());

    ThreadPool pool(2);
    ScenarioSweep sweep(pool);
    const auto outcomes = sweep.run(jobs, {}, recovery);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].resumed);
    EXPECT_EQ(outcomes[0].attempts, 1);

    ClusterSim reference(jobs[0].config);
    reference.run();
    EXPECT_EQ(outcomes[0].metrics.totalSteps,
              reference.metrics().totalSteps);
    EXPECT_DOUBLE_EQ(outcomes[0].metrics.totalTokens,
                     reference.metrics().totalTokens);
    EXPECT_DOUBLE_EQ(outcomes[0].metrics.datacenterPowerW.mean(),
                     reference.metrics().datacenterPowerW.mean());
    EXPECT_EQ(outcomes[0].metrics.vmsPlaced,
              reference.metrics().vmsPlaced);

    // Success cleaned up the snapshot and the attempt sidecar.
    EXPECT_FALSE(fileExists(ckpt));
    EXPECT_FALSE(fileExists(ckpt + ".attempts"));
}

TEST(ScenarioSweepRecovery, CorruptSnapshotFallsBackToFreshStart)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"corrupt", sweepScenario(13).asTapas()});
    const SweepRecovery recovery = testRecovery();
    const std::string ckpt =
        recovery.pathFor(jobs[0].name, jobs[0].config.seed);

    // A torn write: half a snapshot.
    ClusterSim half(jobs[0].config);
    half.runSteps(10);
    ASSERT_TRUE(half.saveCheckpoint(ckpt).ok());
    Result<std::vector<std::uint8_t>> bytes = readFileBytes(ckpt);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(atomicWriteFile(ckpt, bytes.value().data(),
                                bytes.value().size() / 2)
                    .ok());

    ThreadPool pool(2);
    ScenarioSweep sweep(pool);
    const auto outcomes = sweep.run(jobs, {}, recovery);
    ASSERT_EQ(outcomes.size(), 1u);
    // The job did not resume — it started over and still finished
    // with the right answer.
    EXPECT_FALSE(outcomes[0].resumed);
    ClusterSim reference(jobs[0].config);
    reference.run();
    EXPECT_DOUBLE_EQ(outcomes[0].metrics.totalTokens,
                     reference.metrics().totalTokens);
    EXPECT_FALSE(fileExists(ckpt));
}

TEST(ScenarioSweepRecovery, CrashingJobIsQuarantinedAfterMaxAttempts)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"crasher", sweepScenario(17).asTapas()});
    jobs.push_back({"healthy", sweepScenario(19).asTapas()});
    SweepRecovery recovery = testRecovery();
    recovery.maxAttempts = 3;
    const std::string crasher_ckpt =
        recovery.pathFor(jobs[0].name, jobs[0].config.seed);

    ThreadPool pool(2);
    ScenarioSweep sweep(pool);
    const auto poison = [](const SweepJob &job, ClusterSim &) {
        if (job.name == "crasher")
            throw std::runtime_error("dies every time");
    };

    // Attempts 1..maxAttempts: the job runs (and dies); its attempt
    // sidecar survives each failure.
    for (int attempt = 1; attempt <= recovery.maxAttempts;
         ++attempt) {
        try {
            sweep.run(jobs, poison, recovery);
            FAIL() << "expected failure on attempt " << attempt;
        } catch (const std::runtime_error &err) {
            const std::string what = err.what();
            EXPECT_NE(what.find("crasher"), std::string::npos)
                << what;
            if (attempt < recovery.maxAttempts) {
                EXPECT_NE(what.find("dies every time"),
                          std::string::npos)
                    << what;
            }
        }
    }

    // Attempt maxAttempts+1: the job is quarantined without running
    // — the report says so and names the sidecar to remove.
    try {
        sweep.run(jobs, poison, recovery);
        FAIL() << "expected quarantine failure";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("quarantined after 3 crashing attempts"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(".attempts"), std::string::npos) << what;
        // The quarantined job did NOT run this time.
        EXPECT_EQ(what.find("dies every time"), std::string::npos)
            << what;
    }

    removeFileIfExists(crasher_ckpt);
    removeFileIfExists(crasher_ckpt + ".attempts");
}

} // namespace
} // namespace tapas
