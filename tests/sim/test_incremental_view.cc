/**
 * @file
 * Property tests for the incrementally maintained ClusterView: under
 * random place/depart/migrate churn, the single view the placement,
 * risk, configurator, and migration phases share must stay
 * field-for-field identical to a freshly rebuilt view at the current
 * snapshot epoch — in both fidelity modes, with migration on and
 * off, at every point of the run.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

class IncrementalView : public ::testing::TestWithParam<int>
{
};

TEST_P(IncrementalView, MatchesRebuiltViewUnderChurn)
{
    const int seed = GetParam();
    SimConfig cfg = smallTestScenario(
        static_cast<std::uint64_t>(seed));
    cfg.horizon = 8 * kHour;
    cfg.vmTrace.saasFraction = 0.5;
    if (seed % 3 == 0) {
        // Exercise the migration planner's overlay/undo path on the
        // live view as well.
        cfg.policy.migrationEnabled = true;
        cfg.policy.migrationPeriod = kHour;
    }
    ClusterSim sim(seed % 2 == 0 ? cfg.asTapas()
                                 : cfg.asBaseline());

    // The constructor-built view starts consistent.
    ASSERT_TRUE(sim.verifyClusterView());
    while (!sim.finished()) {
        sim.runSteps(5);
        ASSERT_TRUE(sim.verifyClusterView());
        ASSERT_TRUE(sim.verifyVmTable());
    }
    EXPECT_GT(sim.metrics().vmsPlaced, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalView,
                         ::testing::Values(2, 3, 5, 9, 12));

TEST(IncrementalView2, RequestModeStaysConsistent)
{
    SimConfig cfg = realClusterScenario(23).asTapas();
    cfg.horizon = 30 * kMinute;
    ClusterSim sim(cfg);
    while (!sim.finished()) {
        sim.runSteps(3);
        ASSERT_TRUE(sim.verifyClusterView());
    }
}

TEST(IncrementalView2, OversubscribedLayoutStaysConsistent)
{
    // Oversubscription racks are appended after plant provisioning;
    // the maintained view must cover them from construction on.
    SimConfig cfg = smallTestScenario(37).asTapas();
    cfg.horizon = 6 * kHour;
    cfg.oversubscriptionPct = 25;
    ClusterSim sim(cfg);
    ASSERT_TRUE(sim.verifyClusterView());
    while (!sim.finished()) {
        sim.runSteps(7);
        ASSERT_TRUE(sim.verifyClusterView());
    }
}

TEST(IncrementalView2, StaleViewCopyTripsTheGenerationGuard)
{
    // A standalone view (no owner) always passes the staleness
    // guard; an owned view passes while fresh.
    ClusterView standalone;
    standalone.assertFresh();

    std::uint64_t generation = 7;
    ClusterView owned;
    owned.ownerGeneration = &generation;
    owned.stampedGeneration = 7;
    owned.assertFresh();

    // A copy detached before an owner-side update is stale: the old
    // makeView() hazard (a second build silently invalidating a
    // still-held view) now dies loudly instead of reading torn
    // state.
    ClusterView copy = owned;
    ++generation; // owner refreshed/mutated the live view
    EXPECT_DEATH(copy.assertFresh(), "stale ClusterView");
}

} // namespace
} // namespace tapas
