/**
 * @file
 * The persistent per-endpoint routing index must match a fresh scan
 * of the VM table through an arbitrary churn sequence of placements,
 * departures, and migrations.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

TEST(RoutingIndex, MatchesFreshScanThroughChurn)
{
    SimConfig cfg = smallTestScenario(21);
    cfg.horizon = 8 * kHour;
    // Enable migrations so index entries also move between servers.
    cfg.policy.migrationEnabled = true;
    cfg.policy.migrationPeriod = kHour;

    ClusterSim sim(cfg.asTapas());
    EXPECT_TRUE(sim.verifyRoutingIndex()) << "before any step";

    int checks = 0;
    while (!sim.finished()) {
        sim.runSteps(4);
        ASSERT_TRUE(sim.verifyRoutingIndex())
            << "at t=" << sim.now();
        ++checks;
    }
    EXPECT_GT(checks, 10);
    // The scenario must actually have exercised churn.
    EXPECT_GT(sim.metrics().vmsPlaced, 0u);
    EXPECT_GT(sim.metrics().migrations, 0u);
}

TEST(RoutingIndex, SurvivesBaselinePoliciesToo)
{
    SimConfig cfg = smallTestScenario(5);
    cfg.horizon = 4 * kHour;

    ClusterSim sim(cfg.asBaseline());
    while (!sim.finished()) {
        sim.runSteps(6);
        ASSERT_TRUE(sim.verifyRoutingIndex())
            << "at t=" << sim.now();
    }
}

} // namespace
} // namespace tapas
