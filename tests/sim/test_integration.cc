/**
 * @file
 * End-to-end integration tests of the cluster simulator: the
 * evaluation-level claims that must hold on every build (TAPAS at
 * least matches Baseline on peaks, oversubscription safety,
 * emergency behavior, determinism, and cross-fidelity agreement).
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

TEST(SimIntegration, SmallScenarioRunsToCompletion)
{
    SimConfig cfg = smallTestScenario(5).asTapas();
    ClusterSim sim(cfg);
    sim.run();
    EXPECT_TRUE(sim.finished());
    EXPECT_GT(sim.metrics().totalSteps, 0u);
    EXPECT_GT(sim.metrics().vmsPlaced, 0u);
    EXPECT_GT(sim.activeVmCount(), 0u);
    EXPECT_GT(sim.metrics().saasServedTps.mean(), 0.0);
}

TEST(SimIntegration, DeterministicForSeed)
{
    SimConfig cfg = smallTestScenario(9).asTapas();
    ClusterSim a(cfg);
    a.run();
    ClusterSim b(cfg);
    b.run();
    EXPECT_DOUBLE_EQ(a.metrics().maxGpuTempC.maxValue(),
                     b.metrics().maxGpuTempC.maxValue());
    EXPECT_DOUBLE_EQ(a.metrics().peakRowPowerFrac.maxValue(),
                     b.metrics().peakRowPowerFrac.maxValue());
    EXPECT_DOUBLE_EQ(a.metrics().totalTokens,
                     b.metrics().totalTokens);
    EXPECT_EQ(a.metrics().reconfigs, b.metrics().reconfigs);
}

TEST(SimIntegration, SeedsChangeOutcomes)
{
    ClusterSim a(smallTestScenario(1).asBaseline());
    a.run();
    ClusterSim b(smallTestScenario(2).asBaseline());
    b.run();
    EXPECT_NE(a.metrics().totalTokens, b.metrics().totalTokens);
}

TEST(SimIntegration, TapasReducesPeaksVersusBaseline)
{
    const SimConfig cfg = smallTestScenario(7);
    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();
    // The headline claim, at small scale: peak row power and mean
    // datacenter power improve; quality holds.
    EXPECT_LT(tapas.metrics().peakRowPowerFrac.maxValue(),
              baseline.metrics().peakRowPowerFrac.maxValue());
    EXPECT_LT(tapas.metrics().datacenterPowerW.mean(),
              baseline.metrics().datacenterPowerW.mean());
    EXPECT_NEAR(tapas.metrics().meanQuality(), 1.0, 1e-9);
    EXPECT_GT(tapas.metrics().sloAttainment(), 0.95);
}

TEST(SimIntegration, NoCappingWithoutOversubscription)
{
    SimConfig cfg = smallTestScenario(11);
    for (const SimConfig &variant :
         {cfg.asBaseline(), cfg.asTapas()}) {
        ClusterSim sim(variant);
        sim.run();
        EXPECT_LT(sim.metrics().powerCappedFraction(), 0.02);
        EXPECT_LT(sim.metrics().thermalCappedFraction(), 0.05);
    }
}

TEST(SimIntegration, OversubscriptionCapsBaselineNotTapas)
{
    SimConfig cfg = smallTestScenario(13);
    cfg.oversubscriptionPct = 40;
    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();
    EXPECT_GT(baseline.metrics().powerCappedFraction(), 0.02);
    EXPECT_LT(tapas.metrics().powerCappedFraction(),
              baseline.metrics().powerCappedFraction());
}

TEST(SimIntegration, OversubscriptionAddsServers)
{
    SimConfig cfg = smallTestScenario(15);
    cfg.oversubscriptionPct = 25;
    ClusterSim sim(cfg.asBaseline());
    // 48 base servers + ceil(12 racks * 25%) = 3 racks = 12 servers.
    EXPECT_EQ(sim.datacenter().serverCount(), 60u);
    // Provisioning stayed at base capacity.
    double provision = 0.0;
    (void)provision;
    EXPECT_EQ(sim.profiles().profiledServerCount(), 60u);
}

TEST(SimIntegration, PowerEmergencySparesIaasUnderTapas)
{
    SimConfig cfg = smallTestScenario(17);
    cfg.horizon = kDay;
    FailureEvent event;
    event.at = 10 * kHour;
    event.until = 14 * kHour;
    event.thermal = false;
    event.remainingFrac = 0.70;
    cfg.failures.push_back(event);

    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();

    auto window_mean = [&](const TimeSeries &series) {
        double total = 0.0;
        int n = 0;
        for (std::size_t i = 0; i < series.size(); ++i) {
            if (series.timeAt(i) >= event.at &&
                series.timeAt(i) < event.until) {
                total += series.valueAt(i);
                ++n;
            }
        }
        return n ? total / n : 0.0;
    };

    const double base_iaas =
        window_mean(baseline.metrics().iaasPerfPenalty);
    const double tapas_iaas =
        window_mean(tapas.metrics().iaasPerfPenalty);
    // Baseline caps IaaS along with everything else; TAPAS absorbs
    // the cut in the SaaS fleet.
    EXPECT_GT(base_iaas, 0.01);
    EXPECT_LT(tapas_iaas, base_iaas * 0.5);
}

TEST(SimIntegration, EmergencyQualityDipsOnlyUnderTapas)
{
    SimConfig cfg = smallTestScenario(19);
    cfg.horizon = kDay;
    FailureEvent event;
    event.at = 10 * kHour;
    event.until = 14 * kHour;
    event.thermal = false;
    event.remainingFrac = 0.70;
    cfg.failures.push_back(event);

    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();
    // Baseline never touches quality; TAPAS may spend quality
    // during the window (never below the emergency floor).
    EXPECT_NEAR(baseline.metrics().saasQuality.minValue(), 1.0,
                1e-9);
    EXPECT_GE(tapas.metrics().saasQuality.minValue(), 0.60);
}

TEST(SimIntegration, FailureStateClearsAfterWindow)
{
    SimConfig cfg = smallTestScenario(21);
    cfg.horizon = 6 * kHour;
    FailureEvent event;
    event.at = 2 * kHour;
    event.until = 4 * kHour;
    event.thermal = true;
    event.remainingFrac = 0.9;
    cfg.failures.push_back(event);
    ClusterSim sim(cfg.asTapas());
    sim.runSteps(static_cast<int>(3 * kHour / cfg.stepLength));
    EXPECT_EQ(sim.failures().active(), EmergencyKind::Thermal);
    sim.run();
    EXPECT_EQ(sim.failures().active(), EmergencyKind::None);
}

TEST(SimIntegration, RequestAndFlowModesAgree)
{
    // The paper validates its simulator against the real cluster at
    // ~4% absolute error; we require our two fidelity modes to land
    // within 10% relative on the power envelope.
    SimConfig cfg = realClusterScenario(23).asBaseline();
    ClusterSim request_mode(cfg);
    request_mode.run();
    SimConfig flow_cfg = cfg;
    flow_cfg.mode = SimMode::FlowLevel;
    ClusterSim flow_mode(flow_cfg);
    flow_mode.run();

    const double rq =
        request_mode.metrics().peakRowPowerFrac.mean();
    const double fl = flow_mode.metrics().peakRowPowerFrac.mean();
    // Absolute error on the provision fraction, matching how the
    // paper states its 4% simulator validation.
    EXPECT_NEAR(rq, fl, 0.08);
}

TEST(SimIntegration, RequestModeProducesLatencySamples)
{
    SimConfig cfg = realClusterScenario(25).asBaseline();
    cfg.horizon = 10 * kMinute;
    ClusterSim sim(cfg);
    sim.run();
    EXPECT_GT(sim.metrics().ttftS.count(), 100u);
    EXPECT_GT(sim.metrics().tbtS.count(), 100u);
    EXPECT_GT(sim.metrics().ttftS.p99(), 0.0);
}

TEST(SimIntegration, TelemetryAccumulates)
{
    SimConfig cfg = smallTestScenario(27).asBaseline();
    cfg.horizon = 6 * kHour;
    ClusterSim sim(cfg);
    sim.run();
    const TelemetryStore &store = sim.telemetry();
    EXPECT_FALSE(store.rowsWithData().empty());
    EXPECT_FALSE(store.customersWithData().empty());
    EXPECT_FALSE(store.endpointsWithData().empty());
    // 10-minute cadence over 6 hours = 36 samples per row.
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).size(), 36u);
    EXPECT_EQ(store.serverSeries(ServerId(0)).size(), 36u);
}

TEST(SimIntegration, PopulationTracksTrace)
{
    SimConfig cfg = smallTestScenario(29).asBaseline();
    ClusterSim sim(cfg);
    sim.run();
    // Auto target = 85% of 48 servers = 40 VMs.
    EXPECT_GE(sim.activeVmCount(), 30u);
    EXPECT_LE(sim.activeVmCount(), 48u);
    EXPECT_EQ(sim.metrics().vmsRejected, 0u);
}

TEST(SimIntegration, EnginesFollowConfiguratorDecisions)
{
    SimConfig cfg = smallTestScenario(31).asTapas();
    cfg.horizon = 12 * kHour;
    ClusterSim sim(cfg);
    sim.run();
    // The configurator right-sizes at least part of the fleet away
    // from the reference configuration.
    EXPECT_GT(sim.metrics().reconfigs, 0u);
    bool any_non_reference = false;
    const VmTable &vms = sim.vms();
    for (std::size_t i = 0; i < vms.size(); ++i) {
        if (vms.isSaas(i) &&
            !(vms.engineAt(i)->profile().config ==
              referenceConfig())) {
            any_non_reference = true;
        }
    }
    EXPECT_TRUE(any_non_reference);
}

TEST(SimIntegration, MixSensitivityAllIaasStillImproves)
{
    // All-IaaS fleets only benefit from placement (paper Fig. 20's
    // right-most group): TAPAS must not be worse than baseline.
    SimConfig cfg = smallTestScenario(33);
    cfg.vmTrace.saasFraction = 0.0;
    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();
    EXPECT_LE(tapas.metrics().peakRowPowerFrac.mean(),
              baseline.metrics().peakRowPowerFrac.mean() * 1.02);
}

TEST(SimIntegration, OpTableABGateOnScenarioSuite)
{
    // A/B gate for SimConfig::opTableEnabled: the interpolated
    // operating-point table must reproduce the exact-solve results
    // on an 8-scenario suite (4 seeds x baseline/TAPAS) before it is
    // worth flipping on for what-if sweeps. Interpolation error can
    // tip discrete controller decisions, so the gate bounds
    // end-of-run aggregates, not per-step state.
    for (const std::uint64_t seed : {51u, 53u, 57u, 59u}) {
        for (const bool tapas_on : {false, true}) {
            SimConfig cfg = tapas_on
                ? smallTestScenario(seed).asTapas()
                : smallTestScenario(seed).asBaseline();
            ClusterSim exact(cfg);
            exact.run();
            cfg.opTableEnabled = true;
            ClusterSim tabled(cfg);
            tabled.run();

            const std::string at = "seed=" + std::to_string(seed) +
                (tapas_on ? " tapas" : " baseline");
            const SimMetrics &e = exact.metrics();
            const SimMetrics &t = tabled.metrics();
            EXPECT_EQ(t.totalSteps, e.totalSteps) << at;
            EXPECT_NEAR(t.totalTokens, e.totalTokens,
                        0.02 * e.totalTokens) << at;
            EXPECT_NEAR(t.saasServedTps.mean(),
                        e.saasServedTps.mean(),
                        0.02 * e.saasServedTps.mean()) << at;
            EXPECT_NEAR(t.maxGpuTempC.maxValue(),
                        e.maxGpuTempC.maxValue(), 2.0) << at;
            EXPECT_NEAR(t.peakRowPowerFrac.maxValue(),
                        e.peakRowPowerFrac.maxValue(), 0.03) << at;
            EXPECT_NEAR(t.datacenterPowerW.mean(),
                        e.datacenterPowerW.mean(),
                        0.02 * e.datacenterPowerW.mean()) << at;
        }
    }
}

TEST(SimIntegration, WeekLongFlowRunIsStable)
{
    SimConfig cfg = smallTestScenario(35).asTapas();
    cfg.horizon = kWeek;
    ClusterSim sim(cfg);
    sim.run();
    EXPECT_EQ(sim.metrics().totalSteps,
              static_cast<std::uint64_t>(kWeek / cfg.stepLength));
    EXPECT_GT(sim.metrics().sloAttainment(), 0.93);
    EXPECT_NEAR(sim.metrics().meanQuality(), 1.0, 1e-6);
}

} // namespace
} // namespace tapas
