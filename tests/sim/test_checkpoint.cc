/**
 * @file
 * Checkpoint/restore integration tests: the bit-exactness contract
 * (run-to-T equals save-at-T/2 + restore + run-to-T on every metric
 * and on stateDigest, fault timelines and sensor corruption
 * included), config-mismatch rejection, and structured-error
 * rejection of corrupted snapshots at the sim level.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Canonical full-equality byte stream of a metric set. */
std::vector<std::uint8_t>
metricsBytes(const SimMetrics &metrics)
{
    SimMetrics copy = metrics;
    Archive ar = Archive::writer();
    copy.checkpointState(ar);
    EXPECT_TRUE(ar.ok());
    return ar.takeBuffer();
}

int
totalStepCount(const SimConfig &cfg)
{
    return static_cast<int>(cfg.horizon / cfg.stepLength);
}

/**
 * The contract, as one reusable drill: run a reference sim straight
 * through; run a second sim to the checkpoint step, save, restore
 * into a third sim, and run it to the horizon. The restored run must
 * match the reference bit-for-bit on stateDigest and on the full
 * serialized metric state.
 */
void
expectBitExactResume(const SimConfig &cfg, int checkpoint_step,
                     const char *ckpt_name)
{
    const std::string path = tmpPath(ckpt_name);
    const int total = totalStepCount(cfg);
    ASSERT_GT(checkpoint_step, 0);
    ASSERT_LT(checkpoint_step, total);

    ClusterSim reference(cfg);
    reference.run();

    ClusterSim writer(cfg);
    writer.runSteps(checkpoint_step);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());
    const std::uint64_t mid_digest = writer.stateDigest();

    ClusterSim restored(cfg);
    ASSERT_TRUE(restored.restoreCheckpoint(path).ok());
    EXPECT_EQ(restored.now(), writer.now());
    // The restored sim IS the writer, bit for bit.
    EXPECT_EQ(restored.stateDigest(), mid_digest);
    // Derived structures came back consistent.
    EXPECT_TRUE(restored.verifyVmTable());
    EXPECT_TRUE(restored.verifyRoutingIndex());
    EXPECT_TRUE(restored.verifyClusterView());

    restored.runSteps(total - checkpoint_step);
    ASSERT_TRUE(restored.finished());
    EXPECT_EQ(restored.stateDigest(), reference.stateDigest());
    EXPECT_EQ(metricsBytes(restored.metrics()),
              metricsBytes(reference.metrics()));
    // Spot checks so a failure names a human-readable quantity too.
    EXPECT_EQ(restored.metrics().totalSteps,
              reference.metrics().totalSteps);
    EXPECT_EQ(restored.metrics().inletExcursionSteps,
              reference.metrics().inletExcursionSteps);
    EXPECT_EQ(restored.metrics().faultSteps,
              reference.metrics().faultSteps);
    EXPECT_DOUBLE_EQ(restored.metrics().totalTokens,
                     reference.metrics().totalTokens);
    EXPECT_DOUBLE_EQ(restored.metrics().datacenterPowerW.mean(),
                     reference.metrics().datacenterPowerW.mean());
    removeFileIfExists(path);
}

TEST(Checkpoint, FaultDrillResumeIsBitExactTapas)
{
    const SimConfig cfg = faultDrillScenario(301).asTapas();
    expectBitExactResume(cfg, totalStepCount(cfg) / 2,
                         "ckpt_drill_tapas.tapasckp");
}

TEST(Checkpoint, FaultDrillResumeIsBitExactBaseline)
{
    const SimConfig cfg = faultDrillScenario(303).asBaseline();
    expectBitExactResume(cfg, totalStepCount(cfg) / 2,
                         "ckpt_drill_base.tapasckp");
}

TEST(Checkpoint, WeekLongRunWithStochasticFaultsResumesBitExact)
{
    // A week on the small cluster with every stochastic fault
    // process live (components AND sensors): the checkpoint carries
    // the fault replay cursor, stuck-at snapshots, quarantine
    // streaks, and telemetry digests across days of simulated time.
    SimConfig cfg = smallTestScenario(305).asTapas();
    cfg.horizon = kWeek;
    cfg.vmTrace.horizon = kWeek;
    cfg.policy.sensorQuarantineEnabled = true;
    cfg.faults.ahu.mtbfS = 2.0 * static_cast<double>(kDay);
    cfg.faults.ups.mtbfS = 3.0 * static_cast<double>(kDay);
    cfg.faults.sensor.mtbfS = 1.0 * static_cast<double>(kDay);
    expectBitExactResume(cfg, totalStepCount(cfg) / 2,
                         "ckpt_week.tapasckp");
}

TEST(Checkpoint, ResumeIsExactAtUnevenBoundary)
{
    // Not just the midpoint: an "ugly" early boundary, while
    // placements are still churning.
    const SimConfig cfg = faultDrillScenario(307).asTapas();
    expectBitExactResume(cfg, 7, "ckpt_uneven.tapasckp");
}

TEST(Checkpoint, RestoreOverwritesADivergedSim)
{
    // Restoring into a sim that already stepped elsewhere must fully
    // overwrite it — no state may leak through from before.
    const SimConfig cfg = faultDrillScenario(309).asTapas();
    const std::string path = tmpPath("ckpt_overwrite.tapasckp");
    const int total = totalStepCount(cfg);

    ClusterSim writer(cfg);
    writer.runSteps(total / 2);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());

    ClusterSim diverged(cfg);
    diverged.runSteps(total / 4);
    ASSERT_TRUE(diverged.restoreCheckpoint(path).ok());
    EXPECT_EQ(diverged.stateDigest(), writer.stateDigest());

    writer.runSteps(total - total / 2);
    diverged.runSteps(total - total / 2);
    EXPECT_EQ(diverged.stateDigest(), writer.stateDigest());
    EXPECT_EQ(metricsBytes(diverged.metrics()),
              metricsBytes(writer.metrics()));
    removeFileIfExists(path);
}

TEST(Checkpoint, StateDigestTracksProgress)
{
    const SimConfig cfg = smallTestScenario(311).asTapas();
    ClusterSim sim(cfg);
    const std::uint64_t d0 = sim.stateDigest();
    // Reading the digest does not perturb the sim.
    EXPECT_EQ(sim.stateDigest(), d0);
    sim.runSteps(3);
    const std::uint64_t d3 = sim.stateDigest();
    EXPECT_NE(d3, d0);
    // Same config, same steps => same digest.
    ClusterSim again(cfg);
    again.runSteps(3);
    EXPECT_EQ(again.stateDigest(), d3);
}

TEST(Checkpoint, WrongConfigurationIsRejectedAsMismatch)
{
    const std::string path = tmpPath("ckpt_mismatch.tapasckp");
    ClusterSim writer(faultDrillScenario(313).asTapas());
    writer.runSteps(5);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());

    // Different scenario entirely.
    ClusterSim other(smallTestScenario(313).asTapas());
    Error err = other.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Mismatch);

    // Same scenario, different seed: also a different stream.
    ClusterSim reseeded(faultDrillScenario(314).asTapas());
    err = reseeded.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Mismatch);

    // Same scenario, different policy: also rejected.
    ClusterSim repoliced(faultDrillScenario(313).asBaseline());
    err = repoliced.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Mismatch);
    removeFileIfExists(path);
}

TEST(Checkpoint, MissingFileIsIoError)
{
    ClusterSim sim(smallTestScenario(315).asTapas());
    Error err =
        sim.restoreCheckpoint(tmpPath("no_such_ckpt.tapasckp"));
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Io);
}

TEST(Checkpoint, CorruptedSnapshotsAreRejectedPerSection)
{
    const SimConfig cfg = faultDrillScenario(317).asTapas();
    const std::string path = tmpPath("ckpt_corrupt.tapasckp");
    ClusterSim writer(cfg);
    writer.runSteps(10);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());

    Result<std::vector<std::uint8_t>> good = readFileBytes(path);
    ASSERT_TRUE(good.ok());
    Result<CheckpointData> parsed = readCheckpointFile(path);
    ASSERT_TRUE(parsed.ok());

    // One bit flip inside every section's payload: the frame CRC
    // catches each before any state is touched.
    std::size_t payload_pos = 28; // kHeaderSize
    for (const CheckpointSection &section :
         parsed.value().sections) {
        const std::size_t flip_at =
            payload_pos + 12 + section.payload.size() / 2;
        std::vector<std::uint8_t> bad = good.value();
        ASSERT_LT(flip_at, bad.size());
        bad[flip_at] ^= 0x01;
        ASSERT_TRUE(
            atomicWriteFile(path, bad.data(), bad.size()).ok());
        ClusterSim victim(cfg);
        Error err = victim.restoreCheckpoint(path);
        ASSERT_FALSE(err.ok())
            << "accepted flip in section " << section.id;
        EXPECT_EQ(err.code(), ErrorCode::Corrupt);
        // The victim was never touched: it still steps like a fresh
        // sim of this config.
        ClusterSim fresh(cfg);
        EXPECT_EQ(victim.stateDigest(), fresh.stateDigest());
        payload_pos += 16 + section.payload.size();
    }

    // Truncation mid-file.
    std::vector<std::uint8_t> trunc = good.value();
    trunc.resize(trunc.size() / 2);
    ASSERT_TRUE(
        atomicWriteFile(path, trunc.data(), trunc.size()).ok());
    ClusterSim victim(cfg);
    Error err = victim.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Corrupt);
    removeFileIfExists(path);
}

TEST(Checkpoint, MissingSectionIsRejected)
{
    const SimConfig cfg = smallTestScenario(319).asTapas();
    const std::string path = tmpPath("ckpt_missing_sec.tapasckp");
    ClusterSim writer(cfg);
    writer.runSteps(4);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());

    Result<CheckpointData> parsed = readCheckpointFile(path);
    ASSERT_TRUE(parsed.ok());
    CheckpointData data = parsed.value();
    ASSERT_GT(data.sections.size(), 1u);
    data.sections.pop_back(); // drop the metrics section
    ASSERT_TRUE(writeCheckpointFile(path, data.configDigest,
                                    data.sections)
                    .ok());

    ClusterSim victim(cfg);
    Error err = victim.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Corrupt);
    EXPECT_NE(err.message().find("missing section"),
              std::string::npos);
    removeFileIfExists(path);
}

TEST(Checkpoint, UndecodablePayloadIsRejectedAfterValidation)
{
    // A CRC-valid file whose section payload does not decode (here:
    // a truncated-then-resealed core section) must still come back
    // as a structured Corrupt error, not UB.
    const SimConfig cfg = smallTestScenario(321).asTapas();
    const std::string path = tmpPath("ckpt_undecodable.tapasckp");
    ClusterSim writer(cfg);
    writer.runSteps(4);
    ASSERT_TRUE(writer.saveCheckpoint(path).ok());

    Result<CheckpointData> parsed = readCheckpointFile(path);
    ASSERT_TRUE(parsed.ok());
    CheckpointData data = parsed.value();
    ASSERT_FALSE(data.sections.empty());
    ASSERT_GT(data.sections[0].payload.size(), 8u);
    data.sections[0].payload.resize(
        data.sections[0].payload.size() - 8);
    ASSERT_TRUE(writeCheckpointFile(path, data.configDigest,
                                    data.sections)
                    .ok());

    ClusterSim victim(cfg);
    Error err = victim.restoreCheckpoint(path);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::Corrupt);
    EXPECT_NE(err.message().find("does not decode"),
              std::string::npos);
    removeFileIfExists(path);
}

TEST(Checkpoint, SaveIsByteStableAcrossRewrites)
{
    // Saving twice without stepping produces identical files
    // (canonical serialization: no map-order or uninitialized-pad
    // leakage).
    const SimConfig cfg = faultDrillScenario(323).asTapas();
    const std::string a = tmpPath("ckpt_stable_a.tapasckp");
    const std::string b = tmpPath("ckpt_stable_b.tapasckp");
    ClusterSim sim(cfg);
    sim.runSteps(12);
    ASSERT_TRUE(sim.saveCheckpoint(a).ok());
    ASSERT_TRUE(sim.saveCheckpoint(b).ok());
    Result<std::vector<std::uint8_t>> ba = readFileBytes(a);
    Result<std::vector<std::uint8_t>> bb = readFileBytes(b);
    ASSERT_TRUE(ba.ok());
    ASSERT_TRUE(bb.ok());
    EXPECT_EQ(ba.value(), bb.value());
    removeFileIfExists(a);
    removeFileIfExists(b);
}

} // namespace
} // namespace tapas
