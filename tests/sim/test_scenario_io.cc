/**
 * @file
 * Scenario-spec loader tests: valid specs produce the configured
 * SimConfig; every malformed input (missing file, unknown scenario,
 * unknown key, bad value) is a structured tapas::Error naming the
 * offending line — user input must never trip an assertion.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/serialize.hh"
#include "sim/scenario.hh"
#include "sim/scenario_io.hh"

namespace tapas {
namespace {

TEST(ScenarioIo, ScenarioByNameCoversCannedSetups)
{
    ASSERT_TRUE(scenarioByName("small", 3).ok());
    EXPECT_EQ(scenarioByName("small", 3).value().seed, 3u);
    ASSERT_TRUE(scenarioByName("fault-drill", 4).ok());
    ASSERT_TRUE(scenarioByName("real-cluster", 5).ok());
    ASSERT_TRUE(scenarioByName("large-scale", 6).ok());

    Result<SimConfig> unknown = scenarioByName("warehouse", 1);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.error().code(), ErrorCode::Invalid);
    EXPECT_NE(unknown.error().message().find("warehouse"),
              std::string::npos);
}

TEST(ScenarioIo, FullSpecParsesAndAppliesOverrides)
{
    const std::string spec =
        "# drill spec\n"
        "scenario = fault-drill\n"
        "seed = 41\n"
        "policy = tapas   # inline comment\n"
        "horizon_s = 7200\n"
        "step_length_s = 60\n"
        "sensor_quarantine = true\n"
        "inlet_limit_c = 31.5\n"
        "faults.sensor.mtbf_s = 43200\n"
        "faults.sensor.mttr_s = 3600\n"
        "faults.ahu.remaining_frac = 0.85\n";
    Result<SimConfig> parsed = parseScenarioSpec(spec, "spec");
    ASSERT_TRUE(parsed.ok()) << parsed.error().message();
    const SimConfig &cfg = parsed.value();
    EXPECT_EQ(cfg.seed, 41u);
    EXPECT_TRUE(cfg.policy.placeEnabled);
    EXPECT_EQ(cfg.horizon, 7200);
    EXPECT_EQ(cfg.stepLength, 60);
    EXPECT_TRUE(cfg.policy.sensorQuarantineEnabled);
    EXPECT_DOUBLE_EQ(cfg.inletLimitC, 31.5);
    EXPECT_DOUBLE_EQ(cfg.faults.sensor.mtbfS, 43200.0);
    EXPECT_DOUBLE_EQ(cfg.faults.sensor.mttrS, 3600.0);
    EXPECT_DOUBLE_EQ(cfg.faults.ahu.remainingFrac, 0.85);
}

TEST(ScenarioIo, BaselinePolicyDisablesTapas)
{
    const std::string spec =
        "scenario = small\npolicy = baseline\n";
    Result<SimConfig> parsed = parseScenarioSpec(spec, "spec");
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().policy.placeEnabled);
    EXPECT_FALSE(parsed.value().policy.routeEnabled);
    EXPECT_FALSE(parsed.value().policy.configEnabled);
}

TEST(ScenarioIo, ErrorsNameTheOffendingLine)
{
    struct Case
    {
        const char *spec;
        const char *needle;
    };
    const Case cases[] = {
        {"seed = 1\n", "missing required key 'scenario'"},
        {"scenario = warehouse\n", "spec:1"},
        {"scenario = small\nbananas = 7\n",
         "spec:2: unknown key 'bananas'"},
        {"scenario = small\nhorizon_s = soon\n",
         "spec:2: key 'horizon_s'"},
        {"scenario = small\nhorizon_s = -5\n", "positive"},
        {"scenario = small\npolicy = chaos\n",
         "'tapas' or 'baseline'"},
        {"scenario = small\nsensor_quarantine = maybe\n",
         "a boolean"},
        {"scenario = small\nfaults.pump.mtbf_s = 1\n",
         "unknown fault process"},
        {"scenario = small\nfaults.ahu.color = 1\n",
         "unknown fault field"},
        {"scenario = small\nthis line has no equals\n",
         "expected 'key = value'"},
        {"scenario = small\nhorizon_s =\n", "empty key or value"},
    };
    for (const Case &c : cases) {
        Result<SimConfig> parsed = parseScenarioSpec(c.spec, "spec");
        ASSERT_FALSE(parsed.ok()) << c.spec;
        EXPECT_EQ(parsed.error().code(), ErrorCode::Invalid)
            << c.spec;
        EXPECT_NE(parsed.error().message().find(c.needle),
                  std::string::npos)
            << "message: " << parsed.error().message();
    }
}

TEST(ScenarioIo, LoadFromFileRoundTrips)
{
    const std::string path =
        std::string(::testing::TempDir()) + "scenario_spec.conf";
    ASSERT_TRUE(atomicWriteFile(path,
                                "scenario = small\n"
                                "seed = 77\n"
                                "policy = tapas\n")
                    .ok());
    Result<SimConfig> loaded = loadScenarioSpec(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message();
    EXPECT_EQ(loaded.value().seed, 77u);
    removeFileIfExists(path);

    Result<SimConfig> missing =
        loadScenarioSpec(path + ".does-not-exist");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), ErrorCode::Io);
}

} // namespace
} // namespace tapas
