/**
 * @file
 * Robustness integration tests on the compound-emergency fault drill:
 * TAPAS must strictly beat the baseline on thermal excursions while
 * the plant is derated, sensor quarantine must isolate faulty sensors
 * without perturbing decisions for healthy servers (bit-identical
 * risk entries), and the quarantine machinery must be a no-op on
 * fault-free runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/fixture.hh"
#include "core/risk.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

TEST(FaultDrill, TapasDominatesBaselineOnCompoundDrill)
{
    const SimConfig cfg = faultDrillScenario(41);
    ClusterSim baseline(cfg.asBaseline());
    baseline.run();
    ClusterSim tapas(cfg.asTapas());
    tapas.run();

    const SimMetrics &base = baseline.metrics();
    const SimMetrics &tap = tapas.metrics();

    // The drill actually bites: the chiller derate + heat wave +
    // demand peak push the baseline into inlet excursions.
    EXPECT_GT(base.inletExcursionSteps, 0u);
    // The headline robustness claim: TAPAS spends strictly less time
    // in thermal excursion than the baseline under the same compound
    // emergency.
    EXPECT_LT(tap.inletExcursionSteps, base.inletExcursionSteps);

    // Both runs replay the same scripted fault timeline.
    EXPECT_GT(base.faultSteps, 0u);
    EXPECT_EQ(tap.faultSteps, base.faultSteps);
    EXPECT_EQ(tap.faultActiveS, base.faultActiveS);
    EXPECT_EQ(tap.faultActiveS, 7 * kHour);

    // The fault window ends inside the horizon, so both runs record
    // a recovery measurement.
    EXPECT_GE(base.recoveries, 1u);
    EXPECT_GE(tap.recoveries, 1u);
    EXPECT_GE(tap.maxRecoveryS, tap.meanRecoveryS());

    // Quality floor holds for TAPAS even through the emergency.
    EXPECT_GE(tap.saasQuality.minValue(), 0.60);
}

TEST(FaultDrill, DrillIsDeterministicForSeed)
{
    const SimConfig cfg = faultDrillScenario(43).asTapas();
    ClusterSim a(cfg);
    a.run();
    ClusterSim b(cfg);
    b.run();
    EXPECT_EQ(a.metrics().inletExcursionSteps,
              b.metrics().inletExcursionSteps);
    EXPECT_EQ(a.metrics().powerViolationSteps,
              b.metrics().powerViolationSteps);
    EXPECT_EQ(a.metrics().recoverySumS, b.metrics().recoverySumS);
    EXPECT_DOUBLE_EQ(a.metrics().faultDemandTokens,
                     b.metrics().faultDemandTokens);
    EXPECT_DOUBLE_EQ(a.metrics().faultServedTokens,
                     b.metrics().faultServedTokens);
    EXPECT_DOUBLE_EQ(a.metrics().totalTokens,
                     b.metrics().totalTokens);
}

TEST(FaultDrill, QuarantineIsNoOpOnHealthyRun)
{
    // The divergence detector reconstructs expected GPU power from
    // the server load identity, so with every sensor healthy the
    // enabled gate must not move a single decision.
    const SimConfig cfg = smallTestScenario(45).asTapas();
    ClusterSim off(cfg);
    off.run();

    SimConfig guarded_cfg = cfg;
    guarded_cfg.policy.sensorQuarantineEnabled = true;
    ClusterSim on(guarded_cfg);
    on.run();

    EXPECT_EQ(on.controller().riskAssessor()->quarantineEvents(),
              0u);
    EXPECT_EQ(on.metrics().quarantinedServerSteps, 0u);
    EXPECT_DOUBLE_EQ(on.metrics().totalTokens,
                     off.metrics().totalTokens);
    EXPECT_DOUBLE_EQ(on.metrics().datacenterPowerW.mean(),
                     off.metrics().datacenterPowerW.mean());
    EXPECT_DOUBLE_EQ(on.metrics().maxGpuTempC.maxValue(),
                     off.metrics().maxGpuTempC.maxValue());
    EXPECT_EQ(on.metrics().reconfigs, off.metrics().reconfigs);
    EXPECT_EQ(on.metrics().migrations, off.metrics().migrations);
    EXPECT_EQ(on.metrics().vmsPlaced, off.metrics().vmsPlaced);
}

TEST(FaultDrill, DriftingSensorIsQuarantinedAndReleased)
{
    SimConfig cfg = smallTestScenario(47).asTapas();
    cfg.policy.sensorQuarantineEnabled = true;
    ScriptedFault fault;
    fault.kind = FaultKind::Sensor;
    fault.target = 5;
    fault.at = 2 * kHour;
    fault.until = 10 * kHour;
    fault.sensor = SensorFaultKind::BiasDrift;
    // Fast drift so the divergence clears the detection envelope
    // well inside the fault window.
    fault.driftWPerHour = 400.0;
    cfg.faults.scripted.push_back(fault);

    ClusterSim sim(cfg);
    sim.run();

    const RiskAssessor *risk =
        sim.controller().riskAssessor();
    ASSERT_NE(risk, nullptr);
    // The drift was caught...
    EXPECT_GE(risk->quarantineEvents(), 1u);
    EXPECT_GT(sim.metrics().quarantinedServerSteps, 0u);
    // ...and with the sensor healthy again for the rest of the day,
    // the quarantine automatically released.
    EXPECT_EQ(risk->quarantinedNow(), 0u);
    // Sensor faults never touch the plant.
    EXPECT_EQ(sim.metrics().faultSteps, 0u);
}

/** RiskAssessor-level isolation: corrupt one server's readings and
 *  compare every other server's risk entry bit-for-bit against a
 *  clean assessor. */
class QuarantineIsolation : public CoreFixture
{
  protected:
    QuarantineIsolation()
    {
        policy.sensorQuarantineEnabled = true;
        policy.sensorQuarantineAfter = 2;
        policy.sensorRecoverAfter = 3;
        gpus = dc.specs().front().gpusPerServer;

        // Give the fleet a mixed, nontrivial load pattern.
        for (std::size_t s = 0; s < dc.serverCount(); ++s)
            view.serverLoads[s] = 0.15 + 0.6 * ((s * 7) % 10) / 10.0;
    }

    /** Per-GPU power exactly consistent with the load identity (what
     *  healthy sensors report in the simulator). */
    std::vector<double>
    healthyPower() const
    {
        const ServerSpec &spec = dc.specs().front();
        std::vector<double> out(dc.serverCount() * gpus);
        for (std::size_t s = 0; s < dc.serverCount(); ++s) {
            const double per_gpu = spec.gpuIdlePower.value() +
                view.serverLoads[s] *
                    (spec.gpuMaxPower.value() -
                     spec.gpuIdlePower.value());
            for (int g = 0; g < gpus; ++g)
                out[s * gpus + g] = per_gpu;
        }
        return out;
    }

    void
    expectEqualRisk(const RiskAssessor &a, const RiskAssessor &b,
                    ServerId id)
    {
        const ServerRisk &ra = a.risk(id);
        const ServerRisk &rb = b.risk(id);
        EXPECT_EQ(ra.thermalRisk, rb.thermalRisk) << id.index;
        EXPECT_EQ(ra.powerRisk, rb.powerRisk) << id.index;
        EXPECT_EQ(ra.airflowRisk, rb.airflowRisk) << id.index;
        EXPECT_DOUBLE_EQ(ra.predictedHottestGpuC,
                         rb.predictedHottestGpuC) << id.index;
        EXPECT_DOUBLE_EQ(ra.rowHeadroomW, rb.rowHeadroomW)
            << id.index;
        EXPECT_DOUBLE_EQ(ra.aisleHeadroomCfm, rb.aisleHeadroomCfm)
            << id.index;
    }

    TapasPolicyConfig policy;
    int gpus = 0;
};

TEST_F(QuarantineIsolation, StuckSensorNeverPerturbsOtherServers)
{
    const ServerId bad(9);
    RiskAssessor clean(policy);
    RiskAssessor guarded(policy);

    const std::vector<double> truth = healthyPower();
    // The bad server's sensor reads stuck at idle while the server
    // actually runs loaded — far outside the detection envelope.
    std::vector<double> corrupted = truth;
    for (int g = 0; g < gpus; ++g) {
        corrupted[bad.index * gpus + g] =
            dc.specs().front().gpuIdlePower.value();
    }

    // Drive both assessors through the detection window and beyond.
    for (int pass = 0; pass < 4; ++pass) {
        view.now = pass * 5 * kMinute;
        clean.refresh(view, truth);
        guarded.refresh(view, corrupted);
        // At no refresh — before, during, or after quarantine entry
        // — does the corruption leak into any other server's entry.
        for (const Server &server : dc.servers()) {
            if (server.id.index == bad.index)
                continue;
            expectEqualRisk(clean, guarded, server.id);
        }
    }

    // The bad server itself was quarantined after the streak.
    EXPECT_TRUE(guarded.quarantined(bad));
    EXPECT_TRUE(guarded.risk(bad).quarantined);
    EXPECT_EQ(guarded.quarantineEvents(), 1u);
    EXPECT_EQ(guarded.quarantinedNow(), 1u);
    EXPECT_FALSE(clean.quarantined(bad));

    // Sensor repaired: healthy readings release the quarantine and
    // the whole fleet converges back to bit-equality.
    for (int pass = 4; pass < 8; ++pass) {
        view.now = pass * 5 * kMinute;
        clean.refresh(view, truth);
        guarded.refresh(view, truth);
    }
    EXPECT_FALSE(guarded.quarantined(bad));
    EXPECT_EQ(guarded.quarantinedNow(), 0u);
    for (const Server &server : dc.servers())
        expectEqualRisk(clean, guarded, server.id);
}

} // namespace
} // namespace tapas
