/**
 * @file
 * Property tests for the structure-of-arrays VM table: on a mixed
 * IaaS/SaaS scenario, the hot arrays must stay exactly what a fresh
 * AoS-style scan of the cold records would produce (server map,
 * kind/active flags, engine mirrors, cached predicted peaks), in
 * both fidelity modes, at every point of the run — and the SoA
 * simulator must stay deterministic per seed.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

class VmTableSoa : public ::testing::TestWithParam<int>
{
};

TEST_P(VmTableSoa, HotArraysMatchColdRecordsThroughoutTheRun)
{
    const int seed = GetParam();
    SimConfig cfg = smallTestScenario(
        static_cast<std::uint64_t>(seed));
    cfg.horizon = 8 * kHour;
    // Mixed fleet with churn: both kinds, placements, departures.
    cfg.vmTrace.saasFraction = 0.5;
    ClusterSim sim(seed % 2 == 0 ? cfg.asTapas()
                                 : cfg.asBaseline());

    while (!sim.finished()) {
        sim.runSteps(7);
        ASSERT_TRUE(sim.verifyVmTable());
        ASSERT_TRUE(sim.verifyRoutingIndex());
    }

    // The run actually exercised a mixed population.
    const VmTable &vms = sim.vms();
    std::size_t saas = 0;
    std::size_t iaas = 0;
    for (std::size_t i = 0; i < vms.size(); ++i) {
        if (vms.isSaas(i))
            ++saas;
        if (vms.isIaas(i))
            ++iaas;
        if (vms.active(i)) {
            EXPECT_EQ(vms.record(i).id.index, i);
            EXPECT_EQ(vms.isSaas(i),
                      vms.record(i).kind == VmKind::SaaS);
            EXPECT_EQ(vms.engineAt(i) != nullptr, vms.isSaas(i));
        }
    }
    EXPECT_GT(saas, 0u);
    EXPECT_GT(iaas, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmTableSoa,
                         ::testing::Values(3, 4, 7, 10));

TEST(VmTableSoa2, RequestModeKeepsTableConsistent)
{
    SimConfig cfg = realClusterScenario(19).asTapas();
    cfg.horizon = 30 * kMinute;
    ClusterSim sim(cfg);
    while (!sim.finished()) {
        sim.runSteps(5);
        ASSERT_TRUE(sim.verifyVmTable());
    }
    EXPECT_GT(sim.metrics().requestsCompleted, 0u);
}

TEST(VmTableSoa2, DeterministicAcrossRuns)
{
    SimConfig cfg = smallTestScenario(31).asTapas();
    cfg.horizon = 6 * kHour;
    ClusterSim a(cfg);
    a.run();
    ClusterSim b(cfg);
    b.run();
    EXPECT_DOUBLE_EQ(a.metrics().totalTokens,
                     b.metrics().totalTokens);
    EXPECT_EQ(a.metrics().vmsPlaced, b.metrics().vmsPlaced);
    EXPECT_EQ(a.metrics().reconfigs, b.metrics().reconfigs);
    const VmTable &va = a.vms();
    const VmTable &vb = b.vms();
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(va.slot[i], vb.slot[i]);
        EXPECT_EQ(va.serverOf[i], vb.serverOf[i]);
        EXPECT_DOUBLE_EQ(va.load[i], vb.load[i]);
        EXPECT_DOUBLE_EQ(va.demandEmaTps[i], vb.demandEmaTps[i]);
    }
}

} // namespace
} // namespace tapas
