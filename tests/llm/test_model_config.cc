/**
 * @file
 * Unit tests for the model catalog and configuration space.
 */

#include <gtest/gtest.h>

#include "llm/config.hh"
#include "llm/model.hh"

namespace tapas {
namespace {

TEST(ModelCatalog, ParameterCounts)
{
    EXPECT_DOUBLE_EQ(modelParamsB(ModelSize::B70), 70.0);
    EXPECT_DOUBLE_EQ(modelParamsB(ModelSize::B13), 13.0);
    EXPECT_DOUBLE_EQ(modelParamsB(ModelSize::B7), 7.0);
}

TEST(ModelCatalog, QualityOrderingBySize)
{
    // Paper: 7B loses 30-40% quality vs 70B.
    const double q70 = modelQuality(ModelSize::B70,
                                    Quantization::FP16);
    const double q13 = modelQuality(ModelSize::B13,
                                    Quantization::FP16);
    const double q7 = modelQuality(ModelSize::B7, Quantization::FP16);
    EXPECT_GT(q70, q13);
    EXPECT_GT(q13, q7);
    EXPECT_GE(1.0 - q7 / q70, 0.30);
    EXPECT_LE(1.0 - q7 / q70, 0.40);
}

TEST(ModelCatalog, QualityOrderingByQuant)
{
    for (ModelSize size : kAllModelSizes) {
        const double fp16 = modelQuality(size, Quantization::FP16);
        const double fp8 = modelQuality(size, Quantization::FP8);
        const double int4 = modelQuality(size, Quantization::INT4);
        EXPECT_GT(fp16, fp8);
        EXPECT_GT(fp8, int4);
        // Paper: quantization costs 2-20%.
        EXPECT_GE(1.0 - fp8 / fp16, 0.02);
        EXPECT_LE(1.0 - int4 / fp16, 0.20);
    }
}

TEST(ModelCatalog, QuantSpeedupMonotonic)
{
    EXPECT_LT(quantSpeedup(Quantization::FP16),
              quantSpeedup(Quantization::FP8));
    EXPECT_LT(quantSpeedup(Quantization::FP8),
              quantSpeedup(Quantization::INT4));
}

TEST(ModelCatalog, WeightFootprints)
{
    EXPECT_DOUBLE_EQ(modelWeightsGb(ModelSize::B70,
                                    Quantization::FP16), 140.0);
    EXPECT_DOUBLE_EQ(modelWeightsGb(ModelSize::B70,
                                    Quantization::FP8), 70.0);
    EXPECT_DOUBLE_EQ(modelWeightsGb(ModelSize::B7,
                                    Quantization::INT4), 3.5);
}

TEST(ModelCatalog, Names)
{
    EXPECT_STREQ(modelSizeName(ModelSize::B70), "70B");
    EXPECT_STREQ(quantizationName(Quantization::INT4), "INT4");
}

TEST(InstanceConfig, LabelFormat)
{
    InstanceConfig config;
    EXPECT_EQ(config.label(), "70B/FP16/TP8/B64/F1.00");
}

TEST(InstanceConfig, ReloadRules)
{
    InstanceConfig base;
    InstanceConfig freq_change = base;
    freq_change.freqFrac = 0.7;
    EXPECT_FALSE(freq_change.requiresReload(base));

    InstanceConfig batch_change = base;
    batch_change.maxBatchSize = 16;
    EXPECT_FALSE(batch_change.requiresReload(base));

    InstanceConfig model_change = base;
    model_change.model = ModelSize::B13;
    EXPECT_TRUE(model_change.requiresReload(base));

    InstanceConfig quant_change = base;
    quant_change.quant = Quantization::FP8;
    EXPECT_TRUE(quant_change.requiresReload(base));

    InstanceConfig tp_change = base;
    tp_change.tensorParallel = 4;
    EXPECT_TRUE(tp_change.requiresReload(base));
}

TEST(ConfigSpace, SeventyBFp16Tp2IsInfeasible)
{
    // 140 GB of weights cannot fit 2x80 GB with KV headroom.
    InstanceConfig config;
    config.model = ModelSize::B70;
    config.quant = Quantization::FP16;
    config.tensorParallel = 2;
    EXPECT_FALSE(ConfigSpace::memoryFeasible(config,
                                             ServerSpec::a100()));
}

TEST(ConfigSpace, SeventyBFp8Tp2IsFeasible)
{
    InstanceConfig config;
    config.model = ModelSize::B70;
    config.quant = Quantization::FP8;
    config.tensorParallel = 2;
    EXPECT_TRUE(ConfigSpace::memoryFeasible(config,
                                            ServerSpec::a100()));
}

TEST(ConfigSpace, SmallModelsAlwaysFit)
{
    for (Quantization quant : kAllQuantizations) {
        for (int tp : ConfigSpace::tpDegrees()) {
            InstanceConfig config;
            config.model = ModelSize::B7;
            config.quant = quant;
            config.tensorParallel = tp;
            EXPECT_TRUE(ConfigSpace::memoryFeasible(
                config, ServerSpec::a100()))
                << config.label();
        }
    }
}

TEST(ConfigSpace, EnumerationOnlyYieldsFeasible)
{
    const ServerSpec spec = ServerSpec::a100();
    const auto configs = ConfigSpace::enumerate(spec);
    EXPECT_FALSE(configs.empty());
    for (const InstanceConfig &config : configs)
        EXPECT_TRUE(ConfigSpace::memoryFeasible(config, spec));
}

TEST(ConfigSpace, EnumerationCountsMatchFeasibility)
{
    // 3 models x 3 quants x 3 TP = 27 (model,quant,tp) combos; only
    // 70B/FP16/TP2 violates memory, leaving 26. Each combo spans
    // 4 batch x 5 freq = 20 points.
    const auto configs = ConfigSpace::enumerate(ServerSpec::a100());
    EXPECT_EQ(configs.size(), 26u * 20u);
}

TEST(ConfigSpace, KvHeadroomShrinksWithModelSize)
{
    const ServerSpec spec = ServerSpec::a100();
    InstanceConfig big;
    big.model = ModelSize::B70;
    InstanceConfig small;
    small.model = ModelSize::B7;
    EXPECT_LT(ConfigSpace::kvHeadroomFraction(big, spec),
              ConfigSpace::kvHeadroomFraction(small, spec));
}

} // namespace
} // namespace tapas
