/**
 * @file
 * Equivalence suite for the batched operating-point solver: the
 * branch-free batch entry points must reproduce the scalar solves
 * bit for bit across every configuration profile and every demand
 * regime (zero, sub-saturated, saturated, clamped-batch), in the
 * default FP mode (-ffp-contract=off pins per-operation IEEE
 * semantics even under -march=native). The interpolated table mode
 * is A/B-checked against the exact path with explicit error bounds.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "llm/perf.hh"

namespace tapas {
namespace {

PerfModel
makeModel()
{
    return PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
}

/**
 * Demand grid stressing every solver regime for one profile:
 * negative and zero demand, deep sub-saturation (batch 1), points
 * around the saturation boundary, the goodput/capacity band, and
 * demands large enough to clamp the decode batch at its max.
 */
std::vector<double>
demandGridFor(const ConfigProfile &p)
{
    const double anchor =
        p.goodputTps > 0.0 ? p.goodputTps : p.capacityTps;
    std::vector<double> grid = {-5.0, 0.0, 1e-6, 0.01, 0.1, 1.0};
    for (const double frac :
         {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.2, 1.5,
          2.0, 4.0, 16.0, 256.0}) {
        grid.push_back(anchor * frac);
    }
    return grid;
}

void
expectPointsIdentical(const PerfModel::OperatingPoint &batch,
                      const PerfModel::OperatingPoint &scalar,
                      const ConfigProfile &p, double demand)
{
    const std::string at =
        p.config.label() + " @ " + std::to_string(demand);
    EXPECT_EQ(batch.busyFrac, scalar.busyFrac) << at;
    EXPECT_EQ(batch.prefillShare, scalar.prefillShare) << at;
    EXPECT_EQ(batch.decodeBatch, scalar.decodeBatch) << at;
    EXPECT_EQ(batch.gpuPower.value(), scalar.gpuPower.value()) << at;
    EXPECT_EQ(batch.serverPower.value(), scalar.serverPower.value())
        << at;
}

TEST(PerfOpBatch, PointerLanesBitIdenticalToScalarAllProfiles)
{
    const PerfModel model = makeModel();
    const std::vector<ConfigProfile> profiles = model.allProfiles();
    ASSERT_FALSE(profiles.empty());

    for (const ConfigProfile &p : profiles) {
        const std::vector<double> demands = demandGridFor(p);
        std::vector<const ConfigProfile *> lanes(demands.size(), &p);
        std::vector<PerfModel::OperatingPoint> full(demands.size());
        std::vector<PerfModel::OperatingPoint> gpu(demands.size());
        model.operatingPointBatch(lanes.data(), demands.data(),
                                  demands.size(), full.data());
        model.operatingGpuPointBatch(lanes.data(), demands.data(),
                                     demands.size(), gpu.data());
        for (std::size_t i = 0; i < demands.size(); ++i) {
            expectPointsIdentical(
                full[i], model.operatingPointAt(p, demands[i]), p,
                demands[i]);
            expectPointsIdentical(
                gpu[i], model.operatingGpuPointAt(p, demands[i]), p,
                demands[i]);
        }
    }
}

TEST(PerfOpBatch, IndexLanesHeterogeneousProfilesBitIdentical)
{
    const PerfModel model = makeModel();
    const std::vector<ConfigProfile> profiles = model.allProfiles();
    ASSERT_GT(profiles.size(), 1u);

    // Interleave every profile against a shared demand grid so one
    // batch call mixes regimes and configs across its chunks.
    std::vector<std::uint32_t> idx;
    std::vector<double> demands;
    const std::vector<double> shared =
        demandGridFor(profiles.front());
    for (std::size_t d = 0; d < shared.size(); ++d) {
        for (std::uint32_t pi = 0; pi < profiles.size(); ++pi) {
            idx.push_back(pi);
            demands.push_back(shared[d] * (1.0 + 0.013 * pi));
        }
    }

    std::vector<PerfModel::OperatingPoint> full(idx.size());
    std::vector<PerfModel::OperatingPoint> gpu(idx.size());
    model.operatingPointBatch(profiles.data(), idx.data(),
                              demands.data(), idx.size(),
                              full.data());
    model.operatingGpuPointBatch(profiles.data(), idx.data(),
                                 demands.data(), idx.size(),
                                 gpu.data());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const ConfigProfile &p = profiles[idx[i]];
        expectPointsIdentical(
            full[i], model.operatingPointAt(p, demands[i]), p,
            demands[i]);
        expectPointsIdentical(
            gpu[i], model.operatingGpuPointAt(p, demands[i]), p,
            demands[i]);
    }
}

TEST(PerfOpBatch, UncachedDecodeEndpointsFallBackIdentically)
{
    const PerfModel model = makeModel();
    // Strip the precomputed decode-power endpoints: the batch kernel
    // must route those lanes through the same full formula the
    // scalar path uses.
    ConfigProfile p = model.profile(referenceConfig());
    p.decodePowerBatch1W = -1.0;
    p.decodePowerBatchMaxW = -1.0;

    const std::vector<double> demands = demandGridFor(p);
    std::vector<const ConfigProfile *> lanes(demands.size(), &p);
    std::vector<PerfModel::OperatingPoint> full(demands.size());
    model.operatingPointBatch(lanes.data(), demands.data(),
                              demands.size(), full.data());
    for (std::size_t i = 0; i < demands.size(); ++i) {
        expectPointsIdentical(
            full[i], model.operatingPointAt(p, demands[i]), p,
            demands[i]);
    }
}

TEST(PerfOpBatch, ChunkBoundariesCoverEveryResidue)
{
    // Lane counts straddling the kernel's internal chunking must all
    // produce the same per-lane answers (no tail mishandling).
    const PerfModel model = makeModel();
    const ConfigProfile p = model.profile(referenceConfig());
    for (const std::size_t n : {1u, 2u, 7u, 31u, 32u, 33u, 64u, 65u,
                                100u}) {
        std::vector<const ConfigProfile *> lanes(n, &p);
        std::vector<double> demands(n);
        for (std::size_t i = 0; i < n; ++i) {
            demands[i] =
                p.goodputTps * 1.3 * static_cast<double>(i) /
                static_cast<double>(n);
        }
        std::vector<PerfModel::OperatingPoint> out(n);
        model.operatingPointBatch(lanes.data(), demands.data(), n,
                                  out.data());
        for (std::size_t i = 0; i < n; ++i) {
            expectPointsIdentical(
                out[i], model.operatingPointAt(p, demands[i]), p,
                demands[i]);
        }
    }
}

TEST(PerfOpBatch, TableDisabledByDefault)
{
    const PerfModel model = makeModel();
    EXPECT_FALSE(model.operatingPointTableEnabled());
}

TEST(PerfOpBatch, TableInterpolationWithinErrorBounds)
{
    PerfModel exact = makeModel();
    PerfModel tabled = makeModel();
    const ConfigProfile ref = exact.profile(referenceConfig());
    const double step = ref.goodputTps / 256.0;
    tabled.enableOperatingPointTable(step, ref.goodputTps * 2.0);
    ASSERT_TRUE(tabled.operatingPointTableEnabled());

    const std::vector<ConfigProfile> profiles = exact.allProfiles();
    for (const ConfigProfile &p : profiles) {
        // Off-node demands across the grid (worst case for linear
        // interpolation sits mid-interval).
        for (int k = 0; k < 64; ++k) {
            const double demand =
                step * (0.5 + 7.0 * static_cast<double>(k));
            const ConfigProfile *lane = &p;
            PerfModel::OperatingPoint t_op;
            tabled.operatingPointBatch(&lane, &demand, 1, &t_op);
            const PerfModel::OperatingPoint e_op =
                exact.operatingPointAt(p, demand);
            // The solve is piecewise-smooth in demand with one kink
            // (the saturation boundary). The step is shared across
            // configs (sized off the reference goodput), so for the
            // slowest profiles the kink can land mid-interval and
            // busy time absorbs the largest relative error — bounded
            // at 3% absolute here; power stays within 2%.
            EXPECT_NEAR(t_op.busyFrac, e_op.busyFrac, 0.03)
                << p.config.label() << " @ " << demand;
            EXPECT_NEAR(t_op.gpuPower.value(), e_op.gpuPower.value(),
                        0.02 * ServerSpec::a100().gpuMaxPower.value())
                << p.config.label() << " @ " << demand;
            EXPECT_NEAR(
                t_op.serverPower.value(), e_op.serverPower.value(),
                0.02 * e_op.serverPower.value())
                << p.config.label() << " @ " << demand;
        }
    }
}

TEST(PerfOpBatch, TableExactAtNodesAndPastGridEnd)
{
    PerfModel tabled = makeModel();
    const ConfigProfile ref = tabled.profile(referenceConfig());
    const double step = ref.goodputTps / 64.0;
    tabled.enableOperatingPointTable(step, ref.goodputTps);

    PerfModel exact = makeModel();
    // On-node demands interpolate with t = 0: exactly the node
    // value, which is the exact solve there.
    for (int j = 0; j < 8; ++j) {
        const double demand = step * static_cast<double>(j * 3);
        const ConfigProfile *lane = &ref;
        PerfModel::OperatingPoint t_op;
        tabled.operatingPointBatch(&lane, &demand, 1, &t_op);
        expectPointsIdentical(
            t_op, exact.operatingPointAt(ref, demand), ref, demand);
    }
    // Demands past the grid fall back to the exact batched solve.
    const double beyond = ref.goodputTps * 5.0;
    const ConfigProfile *lane = &ref;
    PerfModel::OperatingPoint t_op;
    tabled.operatingPointBatch(&lane, &beyond, 1, &t_op);
    expectPointsIdentical(
        t_op, exact.operatingPointAt(ref, beyond), ref, beyond);
}

TEST(PerfOpBatch, CopiedModelKeepsTableMode)
{
    PerfModel tabled = makeModel();
    const ConfigProfile ref = tabled.profile(referenceConfig());
    tabled.enableOperatingPointTable(ref.goodputTps / 64.0,
                                     ref.goodputTps);
    const PerfModel copy(tabled);
    EXPECT_TRUE(copy.operatingPointTableEnabled());
    PerfModel assigned = makeModel();
    assigned = tabled;
    EXPECT_TRUE(assigned.operatingPointTableEnabled());
}

} // namespace
} // namespace tapas
