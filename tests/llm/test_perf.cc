/**
 * @file
 * Property tests for the analytic performance model. The core suite
 * verifies every direction in the paper's Table 1 across the config
 * space using parameterized sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "llm/perf.hh"

namespace tapas {
namespace {

PerfModel
makeModel()
{
    return PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
}

TEST(PerfModel, ReferenceProfileIsSane)
{
    const PerfModel model = makeModel();
    const ConfigProfile ref = model.profile(referenceConfig());
    // Prefill in the thousands of tokens/s on 8xA100 for 70B.
    EXPECT_GT(ref.prefill.throughputTps, 2000.0);
    EXPECT_LT(ref.prefill.throughputTps, 50000.0);
    // Decode at batch 64 also thousands of tokens/s.
    EXPECT_GT(ref.decode.throughputTps, 500.0);
    // Batch-1 decode tens of tokens/s.
    EXPECT_GT(ref.decodeTpsAt(1), 20.0);
    EXPECT_LT(ref.decodeTpsAt(1), 200.0);
    EXPECT_GT(ref.goodputTps, 0.0);
    EXPECT_DOUBLE_EQ(ref.quality, 1.0);
}

TEST(PerfModel, SloAnchorsOnReference)
{
    const PerfModel model = makeModel();
    const ConfigProfile ref = model.profile(referenceConfig());
    EXPECT_NEAR(model.slo().ttftS, 5.0 * ref.unloadedTtftS, 1e-9);
    EXPECT_NEAR(model.slo().tbtS, 5.0 * ref.unloadedTbtS, 1e-9);
}

TEST(PerfModel, DecodeStepTimeAffineInBatch)
{
    const PerfModel model = makeModel();
    const ConfigProfile ref = model.profile(referenceConfig());
    const double t1 = 1.0 / ref.decodeTpsAt(1);
    const double t2 = 2.0 / ref.decodeTpsAt(2);
    const double t3 = 3.0 / ref.decodeTpsAt(3);
    EXPECT_NEAR(t2 - t1, t3 - t2, 1e-12);
}

TEST(PerfModel, BatchingImprovesDecodeThroughput)
{
    const PerfModel model = makeModel();
    const ConfigProfile ref = model.profile(referenceConfig());
    EXPECT_GT(ref.decodeTpsAt(64), 10.0 * ref.decodeTpsAt(1));
}

// --- Table 1 direction properties ---------------------------------

/** Table 1 row: Model size down => perf up, power down, quality down. */
TEST(Table1, SmallerModelFasterCoolerWorse)
{
    const PerfModel model = makeModel();
    InstanceConfig big = referenceConfig();
    InstanceConfig small = big;
    small.model = ModelSize::B7;
    const ConfigProfile pb = model.profile(big);
    const ConfigProfile ps = model.profile(small);
    EXPECT_GT(ps.prefill.throughputTps, pb.prefill.throughputTps);
    EXPECT_GT(ps.decode.throughputTps, pb.decode.throughputTps);
    EXPECT_LT(ps.quality, pb.quality);
    // Same TP/freq => same per-GPU saturated power, but the smaller
    // model reaches a given token rate at far lower utilization, so
    // power at equal load drops.
    const double demand = 0.5 * pb.goodputTps;
    const double util_big = demand / pb.capacityTps;
    const double util_small = demand / ps.capacityTps;
    EXPECT_LT(util_small, util_big);
    EXPECT_LT(model.estimateServerPower(ps, util_small).value(),
              model.estimateServerPower(pb, util_big).value());
}

/** Table 1 row: Quantization down => perf up, power down, quality
 * slightly down. */
TEST(Table1, QuantizationFasterCoolerSlightlyWorse)
{
    const PerfModel model = makeModel();
    InstanceConfig fp16 = referenceConfig();
    InstanceConfig fp8 = fp16;
    fp8.quant = Quantization::FP8;
    const ConfigProfile p16 = model.profile(fp16);
    const ConfigProfile p8 = model.profile(fp8);
    EXPECT_GT(p8.prefill.throughputTps, p16.prefill.throughputTps);
    EXPECT_GT(p8.decode.throughputTps, p16.decode.throughputTps);
    EXPECT_LT(p8.quality, p16.quality);
    EXPECT_GT(p8.quality, 0.9 * p16.quality);
}

/** Table 1 row: TP8 -> TP2 => perf down, hottest-GPU temp up,
 * server power down, quality unchanged. */
TEST(Table1, NarrowTpConcentratesHeat)
{
    const PerfModel model = makeModel();
    InstanceConfig wide = referenceConfig();
    wide.quant = Quantization::FP8; // so TP2 is feasible
    InstanceConfig narrow = wide;
    narrow.tensorParallel = 2;
    const ConfigProfile pw = model.profile(wide);
    const ConfigProfile pn = model.profile(narrow);
    // Fewer GPUs => lower aggregate throughput.
    EXPECT_LT(pn.prefill.throughputTps, pw.prefill.throughputTps);
    // Per-GPU power rises (hottest GPU gets hotter).
    EXPECT_GT(pn.prefill.gpuPower.value(),
              pw.prefill.gpuPower.value());
    // Whole-server power at saturation falls (fewer active GPUs).
    EXPECT_LT(model.estimateServerPower(pn, 1.0).value(),
              model.estimateServerPower(pw, 1.0).value());
    EXPECT_DOUBLE_EQ(pn.quality, pw.quality);
}

/** Table 1 row: Frequency down => perf down, power down (super-
 * linearly), quality unchanged. */
TEST(Table1, FrequencyScalingTradesPerfForPower)
{
    const PerfModel model = makeModel();
    InstanceConfig fast = referenceConfig();
    InstanceConfig slow = fast;
    slow.freqFrac = 0.6;
    const ConfigProfile pf = model.profile(fast);
    const ConfigProfile ps = model.profile(slow);
    EXPECT_LT(ps.prefill.throughputTps, pf.prefill.throughputTps);
    EXPECT_LT(ps.prefill.gpuPower.value(),
              pf.prefill.gpuPower.value());
    EXPECT_DOUBLE_EQ(ps.quality, pf.quality);
    // Power drops faster than performance (the DVFS win).
    const double perf_ratio =
        ps.prefill.throughputTps / pf.prefill.throughputTps;
    const double dyn_f = pf.prefill.gpuPower.value() - 60.0;
    const double dyn_s = ps.prefill.gpuPower.value() - 60.0;
    EXPECT_LT(dyn_s / dyn_f, perf_ratio);
}

/** Table 1 row: Batch down => perf down, power down; decode memory
 * gets relatively hotter (more fetch overhead). */
TEST(Table1, SmallBatchCoolerButMoreMemBound)
{
    const PerfModel model = makeModel();
    InstanceConfig big = referenceConfig();
    InstanceConfig small = big;
    small.maxBatchSize = 1;
    const ConfigProfile pb = model.profile(big);
    const ConfigProfile ps = model.profile(small);
    EXPECT_LT(ps.decode.throughputTps, pb.decode.throughputTps);
    EXPECT_LT(ps.decode.gpuPower.value(),
              pb.decode.gpuPower.value());
    EXPECT_GT(ps.decode.memBoundFrac, pb.decode.memBoundFrac);
}

/** Prefill draws more power than decode (compute vs memory bound). */
TEST(Table1, PrefillHotterThanDecode)
{
    const PerfModel model = makeModel();
    for (const ConfigProfile &profile : model.allProfiles()) {
        EXPECT_GE(profile.prefill.gpuPower.value(),
                  profile.decode.gpuPower.value())
            << profile.config.label();
        EXPECT_LT(profile.prefill.memBoundFrac,
                  profile.decode.memBoundFrac);
    }
}

// --- Sweeps across the whole space --------------------------------

class ProfileSweep
    : public ::testing::TestWithParam<InstanceConfig>
{
};

TEST_P(ProfileSweep, InvariantsHold)
{
    const PerfModel model = makeModel();
    const ConfigProfile profile = model.profile(GetParam());
    EXPECT_GT(profile.prefill.throughputTps, 0.0);
    EXPECT_GT(profile.decode.throughputTps, 0.0);
    EXPECT_GT(profile.quality, 0.0);
    EXPECT_LE(profile.quality, 1.0);
    EXPECT_GE(profile.goodputTps, 0.0);
    EXPECT_LE(profile.goodputTps, profile.capacityTps + 1e-9);
    EXPECT_GT(profile.unloadedTtftS, 0.0);
    EXPECT_GT(profile.unloadedTbtS, 0.0);
    // Per-GPU power bounded by the envelope (with concentration
    // factor never exceeding max).
    EXPECT_LE(profile.prefill.gpuPower.value(), 400.0 * 1.01);
    EXPECT_GE(profile.decode.gpuPower.value(), 60.0);
    // Server power estimates bounded by TDP.
    EXPECT_LE(model.estimateServerPower(profile, 1.0).value(),
              ServerSpec::a100().tdp().value() + 1e-6);
    EXPECT_GE(model.estimateServerPower(profile, 0.0).value(),
              ServerSpec::a100().chassisIdlePower.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllFeasibleConfigs, ProfileSweep,
    ::testing::ValuesIn(ConfigSpace::enumerate(ServerSpec::a100())),
    [](const ::testing::TestParamInfo<InstanceConfig> &info) {
        std::string name = info.param.label();
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

// --- Pareto frontier ----------------------------------------------

TEST(Pareto, FrontierIsNonDominatedAndSorted)
{
    const PerfModel model = makeModel();
    const auto profiles = model.allProfiles();
    for (bool use_power : {false, true}) {
        const auto frontier =
            PerfModel::paretoFrontier(profiles, use_power);
        ASSERT_FALSE(frontier.empty());
        auto metric = [&](const ConfigProfile &p) {
            return use_power
                ? p.prefill.gpuPower.value() * p.activeGpus
                : p.prefill.gpuPower.value();
        };
        for (std::size_t i = 1; i < frontier.size(); ++i) {
            EXPECT_GE(frontier[i].goodputTps,
                      frontier[i - 1].goodputTps);
            // Strictly better goodput must cost metric (otherwise
            // the previous point would be dominated).
            EXPECT_GE(metric(frontier[i]),
                      metric(frontier[i - 1]) - 1e-9);
        }
        // No frontier point dominated by any profile.
        for (const ConfigProfile &f : frontier) {
            for (const ConfigProfile &other : profiles) {
                const bool dominates =
                    other.goodputTps > f.goodputTps &&
                    metric(other) < metric(f);
                EXPECT_FALSE(dominates)
                    << other.config.label() << " dominates "
                    << f.config.label();
            }
        }
    }
}

TEST(Pareto, FrontierContainsReferenceClassConfig)
{
    // The highest-goodput point should be a large-batch config.
    const PerfModel model = makeModel();
    const auto frontier =
        PerfModel::paretoFrontier(model.allProfiles(), true);
    EXPECT_GE(frontier.back().config.maxBatchSize, 16);
}

TEST(Pareto, SinglePassSweepMatchesAllPairsScan)
{
    // Pin the sorted single-pass frontier against the original
    // all-pairs dominance scan, element for element — including the
    // order of goodput ties, which the final sort (stable only by
    // accident of input order) preserves from the input sequence.
    const PerfModel model = makeModel();
    for (bool use_power : {false, true}) {
        const auto profiles = model.allProfiles();
        auto metric = [&](const ConfigProfile &p) {
            return use_power
                ? p.prefill.gpuPower.value() * p.activeGpus
                : p.prefill.gpuPower.value();
        };
        std::vector<ConfigProfile> reference;
        for (const ConfigProfile &p : profiles) {
            if (p.goodputTps <= 0.0)
                continue;
            bool dominated = false;
            for (const ConfigProfile &other : profiles) {
                if (other.goodputTps <= 0.0)
                    continue;
                if ((other.goodputTps > p.goodputTps &&
                     metric(other) <= metric(p)) ||
                    (other.goodputTps == p.goodputTps &&
                     metric(other) < metric(p))) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                reference.push_back(p);
        }
        std::sort(reference.begin(), reference.end(),
                  [](const ConfigProfile &a, const ConfigProfile &b) {
                      return a.goodputTps < b.goodputTps;
                  });

        const auto frontier =
            PerfModel::paretoFrontier(profiles, use_power);
        ASSERT_EQ(frontier.size(), reference.size())
            << "use_power=" << use_power;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_EQ(frontier[i].config.label(),
                      reference[i].config.label())
                << "use_power=" << use_power << " index " << i;
            EXPECT_EQ(frontier[i].goodputTps,
                      reference[i].goodputTps);
        }
    }
}

TEST(PerfModel, H100OutperformsA100)
{
    const PerfModel a100 = makeModel();
    const PerfModel h100 = PerfModel::withReferenceSlo(
        ServerSpec::h100(), PerfParams::forSku(GpuSku::H100));
    const ConfigProfile pa = a100.profile(referenceConfig());
    const ConfigProfile ph = h100.profile(referenceConfig());
    EXPECT_GT(ph.prefill.throughputTps, pa.prefill.throughputTps);
    EXPECT_GT(ph.decode.throughputTps, pa.decode.throughputTps);
}

TEST(PerfModel, MixMemBoundFracBetweenPhases)
{
    const PerfModel model = makeModel();
    const ConfigProfile ref = model.profile(referenceConfig());
    const double mix = model.mixMemBoundFrac(ref);
    EXPECT_GT(mix, ref.prefill.memBoundFrac);
    EXPECT_LT(mix, ref.decode.memBoundFrac);
}

} // namespace
} // namespace tapas
