/**
 * @file
 * Unit tests for the continuous-batching inference engine: FIFO
 * latency behavior, batching limits, SLO accounting, reconfiguration
 * drains/blackouts, and token conservation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "llm/engine.hh"

namespace tapas {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : model(PerfModel::withReferenceSlo(
              ServerSpec::a100(), PerfParams::forSku(GpuSku::A100))),
          profile(model.profile(referenceConfig())),
          engine(profile, model.slo())
    {}

    Request
    makeRequest(std::uint32_t id, double arrival, int prompt = 512,
                int output = 128)
    {
        Request r;
        r.id = RequestId(id);
        r.endpoint = EndpointId(0);
        r.customer = CustomerId(id % 5);
        r.arrivalS = arrival;
        r.promptTokens = prompt;
        r.outputTokens = output;
        return r;
    }

    PerfModel model;
    ConfigProfile profile;
    InferenceEngine engine;
};

TEST_F(EngineTest, SingleRequestUnloadedLatency)
{
    engine.enqueue(makeRequest(1, 0.0));
    engine.step(0.0, 60.0);
    ASSERT_EQ(engine.lastCompletions().size(), 1u);
    const CompletedRequest &done = engine.lastCompletions().front();
    // Unloaded TTFT = prompt / prefill rate (no decode contention).
    EXPECT_NEAR(done.ttftS, 512.0 / profile.prefill.throughputTps,
                1e-6);
    // Unloaded TBT = batch-1 step time.
    EXPECT_NEAR(done.tbtS, profile.unloadedTbtS, 1e-6);
    EXPECT_TRUE(done.metSlo);
    EXPECT_DOUBLE_EQ(done.quality, 1.0);
}

TEST_F(EngineTest, CompletionAccountingMatchesTokens)
{
    engine.enqueue(makeRequest(1, 0.0, 100, 10));
    engine.enqueue(makeRequest(2, 0.0, 200, 20));
    engine.step(0.0, 120.0);
    EXPECT_EQ(engine.stats().completed, 2u);
    // Total tokens processed = prompts + (outputs - 1 first tokens
    // are emitted at prefill completion; engine counts decode work).
    EXPECT_NEAR(engine.stats().totalTokens,
                100.0 + 9.0 + 200.0 + 19.0, 1.0);
}

TEST_F(EngineTest, FifoOrderingOfFirstTokens)
{
    engine.enqueue(makeRequest(1, 0.0));
    engine.enqueue(makeRequest(2, 0.0));
    engine.enqueue(makeRequest(3, 0.0));
    engine.step(0.0, 60.0);
    ASSERT_EQ(engine.stats().completed, 3u);
    // All three arrived together; the first enqueued must see the
    // smallest TTFT.
    double prev = -1.0;
    for (const CompletedRequest &done : engine.lastCompletions()) {
        if (done.request.id.index == 1) {
            EXPECT_LT(done.ttftS, engine.slo().ttftS);
        }
        EXPECT_GT(done.ttftS, prev);
        prev = done.ttftS;
    }
}

TEST_F(EngineTest, QueueingInflatesTtft)
{
    for (std::uint32_t i = 0; i < 10; ++i)
        engine.enqueue(makeRequest(i, 0.0));
    engine.step(0.0, 300.0);
    ASSERT_EQ(engine.stats().completed, 10u);
    const double first = engine.stats().ttftS.quantile(0.0);
    const double last = engine.stats().ttftS.quantile(1.0);
    EXPECT_GT(last, 3.0 * first);
}

TEST_F(EngineTest, BatchSizeOneSerializesRequests)
{
    PerfModel small_model(model.spec(), model.params(), model.slo());
    InstanceConfig config = referenceConfig();
    config.maxBatchSize = 1;
    InferenceEngine serial(small_model.profile(config), model.slo());
    Request a = makeRequest(1, 0.0, 512, 64);
    Request b = makeRequest(2, 0.0, 512, 64);
    serial.enqueue(a);
    serial.enqueue(b);
    serial.step(0.0, 600.0);
    ASSERT_EQ(serial.stats().completed, 2u);
    const auto &dones = serial.lastCompletions();
    // Second request cannot start prefill until the first finishes.
    const double first_finish =
        std::min(dones[0].finishS, dones[1].finishS);
    double second_ttft_time = 0.0;
    for (const auto &done : dones) {
        if (done.request.id.index == 2)
            second_ttft_time = done.ttftS;
    }
    EXPECT_GE(second_ttft_time, first_finish - 1e-6);
}

TEST_F(EngineTest, StepBoundaryDoesNotChangeResults)
{
    // Process identical workloads with one big step vs many small
    // ones; completions must match (continuous-time correctness).
    InferenceEngine coarse(profile, model.slo());
    InferenceEngine fine(profile, model.slo());
    for (std::uint32_t i = 0; i < 6; ++i) {
        coarse.enqueue(makeRequest(i, 0.0));
        fine.enqueue(makeRequest(i, 0.0));
    }
    coarse.step(0.0, 100.0);
    double t = 0.0;
    while (t < 100.0) {
        fine.step(t, t + 0.5);
        t += 0.5;
    }
    ASSERT_EQ(coarse.stats().completed, fine.stats().completed);
    EXPECT_NEAR(coarse.stats().ttftS.p99(), fine.stats().ttftS.p99(),
                1e-6);
    EXPECT_NEAR(coarse.stats().totalTokens, fine.stats().totalTokens,
                1e-3);
}

TEST_F(EngineTest, UtilizationReflectsLoad)
{
    engine.step(0.0, 10.0);
    EXPECT_DOUBLE_EQ(engine.lastUtilization(), 0.0);
    engine.enqueue(makeRequest(1, 10.0, 4096, 512));
    engine.step(10.0, 11.0);
    EXPECT_GT(engine.lastUtilization(), 0.9);
}

TEST_F(EngineTest, PrefillShareTracksPhase)
{
    // A prompt-heavy request keeps the engine in prefill.
    engine.enqueue(makeRequest(1, 0.0, 8192, 2));
    engine.step(0.0, 1.0);
    EXPECT_GT(engine.lastPrefillShare(), 0.9);
}

TEST_F(EngineTest, SloViolationCounted)
{
    // Swamp the engine far past its SLO headroom.
    for (std::uint32_t i = 0; i < 200; ++i)
        engine.enqueue(makeRequest(i, 0.0));
    double t = 0.0;
    while (t < 600.0) {
        engine.step(t, t + 5.0);
        t += 5.0;
    }
    EXPECT_GT(engine.stats().sloViolations, 0u);
    EXPECT_LT(engine.stats().goodputTokens,
              engine.stats().totalTokens);
}

TEST_F(EngineTest, ImmediateReconfigForFreqChange)
{
    InstanceConfig slower = referenceConfig();
    slower.freqFrac = 0.7;
    engine.requestReconfig(model.profile(slower), 30.0);
    EXPECT_TRUE(engine.accepting());
    EXPECT_FALSE(engine.reconfiguring());
    EXPECT_DOUBLE_EQ(engine.profile().config.freqFrac, 0.7);
}

TEST_F(EngineTest, ModelChangeDrainsThenBlacksOut)
{
    engine.enqueue(makeRequest(1, 0.0, 512, 256));
    engine.step(0.0, 0.1);
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B7;
    engine.requestReconfig(model.profile(smaller), 20.0);
    EXPECT_FALSE(engine.accepting());

    // Drain completes, blackout holds for 20 s after the drain.
    double t = 0.1;
    double drained_at = -1.0;
    while (t < 120.0) {
        engine.step(t, t + 0.5);
        if (drained_at < 0.0 && !engine.lastCompletions().empty())
            drained_at = engine.lastCompletions().front().finishS;
        t += 0.5;
    }
    ASSERT_GT(drained_at, 0.0);
    EXPECT_TRUE(engine.accepting());
    EXPECT_EQ(engine.profile().config.model, ModelSize::B7);

    // Requests served after the switch carry the new quality.
    engine.enqueue(makeRequest(2, t, 128, 8));
    engine.step(t, t + 30.0);
    ASSERT_FALSE(engine.lastCompletions().empty());
    EXPECT_LT(engine.lastCompletions().front().quality, 0.7);
}

TEST_F(EngineTest, BlackoutBlocksWorkForReloadDelay)
{
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B13;
    engine.requestReconfig(model.profile(smaller), 15.0);
    // Engine was idle: blackout starts at the next step.
    engine.step(0.0, 1.0);
    EXPECT_FALSE(engine.accepting());
    engine.step(1.0, 10.0);
    EXPECT_FALSE(engine.accepting());
    engine.step(10.0, 20.0);
    EXPECT_TRUE(engine.accepting());
    EXPECT_EQ(engine.profile().config.model, ModelSize::B13);
}

TEST_F(EngineTest, EnqueueDuringReconfigPanics)
{
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B7;
    engine.requestReconfig(model.profile(smaller), 5.0);
    EXPECT_DEATH(engine.enqueue(makeRequest(9, 0.0)), "accepting");
}

TEST_F(EngineTest, LoadFractionGrowsWithQueue)
{
    const double empty = engine.loadFraction(60.0);
    EXPECT_DOUBLE_EQ(empty, 0.0);
    for (std::uint32_t i = 0; i < 50; ++i)
        engine.enqueue(makeRequest(i, 0.0));
    EXPECT_GT(engine.loadFraction(60.0), empty);
}

TEST_F(EngineTest, GoodputCountsOnlySloCompliantTokens)
{
    engine.enqueue(makeRequest(1, 0.0, 100, 10));
    engine.step(0.0, 60.0);
    ASSERT_EQ(engine.stats().completed, 1u);
    EXPECT_TRUE(engine.lastCompletions().front().metSlo);
    EXPECT_DOUBLE_EQ(engine.stats().goodputTokens, 110.0);
}

} // namespace
} // namespace tapas
