/**
 * @file
 * Contention smoke test for the PerfModel's two lock domains: the
 * profile cache (cacheMutex) and the lazily grown operating-point
 * table (opTableMutex). Shared-pool workers hammer profile() and the
 * table-backed operatingPointBatch() concurrently while a driver
 * thread reads the cache counters. Functionally it pins that results
 * under contention match a serial reference; its real teeth are the
 * TSan leg of scripts/check.sh, where any lock-discipline regression
 * in perf.cc surfaces as a reported race.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/threadpool.hh"
#include "llm/perf.hh"

namespace tapas {
namespace {

PerfModel
makeTableModel()
{
    PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    // Coarse grid: the point is concurrent lazy growth under
    // opTableMutex, not interpolation accuracy (test_perf_op_batch
    // pins that).
    perf.enableOperatingPointTable(50.0, 4000.0);
    return perf;
}

TEST(PerfContention, ConcurrentProfileAndTableSolvesMatchSerial)
{
    const PerfModel perf = makeTableModel();

    // Serial reference on an identical model: the batch solves below
    // must reproduce these bit for bit regardless of which worker
    // first populated each lazily built per-config grid. The profile
    // space comes from the reference so perf's cache counters start
    // at an accountable baseline.
    const PerfModel reference = makeTableModel();
    const std::vector<ConfigProfile> space =
        reference.allProfiles();
    ASSERT_FALSE(space.empty());
    const std::size_t lanes = space.size();
    std::vector<std::uint32_t> idx(lanes);
    std::vector<double> demands(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        idx[i] = static_cast<std::uint32_t>(i);
        demands[i] =
            space[i].goodputTps * (0.25 + 0.5 * double(i % 3));
    }
    std::vector<PerfModel::OperatingPoint> expected(lanes);
    reference.operatingPointBatch(space.data(), idx.data(),
                                  demands.data(), lanes,
                                  expected.data());

    ThreadPool &pool = ThreadPool::shared();
    const std::uint64_t baseCalls =
        perf.profileCacheHits() + perf.profileCacheMisses();
    constexpr std::size_t kRounds = 64;
    std::vector<int> mismatches(kRounds, 0);
    pool.parallelFor(kRounds, [&](std::size_t round) {
        // Table-backed batch solve: first arrivals race to build the
        // per-config grids under opTableMutex, later ones read them.
        std::vector<PerfModel::OperatingPoint> got(lanes);
        perf.operatingPointBatch(space.data(), idx.data(),
                                 demands.data(), lanes, got.data());
        int bad = 0;
        for (std::size_t i = 0; i < lanes; ++i) {
            if (got[i].busyFrac != expected[i].busyFrac ||
                got[i].gpuPower.value() !=
                    expected[i].gpuPower.value() ||
                got[i].serverPower.value() !=
                    expected[i].serverPower.value()) {
                ++bad;
            }
        }
        // profile() contends on cacheMutex: every round queries the
        // whole space, so hits and misses interleave across workers.
        for (std::size_t i = 0; i < lanes; ++i) {
            const ConfigProfile p =
                perf.profile(space[(i + round) % lanes].config);
            if (!(p.capacityTps > 0.0))
                ++bad;
        }
        mismatches[round] = bad;
    });

    for (std::size_t round = 0; round < kRounds; ++round)
        EXPECT_EQ(mismatches[round], 0) << "round " << round;

    // Counter accounting stays exact under contention: every
    // profile() call above is either a hit or a miss.
    EXPECT_EQ(perf.profileCacheHits() + perf.profileCacheMisses(),
              baseCalls + kRounds * lanes);
}

TEST(PerfContention, CounterReadsRaceWithWorkers)
{
    const PerfModel perf = makeTableModel();
    const std::vector<InstanceConfig> space =
        ConfigSpace::enumerate(perf.spec());
    ASSERT_FALSE(space.empty());

    // Reads of the locked counter accessors from the driver while
    // workers mutate the cache: TSan validates the accessors really
    // take cacheMutex (the pre-annotation code read them bare).
    ThreadPool &pool = ThreadPool::shared();
    const std::uint64_t base =
        perf.profileCacheHits() + perf.profileCacheMisses();
    pool.parallelFor(32, [&](std::size_t i) {
        perf.profile(space[i % space.size()]);
        // Unsynchronized-by-design driver-style read from a worker;
        // safe because the accessors lock cacheMutex internally.
        (void)perf.profileCacheHits();
    });
    const std::uint64_t observed =
        perf.profileCacheHits() + perf.profileCacheMisses();
    EXPECT_EQ(observed, base + 32u);
}

} // namespace
} // namespace tapas
