/**
 * @file
 * The PerfModel profile cache must be invisible: cached profiles are
 * identical to fresh derivations, hit/miss counters account for every
 * query, and copies carry independent caches.
 */

#include <gtest/gtest.h>

#include "llm/perf.hh"

namespace tapas {
namespace {

void
expectProfilesEqual(const ConfigProfile &a, const ConfigProfile &b)
{
    EXPECT_TRUE(a.config == b.config);
    EXPECT_DOUBLE_EQ(a.goodputTps, b.goodputTps);
    EXPECT_DOUBLE_EQ(a.capacityTps, b.capacityTps);
    EXPECT_DOUBLE_EQ(a.quality, b.quality);
    EXPECT_DOUBLE_EQ(a.unloadedTtftS, b.unloadedTtftS);
    EXPECT_DOUBLE_EQ(a.unloadedTbtS, b.unloadedTbtS);
    EXPECT_DOUBLE_EQ(a.decodeWeightS, b.decodeWeightS);
    EXPECT_DOUBLE_EQ(a.decodeKvS, b.decodeKvS);
    EXPECT_EQ(a.activeGpus, b.activeGpus);
    EXPECT_DOUBLE_EQ(a.prefill.throughputTps,
                     b.prefill.throughputTps);
    EXPECT_DOUBLE_EQ(a.prefill.gpuPower.value(),
                     b.prefill.gpuPower.value());
    EXPECT_DOUBLE_EQ(a.decode.throughputTps,
                     b.decode.throughputTps);
    EXPECT_DOUBLE_EQ(a.decode.gpuPower.value(),
                     b.decode.gpuPower.value());
}

TEST(PerfProfileCache, CachedProfilesMatchUncachedModel)
{
    const PerfModel cached = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    const PerfModel reference = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));

    for (const InstanceConfig &config :
         ConfigSpace::enumerate(cached.spec())) {
        // Query the cached model twice: the second hit must return
        // exactly what a fresh model computes.
        const ConfigProfile first = cached.profile(config);
        const ConfigProfile second = cached.profile(config);
        const ConfigProfile fresh = reference.profile(config);
        expectProfilesEqual(first, second);
        expectProfilesEqual(second, fresh);
    }
}

TEST(PerfProfileCache, CountsHitsAndMisses)
{
    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    const std::uint64_t base_misses = perf.profileCacheMisses();
    const std::uint64_t base_hits = perf.profileCacheHits();

    const InstanceConfig config = referenceConfig();
    perf.profile(config);
    EXPECT_EQ(perf.profileCacheMisses(), base_misses + 1);
    perf.profile(config);
    perf.profile(config);
    EXPECT_EQ(perf.profileCacheMisses(), base_misses + 1);
    EXPECT_EQ(perf.profileCacheHits(), base_hits + 2);

    // A different config misses again.
    InstanceConfig other = config;
    other.freqFrac = 0.8;
    perf.profile(other);
    EXPECT_EQ(perf.profileCacheMisses(), base_misses + 2);
}

TEST(PerfProfileCache, AllProfilesUsesCacheOnRepeat)
{
    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    const auto first = perf.allProfiles();
    const std::uint64_t misses_after_first =
        perf.profileCacheMisses();
    const auto second = perf.allProfiles();
    // No new derivations on the second enumeration.
    EXPECT_EQ(perf.profileCacheMisses(), misses_after_first);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectProfilesEqual(first[i], second[i]);
}

} // namespace
} // namespace tapas
