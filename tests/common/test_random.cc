/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.hh"

namespace tapas {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 9);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 9);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, GaussianFastMomentsAndTail)
{
    // The ziggurat path must produce the same distribution as the
    // Box-Muller path: standard moments, symmetric, with a real
    // tail beyond the ziggurat's base layer boundary (|x| > 3.44).
    Rng rng(29);
    double sum = 0.0;
    double sq = 0.0;
    double cube = 0.0;
    int tail = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussianFast();
        sum += g;
        sq += g * g;
        cube += g * g * g;
        if (std::abs(g) > 3.442619855899)
            ++tail;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.01);
    EXPECT_NEAR(cube / n, 0.0, 0.05);
    // P(|N| > 3.4426) ~ 5.76e-4.
    EXPECT_GT(tail, n * 2.0e-4);
    EXPECT_LT(tail, n * 1.5e-3);
}

TEST(Rng, GaussianFastDeterministicPerSeed)
{
    Rng a(77);
    Rng b(77);
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(a.gaussianFast(), b.gaussianFast());
}

TEST(Rng, GaussianFastShiftScale)
{
    Rng rng(31);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussianFast(10.0, 2.0);
        sum += g;
        sq += (g - 10.0) * (g - 10.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.02);
    EXPECT_NEAR(sq / n, 4.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(31);
    std::vector<double> vals;
    const int n = 100001;
    vals.reserve(n);
    for (int i = 0; i < n; ++i)
        vals.push_back(rng.logNormal(1.0, 0.5));
    std::sort(vals.begin(), vals.end());
    // Median of lognormal is exp(mu).
    EXPECT_NEAR(vals[n / 2], std::exp(1.0), 0.08);
}

TEST(Rng, ParetoRespectsScale)
{
    Rng rng(37);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoIsHeavyTailed)
{
    Rng rng(41);
    int beyond_10x = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.pareto(1.0, 1.1) > 10.0)
            ++beyond_10x;
    }
    // P(X > 10) = 10^-1.1 ~ 7.9%.
    EXPECT_NEAR(beyond_10x / static_cast<double>(n), 0.079, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(43);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(47);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(3.5);
    EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalPath)
{
    Rng rng(53);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(200.0);
    EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(59);
    EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(61);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ZipfRankOneMostFrequent)
{
    Rng rng(67);
    std::vector<int> counts(11, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.zipf(10, 1.2)];
    for (int k = 2; k <= 10; ++k)
        EXPECT_GT(counts[1], counts[k]);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(71);
    Rng child = parent.fork(1);
    Rng parent2(71);
    Rng child2 = parent2.fork(1);
    // Deterministic: same parent seed + stream id => same child.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child.next(), child2.next());
    // And different stream ids diverge.
    Rng parent3(71);
    Rng other = parent3.fork(2);
    int same = 0;
    Rng child3 = Rng(71).fork(1);
    for (int i = 0; i < 100; ++i) {
        if (child3.next() == other.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, MixSeedSensitiveToBothInputs)
{
    EXPECT_NE(mixSeed(1, 2), mixSeed(1, 3));
    EXPECT_NE(mixSeed(1, 2), mixSeed(2, 2));
    EXPECT_EQ(mixSeed(5, 9), mixSeed(5, 9));
}

} // namespace
} // namespace tapas
