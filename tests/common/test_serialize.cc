/**
 * @file
 * Unit tests for the versioned binary serialization layer: Archive
 * round-trips, CRC32 reference vectors, atomic file replacement, and
 * the checkpoint container's rejection of every corruption class
 * (truncation, bit flips, bad magic, future versions, trailing
 * garbage) as a structured tapas::Error.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace tapas {
namespace {

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(Serialize, Crc32ReferenceVectors)
{
    // IEEE 802.3 check value for the canonical "123456789" input.
    const char check[] = "123456789";
    EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    const char a[] = "a";
    EXPECT_EQ(crc32(a, 1), 0xE8B7BE43u);
}

TEST(Serialize, Fnv1a64ReferenceVectors)
{
    // Standard FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
    const char a[] = "a";
    EXPECT_EQ(fnv1a64(a, 1), 0xaf63dc4c8601ec8cull);
    // Chaining: digest("ab") == digest("b" seeded with digest("a")).
    const char ab[] = "ab";
    const char b[] = "b";
    EXPECT_EQ(fnv1a64(ab, 2), fnv1a64(b, 1, fnv1a64(a, 1)));
}

TEST(Serialize, ArchiveRoundTripsPrimitives)
{
    Archive w = Archive::writer();
    std::uint64_t u = 0xdeadbeefcafe1234ull;
    std::int64_t i = -77;
    double d = 3.141592653589793;
    float f = 2.5f;
    bool t = true, fa = false;
    std::uint8_t byte = 0x7f;
    std::string s = "hello checkpoint";
    std::size_t n = 42;
    ServerId sid(17);
    std::vector<double> pod = {1.0, -2.0, 0.25};
    std::deque<int> dq = {3, 1, 4};
    w.value(u);
    w.value(i);
    w.value(d);
    w.value(f);
    w.value(t);
    w.value(fa);
    w.value(byte);
    w.str(s);
    w.count(n);
    w.value(sid);
    w.podVector(pod);
    w.eachDeque(dq, [](Archive &ar, int &v) { ar.value(v); });
    ASSERT_TRUE(w.ok());

    Archive r = Archive::reader(w.buffer());
    std::uint64_t u2 = 0;
    std::int64_t i2 = 0;
    double d2 = 0;
    float f2 = 0;
    bool t2 = false, fa2 = true;
    std::uint8_t byte2 = 0;
    std::string s2;
    std::size_t n2 = 0;
    ServerId sid2;
    std::vector<double> pod2;
    std::deque<int> dq2;
    r.value(u2);
    r.value(i2);
    r.value(d2);
    r.value(f2);
    r.value(t2);
    r.value(fa2);
    r.value(byte2);
    r.str(s2);
    r.count(n2);
    r.value(sid2);
    r.podVector(pod2);
    r.eachDeque(dq2, [](Archive &ar, int &v) { ar.value(v); });
    EXPECT_TRUE(r.done());
    EXPECT_EQ(u2, u);
    EXPECT_EQ(i2, i);
    EXPECT_EQ(d2, d);
    EXPECT_EQ(f2, f);
    EXPECT_TRUE(t2);
    EXPECT_FALSE(fa2);
    EXPECT_EQ(byte2, byte);
    EXPECT_EQ(s2, s);
    EXPECT_EQ(n2, n);
    EXPECT_EQ(sid2.index, sid.index);
    EXPECT_EQ(pod2, pod);
    EXPECT_EQ(dq2, dq);
}

TEST(Serialize, ArchiveReadPastEndFailsCleanly)
{
    Archive w = Archive::writer();
    std::uint32_t v = 7;
    w.value(v);

    Archive r = Archive::reader(w.buffer());
    std::uint32_t a = 0;
    std::uint64_t b = 99;
    r.value(a);
    EXPECT_TRUE(r.ok());
    r.value(b); // past end: latches failure, zero-fills
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.done());
    EXPECT_EQ(b, 0u);
    // Subsequent reads stay no-ops.
    std::uint64_t c = 55;
    r.value(c);
    EXPECT_EQ(c, 0u);
}

TEST(Serialize, ArchiveRejectsCorruptVectorCount)
{
    // A huge declared element count must fail the size guard, not
    // attempt a giant allocation.
    Archive w = Archive::writer();
    std::size_t bogus = static_cast<std::size_t>(1) << 60;
    w.count(bogus);

    Archive r = Archive::reader(w.buffer());
    std::vector<double> v;
    r.podVector(v);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(v.empty());
}

TEST(Serialize, AtomicWriteAndReadBack)
{
    const std::string path = tmpPath("serialize_atomic.bin");
    const std::string text = "first version";
    ASSERT_TRUE(atomicWriteFile(path, text).ok());
    // Replacement is atomic: no .tmp residue, new content visible.
    const std::string text2 = "second version, longer than first";
    ASSERT_TRUE(atomicWriteFile(path, text2).ok());
    EXPECT_FALSE(fileExists(path + ".tmp"));

    Result<std::string> back = readFileText(path);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), text2);
    removeFileIfExists(path);
}

TEST(Serialize, ReadMissingFileIsIoError)
{
    Result<std::vector<std::uint8_t>> r =
        readFileBytes(tmpPath("does_not_exist.bin"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Io);
    EXPECT_NE(r.error().message().find("does_not_exist"),
              std::string::npos);
}

std::vector<CheckpointSection>
sampleSections()
{
    std::vector<CheckpointSection> sections;
    CheckpointSection a;
    a.id = 1;
    a.payload = {0x01, 0x02, 0x03, 0x04, 0x05};
    CheckpointSection b;
    b.id = 7;
    b.payload.assign(300, 0xab);
    sections.push_back(a);
    sections.push_back(b);
    return sections;
}

TEST(Serialize, CheckpointFileRoundTrip)
{
    const std::string path = tmpPath("ckpt_roundtrip.tapasckp");
    const std::uint64_t digest = 0x1122334455667788ull;
    ASSERT_TRUE(
        writeCheckpointFile(path, digest, sampleSections()).ok());

    Result<CheckpointData> r = readCheckpointFile(path);
    ASSERT_TRUE(r.ok());
    const CheckpointData &data = r.value();
    EXPECT_EQ(data.version, kCheckpointFormatVersion);
    EXPECT_EQ(data.configDigest, digest);
    ASSERT_EQ(data.sections.size(), 2u);
    ASSERT_NE(data.find(1), nullptr);
    ASSERT_NE(data.find(7), nullptr);
    EXPECT_EQ(data.find(1)->payload, sampleSections()[0].payload);
    EXPECT_EQ(data.find(7)->payload.size(), 300u);
    EXPECT_EQ(data.find(2), nullptr);
    removeFileIfExists(path);
}

std::vector<std::uint8_t>
writtenCheckpointBytes(const std::string &path)
{
    EXPECT_TRUE(
        writeCheckpointFile(path, 0x42, sampleSections()).ok());
    Result<std::vector<std::uint8_t>> bytes = readFileBytes(path);
    EXPECT_TRUE(bytes.ok());
    return bytes.value();
}

TEST(Serialize, CheckpointRejectsEveryTruncationPoint)
{
    const std::string path = tmpPath("ckpt_trunc.tapasckp");
    const std::vector<std::uint8_t> good =
        writtenCheckpointBytes(path);
    ASSERT_GT(good.size(), 28u);

    // Every proper prefix must be rejected with a structured error
    // (Corrupt, or Io for the empty file) — never accepted, never
    // undefined behavior.
    for (std::size_t len = 0; len < good.size(); ++len) {
        ASSERT_TRUE(atomicWriteFile(path, good.data(), len).ok());
        Result<CheckpointData> r = readCheckpointFile(path);
        ASSERT_FALSE(r.ok()) << "accepted truncation at " << len;
        EXPECT_EQ(r.error().code(), ErrorCode::Corrupt)
            << "at length " << len;
    }
    removeFileIfExists(path);
}

TEST(Serialize, CheckpointRejectsEveryBitFlip)
{
    const std::string path = tmpPath("ckpt_flip.tapasckp");
    const std::vector<std::uint8_t> good =
        writtenCheckpointBytes(path);

    // Flip one bit per byte position across the whole file. Every
    // flip lands in a CRC-protected region (header or a section
    // frame/payload), so each one must surface as Corrupt. A flipped
    // version field reads as Version — also structured, also safe.
    for (std::size_t pos = 0; pos < good.size(); ++pos) {
        std::vector<std::uint8_t> bad = good;
        bad[pos] ^= 0x10;
        ASSERT_TRUE(
            atomicWriteFile(path, bad.data(), bad.size()).ok());
        Result<CheckpointData> r = readCheckpointFile(path);
        ASSERT_FALSE(r.ok()) << "accepted bit flip at " << pos;
        EXPECT_TRUE(r.error().code() == ErrorCode::Corrupt ||
                    r.error().code() == ErrorCode::Version)
            << "at position " << pos;
    }
    removeFileIfExists(path);
}

TEST(Serialize, CheckpointRejectsTrailingGarbage)
{
    const std::string path = tmpPath("ckpt_trailing.tapasckp");
    std::vector<std::uint8_t> bytes = writtenCheckpointBytes(path);
    bytes.push_back(0x00);
    ASSERT_TRUE(
        atomicWriteFile(path, bytes.data(), bytes.size()).ok());
    Result<CheckpointData> r = readCheckpointFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Corrupt);
    removeFileIfExists(path);
}

TEST(Serialize, CheckpointRejectsFutureVersion)
{
    const std::string path = tmpPath("ckpt_version.tapasckp");
    std::vector<std::uint8_t> bytes = writtenCheckpointBytes(path);
    // Bump the format version (offset 8, little-endian u32) and
    // re-seal the header CRC (offset 24) so ONLY the version check
    // can fire.
    bytes[8] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 1);
    const std::uint32_t crc = crc32(bytes.data(), 24);
    bytes[24] = static_cast<std::uint8_t>(crc);
    bytes[25] = static_cast<std::uint8_t>(crc >> 8);
    bytes[26] = static_cast<std::uint8_t>(crc >> 16);
    bytes[27] = static_cast<std::uint8_t>(crc >> 24);
    ASSERT_TRUE(
        atomicWriteFile(path, bytes.data(), bytes.size()).ok());
    Result<CheckpointData> r = readCheckpointFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Version);
    removeFileIfExists(path);
}

TEST(Serialize, CheckpointRejectsWrongMagic)
{
    const std::string path = tmpPath("ckpt_magic.tapasckp");
    std::vector<std::uint8_t> bytes = writtenCheckpointBytes(path);
    bytes[0] = 'X';
    ASSERT_TRUE(
        atomicWriteFile(path, bytes.data(), bytes.size()).ok());
    Result<CheckpointData> r = readCheckpointFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Corrupt);
    EXPECT_NE(r.error().message().find("magic"), std::string::npos);
    removeFileIfExists(path);
}

TEST(Serialize, ErrorResultBasics)
{
    Error ok = Error::okValue();
    EXPECT_TRUE(ok.ok());
    Error io = Error::io("disk on fire");
    EXPECT_FALSE(io.ok());
    EXPECT_EQ(io.code(), ErrorCode::Io);
    EXPECT_STREQ(io.codeName(), "io");
    EXPECT_EQ(io.message(), "disk on fire");

    Result<int> good = 5;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 5);
    Result<int> bad = Error::invalid("nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Invalid);
}

} // namespace
} // namespace tapas
