/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace tapas {
namespace {

TEST(StatAccumulator, EmptyDefaults)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, BasicMoments)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, MergeMatchesCombinedStream)
{
    StatAccumulator a;
    StatAccumulator b;
    StatAccumulator all;
    for (int i = 0; i < 50; ++i) {
        const double v = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty)
{
    StatAccumulator a;
    a.add(1.0);
    a.add(3.0);
    StatAccumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    StatAccumulator target;
    target.merge(a);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(QuantileSample, MedianOfOddSample)
{
    QuantileSample q;
    for (double v : {5.0, 1.0, 3.0})
        q.add(v);
    EXPECT_DOUBLE_EQ(q.p50(), 3.0);
}

TEST(QuantileSample, InterpolatesBetweenRanks)
{
    QuantileSample q;
    for (double v : {0.0, 10.0})
        q.add(v);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
}

TEST(QuantileSample, ExtremesAreMinMax)
{
    QuantileSample q;
    for (int i = 100; i >= 1; --i)
        q.add(i);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
}

TEST(QuantileSample, P99OfUniformRamp)
{
    QuantileSample q;
    for (int i = 0; i < 1000; ++i)
        q.add(i);
    EXPECT_NEAR(q.p99(), 989.0, 1.0);
}

TEST(QuantileSample, AddAfterQueryKeepsCorrectness)
{
    QuantileSample q;
    q.add(1.0);
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.p50(), 1.5);
    q.add(100.0);
    EXPECT_DOUBLE_EQ(q.p50(), 2.0);
}

TEST(QuantileSample, CdfEndpoints)
{
    QuantileSample q;
    for (int i = 1; i <= 10; ++i)
        q.add(i);
    const auto cdf = q.cdf(5);
    ASSERT_EQ(cdf.size(), 5u);
    EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
    EXPECT_DOUBLE_EQ(cdf.front().second, 0.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 10.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0); // clamps into first bin
    h.add(100.0);  // clamps into last bin
    EXPECT_DOUBLE_EQ(h.binWeight(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binWeight(9), 2.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
}

TEST(Histogram, WeightedQuantile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(TimeSeries, MaxMinMean)
{
    TimeSeries ts;
    ts.add(0, 1.0);
    ts.add(60, 5.0);
    ts.add(120, 3.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(ts.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
}

TEST(TimeSeries, FractionAbove)
{
    TimeSeries ts;
    for (int i = 0; i < 10; ++i)
        ts.add(i, i);
    EXPECT_DOUBLE_EQ(ts.fractionAbove(6.5), 0.3);
    EXPECT_DOUBLE_EQ(ts.fractionAbove(100.0), 0.0);
}

TEST(TimeSeries, DownsamplePreservesPeak)
{
    TimeSeries ts;
    for (int i = 0; i < 1000; ++i)
        ts.add(i, i == 567 ? 99.0 : 1.0);
    const TimeSeries down = ts.downsampleMax(10);
    EXPECT_LE(down.size(), 10u);
    EXPECT_DOUBLE_EQ(down.maxValue(), 99.0);
}

TEST(TimeSeries, DownsampleNoopWhenSmall)
{
    TimeSeries ts;
    ts.add(0, 1.0);
    ts.add(1, 2.0);
    const TimeSeries down = ts.downsampleMax(10);
    EXPECT_EQ(down.size(), 2u);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod)
{
    std::vector<double> xs;
    const std::size_t period = 24;
    for (std::size_t i = 0; i < 24 * 20; ++i)
        xs.push_back(std::sin(2.0 * M_PI * i / period));
    EXPECT_GT(autocorrelation(xs, period), 0.9);
    EXPECT_LT(autocorrelation(xs, period / 2), -0.9);
}

TEST(Autocorrelation, ShortSequenceIsZero)
{
    std::vector<double> xs = {1.0};
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 5), 0.0);
}

TEST(PearsonCorrelation, PerfectAndInverse)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
    std::vector<double> zs = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearsonCorrelation(xs, zs), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesIsZero)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

} // namespace
} // namespace tapas
