/**
 * @file
 * Unit tests for physical unit types and id types.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/types.hh"
#include "common/units.hh"

namespace tapas {
namespace {

TEST(Units, CelsiusDeltaArithmetic)
{
    Celsius t(20.0);
    const Celsius hotter = t + 5.0;
    EXPECT_DOUBLE_EQ(hotter.value(), 25.0);
    EXPECT_DOUBLE_EQ(hotter - t, 5.0);
    t += 2.5;
    EXPECT_DOUBLE_EQ(t.value(), 22.5);
    EXPECT_LT(t, hotter);
}

TEST(Units, WattsArithmetic)
{
    const Watts a(250.0);
    const Watts b(750.0);
    EXPECT_DOUBLE_EQ((a + b).value(), 1000.0);
    EXPECT_DOUBLE_EQ((b - a).value(), 500.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 500.0);
    EXPECT_DOUBLE_EQ(b / a, 3.0);
    EXPECT_DOUBLE_EQ((a + b).kilo(), 1.0);
    EXPECT_DOUBLE_EQ(kilowatts(6.5).value(), 6500.0);
}

TEST(Units, CfmArithmetic)
{
    const Cfm a(840.0);
    const Cfm b(1105.0);
    EXPECT_DOUBLE_EQ((a + b).value(), 1945.0);
    EXPECT_GT(b, a);
    EXPECT_DOUBLE_EQ((a * 0.5).value(), 420.0);
}

TEST(Ids, DefaultIsInvalid)
{
    ServerId id;
    EXPECT_FALSE(id.valid());
    EXPECT_TRUE(ServerId(3).valid());
}

TEST(Ids, EqualityAndOrdering)
{
    EXPECT_EQ(ServerId(5), ServerId(5));
    EXPECT_NE(ServerId(5), ServerId(6));
    EXPECT_LT(ServerId(5), ServerId(6));
}

TEST(Ids, Hashable)
{
    std::unordered_set<VmId> set;
    set.insert(VmId(1));
    set.insert(VmId(2));
    set.insert(VmId(1));
    EXPECT_EQ(set.size(), 2u);
}

TEST(SimTimeConstants, Relationships)
{
    EXPECT_EQ(kMinute, 60);
    EXPECT_EQ(kHour, 60 * kMinute);
    EXPECT_EQ(kDay, 24 * kHour);
    EXPECT_EQ(kWeek, 7 * kDay);
}

} // namespace
} // namespace tapas
