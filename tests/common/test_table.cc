/**
 * @file
 * Unit tests for console table and CSV output helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/table.hh"

namespace tapas {
namespace {

TEST(ConsoleTable, AlignsColumns)
{
    ConsoleTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2"});
    std::ostringstream out;
    t.print(out);
    const std::string text = out.str();
    // Header, rule, two rows.
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // Both value cells must appear after aligned padding.
    const auto header_pos = text.find("value");
    const auto row_pos = text.find("2");
    EXPECT_LT(header_pos, row_pos);
}

TEST(ConsoleTable, NumFormatting)
{
    EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ConsoleTable::num(2.0, 0), "2");
    EXPECT_EQ(ConsoleTable::pct(0.231, 1), "23.1%");
    EXPECT_EQ(ConsoleTable::pct(1.0, 0), "100%");
}

TEST(CsvWriter, RoundTripRowsWithEscaping)
{
    const std::string path = "/tmp/tapas_test_csv.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.writeRow({std::vector<std::string>{"x,y", "plain"}});
        csv.writeRow(std::vector<double>{1.5, 2.5});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "\"x,y\",plain");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::remove(path.c_str());
}

} // namespace
} // namespace tapas
