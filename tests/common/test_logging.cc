/**
 * @file
 * Unit tests for logging: level control and fatal paths.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace tapas {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeathTest, AssertMacroFiresWithContext)
{
    EXPECT_DEATH(tapas_assert(1 == 2, "math broke: %d", 7),
                 "assertion '1 == 2' failed");
}

TEST(LoggingDeathTest, AssertFailureFormatIsPinned)
{
    // The exact one-line shape every tapas_assert failure produces:
    //   panic: assertion '<expr>' failed at <file>:<line>: <message>
    // with the real expression text, this file's name, a line
    // number, and the formatted message. assertFailure is the single
    // sink behind the macro, so this death test pins the format for
    // every call site at once.
    EXPECT_DEATH(
        tapas_assert(1 + 1 == 3, "checking %s v%d", "format", 2),
        "panic: assertion '1 \\+ 1 == 3' failed at "
        ".*test_logging\\.cc:[0-9]+: checking format v2");
}

TEST(LoggingDeathTest, AssertFailureDirectCallMatchesMacro)
{
    EXPECT_DEATH(
        assertFailure("x > 0", "somefile.cc", 42, "got %d", -1),
        "panic: assertion 'x > 0' failed at somefile\\.cc:42: "
        "got -1");
}

TEST(Logging, AssertMacroPassesQuietly)
{
    tapas_assert(2 + 2 == 4, "arithmetic is sound");
    SUCCEED();
}

} // namespace
} // namespace tapas
