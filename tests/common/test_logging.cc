/**
 * @file
 * Unit tests for logging: level control and fatal paths.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace tapas {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeathTest, AssertMacroFiresWithContext)
{
    EXPECT_DEATH(tapas_assert(1 == 2, "math broke: %d", 7),
                 "assertion '1 == 2' failed");
}

TEST(Logging, AssertMacroPassesQuietly)
{
    tapas_assert(2 + 2 == 4, "arithmetic is sound");
    SUCCEED();
}

} // namespace
} // namespace tapas
