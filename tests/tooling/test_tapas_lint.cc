// Tooling suite: pins the tapas-lint contract. Each rule R1..R8 has
// a fixture mini-root under tests/tooling/fixtures/ holding known
// violations; the tests shell the linter at those roots and assert
// the exact rule IDs, violation counts, and exit codes. A regression
// in the engine (a rule that stops firing, an escape that stops
// working, an exit code drift) fails here before it can silently
// un-gate scripts/check.sh.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#ifndef TAPAS_REPO_ROOT
#error "build must define TAPAS_REPO_ROOT (see CMakeLists.txt)"
#endif
#ifndef TAPAS_PYTHON3
#error "build must define TAPAS_PYTHON3 (see CMakeLists.txt)"
#endif

struct LintRun {
    int exitCode = -1;
    std::string output; // stdout+stderr, interleaved
};

/// Run the linter with `args` appended; capture combined output.
LintRun
runLint(const std::string &args)
{
    const std::string cmd = std::string(TAPAS_PYTHON3) + " " +
                            TAPAS_REPO_ROOT "/scripts/tapas_lint.py " +
                            args + " 2>&1";
    LintRun run;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return run;
    }
    std::array<char, 4096> buf;
    while (std::fgets(buf.data(), buf.size(), pipe))
        run.output += buf.data();
    const int status = pclose(pipe);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

LintRun
runLintOnFixture(const std::string &name)
{
    return runLint("--root " TAPAS_REPO_ROOT
                   "/tests/tooling/fixtures/" + name);
}

int
countOccurrences(const std::string &haystack, const std::string &rule)
{
    // Violations print as "path:line: R<n>: message".
    const std::string needle = ": " + rule + ": ";
    int n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++n;
    }
    return n;
}

/// Assert a fixture yields exit 1 with exactly `expected` violations,
/// all of them `rule`.
void
expectFixture(const std::string &fixture, const std::string &rule,
              int expected)
{
    const LintRun run = runLintOnFixture(fixture);
    EXPECT_EQ(run.exitCode, 1) << fixture << ":\n" << run.output;
    EXPECT_EQ(countOccurrences(run.output, rule), expected)
        << fixture << ":\n" << run.output;
    for (const char *other :
         {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
        if (other == rule)
            continue;
        EXPECT_EQ(countOccurrences(run.output, other), 0)
            << fixture << " leaked " << other << ":\n" << run.output;
    }
}

TEST(TapasLint, RepoTreeIsClean)
{
    const LintRun run = runLint("");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasLint, CleanFixturePasses)
{
    // Also covers the escapes: escaped.cc holds real R2 violations
    // silenced by both lint-allow forms (same-line and block-above).
    const LintRun run = runLintOnFixture("clean");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasLint, R1DeprecatedScalarCalls)
{
    expectFixture("r1", "R1", 2);
}

TEST(TapasLint, R2Determinism)
{
    expectFixture("r2", "R2", 4);
}

TEST(TapasLint, R3HotRegionAllocations)
{
    // 3 allocations inside the region + 2 marker-hygiene violations
    // (stray end, unclosed begin); scratch receivers and the escaped
    // resize stay silent.
    expectFixture("r3", "R3", 5);
}

TEST(TapasLint, R4IostreamInLibrary)
{
    expectFixture("r4", "R4", 4);
}

TEST(TapasLint, R5HeaderGuards)
{
    expectFixture("r5", "R5", 2);
}

TEST(TapasLint, R6DisabledOrSkippedTests)
{
    expectFixture("r6", "R6", 2);
}

TEST(TapasLint, R7LockDiscipline)
{
    const LintRun run = runLintOnFixture("r7");
    expectFixture("r7", "R7", 5);
    // condition_variable_any is wrapper-compatible and must never be
    // flagged; the fixture uses it on its "allowed" line.
    EXPECT_EQ(run.output.find("condition_variable_any"),
              std::string::npos)
        << run.output;
}

TEST(TapasLint, R8RawFileIo)
{
    const LintRun run = runLintOnFixture("r8");
    expectFixture("r8", "R8", 4);
    // Read-side streams are legal (torn reads are caught by the
    // checkpoint CRC/length checks); the fixture's std::ifstream
    // line must never be flagged.
    EXPECT_EQ(run.output.find("ifstream"), std::string::npos)
        << run.output;
}

TEST(TapasLint, ViolationLinesNameFileAndLine)
{
    const LintRun run = runLintOnFixture("r5");
    EXPECT_NE(run.output.find(
                  "src/common/bad_guard.hh:3: R5:"),
              std::string::npos)
        << run.output;
}

TEST(TapasLint, JsonlEmitsOneObjectPerViolation)
{
    const LintRun run = runLint(
        "--jsonl --root " TAPAS_REPO_ROOT
        "/tests/tooling/fixtures/r5");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    int objects = 0;
    const std::string needle = "\"rule\": \"R5\"";
    for (std::size_t pos = run.output.find(needle);
         pos != std::string::npos;
         pos = run.output.find(needle, pos + needle.size())) {
        ++objects;
    }
    EXPECT_EQ(objects, 2) << run.output;
    EXPECT_NE(run.output.find("\"tool\": \"tapas-lint\""),
              std::string::npos) << run.output;
}

TEST(TapasLint, ChangedOnlyAgainstHeadIsClean)
{
    // --base HEAD is hermetic (no remote ref needed): the changed
    // set is just the dirty/untracked worktree, which must be clean.
    const LintRun run = runLint("--changed-only --base HEAD");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasLint, UnknownTargetIsUsageError)
{
    const LintRun run = runLint("no/such/dir");
    EXPECT_EQ(run.exitCode, 2) << run.output;
}

TEST(TapasLint, ListRulesShowsEveryRule)
{
    const LintRun run = runLint("--list-rules");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    for (const char *rule :
         {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
        EXPECT_NE(run.output.find(rule), std::string::npos)
            << "missing " << rule << ":\n" << run.output;
    }
}

} // namespace
