// Tooling suite: pins the tapas-analyze contract. Each pass A1..A3
// has fixture mini-roots under tests/tooling/fixtures/ with known
// violations and a known-clean sibling; the tests shell the analyzer
// at those roots and assert exact pass IDs, violation counts, and
// exit codes. The A3 fixtures are compiled here (with the same
// compiler as the build) so the pass runs against real emitted code,
// including the inlined-helper allocation lint R3 cannot see. Two
// acceptance pins ride along: deleting an archived field from a
// checkpointState walk must fail A1, and every class in src/ with a
// walk must show up in the --list-classes inventory (the parser must
// never silently skip a header).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

#ifndef TAPAS_REPO_ROOT
#error "build must define TAPAS_REPO_ROOT (see CMakeLists.txt)"
#endif
#ifndef TAPAS_PYTHON3
#error "build must define TAPAS_PYTHON3 (see CMakeLists.txt)"
#endif
#ifndef TAPAS_CXX_COMPILER
#error "build must define TAPAS_CXX_COMPILER (see CMakeLists.txt)"
#endif

struct CmdRun {
    int exitCode = -1;
    std::string output; // stdout+stderr, interleaved
};

CmdRun
runCmd(const std::string &cmd)
{
    CmdRun run;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return run;
    }
    std::array<char, 4096> buf;
    while (std::fgets(buf.data(), buf.size(), pipe))
        run.output += buf.data();
    const int status = pclose(pipe);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

CmdRun
runAnalyze(const std::string &args)
{
    return runCmd(std::string(TAPAS_PYTHON3) + " " TAPAS_REPO_ROOT
                  "/scripts/tapas_analyze.py " + args);
}

CmdRun
runAnalyzeOnFixture(const std::string &name, const std::string &args)
{
    return runAnalyze("--root " TAPAS_REPO_ROOT
                      "/tests/tooling/fixtures/" + name + " " + args);
}

int
countOccurrences(const std::string &haystack, const std::string &pass)
{
    // Violations print as "path:line: A<n>: message".
    const std::string needle = ": " + pass + ": ";
    int n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++n;
    }
    return n;
}

/// Assert a fixture yields exit 1 with exactly `expected` violations,
/// all from `pass`, leaking nothing from the other passes.
void
expectFixture(const CmdRun &run, const std::string &fixture,
              const std::string &pass, int expected)
{
    EXPECT_EQ(run.exitCode, 1) << fixture << ":\n" << run.output;
    EXPECT_EQ(countOccurrences(run.output, pass), expected)
        << fixture << ":\n" << run.output;
    for (const char *other : {"A1", "A2", "A3"}) {
        if (other == pass)
            continue;
        EXPECT_EQ(countOccurrences(run.output, other), 0)
            << fixture << " leaked " << other << ":\n" << run.output;
    }
}

void
writeFile(const fs::path &path, const std::string &text)
{
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << "write failed: " << path;
}

/// A process-unique scratch directory, removed on destruction.
struct TempDir {
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("tapas_analyze_" + tag + "_" +
                std::to_string(static_cast<long>(getpid()))))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/// Compile one fixture source into <objdir>/<rel>.o (mirroring the
/// CMake object layout tail A3 resolves objects by).
void
compileFixture(const std::string &fixture, const std::string &rel,
               const fs::path &objdir, const std::string &flags)
{
    const fs::path src = fs::path(TAPAS_REPO_ROOT) / "tests" /
                         "tooling" / "fixtures" / fixture / rel;
    const fs::path obj = objdir / (rel + ".o");
    fs::create_directories(obj.parent_path());
    const CmdRun run = runCmd(std::string(TAPAS_CXX_COMPILER) +
                              " -std=c++17 " + flags + " -c " +
                              src.string() + " -o " + obj.string());
    ASSERT_EQ(run.exitCode, 0) << run.output;
}

// ------------------------------------------------------------ repo gates --

TEST(TapasAnalyze, RepoTreeIsCleanA1A2)
{
    const CmdRun run = runAnalyze("");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasAnalyze, ChangedOnlyAgainstHeadIsClean)
{
    // --base HEAD is hermetic (no remote ref needed): the changed set
    // is just the dirty/untracked worktree, which must be clean too.
    const CmdRun run = runAnalyze("--changed-only --base HEAD");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasAnalyze, UnknownPassIsUsageError)
{
    EXPECT_EQ(runAnalyze("--pass a9").exitCode, 2);
}

TEST(TapasAnalyze, PassA3RequiresObjdir)
{
    const CmdRun run = runAnalyze("--pass a3");
    EXPECT_EQ(run.exitCode, 2) << run.output;
    EXPECT_NE(run.output.find("--objdir"), std::string::npos)
        << run.output;
}

// ------------------------------------------------- A1: field coverage --

TEST(TapasAnalyze, A1FixtureViolations)
{
    const CmdRun run = runAnalyzeOnFixture("a1", "--pass a1");
    expectFixture(run, "a1", "A1", 5);
    // One of each failure mode, at the right lines.
    EXPECT_NE(run.output.find("member 'missing' of 'Widget'"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find(
                  "malformed ckpt-skip annotation 'ckpt-skip(cache)"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find(
                  "malformed ckpt-skip annotation 'ckpt-skip(scratch)'"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find("'Orphan' declares checkpointState but"
                              " no walk body was found"),
              std::string::npos) << run.output;
}

TEST(TapasAnalyze, A1CleanFixturePasses)
{
    // Covers inline + out-of-line walks, all three ckpt-skip
    // categories (same-line and block-above), and lint-allow(A1).
    const CmdRun run = runAnalyzeOnFixture("a1_clean", "--pass a1");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasAnalyze, A1DeletingArchivedFieldFails)
{
    // The acceptance pin: drop one ar.value() from a walk that
    // covered every member and A1 must go from clean to failing on
    // exactly that member.
    TempDir root("a1_delete");
    const std::string header =
        "#ifndef A1_TMP_PAIR_HH\n"
        "#define A1_TMP_PAIR_HH\n"
        "namespace tmpfix {\n"
        "class Archive;\n"
        "class Pair\n"
        "{\n"
        "  public:\n"
        "    void checkpointState(Archive &ar);\n"
        "  private:\n"
        "    int left = 0;\n"
        "    int right = 0;\n"
        "};\n"
        "} // namespace tmpfix\n"
        "#endif\n";
    writeFile(root.path / "src/core/pair.hh", header);
    writeFile(root.path / "src/core/pair.cc",
              "#include \"core/pair.hh\"\n"
              "namespace tmpfix {\n"
              "void Pair::checkpointState(Archive &ar)\n"
              "{\n"
              "    ar.value(left);\n"
              "    ar.value(right);\n"
              "}\n"
              "} // namespace tmpfix\n");
    const CmdRun before =
        runAnalyze("--root " + root.path.string() + " --pass a1");
    EXPECT_EQ(before.exitCode, 0) << before.output;

    writeFile(root.path / "src/core/pair.cc",
              "#include \"core/pair.hh\"\n"
              "namespace tmpfix {\n"
              "void Pair::checkpointState(Archive &ar)\n"
              "{\n"
              "    ar.value(left);\n"
              "}\n"
              "} // namespace tmpfix\n");
    const CmdRun after =
        runAnalyze("--root " + root.path.string() + " --pass a1");
    EXPECT_EQ(after.exitCode, 1) << after.output;
    EXPECT_NE(after.output.find("member 'right' of 'Pair'"),
              std::string::npos) << after.output;
}

// ---------------------------------------------------- A2: layering DAG --

TEST(TapasAnalyze, A2FixtureViolations)
{
    const CmdRun run = runAnalyzeOnFixture("a2", "--pass a2");
    expectFixture(run, "a2", "A2", 3);
    EXPECT_NE(run.output.find("upward edge 'common' -> 'sim'"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find("cross edge 'llm' -> 'telemetry'"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find("module 'util' is not in the layer"
                              " map"),
              std::string::npos) << run.output;
}

TEST(TapasAnalyze, A2CleanFixturePasses)
{
    // Includes a cross edge silenced by lint-allow(A2).
    const CmdRun run = runAnalyzeOnFixture("a2_clean", "--pass a2");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasAnalyze, A2DumpGraphEmitsJson)
{
    const CmdRun run = runAnalyzeOnFixture("a2_clean",
                                           "--dump-graph -q");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_NE(run.output.find("\"modules\""), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("\"allowed\""), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("\"from\": \"dcsim\""),
              std::string::npos) << run.output;
}

// ------------------------------------------- A3: binary hot-path pass --

TEST(TapasAnalyze, A3FixtureViolations)
{
    TempDir objdir("a3_bad");
    compileFixture("a3", "src/sim/hot_bad.cc", objdir.path,
                   "-O2 -g");
    const CmdRun run = runAnalyzeOnFixture(
        "a3", "--pass a3 --objdir " + objdir.path.string());
    expectFixture(run, "a3", "A3", 2);
    // Both are operator new; the second hides behind an inlined
    // helper and is attributed to the region's call line — the
    // textual rule R3 has no banned token to see there.
    EXPECT_EQ(countOccurrences(run.output, "A3"), 2) << run.output;
    EXPECT_NE(run.output.find("src/sim/hot_bad.cc:25: A3: hot-path"
                              " call to operator new"),
              std::string::npos) << run.output;
    EXPECT_NE(run.output.find("src/sim/hot_bad.cc:37: A3: hot-path"
                              " call to operator new"),
              std::string::npos) << run.output;
}

TEST(TapasAnalyze, A3CleanFixturePasses)
{
    // Cold-path allocations, scratch-receiver growth in-region, and
    // a lint-allow(A3) escape: all exempt, exit 0.
    TempDir objdir("a3_good");
    compileFixture("a3_clean", "src/sim/hot_good.cc", objdir.path,
                   "-O2 -g");
    const CmdRun run = runAnalyzeOnFixture(
        "a3_clean", "--pass a3 --objdir " + objdir.path.string());
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(TapasAnalyze, A3MissingDebugInfoIsHardError)
{
    // An object the pass cannot attribute must exit 2, never pass.
    TempDir objdir("a3_nodbg");
    compileFixture("a3", "src/sim/hot_bad.cc", objdir.path,
                   "-O2 -g0");
    const CmdRun run = runAnalyzeOnFixture(
        "a3", "--pass a3 --objdir " + objdir.path.string());
    EXPECT_EQ(run.exitCode, 2) << run.output;
    EXPECT_NE(run.output.find("no inline debug info"),
              std::string::npos) << run.output;
}

// ------------------------------------------------------ output formats --

TEST(TapasAnalyze, JsonlEmitsOneObjectPerViolation)
{
    const CmdRun run = runAnalyzeOnFixture("a1", "--pass a1 --jsonl");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    int objects = 0;
    const std::string needle = "\"rule\": \"A1\"";
    for (std::size_t pos = run.output.find(needle);
         pos != std::string::npos;
         pos = run.output.find(needle, pos + needle.size())) {
        ++objects;
    }
    EXPECT_EQ(objects, 5) << run.output;
    EXPECT_NE(run.output.find("\"tool\": \"tapas-analyze\""),
              std::string::npos) << run.output;
}

// ------------------------------------ meta: A1 sees every walk header --

/// Strip // and /* */ comments; good enough for the repo's headers
/// (no "checkpointState" ever appears inside a string literal).
std::string
stripComments(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    bool inLine = false, inBlock = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (inLine) {
            if (text[i] == '\n') {
                inLine = false;
                out += '\n';
            }
        } else if (inBlock) {
            if (text[i] == '*' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                inBlock = false;
                ++i;
            } else if (text[i] == '\n') {
                out += '\n';
            }
        } else if (text[i] == '/' && i + 1 < text.size() &&
                   text[i + 1] == '/') {
            inLine = true;
            ++i;
        } else if (text[i] == '/' && i + 1 < text.size() &&
                   text[i + 1] == '*') {
            inBlock = true;
            ++i;
        } else {
            out += text[i];
        }
    }
    return out;
}

bool
declaresWalk(const std::string &stripped)
{
    const std::string token = "checkpointState";
    for (std::size_t pos = stripped.find(token);
         pos != std::string::npos;
         pos = stripped.find(token, pos + token.size())) {
        if (pos > 0 &&
            (std::isalnum(static_cast<unsigned char>(
                 stripped[pos - 1])) ||
             stripped[pos - 1] == '_'))
            continue;
        std::size_t after = pos + token.size();
        while (after < stripped.size() &&
               std::isspace(static_cast<unsigned char>(
                   stripped[after])))
            ++after;
        if (after < stripped.size() && stripped[after] == '(')
            return true;
    }
    return false;
}

TEST(TapasAnalyze, ListClassesCoversEveryWalkHeader)
{
    // Independent sweep: every header under src/ whose stripped text
    // declares a checkpointState(...) must appear in the A1 class
    // inventory. Guards the parser against silently skipping a
    // header it fails to understand — a skipped class would exempt
    // all of its members from coverage without anyone noticing.
    const CmdRun run = runAnalyze("--list-classes");
    ASSERT_EQ(run.exitCode, 0) << run.output;

    std::vector<std::string> walkHeaders;
    const fs::path srcRoot = fs::path(TAPAS_REPO_ROOT) / "src";
    for (const auto &entry :
         fs::recursive_directory_iterator(srcRoot)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".hh" && ext != ".h" && ext != ".hpp")
            continue;
        std::ifstream in(entry.path());
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (declaresWalk(stripComments(text)))
            walkHeaders.push_back(
                fs::relative(entry.path(),
                             fs::path(TAPAS_REPO_ROOT)).string());
    }
    // The repo has a checkpoint layer; an empty sweep means this
    // test's own scan broke, not that there is nothing to check.
    ASSERT_GT(walkHeaders.size(), 5u);

    for (const std::string &rel : walkHeaders) {
        EXPECT_NE(run.output.find(" " + rel + ":"),
                  std::string::npos)
            << rel << " declares checkpointState but is missing"
            << " from --list-classes:\n" << run.output;
    }
}

} // namespace
