// R1 fixture: deprecated scalar model entry points called from
// library code. Expected: exactly two R1 violations (the escaped
// call at the bottom must stay silent).
#include "telemetry/profiles.hh"

namespace tapas_fixture {

double
hot_loop_power(const tapas::ProfileBank &profiles, double load)
{
    return profiles.predictServerPowerW(load); // violation: R1
}

double
hot_loop_solve(const tapas::PerfModel &perf, double demand)
{
    return perf.operatingPointAt(demand).tps; // violation: R1
}

double
debug_cross_check(const tapas::ProfileBank &profiles, double load)
{
    // lint-allow(R1): cold debug cross-check, not the step loop
    return profiles.predictServerAirflowCfm(load);
}

} // namespace tapas_fixture
