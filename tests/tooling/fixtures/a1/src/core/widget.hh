// A1 fixture: checkpoint field-coverage violations. Expected, in
// order of appearance:
//   - dangling malformed ckpt-skip below (attached to no member)
//   - Widget::missing  (not archived, not exempted)
//   - Widget::badcat   (ckpt-skip with an unknown category)
//   - Widget::noreason (ckpt-skip with no reason text)
//   - Orphan           (declares checkpointState, no body anywhere)

#ifndef A1_FIXTURE_WIDGET_HH
#define A1_FIXTURE_WIDGET_HH

// ckpt-skip(todo): categorize me later

namespace fixture {

class Archive;

class Widget
{
  public:
    void checkpointState(Archive &ar);

  private:
    int value = 0;
    double missing = 0.0;
    // ckpt-skip(cache): rebuilt lazily
    double badcat = 0.0;
    int noreason = 0;  // ckpt-skip(scratch)
};

class Orphan
{
  public:
    void checkpointState(Archive &ar);

  private:
    int lost = 0;
};

} // namespace fixture

#endif // A1_FIXTURE_WIDGET_HH
