// Out-of-line walk for Widget; archives `value` only.

#include "core/widget.hh"

namespace fixture {

void
Widget::checkpointState(Archive &ar)
{
    ar.value(value);
}

} // namespace fixture
