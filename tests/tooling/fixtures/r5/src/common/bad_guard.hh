// R5 fixture: guard does not match the TAPAS_<PATH>_HH derivation
// for src/common/bad_guard.hh. Expected: exactly one R5 violation.
#ifndef BAD_GUARD_H
#define BAD_GUARD_H

namespace tapas_fixture {

struct Bad {
};

} // namespace tapas_fixture

#endif // BAD_GUARD_H
