// R5 fixture: no guard at all. Expected: exactly one R5 violation.
#pragma once

namespace tapas_fixture {

struct AlsoBad {
};

} // namespace tapas_fixture
