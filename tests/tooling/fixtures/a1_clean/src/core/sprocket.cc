#include "core/sprocket.hh"

namespace fixture {

void
Sprocket::checkpointState(Archive &ar)
{
    ar.value(teeth);
    ar.value(wear);
}

} // namespace fixture
