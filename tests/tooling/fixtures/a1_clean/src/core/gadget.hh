// A1 clean fixture: every member is archived or exempted. Covers an
// inline walk, all three ckpt-skip categories (same-line and
// block-above attachment), and the lint-allow(A1) escape.

#ifndef A1_FIXTURE_GADGET_HH
#define A1_FIXTURE_GADGET_HH

#include <vector>

namespace fixture {

class Archive;

class Gadget
{
  public:
    template <typename Ar>
    void
    checkpointState(Ar &ar)
    {
        ar.value(count);
        ar.value(total);
    }

  private:
    int count = 0;
    double total = 0.0;
    // ckpt-skip(derived): recomputed from count on restore
    double mean = 0.0;
    std::vector<int> laneScratch;  // ckpt-skip(scratch): per-step
    int width = 4;  // ckpt-skip(constant): ctor input
    // lint-allow(A1): archived by the v2 walk shim
    int legacy = 0;
};

} // namespace fixture

#endif // A1_FIXTURE_GADGET_HH
