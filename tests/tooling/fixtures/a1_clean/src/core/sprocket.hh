// A1 clean fixture: out-of-line walk (body in the sibling .cc).

#ifndef A1_FIXTURE_SPROCKET_HH
#define A1_FIXTURE_SPROCKET_HH

namespace fixture {

class Archive;

class Sprocket
{
  public:
    void checkpointState(Archive &ar);

  private:
    int teeth = 12;
    double wear = 0.0;
};

} // namespace fixture

#endif // A1_FIXTURE_SPROCKET_HH
