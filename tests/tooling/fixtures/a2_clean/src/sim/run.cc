// A2 clean fixture: sim sits at the top and may include every layer.

#include "common/util.hh"
#include "core/ctl.hh"

namespace fixture {
int run() { return 0; }
} // namespace fixture
