// A2 clean fixture: a cross edge (dcsim -> llm) silenced by the
// lint-allow(A2) escape; everything else is inside the layer DAG.

#ifndef A2_FIXTURE_PLANT_HH
#define A2_FIXTURE_PLANT_HH

#include "common/util.hh"
// lint-allow(A2): bootstrap shim, removed once the probe API lands
#include "llm/engine.hh"

namespace fixture {
struct Plant {};
} // namespace fixture

#endif // A2_FIXTURE_PLANT_HH
