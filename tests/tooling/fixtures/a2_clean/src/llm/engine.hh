#ifndef A2_FIXTURE_CLEAN_ENGINE_HH
#define A2_FIXTURE_CLEAN_ENGINE_HH

#include "common/util.hh"

namespace fixture {
struct Engine {};
} // namespace fixture

#endif // A2_FIXTURE_CLEAN_ENGINE_HH
