#ifndef A2_FIXTURE_UTIL_HH
#define A2_FIXTURE_UTIL_HH

namespace fixture {
struct Util {};
} // namespace fixture

#endif // A2_FIXTURE_UTIL_HH
