#ifndef A2_FIXTURE_CTL_HH
#define A2_FIXTURE_CTL_HH

#include "dcsim/plant.hh"

namespace fixture {
struct Ctl {};
} // namespace fixture

#endif // A2_FIXTURE_CTL_HH
