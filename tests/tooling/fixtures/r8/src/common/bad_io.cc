// R8 fixture: raw durable-write primitives instead of the
// serialization layer's atomic write-rename. Expected: exactly four
// R8 violations — fopen, fwrite, std::ofstream, std::fstream.
// std::ifstream is deliberately NOT flagged (torn reads are caught
// by the checkpoint CRC/length checks, so read-side streams are
// legal), and neither is a comment mentioning fopen().
#include <cstdio>
#include <fstream>

namespace tapas_fixture {

void
badWrites(const char *path)
{
    FILE *fp = fopen(path, "wb"); // violation: R8
    const char byte = 0;
    fwrite(&byte, 1, 1, fp); // violation: R8
    fclose(fp);

    std::ofstream out(path); // violation: R8
    out << "torn on crash";

    std::fstream rw(path); // violation: R8
    rw << "also torn";
}

void
goodRead(const char *path)
{
    std::ifstream in(path); // allowed: read-side stream
    char ch;
    in.get(ch);
}

} // namespace tapas_fixture
