// Clean fixture: real violations silenced by lint-allow escapes, on
// the match line and in the comment block above — both forms must
// keep this fixture at exit 0.
#include <chrono>
#include <random>

namespace tapas_fixture {

unsigned
seed_from_entropy()
{
    std::random_device rd; // lint-allow(R2): fixture exercises the on-line escape form
    return rd();
}

// Comment-block escape form: the allow sits in the contiguous
// comment block immediately above the violating line.
// lint-allow(R2): fixture exercises the block-above escape form
using wall_clock = std::chrono::system_clock;

} // namespace tapas_fixture
