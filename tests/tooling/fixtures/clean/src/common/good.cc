// Clean fixture .cc: mentions of banned constructs in comments must
// not fire — e.g. std::random_device, printf(, operatingPointAt( are
// all fine here because rules match comment-stripped text.
#include "common/good.hh"

#include <cstdio>

namespace tapas_fixture {

/* Block comments are stripped too: std::mutex, std::cout. */
int
format_value(char *buf, int cap, double v)
{
    // snprintf is the sanctioned formatter (R4 bans bare printf).
    return std::snprintf(buf, static_cast<std::size_t>(cap), "%g", v);
}

} // namespace tapas_fixture
