// Clean fixture: violates no rule. The guard below is exactly the
// TAPAS_<PATH>_HH derivation R5 expects for src/common/good.hh.
#ifndef TAPAS_COMMON_GOOD_HH
#define TAPAS_COMMON_GOOD_HH

#include <vector>

namespace tapas_fixture {

struct Good {
    std::vector<double> values;
};

} // namespace tapas_fixture

#endif // TAPAS_COMMON_GOOD_HH
