// R6 fixture: disabled and skipped tests. Expected: exactly two R6
// violations. (Not compiled — the tooling suite only lints this.)
#include <gtest/gtest.h>

TEST(Hygiene, DISABLED_NeverRuns) // violation: R6
{
    EXPECT_TRUE(false);
}

TEST(Hygiene, SkipsItself)
{
    GTEST_SKIP() << "flaky"; // violation: R6
}
