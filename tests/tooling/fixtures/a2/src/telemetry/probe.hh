#ifndef A2_FIXTURE_PROBE_HH
#define A2_FIXTURE_PROBE_HH

namespace fixture {
struct Probe {};
} // namespace fixture

#endif // A2_FIXTURE_PROBE_HH
