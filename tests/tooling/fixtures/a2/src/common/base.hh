// A2 fixture: upward edge — common sits at the bottom of the layer
// DAG and may include nothing above itself.

#ifndef A2_FIXTURE_BASE_HH
#define A2_FIXTURE_BASE_HH

#include "sim/top.hh"

namespace fixture {
struct Base {};
} // namespace fixture

#endif // A2_FIXTURE_BASE_HH
