// A2 fixture: unknown module — src/util/ is not in the layer map.

#include "common/base.hh"

namespace fixture {
int helper() { return 0; }
} // namespace fixture
