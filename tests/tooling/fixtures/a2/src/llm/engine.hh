// A2 fixture: cross edge — llm may include common and dcsim only;
// telemetry is a sibling layer.

#ifndef A2_FIXTURE_ENGINE_HH
#define A2_FIXTURE_ENGINE_HH

#include "telemetry/probe.hh"

namespace fixture {
struct Engine {};
} // namespace fixture

#endif // A2_FIXTURE_ENGINE_HH
