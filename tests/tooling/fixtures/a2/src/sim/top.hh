#ifndef A2_FIXTURE_TOP_HH
#define A2_FIXTURE_TOP_HH

namespace fixture {
struct Top {};
} // namespace fixture

#endif // A2_FIXTURE_TOP_HH
