// R4 fixture: console I/O in library code. Expected: exactly four R4
// violations (the include, two stream objects, and bare printf).
#include <iostream> // violation: R4

#include <cstdio>

namespace tapas_fixture {

void
chatty(double v)
{
    std::cout << "value=" << v << "\n"; // violation: R4
    std::cerr << "warn\n";              // violation: R4
    printf("value=%g\n", v);            // violation: R4
}

void
fine(char *buf, int cap, double v)
{
    // snprintf formats into caller storage; not a console sink.
    std::snprintf(buf, static_cast<std::size_t>(cap), "%g", v);
}

} // namespace tapas_fixture
