// R2 fixture: every nondeterministic source the rule bans. Expected:
// exactly four R2 violations.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace tapas_fixture {

unsigned
entropy_seed()
{
    std::random_device rd; // violation: R2
    return rd();
}

int
libc_random()
{
    return rand(); // violation: R2
}

long
wall_seed()
{
    return static_cast<long>(time(nullptr)); // violation: R2
}

long long
wall_now_ms()
{
    using clock = std::chrono::system_clock; // violation: R2
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace tapas_fixture
