// A3 fixture: allocations reachable from tapas-hot region code. Two
// expected violations, both operator new:
//   - hotDirect: a textually visible `new` inside the region;
//   - hotInlined: the allocation hides in makeHidden(), which the
//     compiler inlines into the region — lint R3 never sees a banned
//     token on the region lines, only the emitted code shows it.
// The test harness compiles this file at -O2 -g and points A3 at the
// object.

#include <cstddef>

namespace fixture {

inline double *
makeHidden(std::size_t n)
{
    return new double[n];
}

double *
hotDirect(const double *in, std::size_t n)
{
    double *out = nullptr;
    // tapas-hot begin(direct)
    out = new double[n];
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] * 2.0;
    // tapas-hot end(direct)
    return out;
}

double *
hotInlined(const double *in, std::size_t n)
{
    double *out = nullptr;
    // tapas-hot begin(inlined)
    out = makeHidden(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] + 1.0;
    // tapas-hot end(inlined)
    return out;
}

} // namespace fixture
