// R7 fixture: raw standard locking primitives instead of the
// annotated tapas wrappers. Expected: exactly five R7 violations —
// std::mutex, std::condition_variable, std::lock_guard,
// std::unique_lock, std::scoped_lock. condition_variable_any is
// deliberately NOT flagged (the annotated UniqueLock waits on it).
#include <condition_variable>
#include <mutex>

namespace tapas_fixture {

struct BadLock {
    std::mutex m;                      // violation: R7
    std::condition_variable cv;        // violation: R7
    std::condition_variable_any cvAny; // allowed: wrapper-compatible

    void touch()
    {
        std::lock_guard<decltype(m)> lock(m); // violation: R7
        cv.notify_all();
    }

    void wait()
    {
        std::unique_lock<decltype(m)> lock(m); // violation: R7
        cvAny.wait(lock);
    }

    void both(BadLock &other)
    {
        std::scoped_lock lock(m, other.m); // violation: R7
    }
};

} // namespace tapas_fixture
