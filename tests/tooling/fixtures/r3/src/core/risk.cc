// R3 fixture, marker hygiene: an unclosed region and a stray end are
// violations in their own right (an unclosed begin silently un-gates
// everything after it). Expected: exactly two R3 violations here.
namespace tapas_fixture {

void
stray_end()
{
    // tapas-hot end(never-opened)   <- violation: R3
}

void
unclosed()
{
    // tapas-hot begin(never-closed) <- violation: R3
}

} // namespace tapas_fixture
