// R3 fixture (file named to match the rule's include list): growth
// calls inside a tapas-hot region. Expected: exactly three R3
// violations in this file — `new`, push_back on a non-scratch
// receiver, and resize on a non-scratch receiver. The scratch-named
// receiver and the escaped resize stay silent, as does everything
// outside the region.
#include <vector>

namespace tapas_fixture {

struct Step {
    std::vector<double> draws;
    std::vector<double> drawsScratch;
    std::vector<int> marks;

    void cold_setup()
    {
        // Outside any region: allocation is fine here.
        draws.resize(128);
    }

    void step(int gpus)
    {
        // tapas-hot begin(fixture-step)
        double *leak = new double[8]; // violation: R3
        draws.push_back(1.0);         // violation: R3
        marks.resize(gpus);           // violation: R3
        drawsScratch.push_back(2.0);  // scratch receiver: allowed
        // lint-allow(R3): steady-state no-op, capacity persists
        draws.resize(static_cast<std::size_t>(gpus));
        delete[] leak;
        // tapas-hot end(fixture-step)
    }
};

} // namespace tapas_fixture
