// A3 clean fixture: every allocation reachable from the object is
// exempt — cold-path code outside the regions, scratch-receiver
// container growth inside them, and an explicit lint-allow(A3).

#include <cstddef>
#include <vector>

namespace fixture {

class Stage
{
  public:
    void prime(std::size_t n);
    double step(const double *in, std::size_t n);
    double fill(const std::vector<double> &in);

  private:
    std::vector<double> laneScratch;
    double *arena = nullptr;
    std::size_t arenaSize = 0;
};

void
Stage::prime(std::size_t n)
{
    laneScratch.reserve(n);
    delete[] arena;
    arena = new double[n];
    arenaSize = n;
}

double
Stage::step(const double *in, std::size_t n)
{
    double acc = 0.0;
    // tapas-hot begin(step)
    laneScratch.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        laneScratch[i] = in[i] * 0.5;
        acc += laneScratch[i];
    }
    if (arenaSize < n) {
        delete[] arena;  // lint-allow(A3): amortized arena rebuild
        // lint-allow(A3): amortized arena rebuild
        arena = new double[n];
        arenaSize = n;
    }
    acc += arena[0];
    // tapas-hot end(step)
    return acc;
}

double
Stage::fill(const std::vector<double> &in)
{
    double acc = 0.0;
    // tapas-hot begin(fill)
    laneScratch = in;
    for (std::size_t i = 0; i < laneScratch.size(); ++i)
        acc += laneScratch[i];
    // tapas-hot end(fill)
    return acc;
}

} // namespace fixture
