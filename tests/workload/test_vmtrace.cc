/**
 * @file
 * Unit tests for the VM trace generator: demographics (Fig. 12) and
 * diurnal load patterns (Fig. 13).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/stats.hh"
#include "workload/vmtrace.hh"

namespace tapas {
namespace {

VmTraceConfig
defaultConfig()
{
    VmTraceConfig cfg;
    cfg.targetVmCount = 400;
    cfg.horizon = kWeek;
    return cfg;
}

TEST(VmTrace, DeterministicForSeed)
{
    VmTraceGenerator a(defaultConfig(), 5);
    VmTraceGenerator b(defaultConfig(), 5);
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].arrival, b.records()[i].arrival);
        EXPECT_EQ(a.records()[i].kind, b.records()[i].kind);
    }
}

TEST(VmTrace, InitialPopulationMatchesTarget)
{
    VmTraceGenerator gen(defaultConfig(), 7);
    int at_zero = 0;
    for (const VmRecord &vm : gen.records()) {
        if (vm.arrival == 0)
            ++at_zero;
    }
    EXPECT_EQ(at_zero, 400);
}

TEST(VmTrace, PopulationStaysNearTarget)
{
    VmTraceGenerator gen(defaultConfig(), 7);
    for (SimTime t = 0; t <= kWeek; t += 12 * kHour) {
        int alive = 0;
        for (const VmRecord &vm : gen.records()) {
            if (vm.arrival <= t && vm.departure > t)
                ++alive;
        }
        EXPECT_GT(alive, 340);
        EXPECT_LE(alive, 440);
    }
}

TEST(VmTrace, SaasFractionRespected)
{
    VmTraceGenerator gen(defaultConfig(), 11);
    int saas = 0;
    for (const VmRecord &vm : gen.records()) {
        if (vm.kind == VmKind::SaaS)
            ++saas;
    }
    const double frac =
        static_cast<double>(saas) / gen.records().size();
    EXPECT_NEAR(frac, 0.5, 0.06);
}

TEST(VmTrace, AllIaasWhenFractionZero)
{
    VmTraceConfig cfg = defaultConfig();
    cfg.saasFraction = 0.0;
    VmTraceGenerator gen(cfg, 11);
    for (const VmRecord &vm : gen.records())
        EXPECT_EQ(vm.kind, VmKind::IaaS);
}

TEST(VmTrace, LifetimesAreHeavyTailed)
{
    // Fig. 12a: >60% of VMs run for two weeks or more. Measure on
    // fresh arrivals (initial population carries residual lifetimes).
    VmTraceGenerator gen(defaultConfig(), 13);
    int fresh = 0;
    int long_lived = 0;
    for (const VmRecord &vm : gen.records()) {
        if (vm.arrival == 0)
            continue;
        ++fresh;
        if (vm.lifetime() >= 14 * kDay)
            ++long_lived;
    }
    ASSERT_GT(fresh, 50);
    EXPECT_GT(static_cast<double>(long_lived) / fresh, 0.55);
}

TEST(VmTrace, EndpointSizesSkewed)
{
    // Fig. 12b: about half the SaaS VMs belong to the largest
    // endpoints.
    VmTraceConfig cfg = defaultConfig();
    cfg.targetVmCount = 1000;
    VmTraceGenerator gen(cfg, 17);
    std::vector<int> sizes = gen.endpointVmCounts();
    std::sort(sizes.begin(), sizes.end(), std::greater<int>());
    int total = 0;
    for (int s : sizes)
        total += s;
    // Top 2 of 10 endpoints hold a large share.
    const double top2 =
        static_cast<double>(sizes[0] + sizes[1]) / total;
    EXPECT_GT(top2, 0.35);
}

TEST(VmTrace, ArrivalsSorted)
{
    VmTraceGenerator gen(defaultConfig(), 19);
    for (std::size_t i = 1; i < gen.records().size(); ++i) {
        EXPECT_LE(gen.records()[i - 1].arrival,
                  gen.records()[i].arrival);
    }
}

TEST(VmTrace, IaasLoadWithinBounds)
{
    VmTraceGenerator gen(defaultConfig(), 23);
    for (const VmRecord &vm : gen.records()) {
        if (vm.kind != VmKind::IaaS)
            continue;
        for (SimTime t = 0; t < kDay; t += kHour) {
            const double load = gen.iaasLoadAt(vm, t);
            EXPECT_GE(load, 0.0);
            EXPECT_LE(load, 1.0);
        }
    }
}

TEST(VmTrace, IaasLoadIsDiurnal)
{
    VmTraceGenerator gen(defaultConfig(), 29);
    const VmRecord *iaas = nullptr;
    for (const VmRecord &vm : gen.records()) {
        if (vm.kind == VmKind::IaaS) {
            iaas = &vm;
            break;
        }
    }
    ASSERT_NE(iaas, nullptr);
    std::vector<double> samples;
    for (SimTime t = 0; t < 7 * kDay; t += kHour)
        samples.push_back(gen.iaasLoadAt(*iaas, t));
    EXPECT_GT(autocorrelation(samples, 24), 0.4);
}

TEST(VmTrace, IaasLoadReplayIsExact)
{
    VmTraceGenerator gen(defaultConfig(), 31);
    const VmRecord &vm = gen.records().front();
    if (vm.kind == VmKind::IaaS) {
        EXPECT_DOUBLE_EQ(gen.iaasLoadAt(vm, 12345),
                         gen.iaasLoadAt(vm, 12345));
    }
}

TEST(VmTrace, CustomersShareLoadShape)
{
    // VMs of the same customer must correlate more strongly than VMs
    // of different customers (this powers customer-template power
    // prediction, Fig. 14b).
    VmTraceConfig cfg = defaultConfig();
    cfg.saasFraction = 0.0;
    cfg.iaasCustomerCount = 5;
    cfg.targetVmCount = 200;
    VmTraceGenerator gen(cfg, 37);

    std::map<std::uint32_t, std::vector<const VmRecord *>> by_customer;
    for (const VmRecord &vm : gen.records())
        by_customer[vm.customer.index].push_back(&vm);

    auto series = [&](const VmRecord *vm) {
        std::vector<double> out;
        for (SimTime t = 0; t < 3 * kDay; t += kHour)
            out.push_back(gen.iaasLoadAt(*vm, t));
        return out;
    };

    // Same-customer correlation.
    StatAccumulator same;
    StatAccumulator cross;
    const auto &group0 = by_customer.begin()->second;
    const auto &group1 = std::next(by_customer.begin())->second;
    ASSERT_GE(group0.size(), 2u);
    ASSERT_GE(group1.size(), 1u);
    same.add(pearsonCorrelation(series(group0[0]),
                                series(group0[1])));
    cross.add(pearsonCorrelation(series(group0[0]),
                                 series(group1[0])));
    EXPECT_GT(same.mean(), 0.55);
    EXPECT_LT(cross.mean(), same.mean());
}

} // namespace
} // namespace tapas
