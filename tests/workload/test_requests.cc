/**
 * @file
 * Unit tests for SaaS request generation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "workload/requests.hh"

namespace tapas {
namespace {

std::vector<EndpointDemand>
twoEndpoints()
{
    EndpointDemand a;
    a.id = EndpointId(0);
    a.peakTokensPerS = 5000.0;
    a.peakHour = 14.0;
    EndpointDemand b;
    b.id = EndpointId(1);
    b.peakTokensPerS = 1000.0;
    b.peakHour = 2.0;
    return {a, b};
}

class RequestGenTest : public ::testing::Test
{
  protected:
    RequestGenTest()
        : gen(twoEndpoints(), LengthDistribution{}, 77)
    {}

    RequestGenerator gen;
};

TEST_F(RequestGenTest, DemandPeaksAtConfiguredHour)
{
    const double at_peak =
        gen.demandTokensPerS(EndpointId(0), 14 * kHour);
    const double at_trough =
        gen.demandTokensPerS(EndpointId(0), 2 * kHour);
    EXPECT_NEAR(at_peak, 5000.0, 1.0);
    EXPECT_NEAR(at_trough, 5000.0 * 0.35, 5.0);
}

TEST_F(RequestGenTest, DemandPerEndpointPhase)
{
    // Endpoint 1 peaks at 02:00.
    const double b_peak =
        gen.demandTokensPerS(EndpointId(1), 2 * kHour);
    const double b_day =
        gen.demandTokensPerS(EndpointId(1), 14 * kHour);
    EXPECT_GT(b_peak, b_day);
}

TEST_F(RequestGenTest, MeanTokensPerRequestIsPlausible)
{
    // Lognormal(6, 0.7) prompts + lognormal(4.8, 0.6) outputs land
    // around 500-700 tokens total.
    EXPECT_GT(gen.meanTokensPerRequest(), 400.0);
    EXPECT_LT(gen.meanTokensPerRequest(), 900.0);
}

TEST_F(RequestGenTest, PoissonRateMatchesDemand)
{
    // Generate an hour at peak; token volume should approximate the
    // demand integral.
    const auto reqs =
        gen.generate(EndpointId(0), 14 * kHour, 15 * kHour);
    double tokens = 0.0;
    for (const Request &r : reqs)
        tokens += r.promptTokens + r.outputTokens;
    const double expected = 5000.0 * 3600.0;
    EXPECT_NEAR(tokens / expected, 1.0, 0.1);
}

TEST_F(RequestGenTest, ArrivalsWithinWindowAndOrdered)
{
    const auto reqs = gen.generate(EndpointId(0), 1000, 2000);
    ASSERT_FALSE(reqs.empty());
    double prev = 1000.0;
    for (const Request &r : reqs) {
        EXPECT_GE(r.arrivalS, prev);
        EXPECT_LT(r.arrivalS, 2000.0);
        prev = r.arrivalS;
    }
}

TEST_F(RequestGenTest, LengthsRespectClamps)
{
    const auto reqs =
        gen.generate(EndpointId(0), 0, 2 * kHour);
    for (const Request &r : reqs) {
        EXPECT_GE(r.promptTokens, 16);
        EXPECT_LE(r.promptTokens, 4096);
        EXPECT_GE(r.outputTokens, 8);
        EXPECT_LE(r.outputTokens, 1024);
    }
}

TEST_F(RequestGenTest, CustomersAreZipfSkewed)
{
    const auto reqs =
        gen.generate(EndpointId(0), 0, 4 * kHour);
    ASSERT_GT(reqs.size(), 100u);
    std::vector<int> counts(50, 0);
    for (const Request &r : reqs)
        ++counts[r.customer.index];
    // Rank-0 customer should dominate rank-10.
    EXPECT_GT(counts[0], 3 * std::max(1, counts[10]));
}

TEST_F(RequestGenTest, RequestIdsAreUnique)
{
    const auto a = gen.generate(EndpointId(0), 0, kHour);
    const auto b = gen.generate(EndpointId(1), 0, kHour);
    std::vector<std::uint32_t> ids;
    for (const Request &r : a)
        ids.push_back(r.id.index);
    for (const Request &r : b)
        ids.push_back(r.id.index);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(RequestGenTest, EndpointTagging)
{
    const auto reqs = gen.generate(EndpointId(1), 0, kHour);
    for (const Request &r : reqs)
        EXPECT_EQ(r.endpoint, EndpointId(1));
}

} // namespace
} // namespace tapas
