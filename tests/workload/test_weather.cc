/**
 * @file
 * Unit tests for the synthetic weather model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "workload/weather.hh"

namespace tapas {
namespace {

TEST(Weather, DeterministicForSeed)
{
    WeatherConfig cfg;
    cfg.horizon = 7 * kDay;
    WeatherModel a(cfg, 99);
    WeatherModel b(cfg, 99);
    for (SimTime t = 0; t < cfg.horizon; t += kHour)
        EXPECT_DOUBLE_EQ(a.outsideAt(t).value(), b.outsideAt(t).value());
}

TEST(Weather, SeedChangesFronts)
{
    WeatherConfig cfg;
    cfg.horizon = 7 * kDay;
    WeatherModel a(cfg, 1);
    WeatherModel b(cfg, 2);
    int differs = 0;
    for (SimTime t = 0; t < cfg.horizon; t += kHour) {
        if (std::abs(a.outsideAt(t).value() - b.outsideAt(t).value()) >
            0.01) {
            ++differs;
        }
    }
    EXPECT_GT(differs, 100);
}

TEST(Weather, DiurnalCyclePeaksAfternoon)
{
    WeatherConfig cfg;
    cfg.horizon = 14 * kDay;
    cfg.frontSigmaC = 0.0; // isolate the deterministic part
    WeatherModel model(cfg, 7);
    // Average by hour-of-day across two weeks.
    std::vector<double> by_hour(24, 0.0);
    for (int day = 0; day < 14; ++day) {
        for (int h = 0; h < 24; ++h) {
            by_hour[h] +=
                model.outsideAt(day * kDay + h * kHour).value() / 14.0;
        }
    }
    int hottest = 0;
    int coldest = 0;
    for (int h = 0; h < 24; ++h) {
        if (by_hour[h] > by_hour[hottest])
            hottest = h;
        if (by_hour[h] < by_hour[coldest])
            coldest = h;
    }
    EXPECT_EQ(hottest, 15);
    EXPECT_EQ(coldest, 3);
}

TEST(Weather, DiurnalPeriodicityVisibleInAutocorrelation)
{
    WeatherConfig cfg;
    cfg.horizon = 30 * kDay;
    WeatherModel model(cfg, 11);
    std::vector<double> hourly;
    for (SimTime t = 0; t < cfg.horizon; t += kHour)
        hourly.push_back(model.outsideAt(t).value());
    EXPECT_GT(autocorrelation(hourly, 24), 0.5);
}

TEST(Weather, ClimateOrdering)
{
    WeatherConfig cfg;
    cfg.horizon = 7 * kDay;
    cfg.climate = Climate::Mild;
    WeatherModel mild(cfg, 3);
    cfg.climate = Climate::Hot;
    WeatherModel hot(cfg, 3);
    StatAccumulator mild_acc;
    StatAccumulator hot_acc;
    for (SimTime t = 0; t < cfg.horizon; t += kHour) {
        mild_acc.add(mild.outsideAt(t).value());
        hot_acc.add(hot.outsideAt(t).value());
    }
    EXPECT_GT(hot_acc.mean(), mild_acc.mean() + 8.0);
}

TEST(Weather, FrontsHaveConfiguredSpread)
{
    WeatherConfig cfg;
    cfg.horizon = 60 * kDay;
    cfg.seasonalAmpC = 0.0;
    cfg.diurnalAmpC = 0.0;
    cfg.frontSigmaC = 2.5;
    WeatherModel model(cfg, 13);
    StatAccumulator acc;
    for (SimTime t = 0; t < cfg.horizon; t += kHour)
        acc.add(model.outsideAt(t).value());
    EXPECT_NEAR(acc.stddev(), 2.5, 0.8);
    EXPECT_NEAR(acc.mean(), model.meanC(), 1.5);
}

TEST(Weather, InterpolationIsContinuous)
{
    WeatherConfig cfg;
    cfg.horizon = kDay;
    WeatherModel model(cfg, 17);
    for (SimTime t = kMinute; t < kDay; t += 7 * kMinute) {
        const double a = model.outsideAt(t - 30).value();
        const double b = model.outsideAt(t + 30).value();
        EXPECT_LT(std::abs(a - b), 0.5);
    }
}

} // namespace
} // namespace tapas
