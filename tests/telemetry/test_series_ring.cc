/**
 * @file
 * Ring-buffer telemetry series versus a naive unbounded-vector
 * reference: append/trim/digest equality under churn, eviction
 * semantics at capacity, and the contiguous-chunk view contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "telemetry/history.hh"
#include "telemetry/series.hh"

namespace tapas {
namespace {

/** Naive reference: unbounded vector with erase-from-front trims. */
struct NaiveSeries
{
    std::vector<KeyedSample> data;

    void push(const KeyedSample &s) { data.push_back(s); }

    void
    trimBefore(SimTime cutoff)
    {
        auto first_kept = std::find_if(
            data.begin(), data.end(), [cutoff](const KeyedSample &s) {
                return s.time >= cutoff;
            });
        data.erase(data.begin(), first_kept);
    }

    double
    peak() const
    {
        double out = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i)
            out = i == 0 ? data[i].value
                         : std::max(out, double(data[i].value));
        return out;
    }

    SimTime
    span() const
    {
        return data.empty() ? 0
                            : data.back().time - data.front().time;
    }
};

void
expectEqual(const KeyedSeriesRing &ring, const NaiveSeries &ref)
{
    const SeriesView<KeyedSample> view = ring.view();
    ASSERT_EQ(view.size(), ref.data.size());
    for (std::size_t i = 0; i < ref.data.size(); ++i) {
        EXPECT_EQ(view[i].time, ref.data[i].time);
        EXPECT_EQ(view[i].value, ref.data[i].value);
    }
    EXPECT_DOUBLE_EQ(ring.peakValue(), ref.peak());
    EXPECT_EQ(ring.span(), ref.span());
}

TEST(SampleRing, MatchesNaiveReferenceUnderChurn)
{
    // Random interleaving of appends and trims; as long as the ring
    // never overflows, it must be indistinguishable from the naive
    // unbounded store.
    Rng rng(41);
    KeyedSeriesRing ring(512);
    NaiveSeries ref;
    SimTime t = 0;
    SimTime cutoff = 0;
    for (int op = 0; op < 4000; ++op) {
        if (rng.bernoulli(0.85) || ref.data.empty()) {
            t += rng.uniformInt(1, 600);
            const KeyedSample s{
                t, static_cast<float>(rng.uniform(0.0, 5000.0))};
            ring.push(s);
            ref.push(s);
        } else {
            cutoff = std::max(
                cutoff,
                ref.data.front().time +
                    rng.uniformInt(0, ref.span() + 1));
            ring.trimBefore(cutoff);
            ref.trimBefore(cutoff);
        }
        // Keep the churn below capacity so the semantics must agree.
        if (ref.data.size() > 480) {
            cutoff =
                std::max(cutoff, ref.data[ref.data.size() / 2].time);
            ring.trimBefore(cutoff);
            ref.trimBefore(cutoff);
        }
        if (op % 7 == 0)
            expectEqual(ring, ref);
    }
    expectEqual(ring, ref);
}

TEST(SampleRing, EvictsOldestAtCapacity)
{
    KeyedSeriesRing ring(8);
    for (SimTime t = 0; t < 20; ++t)
        ring.push({t, static_cast<float>(t)});
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.front().time, 12);
    EXPECT_EQ(ring.back().time, 19);
    // Digest tracks the retained window only.
    EXPECT_DOUBLE_EQ(ring.peakValue(), 19.0);
    EXPECT_EQ(ring.span(), 7);
}

TEST(SampleRing, PeakRecomputesAfterEvictingThePeak)
{
    KeyedSeriesRing ring(4);
    ring.push({0, 100.0f});
    ring.push({1, 5.0f});
    ring.push({2, 7.0f});
    EXPECT_DOUBLE_EQ(ring.peakValue(), 100.0);
    ring.push({3, 6.0f});
    ring.push({4, 1.0f}); // evicts the 100 peak
    EXPECT_DOUBLE_EQ(ring.peakValue(), 7.0);
    ring.trimBefore(3); // evicts the 7 peak via trim
    EXPECT_DOUBLE_EQ(ring.peakValue(), 6.0);
}

TEST(SampleRing, TrimExactlyAtHeadRemovesNothing)
{
    // Samples strictly below the cutoff are dropped, so a cutoff at
    // exactly the head sample's timestamp is a no-op — including on
    // a wrapped full ring and with duplicate head timestamps.
    KeyedSeriesRing ring(4);
    for (SimTime t = 0; t < 6; ++t)
        ring.push({t, static_cast<float>(t)});
    ASSERT_EQ(ring.front().time, 2);
    ring.trimBefore(2);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.front().time, 2);
    EXPECT_DOUBLE_EQ(ring.peakValue(), 5.0);
    EXPECT_EQ(ring.span(), 3);

    KeyedSeriesRing dup(8);
    dup.push({5, 1.0f});
    dup.push({5, 2.0f});
    dup.push({6, 3.0f});
    dup.trimBefore(5);
    EXPECT_EQ(dup.size(), 3u);
    EXPECT_DOUBLE_EQ(dup.peakValue(), 3.0);
}

TEST(SampleRing, TrimPastLastSampleEmptiesAndRegrows)
{
    // A cutoff beyond the last sample empties the ring and resets it
    // to a fresh growth phase; pushes afterwards must land in order
    // with exact digests — on a growth-phase ring, a wrapped full
    // ring, and repeatedly (the PR-2 regrow bug was a reset that
    // left the physical run misaligned).
    for (int prefill : {3, 12}) { // below capacity / wrapped-full
        KeyedSeriesRing ring(8);
        for (SimTime t = 0; t < prefill; ++t)
            ring.push({t, static_cast<float>(100 + t)});
        ring.trimBefore(1000);
        EXPECT_EQ(ring.size(), 0u);
        EXPECT_TRUE(ring.view().empty());
        EXPECT_DOUBLE_EQ(ring.peakValue(), 0.0);
        EXPECT_EQ(ring.span(), 0);

        // Regrow past capacity: eviction and digests must behave
        // like a freshly constructed ring.
        for (SimTime t = 2000; t < 2012; ++t)
            ring.push({t, static_cast<float>(t - 2000)});
        EXPECT_EQ(ring.size(), 8u);
        EXPECT_EQ(ring.front().time, 2004);
        EXPECT_EQ(ring.back().time, 2011);
        EXPECT_DOUBLE_EQ(ring.peakValue(), 11.0);
        EXPECT_EQ(ring.span(), 7);

        // And a second trim-to-empty on the regrown ring.
        ring.trimBefore(3000);
        EXPECT_EQ(ring.size(), 0u);
        ring.push({3000, 9.0f});
        EXPECT_EQ(ring.size(), 1u);
        EXPECT_EQ(ring.front().time, 3000);
        EXPECT_DOUBLE_EQ(ring.peakValue(), 9.0);
    }
}

TEST(SampleRing, TrimToEmptyWhilePeakDigestIsInvalid)
{
    // Evicting the peak defers the digest rescan; trimming the rest
    // away while the digest is invalid must still leave a clean
    // empty ring (peak 0) and exact digests after regrowth.
    KeyedSeriesRing ring(4);
    ring.push({0, 50.0f});
    ring.push({1, 1.0f});
    ring.push({2, 2.0f});
    ring.trimBefore(1); // evicts the 50 peak -> digest invalid
    ring.trimBefore(10); // empties the ring before any peak query
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_DOUBLE_EQ(ring.peakValue(), 0.0);
    ring.push({20, 4.0f});
    EXPECT_DOUBLE_EQ(ring.peakValue(), 4.0);
}

TEST(SampleRing, ViewChunksAreContiguousAndOrdered)
{
    KeyedSeriesRing ring(6);
    for (SimTime t = 0; t < 10; ++t)
        ring.push({t, static_cast<float>(t)});
    const SeriesView<KeyedSample> view = ring.view();
    ASSERT_EQ(view.size(), 6u);
    // A wrapped ring exposes exactly two chunks covering the data.
    EXPECT_EQ(view.firstChunk().size + view.secondChunk().size, 6u);
    EXPECT_GT(view.secondChunk().size, 0u);
    SimTime prev = -1;
    for (const KeyedSample &s : view) {
        EXPECT_GT(s.time, prev);
        prev = s.time;
    }
    EXPECT_EQ(view.front().time, 4);
    EXPECT_EQ(view.back().time, 9);
}

TEST(TelemetryStore, RingCapacityBoundsSeries)
{
    // A store sized to a small retention window keeps only the most
    // recent samples, in order.
    TelemetryStore store(16);
    for (SimTime t = 0; t < 100; ++t)
        store.recordRowPower(RowId(0), t * 600, 1000.0 + t);
    const auto series = store.rowPowerSeries(RowId(0));
    EXPECT_EQ(series.size(), 16u);
    EXPECT_EQ(series.front().time, 84 * 600);
    EXPECT_EQ(series.back().time, 99 * 600);
    EXPECT_DOUBLE_EQ(store.rowPowerPeak(RowId(0)), 1099.0);
}

TEST(TelemetryStore, TrimBeforeMatchesEraseSemantics)
{
    TelemetryStore store;
    for (SimTime t = 0; t < 10 * kHour; t += kHour)
        store.recordRowPower(RowId(0), t, 1.0);
    store.trimBefore(5 * kHour);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).size(), 5u);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).front().time,
              5 * kHour);
    // Trimming everything leaves an empty, reusable series.
    store.trimBefore(kWeek);
    EXPECT_TRUE(store.rowPowerSeries(RowId(0)).empty());
    store.recordRowPower(RowId(0), kWeek, 2.0);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).size(), 1u);
}

} // namespace
} // namespace tapas
