/**
 * @file
 * Batched-vs-scalar predictor equivalence for every fitted model in
 * the ProfileBank. The batched passes are the only call path the
 * risk/allocator/configurator hot loops may use, so they must be
 * bit-identical to the scalar predict* calls they replace (the
 * batch bodies evaluate the exact same expression per element —
 * EXPECT_EQ on doubles below means bitwise equality, not a
 * tolerance).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/profiles.hh"

namespace tapas {
namespace {

class ProfileBatchTest : public ::testing::Test
{
  protected:
    ProfileBatchTest()
        : dc(makeLayout()), thermal(dc, ThermalConfig{}, 91),
          powerModel(PowerConfig{}), bank(dc)
    {
        bank.offlineProfile(thermal, powerModel, 17);
    }

    static LayoutConfig
    makeLayout()
    {
        LayoutConfig cfg;
        cfg.aisleCount = 2;
        cfg.rowsPerAisle = 2;
        cfg.racksPerRow = 3;
        cfg.serversPerRack = 4;
        return cfg;
    }

    DatacenterLayout dc;
    ThermalModel thermal;
    PowerModel powerModel;
    ProfileBank bank;
};

TEST_F(ProfileBatchTest, InletBatchMatchesScalar)
{
    const std::size_t n = dc.serverCount();
    std::vector<double> out(n);
    // Cover both hinge knots (15 C and 25 C) and beyond.
    for (double outside : {5.0, 15.0, 20.0, 25.0, 34.0, 40.0}) {
        for (double dc_load : {0.0, 0.5, 1.0}) {
            bank.predictInletBatch(outside, dc_load, n, out.data());
            for (std::size_t s = 0; s < n; ++s) {
                EXPECT_EQ(out[s],
                          bank.predictInletC(
                              ServerId(static_cast<std::uint32_t>(s)),
                              outside, dc_load));
            }
        }
    }
}

TEST_F(ProfileBatchTest, PowerBatchesMatchScalar)
{
    const std::size_t n = dc.serverCount();
    Rng rng(5);
    std::vector<double> loads(n);
    for (double &l : loads)
        l = rng.uniform(-0.2, 1.3); // exercises the clamp too
    std::vector<double> out(n);
    bank.predictPowerBatch(loads.data(), n, out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictServerPowerW(
                      ServerId(static_cast<std::uint32_t>(s)),
                      loads[s]));
    }

    bank.predictPowerUniformBatch(0.45, n, out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictServerPowerW(
                      ServerId(static_cast<std::uint32_t>(s)),
                      0.45));
    }
}

TEST_F(ProfileBatchTest, AirflowBatchesMatchScalar)
{
    const std::size_t n = dc.serverCount();
    Rng rng(6);
    std::vector<double> loads(n);
    for (double &l : loads)
        l = rng.uniform(-0.2, 1.3);
    std::vector<double> out(n);
    bank.predictAirflowBatch(loads.data(), n, out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictServerAirflowCfm(
                      ServerId(static_cast<std::uint32_t>(s)),
                      loads[s]));
    }

    bank.predictAirflowUniformBatch(0.0, n, out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictServerAirflowCfm(
                      ServerId(static_cast<std::uint32_t>(s)), 0.0));
    }
}

TEST_F(ProfileBatchTest, GatherVariantsMatchScalar)
{
    // An arbitrary non-contiguous, unordered server subset.
    const std::vector<ServerId> ids = {ServerId(7), ServerId(0),
                                       ServerId(23), ServerId(11),
                                       ServerId(47)};
    const std::vector<double> loads = {0.9, 0.0, 0.33, 1.0, 0.61};
    std::vector<double> out(ids.size());
    bank.predictPowerGather(ids.data(), loads.data(), ids.size(),
                            out.data());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(out[i],
                  bank.predictServerPowerW(ids[i], loads[i]));

    bank.predictAirflowGather(ids.data(), loads.data(), ids.size(),
                              out.data());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(out[i],
                  bank.predictServerAirflowCfm(ids[i], loads[i]));
}

TEST_F(ProfileBatchTest, HottestGpuBatchesMatchScalar)
{
    const std::size_t n = dc.serverCount();
    const std::size_t gpus = static_cast<std::size_t>(
        dc.specs().front().gpusPerServer);
    Rng rng(7);

    std::vector<double> inlet(n);
    for (double &v : inlet)
        v = rng.uniform(18.0, 38.0);

    // Measured per-GPU powers (risk-refresh shape).
    std::vector<double> gpu_w(n * gpus);
    for (double &v : gpu_w)
        v = rng.uniform(60.0, 420.0);
    std::vector<double> out(n);
    bank.predictHottestGpuBatch(inlet.data(), gpu_w.data(), n,
                                out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictHottestGpuC(
                      ServerId(static_cast<std::uint32_t>(s)),
                      inlet[s], &gpu_w[s * gpus]));
    }

    // Uniform per-server power (placement-projection shape).
    std::vector<double> per_gpu(n);
    for (double &v : per_gpu)
        v = rng.uniform(60.0, 420.0);
    bank.predictHottestGpuUniformBatch(inlet.data(), per_gpu.data(),
                                       n, out.data());
    for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictHottestGpuC(
                      ServerId(static_cast<std::uint32_t>(s)),
                      inlet[s], per_gpu[s]));
    }
}

TEST_F(ProfileBatchTest, CandidateBatchesMatchScalar)
{
    // One server's model streamed over many candidate operating
    // points (the configurator's scoring shape).
    const ServerId server(13);
    Rng rng(8);
    std::vector<double> powers(32);
    std::vector<double> heats(32);
    for (std::size_t i = 0; i < powers.size(); ++i) {
        powers[i] = rng.uniform(60.0, 420.0);
        heats[i] = rng.uniform(-0.1, 1.2);
    }
    std::vector<double> out(powers.size());
    bank.predictHottestGpuCandidates(server, 27.5, powers.data(),
                                     powers.size(), out.data());
    for (std::size_t i = 0; i < powers.size(); ++i) {
        EXPECT_EQ(out[i],
                  bank.predictHottestGpuC(server, 27.5, powers[i]));
    }

    bank.predictAirflowCandidates(server, heats.data(), heats.size(),
                                  out.data());
    for (std::size_t i = 0; i < heats.size(); ++i) {
        EXPECT_EQ(out[i],
                  bank.predictServerAirflowCfm(server, heats[i]));
    }
}

TEST_F(ProfileBatchTest, BatchesCoverNewlyProfiledServers)
{
    // Servers profiled after construction (oversubscription racks)
    // must be reachable by the batches too.
    const std::size_t before = dc.serverCount();
    dc.addRack(RowId(0));
    thermal.extend();
    bank.profileNewServers(thermal, powerModel, 21);
    const std::size_t after = dc.serverCount();
    ASSERT_GT(after, before);

    std::vector<double> out(after);
    bank.predictInletBatch(30.0, 0.8, after, out.data());
    for (std::size_t s = 0; s < after; ++s) {
        EXPECT_EQ(out[s],
                  bank.predictInletC(
                      ServerId(static_cast<std::uint32_t>(s)), 30.0,
                      0.8));
    }
}

} // namespace
} // namespace tapas
