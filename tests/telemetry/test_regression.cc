/**
 * @file
 * Unit tests for the regression toolkit, including the paper's
 * model-selection finding: piecewise-polynomial generalizes below the
 * training range while random forests cannot.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "telemetry/regression.hh"

namespace tapas {
namespace {

TEST(Metrics, MaeRmseR2)
{
    const std::vector<double> truth = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> pred = {1.5, 2.0, 2.5, 4.0};
    EXPECT_DOUBLE_EQ(meanAbsoluteError(truth, pred), 0.25);
    EXPECT_NEAR(rootMeanSquaredError(truth, pred),
                std::sqrt(0.125), 1e-12);
    EXPECT_GT(rSquared(truth, pred), 0.8);
    EXPECT_DOUBLE_EQ(rSquared(truth, truth), 1.0);
}

TEST(LinearRegression, RecoversExactCoefficients)
{
    // y = 3 + 2*x0 - 0.5*x1, noiseless.
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-5.0, 5.0);
        const double b = rng.uniform(0.0, 10.0);
        X.push_back({a, b});
        y.push_back(3.0 + 2.0 * a - 0.5 * b);
    }
    LinearRegression model;
    model.fit(X, y);
    ASSERT_EQ(model.coefficients().size(), 3u);
    EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-6);
    EXPECT_NEAR(model.coefficients()[1], 2.0, 1e-6);
    EXPECT_NEAR(model.coefficients()[2], -0.5, 1e-6);
    EXPECT_NEAR(model.predict({1.0, 2.0}), 4.0, 1e-6);
}

TEST(LinearRegression, RobustToNoise)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        X.push_back({a});
        y.push_back(10.0 + 4.0 * a + rng.gaussian(0.0, 0.5));
    }
    LinearRegression model;
    model.fit(X, y);
    EXPECT_NEAR(model.coefficients()[1], 4.0, 0.1);
}

TEST(PolynomialRegression, FitsCubic)
{
    std::vector<double> xs;
    std::vector<double> ys;
    for (double x = 0.0; x <= 1.0; x += 0.05) {
        xs.push_back(x);
        ys.push_back(1.0 + 2.0 * x - x * x + 0.5 * x * x * x);
    }
    PolynomialRegression model(3);
    model.fit(xs, ys);
    for (double x = 0.05; x < 1.0; x += 0.1) {
        EXPECT_NEAR(model.predict(x),
                    1.0 + 2.0 * x - x * x + 0.5 * x * x * x, 1e-6);
    }
}

TEST(PolynomialRegression, DegreeOneIsLine)
{
    PolynomialRegression model(1);
    model.fit({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
    EXPECT_NEAR(model.predict(10.0), 21.0, 1e-6);
}

TEST(SharedDesign, SolveMatchesUnbatchedFitBitwise)
{
    // The batched profile refits rely on this: solving against a
    // shared design must reproduce LinearRegression::fit on the
    // same rows exactly, for every target vector.
    std::vector<std::vector<double>> rows;
    Rng rng(11);
    for (int i = 0; i < 60; ++i)
        rows.push_back({rng.uniform(-3.0, 3.0),
                        rng.uniform(0.0, 400.0),
                        rng.uniform(0.0, 1.0)});
    const SharedDesign design(rows);
    EXPECT_EQ(design.sampleCount(), rows.size());
    EXPECT_EQ(design.width(), 4u);

    for (int series = 0; series < 8; ++series) {
        std::vector<double> y;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            y.push_back(5.0 * rows[i][0] - 0.01 * rows[i][1] +
                        rng.gaussian(0.0, series + 1.0));
        }
        LinearRegression reference;
        reference.fit(rows, y);
        std::vector<double> batched;
        design.solve(y, batched);
        ASSERT_EQ(batched.size(), reference.coefficients().size());
        for (std::size_t k = 0; k < batched.size(); ++k) {
            EXPECT_EQ(batched[k], reference.coefficients()[k])
                << "series " << series << " weight " << k;
        }
    }
}

TEST(SharedDesign, WideSystemFallsBackToHeapPath)
{
    // 10 features exceeds the stack-solve width; results must still
    // match the unbatched fit.
    std::vector<std::vector<double>> rows;
    Rng rng(13);
    for (int i = 0; i < 80; ++i) {
        std::vector<double> row;
        for (int f = 0; f < 10; ++f)
            row.push_back(rng.uniform(-1.0, 1.0));
        rows.push_back(std::move(row));
    }
    std::vector<double> y;
    for (int i = 0; i < 80; ++i)
        y.push_back(rng.uniform(0.0, 10.0));
    const SharedDesign design(rows);
    LinearRegression reference;
    reference.fit(rows, y);
    std::vector<double> batched;
    design.solve(y, batched);
    ASSERT_EQ(batched.size(), reference.coefficients().size());
    for (std::size_t k = 0; k < batched.size(); ++k)
        EXPECT_EQ(batched[k], reference.coefficients()[k]);
}

TEST(PiecewiseLinear, RecoversKneeFunction)
{
    // Ground truth shaped like the cooling curve: flat, then steep,
    // then damped, plus a linear load term.
    auto truth = [](double x, double load) {
        double base = 18.0;
        if (x > 15.0)
            base += 0.7 * (std::min(x, 25.0) - 15.0);
        if (x > 25.0)
            base += 0.35 * (x - 25.0);
        return base + 2.0 * load;
    };
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 40.0);
        const double load = rng.uniform(0.0, 1.0);
        X.push_back({x, load});
        y.push_back(truth(x, load) + rng.gaussian(0.0, 0.25));
    }
    PiecewiseLinearModel model({15.0, 25.0}, 1);
    model.fit(X, y);

    std::vector<double> t;
    std::vector<double> p;
    for (double x = 2.0; x <= 38.0; x += 1.0) {
        for (double load : {0.1, 0.5, 0.9}) {
            t.push_back(truth(x, load));
            p.push_back(model.predict({x, load}));
        }
    }
    // The paper's bar: piecewise polynomial achieves MAE < 1C.
    EXPECT_LT(meanAbsoluteError(t, p), 0.5);
}

TEST(PiecewiseLinear, ExtrapolatesBelowTrainingRange)
{
    // Train only on x in [15, 35]; query x = 5.
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(15.0, 35.0);
        X.push_back({x});
        y.push_back(2.0 * x + rng.gaussian(0.0, 0.1));
    }
    PiecewiseLinearModel model({20.0, 30.0}, 0);
    model.fit(X, y);
    EXPECT_NEAR(model.predict({5.0}), 10.0, 1.5);
}

TEST(RegressionTree, FitsStepFunction)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double x = i / 200.0;
        X.push_back({x});
        y.push_back(x < 0.5 ? 1.0 : 5.0);
    }
    RegressionTree tree(4, 5);
    tree.fit(X, y);
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 0.01);
    EXPECT_NEAR(tree.predict({0.8}), 5.0, 0.01);
}

TEST(RegressionTree, RespectsMinSamples)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int i = 0; i < 10; ++i) {
        X.push_back({static_cast<double>(i)});
        y.push_back(static_cast<double>(i));
    }
    RegressionTree stump(10, 10);
    stump.fit(X, y);
    // min_samples = n forbids any split: constant prediction.
    EXPECT_NEAR(stump.predict({0.0}), 4.5, 1e-9);
    EXPECT_NEAR(stump.predict({9.0}), 4.5, 1e-9);
}

TEST(RandomForest, FitsSmoothFunction)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        X.push_back({x});
        y.push_back(std::sin(x) * 3.0 + rng.gaussian(0.0, 0.1));
    }
    RandomForest forest(20, 8, 5, 6);
    forest.fit(X, y);
    std::vector<double> t;
    std::vector<double> p;
    for (double x = 0.5; x < 9.5; x += 0.25) {
        t.push_back(std::sin(x) * 3.0);
        p.push_back(forest.predict({x}));
    }
    EXPECT_LT(meanAbsoluteError(t, p), 0.3);
}

TEST(RandomForest, CannotExtrapolateBelowTrainingSet)
{
    // The paper's stated reason for rejecting forests: they "struggle
    // to predict temperatures lower than those in the training set".
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(15.0, 35.0);
        X.push_back({x});
        y.push_back(2.0 * x + rng.gaussian(0.0, 0.1));
    }
    RandomForest forest(20, 8, 5, 8);
    forest.fit(X, y);
    // True value at 5.0 is 10; the forest cannot go below ~30
    // (2 * training minimum).
    EXPECT_GT(forest.predict({5.0}), 25.0);

    PiecewiseLinearModel spline({25.0}, 0);
    spline.fit(X, y);
    const double spline_err = std::abs(spline.predict({5.0}) - 10.0);
    const double forest_err = std::abs(forest.predict({5.0}) - 10.0);
    EXPECT_LT(spline_err, forest_err / 4.0);
}

TEST(RandomForest, DeterministicForSeed)
{
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        X.push_back({x});
        y.push_back(x * x);
    }
    RandomForest a(10, 6, 3, 42);
    RandomForest b(10, 6, 3, 42);
    a.fit(X, y);
    b.fit(X, y);
    for (double x = 0.1; x < 1.0; x += 0.2)
        EXPECT_DOUBLE_EQ(a.predict({x}), b.predict({x}));
}

TEST(RegressionDeathTest, PredictBeforeFitPanics)
{
    LinearRegression model;
    EXPECT_DEATH(model.predict({1.0}), "predict before fit");
}

TEST(RegressionDeathTest, WidthMismatchPanics)
{
    LinearRegression model;
    model.fit({{1.0, 2.0}}, {3.0});
    EXPECT_DEATH(model.predict({1.0}), "feature width");
}

} // namespace
} // namespace tapas
