/**
 * @file
 * Profile-refit sanity gate: refits from clean telemetry are accepted
 * and track the offline model; refits from corrupted telemetry (a
 * biased power sensor) are rejected, the server keeps its last
 * accepted model and is fit-quarantined, and a later clean refit
 * recovers it automatically.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/fixture.hh"
#include "telemetry/history.hh"
#include "telemetry/profiles.hh"

namespace tapas {
namespace {

class RefitGate : public CoreFixture
{
  protected:
    /** Record one sample per load point for @p sid, with power taken
     *  from the bank's own offline model plus @p bias_w. */
    void
    feedSamples(TelemetryStore &store, ServerId sid, double bias_w)
    {
        SimTime t = 0;
        for (int i = 0; i < 24; ++i) {
            const double load = 0.1 + 0.8 * i / 23.0;
            ServerSample s;
            s.time = t;
            s.gpuLoad = static_cast<float>(load);
            s.serverPowerW = static_cast<float>(
                bank.predictServerPowerW(sid, load) + bias_w);
            store.recordServer(sid, s);
            t += 10 * kMinute;
        }
    }

    std::vector<double>
    predictions(ServerId sid) const
    {
        std::vector<double> out;
        for (const double load : {0.0, 0.25, 0.5, 0.75, 1.0})
            out.push_back(bank.predictServerPowerW(sid, load));
        return out;
    }
};

TEST_F(RefitGate, CleanRefitIsAcceptedAndStaysNearOfflineModel)
{
    TelemetryStore store;
    const ServerId sid(0);
    const std::vector<double> before = predictions(sid);
    feedSamples(store, sid, 0.0);

    bank.refitPowerFromTelemetry(store);
    EXPECT_EQ(bank.refitsAccepted(), 1u);
    EXPECT_EQ(bank.refitsRejected(), 0u);
    EXPECT_FALSE(bank.fitQuarantined(sid));
    EXPECT_EQ(bank.fitQuarantineCount(), 0u);

    // The refit was fitted from the model's own curve, so the new
    // polynomial reproduces it closely across the load range.
    const std::vector<double> after = predictions(sid);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(after[i], before[i], 25.0);

    // Servers with no telemetry are skipped, not rejected.
    EXPECT_FALSE(bank.fitQuarantined(ServerId(1)));
}

TEST_F(RefitGate, CorruptedTelemetryIsRejectedAndRecovers)
{
    const ServerId sid(3);
    const std::vector<double> before = predictions(sid);

    // A badly biased power sensor: every sample reads 1.5 kW high.
    // The fitted curve leaves the envelope around the offline
    // anchor, so the gate must reject it.
    TelemetryStore corrupted;
    feedSamples(corrupted, sid, 1500.0);
    bank.refitPowerFromTelemetry(corrupted);

    EXPECT_EQ(bank.refitsRejected(), 1u);
    EXPECT_TRUE(bank.fitQuarantined(sid));
    EXPECT_EQ(bank.fitQuarantineCount(), 1u);
    // The server keeps its last accepted model, bit-for-bit.
    const std::vector<double> after_reject = predictions(sid);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_DOUBLE_EQ(after_reject[i], before[i]);

    // The sensor is fixed; the next clean refit passes the gate and
    // clears the quarantine.
    TelemetryStore clean;
    feedSamples(clean, sid, 0.0);
    bank.refitPowerFromTelemetry(clean);
    EXPECT_GE(bank.refitsAccepted(), 1u);
    EXPECT_FALSE(bank.fitQuarantined(sid));
    EXPECT_EQ(bank.fitQuarantineCount(), 0u);
}

TEST_F(RefitGate, SparseOrNarrowTelemetryIsSkippedNotInstalled)
{
    const ServerId sid(7);
    const std::vector<double> before = predictions(sid);

    // Too few samples.
    TelemetryStore sparse;
    for (int i = 0; i < 5; ++i) {
        ServerSample s;
        s.time = i * 10 * kMinute;
        s.gpuLoad = 0.5f;
        s.serverPowerW = 3000.0f;
        sparse.recordServer(sid, s);
    }
    bank.refitPowerFromTelemetry(sparse);

    // No load spread (a frozen load channel: stuck-at sensor).
    TelemetryStore narrow;
    for (int i = 0; i < 24; ++i) {
        ServerSample s;
        s.time = i * 10 * kMinute;
        s.gpuLoad = 0.42f;
        s.serverPowerW = 2800.0f;
        narrow.recordServer(sid, s);
    }
    bank.refitPowerFromTelemetry(narrow);

    // Neither produced an installable fit; the model is untouched
    // and the server is not quarantined (there was nothing to judge).
    EXPECT_EQ(bank.refitsAccepted(), 0u);
    EXPECT_EQ(bank.refitsRejected(), 0u);
    EXPECT_FALSE(bank.fitQuarantined(sid));
    const std::vector<double> after = predictions(sid);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_DOUBLE_EQ(after[i], before[i]);
}

} // namespace
} // namespace tapas
