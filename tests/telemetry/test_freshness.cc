/**
 * @file
 * Telemetry freshness and gap detection: the queries the sensor-fault
 * handling leans on. A dropped-sample fault shows up as a growing
 * last-sample age and a widening inter-sample gap; both must read
 * correctly on empty, single-sample, and resumed series.
 */

#include <gtest/gtest.h>

#include "telemetry/history.hh"

namespace tapas {
namespace {

ServerSample
sampleAt(SimTime t, float power_w = 1500.0f)
{
    ServerSample s;
    s.time = t;
    s.serverPowerW = power_w;
    return s;
}

TEST(TelemetryFreshness, EmptySeriesIsStale)
{
    TelemetryStore store;
    EXPECT_EQ(store.serverLastSampleAge(ServerId(0), kHour), -1);
    EXPECT_EQ(store.serverSampleGap(ServerId(0)), 0);
    EXPECT_EQ(store.serverMaxSampleGap(ServerId(0)), 0);
    EXPECT_FALSE(store.serverFresh(ServerId(0), kHour, kDay));
}

TEST(TelemetryFreshness, AgeTracksNewestSample)
{
    TelemetryStore store;
    store.recordServer(ServerId(0), sampleAt(0));
    store.recordServer(ServerId(0), sampleAt(10 * kMinute));

    EXPECT_EQ(store.serverLastSampleAge(ServerId(0), 10 * kMinute),
              0);
    EXPECT_EQ(store.serverLastSampleAge(ServerId(0), kHour),
              kHour - 10 * kMinute);
    EXPECT_TRUE(
        store.serverFresh(ServerId(0), kHour, 50 * kMinute));
    EXPECT_FALSE(
        store.serverFresh(ServerId(0), kHour, 49 * kMinute));

    // Another server's feed is independent.
    EXPECT_EQ(store.serverLastSampleAge(ServerId(1), kHour), -1);
}

TEST(TelemetryFreshness, DroppedSamplesWidenTheGap)
{
    TelemetryStore store;
    const SimTime cadence = 10 * kMinute;

    // Healthy cadence: gap equals the cadence.
    store.recordServer(ServerId(0), sampleAt(0));
    store.recordServer(ServerId(0), sampleAt(cadence));
    EXPECT_EQ(store.serverSampleGap(ServerId(0)), cadence);
    EXPECT_EQ(store.serverMaxSampleGap(ServerId(0)), cadence);

    // A dropped-sample fault silences the feed for two hours; the
    // resuming sample exposes the hole.
    store.recordServer(ServerId(0),
                       sampleAt(cadence + 2 * kHour));
    EXPECT_EQ(store.serverSampleGap(ServerId(0)), 2 * kHour);
    EXPECT_EQ(store.serverMaxSampleGap(ServerId(0)), 2 * kHour);

    // Back to cadence: the last gap heals, the max remembers.
    store.recordServer(
        ServerId(0), sampleAt(cadence + 2 * kHour + cadence));
    EXPECT_EQ(store.serverSampleGap(ServerId(0)), cadence);
    EXPECT_EQ(store.serverMaxSampleGap(ServerId(0)), 2 * kHour);
}

TEST(TelemetryFreshness, RingDigestsSurviveWrapAndTrim)
{
    // The gap digests live on the ring itself; eviction and trims
    // must not corrupt them.
    ServerSeriesRing ring(4);
    for (int i = 0; i < 10; ++i)
        ring.push(sampleAt(i * 10 * kMinute));
    EXPECT_EQ(ring.lastTime(), 90 * kMinute);
    EXPECT_EQ(ring.lastGap(), 10 * kMinute);
    EXPECT_EQ(ring.maxGap(), 10 * kMinute);

    ring.push(sampleAt(90 * kMinute + 3 * kHour));
    EXPECT_EQ(ring.lastGap(), 3 * kHour);
    EXPECT_EQ(ring.maxGap(), 3 * kHour);
    EXPECT_EQ(ring.lastTime(), 90 * kMinute + 3 * kHour);
}

} // namespace
} // namespace tapas
