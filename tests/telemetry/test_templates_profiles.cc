/**
 * @file
 * Unit tests for the telemetry store, power templates (Fig. 14
 * machinery), and the fitted ProfileBank (paper's MAE < 1C claim).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/history.hh"
#include "telemetry/profiles.hh"
#include "telemetry/templates.hh"

namespace tapas {
namespace {

TEST(TelemetryStore, RecordAndQuery)
{
    TelemetryStore store;
    store.recordRowPower(RowId(0), 0, 100.0);
    store.recordRowPower(RowId(0), kHour, 200.0);
    store.recordRowPower(RowId(1), 0, 50.0);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).size(), 2u);
    EXPECT_EQ(store.rowPowerSeries(RowId(1)).size(), 1u);
    EXPECT_TRUE(store.rowPowerSeries(RowId(9)).empty());
    EXPECT_EQ(store.rowsWithData().size(), 2u);
}

TEST(TelemetryStore, TrimBeforeDropsOldSamples)
{
    TelemetryStore store;
    for (SimTime t = 0; t < 10 * kHour; t += kHour)
        store.recordRowPower(RowId(0), t, 1.0);
    store.trimBefore(5 * kHour);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).size(), 5u);
    EXPECT_EQ(store.rowPowerSeries(RowId(0)).front().time, 5 * kHour);
}

TEST(TelemetryStore, LoadDigestTracksSpanAndPeak)
{
    TelemetryStore store;
    EXPECT_DOUBLE_EQ(store.customerPeakLoad(CustomerId(3)), 1.0);
    store.recordVmLoad(VmId(0), CustomerId(3), EndpointId(), 0, 0.4);
    store.recordVmLoad(VmId(0), CustomerId(3), EndpointId(),
                       2 * kDay, 0.8);
    EXPECT_EQ(store.customerLoadSpan(CustomerId(3)), 2 * kDay);
    EXPECT_DOUBLE_EQ(store.customerPeakLoad(CustomerId(3)), 0.8);
    // Endpoint side untouched.
    EXPECT_EQ(store.endpointLoadSpan(EndpointId(0)), 0);
}

TEST(PowerTemplates, HourOfWeekPrediction)
{
    // Two weeks of a deterministic diurnal signal; the template
    // learned from it must reproduce the hour-of-week pattern.
    TelemetryStore store;
    auto signal = [](SimTime t) {
        const double hour = static_cast<double>(t % kDay) / kHour;
        return 1000.0 + 500.0 * std::sin(2.0 * M_PI * hour / 24.0);
    };
    for (SimTime t = 0; t < 2 * kWeek; t += 10 * kMinute)
        store.recordRowPower(RowId(0), t, signal(t));

    const PowerTemplates templates =
        PowerTemplates::build(store, TemplateQuantiles{});
    ASSERT_TRUE(templates.hasRow(RowId(0)));
    for (SimTime t = 2 * kWeek; t < 2 * kWeek + kDay; t += kHour) {
        const double predicted = templates.predictRow(
            RowId(0), t, PowerTemplates::Level::P50);
        EXPECT_NEAR(predicted, signal(t), 60.0);
    }
}

TEST(PowerTemplates, QuantileOrdering)
{
    TelemetryStore store;
    Rng rng(12);
    for (SimTime t = 0; t < kWeek; t += 10 * kMinute) {
        store.recordRowPower(RowId(0), t,
                             1000.0 + rng.gaussian(0.0, 100.0));
    }
    const PowerTemplates templates =
        PowerTemplates::build(store, TemplateQuantiles{});
    const double p50 = templates.predictRow(
        RowId(0), kHour, PowerTemplates::Level::P50);
    const double p90 = templates.predictRow(
        RowId(0), kHour, PowerTemplates::Level::P90);
    const double p99 = templates.predictRow(
        RowId(0), kHour, PowerTemplates::Level::P99);
    EXPECT_LT(p50, p90);
    EXPECT_LE(p90, p99);
}

TEST(PowerTemplates, P99OverpredictsMostHours)
{
    // The conservative-template property the paper relies on: P99
    // templates rarely underpredict (Fig. 14a: < 4% of row-hours).
    TelemetryStore store;
    Rng rng(13);
    auto signal = [&](SimTime t) {
        const double hour = static_cast<double>(t % kDay) / kHour;
        return 1000.0 + 300.0 * std::sin(2.0 * M_PI * hour / 24.0) +
            rng.gaussian(0.0, 50.0);
    };
    for (SimTime t = 0; t < 8 * kWeek; t += 10 * kMinute)
        store.recordRowPower(RowId(0), t, signal(t));
    const PowerTemplates templates =
        PowerTemplates::build(store, TemplateQuantiles{});

    int under = 0;
    int total = 0;
    for (SimTime t = 8 * kWeek; t < 9 * kWeek; t += kHour) {
        const double predicted = templates.predictRow(
            RowId(0), t, PowerTemplates::Level::P99);
        const double actual = signal(t);
        if (actual > predicted)
            ++under;
        ++total;
    }
    // Paper reports < 4% on production-scale history; our synthetic
    // buckets hold ~48 samples, so allow modest estimator noise.
    EXPECT_LT(static_cast<double>(under) / total, 0.08);
}

TEST(PowerTemplates, CustomerTemplatesUseHourOfDay)
{
    TelemetryStore store;
    for (int day = 0; day < 7; ++day) {
        for (int h = 0; h < 24; ++h) {
            store.recordCustomerVmPower(
                CustomerId(2), day * kDay + h * kHour,
                h < 12 ? 100.0 : 300.0);
        }
    }
    const PowerTemplates templates =
        PowerTemplates::build(store, TemplateQuantiles{});
    EXPECT_NEAR(templates.predictCustomerVm(
                    CustomerId(2), 6 * kHour,
                    PowerTemplates::Level::P50),
                100.0, 1.0);
    EXPECT_NEAR(templates.predictCustomerVm(
                    CustomerId(2), 18 * kHour,
                    PowerTemplates::Level::P50),
                300.0, 1.0);
}

TEST(PowerTemplates, RowTemplatePeak)
{
    TelemetryStore store;
    for (SimTime t = 0; t < 2 * kWeek; t += 10 * kMinute) {
        const bool spike_hour = (t / kHour) % 168 == 3;
        store.recordRowPower(RowId(0), t,
                             spike_hour ? 999.0 : 100.0);
    }
    const PowerTemplates templates =
        PowerTemplates::build(store, TemplateQuantiles{});
    EXPECT_NEAR(templates.rowTemplatePeak(RowId(0)), 999.0, 1.0);
}

class ProfileBankTest : public ::testing::Test
{
  protected:
    ProfileBankTest()
        : dc(makeConfig()), thermal(dc, ThermalConfig{}, 21),
          power(PowerConfig{}), bank(dc)
    {
        bank.offlineProfile(thermal, power, 99);
    }

    static LayoutConfig
    makeConfig()
    {
        LayoutConfig cfg;
        cfg.aisleCount = 2;
        cfg.rowsPerAisle = 2;
        cfg.racksPerRow = 4;
        cfg.serversPerRack = 3;
        return cfg;
    }

    DatacenterLayout dc;
    ThermalModel thermal;
    PowerModel power;
    ProfileBank bank;
};

TEST_F(ProfileBankTest, InletFitWithinOneDegree)
{
    // The paper's bar: piecewise polynomial fits inlet with MAE < 1C.
    std::vector<double> truth;
    std::vector<double> pred;
    for (const Server &server : dc.servers()) {
        for (double outside : {8.0, 14.0, 19.0, 23.0, 27.0, 33.0}) {
            for (double load : {0.3, 0.6, 0.9}) {
                truth.push_back(
                    thermal
                        .inletTemperature(server.id,
                                          Celsius(outside), load, 0.0)
                        .value());
                pred.push_back(bank.predictInletC(server.id, outside,
                                                  load));
            }
        }
    }
    EXPECT_LT(meanAbsoluteError(truth, pred), 1.0);
}

TEST_F(ProfileBankTest, GpuTempFitWithinOneDegree)
{
    std::vector<double> truth;
    std::vector<double> pred;
    for (const Server &server : dc.servers()) {
        for (int g = 0; g < 8; ++g) {
            for (double inlet : {20.0, 25.0, 29.0}) {
                for (double watts : {100.0, 300.0, 390.0}) {
                    truth.push_back(
                        thermal
                            .gpuTemperature(server.id, g,
                                            Celsius(inlet),
                                            Watts(watts))
                            .value());
                    pred.push_back(bank.predictGpuTempC(
                        server.id, g, inlet, watts));
                }
            }
        }
    }
    EXPECT_LT(meanAbsoluteError(truth, pred), 1.0);
}

TEST_F(ProfileBankTest, HottestGpuDominatesIndividuals)
{
    const ServerId sid(0);
    const double hottest =
        bank.predictHottestGpuC(sid, 25.0, 350.0);
    for (int g = 0; g < 8; ++g)
        EXPECT_GE(hottest, bank.predictGpuTempC(sid, g, 25.0, 350.0));
}

TEST_F(ProfileBankTest, PowerFitTracksGroundTruth)
{
    const ServerSpec &spec = dc.specOf(ServerId(0));
    for (double load : {0.1, 0.4, 0.7, 0.95}) {
        const double truth =
            power.serverPowerAtLoad(spec, load).value();
        const double pred =
            bank.predictServerPowerW(ServerId(0), load);
        EXPECT_NEAR(pred / truth, 1.0, 0.03);
    }
}

TEST_F(ProfileBankTest, AirflowFitTracksGroundTruth)
{
    for (double load : {0.2, 0.5, 0.8}) {
        const double truth =
            thermal.serverAirflow(ServerId(3), load).value();
        const double pred =
            bank.predictServerAirflowCfm(ServerId(3), load);
        EXPECT_NEAR(pred / truth, 1.0, 0.03);
    }
}

TEST_F(ProfileBankTest, ThermalClassesAreTerciles)
{
    int cold = 0;
    int medium = 0;
    int warm = 0;
    for (const Server &server : dc.servers()) {
        switch (bank.thermalClass(server.id)) {
          case ThermalClass::Cold:
            ++cold;
            break;
          case ThermalClass::Medium:
            ++medium;
            break;
          case ThermalClass::Warm:
            ++warm;
            break;
        }
    }
    const int n = static_cast<int>(dc.serverCount());
    EXPECT_EQ(cold, n / 3);
    EXPECT_EQ(warm, n / 3);
    EXPECT_EQ(cold + medium + warm, n);
}

TEST_F(ProfileBankTest, ClassesTrackTrueSpatialOffsets)
{
    // Servers classified Warm must have genuinely higher ground-truth
    // offsets than Cold ones, on average.
    double cold_sum = 0.0;
    double warm_sum = 0.0;
    int cold_n = 0;
    int warm_n = 0;
    for (const Server &server : dc.servers()) {
        const double truth = thermal.spatialOffset(server.id);
        if (bank.thermalClass(server.id) == ThermalClass::Cold) {
            cold_sum += truth;
            ++cold_n;
        } else if (bank.thermalClass(server.id) ==
                   ThermalClass::Warm) {
            warm_sum += truth;
            ++warm_n;
        }
    }
    ASSERT_GT(cold_n, 0);
    ASSERT_GT(warm_n, 0);
    EXPECT_GT(warm_sum / warm_n, cold_sum / cold_n + 0.5);
}

TEST_F(ProfileBankTest, ProfileNewServersAfterOversubscription)
{
    const std::size_t before = bank.profiledServerCount();
    dc.addRack(RowId(0));
    // Mirror the production oversubscription sequence (sim/cluster.cc):
    // the thermal model must materialize the new servers before anyone
    // profiles against it, or its per-server offset reads run past the
    // arrays sized at construction.
    thermal.extend();
    bank.profileNewServers(thermal, power, 123);
    EXPECT_EQ(bank.profiledServerCount(), before + 3);
    // New server predictions work.
    const ServerId fresh(static_cast<std::uint32_t>(before));
    EXPECT_GT(bank.predictInletC(fresh, 25.0, 0.5), 15.0);
}

TEST_F(ProfileBankTest, UnprofiledServerPanics)
{
    dc.addRack(RowId(0));
    const ServerId fresh(
        static_cast<std::uint32_t>(dc.serverCount() - 1));
    EXPECT_DEATH(bank.predictInletC(fresh, 25.0, 0.5),
                 "not profiled");
}

} // namespace
} // namespace tapas
