/**
 * @file
 * Unit tests for the risk assessor and routing policies.
 */

#include "fixture.hh"

#include <memory>

#include "core/router.hh"
#include "llm/engine.hh"

namespace tapas {
namespace {

class RouterTest : public CoreFixture
{
  protected:
    RouterTest()
        : refProfile(perf.profile(referenceConfig()))
    {
        gpuPower.assign(dc.serverCount() * 8, 60.0);
    }

    /** Create an engine-backed candidate on a server. */
    RouteCandidate
    makeCandidate(std::uint32_t vm_id, ServerId server)
    {
        engines.push_back(std::make_unique<InferenceEngine>(
            refProfile, perf.slo()));
        RouteCandidate cand;
        cand.vm = VmId(vm_id);
        cand.server = server;
        cand.engine = engines.back().get();
        return cand;
    }

    Request
    makeRequest(std::uint32_t customer)
    {
        Request req;
        req.id = RequestId(nextId++);
        req.endpoint = EndpointId(0);
        req.customer = CustomerId(customer);
        req.arrivalS = 0.0;
        req.promptTokens = 512;
        req.outputTokens = 128;
        return req;
    }

    /** Load an engine with n standard requests. */
    void
    loadEngine(InferenceEngine *engine, int n)
    {
        for (int i = 0; i < n; ++i)
            engine->enqueue(makeRequest(900 + i));
    }

    ConfigProfile refProfile;
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    std::vector<double> gpuPower;
    std::uint32_t nextId = 0;
};

TEST_F(RouterTest, RiskAssessorCleanClusterHasNoFlags)
{
    RiskAssessor assessor{TapasPolicyConfig{}};
    assessor.refresh(view, gpuPower);
    EXPECT_EQ(assessor.flaggedCount(), 0u);
    EXPECT_TRUE(assessor.fresh());
}

TEST_F(RouterTest, RiskAssessorFlagsHotServer)
{
    RiskAssessor assessor{TapasPolicyConfig{}};
    // Push one server's GPUs to implausible power -> projected
    // temperature above the margin.
    for (int g = 0; g < 8; ++g)
        gpuPower[3 * 8 + g] = 1200.0;
    assessor.refresh(view, gpuPower);
    EXPECT_TRUE(assessor.risk(ServerId(3)).thermalRisk);
    EXPECT_FALSE(assessor.risk(ServerId(4)).thermalRisk);
}

TEST_F(RouterTest, RiskAssessorFlagsPowerTightRow)
{
    RiskAssessor assessor{TapasPolicyConfig{}};
    // Load every server in row 0 to full: predicted power equals the
    // row budget, leaving less than the margin.
    for (ServerId sid : dc.row(RowId(0)).servers) {
        occupy(sid, VmKind::IaaS, 1.0, 1.0);
        view.serverLoads[sid.index] = 1.0;
    }
    assessor.refresh(view, gpuPower);
    const ServerId in_row = dc.row(RowId(0)).servers.front();
    EXPECT_TRUE(assessor.risk(in_row).powerRisk);
    const ServerId out_row = dc.row(RowId(1)).servers.front();
    EXPECT_FALSE(assessor.risk(out_row).powerRisk);
}

TEST_F(RouterTest, RiskCacheRespectsRefreshPeriod)
{
    TapasPolicyConfig cfg;
    cfg.riskRefreshPeriod = 5 * kMinute;
    RiskAssessor assessor{cfg};
    view.now = 0;
    EXPECT_TRUE(assessor.maybeRefresh(view, gpuPower));
    view.now = kMinute;
    EXPECT_FALSE(assessor.maybeRefresh(view, gpuPower));
    view.now = 6 * kMinute;
    EXPECT_TRUE(assessor.maybeRefresh(view, gpuPower));
}

TEST_F(RouterTest, BaselinePicksLeastLoaded)
{
    BaselineRouter router;
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    loadEngine(candidates[0].engine, 10);
    const VmId pick =
        router.route(makeRequest(5), candidates, nullptr);
    EXPECT_EQ(pick, VmId(1));
}

TEST_F(RouterTest, BaselineSkipsNonAcceptingEngines)
{
    BaselineRouter router;
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    // Reconfigure candidate 1 so it stops accepting.
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B7;
    candidates[1].engine->requestReconfig(perf.profile(smaller),
                                          30.0);
    const VmId pick =
        router.route(makeRequest(5), candidates, nullptr);
    EXPECT_EQ(pick, VmId(0));
}

TEST_F(RouterTest, BaselineReturnsInvalidWhenNothingAccepts)
{
    BaselineRouter router;
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B7;
    candidates[0].engine->requestReconfig(perf.profile(smaller),
                                          30.0);
    EXPECT_FALSE(
        router.route(makeRequest(5), candidates, nullptr).valid());
}

TEST_F(RouterTest, TapasFiltersRiskyServers)
{
    TapasPolicyConfig cfg;
    TapasRouter router{cfg};
    RiskAssessor assessor{cfg};
    // Server 0 runs hot.
    for (int g = 0; g < 8; ++g)
        gpuPower[0 * 8 + g] = 1200.0;
    assessor.refresh(view, gpuPower);

    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    // Make the risky VM otherwise more attractive (less loaded is
    // irrelevant; concentration prefers loaded VMs, so load VM 0).
    loadEngine(candidates[0].engine, 2);
    const VmId pick =
        router.route(makeRequest(5), candidates, &assessor);
    EXPECT_EQ(pick, VmId(1));
}

TEST_F(RouterTest, TapasFallsBackWhenAllFiltered)
{
    TapasPolicyConfig cfg;
    TapasRouter router{cfg};
    RiskAssessor assessor{cfg};
    for (std::size_t i = 0; i < gpuPower.size(); ++i)
        gpuPower[i] = 1200.0;
    assessor.refresh(view, gpuPower);

    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    const VmId pick =
        router.route(makeRequest(5), candidates, &assessor);
    EXPECT_TRUE(pick.valid());
}

TEST_F(RouterTest, TapasAffinityRoutesRepeatCustomers)
{
    TapasPolicyConfig cfg;
    TapasRouter router{cfg};
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));

    const VmId first =
        router.route(makeRequest(42), candidates, nullptr);
    // Tilt loads: without affinity the other VM would win.
    for (const RouteCandidate &cand : candidates) {
        if (cand.vm == first)
            loadEngine(cand.engine, 2);
    }
    const VmId second =
        router.route(makeRequest(42), candidates, nullptr);
    EXPECT_EQ(second, first);
    EXPECT_GE(router.affinityEntries(), 1u);
}

TEST_F(RouterTest, TapasConcentratesLoadUnderCeiling)
{
    TapasPolicyConfig cfg;
    cfg.concentrationCeiling = 0.7;
    TapasRouter router{cfg};
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    // VM 0 lightly loaded (projected TTFT under the concentration
    // bar), VM 1 idle: the energy policy concentrates onto VM 0.
    loadEngine(candidates[0].engine, 1);
    const double ttft0 = candidates[0].engine->estimatedTtftS();
    ASSERT_LT(ttft0, 0.7 * perf.slo().ttftS);
    ASSERT_GT(ttft0, 0.0);
    const VmId pick =
        router.route(makeRequest(77), candidates, nullptr);
    EXPECT_EQ(pick, VmId(0));
}

TEST_F(RouterTest, TapasSpreadsWhenEverythingAboveCeiling)
{
    TapasPolicyConfig cfg;
    cfg.concentrationCeiling = 0.001; // force stage 3
    TapasRouter router{cfg};
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    loadEngine(candidates[0].engine, 8);
    loadEngine(candidates[1].engine, 2);
    const VmId pick =
        router.route(makeRequest(88), candidates, nullptr);
    EXPECT_EQ(pick, VmId(1));
}

TEST_F(RouterTest, TapasSkipsOverloadedVms)
{
    TapasPolicyConfig cfg;
    cfg.perfRiskLoad = 0.1;
    TapasRouter router{cfg};
    std::vector<RouteCandidate> candidates;
    candidates.push_back(makeCandidate(0, ServerId(0)));
    candidates.push_back(makeCandidate(1, ServerId(1)));
    loadEngine(candidates[0].engine, 100); // way past perf risk
    const VmId pick =
        router.route(makeRequest(9), candidates, nullptr);
    EXPECT_EQ(pick, VmId(1));
}

} // namespace
} // namespace tapas
