/**
 * @file
 * FaultEngine behavior: scripted window timing with exact plant
 * restore, min-composition of overlapping component faults (chiller
 * floor under every aisle), seed-determinism of the stochastic
 * timeline, and the four sensor corruption modes on both observation
 * paths.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/failure.hh"
#include "core/faults.hh"
#include "fixture.hh"
#include "telemetry/history.hh"

namespace tapas {
namespace {

class FaultEngineFixture : public CoreFixture
{
  protected:
    FaultEngineFixture() : mgr(cooling, hierarchy, dc)
    {
        for (const Aisle &aisle : dc.aisles()) {
            designAirflow.push_back(
                cooling.effectiveProvision(aisle.id).value());
        }
    }

    FailureManager mgr;
    std::vector<double> designAirflow;
};

TEST_F(FaultEngineFixture, ScriptedWindowAppliesAndRestoresExactly)
{
    FaultPlan plan;
    ScriptedFault ahu;
    ahu.kind = FaultKind::Ahu;
    ahu.target = 0;
    ahu.at = 2 * kHour;
    ahu.until = 5 * kHour;
    ahu.remainingFrac = 0.8;
    plan.scripted.push_back(ahu);

    FaultEngine engine(plan, dc, kDay, 7);
    EXPECT_EQ(engine.instanceCount(), 1u);

    engine.advanceTo(0, mgr);
    EXPECT_FALSE(engine.anyComponentFaultActive());
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0]);

    // The window is [at, until): active at the start edge...
    engine.advanceTo(2 * kHour, mgr);
    EXPECT_TRUE(engine.anyComponentFaultActive());
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(0)), 0.8);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.8);
    // ...untouched aisles keep design capacity...
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(1)).value(),
                     designAirflow[1]);

    // ...and cleared at the end edge, restoring the exact design
    // value (not a near-1.0 product of derate and un-derate).
    engine.advanceTo(5 * kHour, mgr);
    EXPECT_FALSE(engine.anyComponentFaultActive());
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(0)), 1.0);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0]);
    EXPECT_FALSE(cooling.anyFailure());
    EXPECT_EQ(engine.startsProcessed(), 1u);
    EXPECT_EQ(engine.endsProcessed(), 1u);
}

TEST_F(FaultEngineFixture, ChillerFloorsEveryAisleAndComposesByMin)
{
    FaultPlan plan;
    ScriptedFault chiller;
    chiller.kind = FaultKind::Chiller;
    chiller.at = 1 * kHour;
    chiller.until = 4 * kHour;
    chiller.remainingFrac = 0.75;
    plan.scripted.push_back(chiller);

    ScriptedFault ahu;
    ahu.kind = FaultKind::Ahu;
    ahu.target = 0;
    ahu.at = 2 * kHour;
    ahu.until = 3 * kHour;
    ahu.remainingFrac = 0.6;
    plan.scripted.push_back(ahu);

    FaultEngine engine(plan, dc, kDay, 7);

    // Chiller alone: every aisle floors at 0.75.
    engine.advanceTo(1 * kHour, mgr);
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(0)), 0.75);
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(1)), 0.75);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(1)).value(),
                     designAirflow[1] * 0.75);

    // Overlap: the deeper AHU fault wins on aisle 0 only.
    engine.advanceTo(2 * kHour, mgr);
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(0)), 0.6);
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(1)), 0.75);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.6);

    // AHU repaired mid-chiller-derate: aisle 0 falls back to the
    // chiller floor, not to design.
    engine.advanceTo(3 * kHour, mgr);
    EXPECT_DOUBLE_EQ(engine.composedAisleDerate(AisleId(0)), 0.75);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.75);

    // Chiller repaired: exact design restore everywhere.
    engine.advanceTo(4 * kHour, mgr);
    EXPECT_FALSE(engine.anyComponentFaultActive());
    for (const Aisle &aisle : dc.aisles()) {
        EXPECT_DOUBLE_EQ(
            cooling.effectiveProvision(aisle.id).value(),
            designAirflow[aisle.id.index]);
    }
}

TEST_F(FaultEngineFixture, StochasticTimelineIsSeedDeterministic)
{
    FaultPlan plan;
    plan.ahu = {6.0 * kHour, 1.0 * kHour, 0.85};
    plan.ups = {8.0 * kHour, 2.0 * kHour, 0.8};
    plan.chiller = {12.0 * kHour, 3.0 * kHour, 0.9};
    plan.sensor = {4.0 * kHour, 2.0 * kHour, 1.0};

    FaultEngine a(plan, dc, kWeek, 1234);
    FaultEngine b(plan, dc, kWeek, 1234);
    ASSERT_GT(a.instanceCount(), 0u);
    ASSERT_EQ(a.instanceCount(), b.instanceCount());

    // Replaying the two engines step by step (through independent
    // plants) must produce identical composed state at every step.
    FailureManager mgr_b(cooling, hierarchy, dc);
    for (SimTime t = 0; t <= kWeek; t += 5 * kMinute) {
        a.advanceTo(t, mgr);
        b.advanceTo(t, mgr_b);
        ASSERT_EQ(a.activeComponentCount(),
                  b.activeComponentCount());
        ASSERT_EQ(a.activeSensorCount(), b.activeSensorCount());
        ASSERT_EQ(a.startsProcessed(), b.startsProcessed());
        for (const Aisle &aisle : dc.aisles()) {
            ASSERT_DOUBLE_EQ(a.composedAisleDerate(aisle.id),
                             b.composedAisleDerate(aisle.id));
        }
        for (const Ups &ups : dc.upses()) {
            ASSERT_DOUBLE_EQ(a.composedUpsDerate(ups.id),
                             b.composedUpsDerate(ups.id));
        }
    }
    EXPECT_GT(a.startsProcessed(), 0u);

    // A different seed materializes a different timeline (the trace
    // of active-fault counts cannot match over a whole week of
    // events).
    FaultEngine c(plan, dc, kWeek, 4321);
    FailureManager mgr_c(cooling, hierarchy, dc);
    bool any_difference = c.instanceCount() != a.instanceCount();
    FaultEngine a2(plan, dc, kWeek, 1234);
    FailureManager mgr_a2(cooling, hierarchy, dc);
    for (SimTime t = 0; t <= kWeek && !any_difference;
         t += 5 * kMinute) {
        a2.advanceTo(t, mgr_a2);
        c.advanceTo(t, mgr_c);
        any_difference = a2.activeComponentCount() !=
                c.activeComponentCount() ||
            a2.activeSensorCount() != c.activeSensorCount();
    }
    EXPECT_TRUE(any_difference);
    mgr.clearAll();
}

TEST_F(FaultEngineFixture, StuckSensorFreezesObservations)
{
    const int gpus = dc.specs().front().gpusPerServer;
    FaultPlan plan;
    ScriptedFault fault;
    fault.kind = FaultKind::Sensor;
    fault.target = 3;
    fault.at = kHour;
    fault.until = 3 * kHour;
    fault.sensor = SensorFaultKind::StuckAt;
    plan.scripted.push_back(fault);

    FaultEngine engine(plan, dc, kDay, 7);
    EXPECT_TRUE(engine.planHasSensorFaults());

    engine.advanceTo(0, mgr);
    EXPECT_FALSE(engine.sensorFaultActive(ServerId(3)));

    engine.advanceTo(kHour, mgr);
    ASSERT_TRUE(engine.sensorFaultActive(ServerId(3)));
    EXPECT_EQ(engine.sensorFaultKind(ServerId(3)),
              SensorFaultKind::StuckAt);
    // No physics effect: a sensor fault never counts as a component
    // fault or touches the plant.
    EXPECT_FALSE(engine.anyComponentFaultActive());
    EXPECT_FALSE(cooling.anyFailure());

    // First observation under the fault is captured as the frozen
    // value...
    std::vector<double> obs(gpus, 200.0);
    engine.corruptObservedGpuPower(ServerId(3), kHour, obs.data(),
                                   gpus);
    EXPECT_DOUBLE_EQ(obs[0], 200.0);
    // ...and later (different) truth is replaced by it.
    std::vector<double> later(gpus, 350.0);
    engine.corruptObservedGpuPower(ServerId(3), 2 * kHour,
                                   later.data(), gpus);
    for (int g = 0; g < gpus; ++g)
        EXPECT_DOUBLE_EQ(later[g], 200.0);

    // The telemetry path freezes the server-local channels too.
    ServerSample first;
    first.time = kHour;
    first.inletC = 25.0f;
    first.serverPowerW = 1600.0f;
    ASSERT_TRUE(engine.corruptSample(ServerId(3), kHour, first));
    ServerSample second;
    second.time = 2 * kHour;
    second.inletC = 31.0f;
    second.serverPowerW = 2400.0f;
    ASSERT_TRUE(
        engine.corruptSample(ServerId(3), 2 * kHour, second));
    EXPECT_FLOAT_EQ(second.inletC, 25.0f);
    EXPECT_FLOAT_EQ(second.serverPowerW, 1600.0f);

    // After repair the observation path is a no-op again.
    engine.advanceTo(3 * kHour, mgr);
    EXPECT_FALSE(engine.sensorFaultActive(ServerId(3)));
    std::vector<double> healthy(gpus, 350.0);
    engine.corruptObservedGpuPower(ServerId(3), 4 * kHour,
                                   healthy.data(), gpus);
    EXPECT_DOUBLE_EQ(healthy[0], 350.0);
}

TEST_F(FaultEngineFixture, DriftNoiseAndDropModes)
{
    const int gpus = dc.specs().front().gpusPerServer;
    FaultPlan plan;
    ScriptedFault drift;
    drift.kind = FaultKind::Sensor;
    drift.target = 0;
    drift.at = 0;
    drift.until = kDay;
    drift.sensor = SensorFaultKind::BiasDrift;
    drift.driftWPerHour = 40.0;
    drift.driftCPerHour = 0.5;
    plan.scripted.push_back(drift);

    ScriptedFault noise = drift;
    noise.target = 1;
    noise.sensor = SensorFaultKind::NoiseBurst;
    noise.noiseSigmaW = 120.0;
    plan.scripted.push_back(noise);

    ScriptedFault dropped = drift;
    dropped.target = 2;
    dropped.sensor = SensorFaultKind::Dropped;
    plan.scripted.push_back(dropped);

    FaultEngine engine(plan, dc, kDay, 7);
    engine.advanceTo(0, mgr);

    // BiasDrift: zero at onset, then the observed *sum* moves by
    // driftWPerHour per hour, spread across the GPUs.
    std::vector<double> at_onset(gpus, 300.0);
    engine.corruptObservedGpuPower(ServerId(0), 0, at_onset.data(),
                                   gpus);
    EXPECT_DOUBLE_EQ(at_onset[0], 300.0);
    std::vector<double> later(gpus, 300.0);
    engine.corruptObservedGpuPower(ServerId(0), 2 * kHour,
                                   later.data(), gpus);
    double sum = 0.0;
    for (int g = 0; g < gpus; ++g)
        sum += later[g];
    EXPECT_NEAR(sum, 300.0 * gpus + 2.0 * 40.0, 1e-9);

    ServerSample drift_sample;
    drift_sample.inletC = 25.0f;
    drift_sample.serverPowerW = 2000.0f;
    ASSERT_TRUE(engine.corruptSample(ServerId(0), 2 * kHour,
                                     drift_sample));
    EXPECT_FLOAT_EQ(drift_sample.inletC, 26.0f); // +0.5C/h * 2h

    // NoiseBurst perturbs the reading but is a pure function of
    // (seed, server, time): replaying the same instant through a
    // twin engine reproduces it bit-for-bit.
    FaultEngine twin(plan, dc, kDay, 7);
    FailureManager twin_mgr(cooling, hierarchy, dc);
    twin.advanceTo(0, twin_mgr);
    std::vector<double> noisy(gpus, 300.0);
    std::vector<double> twin_noisy(gpus, 300.0);
    engine.corruptObservedGpuPower(ServerId(1), kHour, noisy.data(),
                                   gpus);
    twin.corruptObservedGpuPower(ServerId(1), kHour,
                                 twin_noisy.data(), gpus);
    bool perturbed = false;
    for (int g = 0; g < gpus; ++g) {
        EXPECT_DOUBLE_EQ(noisy[g], twin_noisy[g]);
        perturbed = perturbed || noisy[g] != 300.0;
    }
    EXPECT_TRUE(perturbed);

    // Dropped: telemetry samples vanish (caller must not record);
    // the risk path sees the last value it had (stuck-at behavior).
    ServerSample gone;
    EXPECT_FALSE(engine.corruptSample(ServerId(2), kHour, gone));
    std::vector<double> seen(gpus, 250.0);
    engine.corruptObservedGpuPower(ServerId(2), kHour, seen.data(),
                                   gpus);
    std::vector<double> changed(gpus, 400.0);
    engine.corruptObservedGpuPower(ServerId(2), 2 * kHour,
                                   changed.data(), gpus);
    EXPECT_DOUBLE_EQ(changed[0], 250.0);
    mgr.clearAll();
}

} // namespace
} // namespace tapas
