/**
 * @file
 * FailureManager overlap semantics: overlapping failures compose by
 * minimum, repeats are idempotent (no compounding), and clearAll()
 * restores exact design capacities no matter what stacked up. These
 * pins protect the contract the FaultEngine's absolute set*Derate
 * entry points are built on.
 */

#include <gtest/gtest.h>

#include "core/failure.hh"
#include "fixture.hh"

namespace tapas {
namespace {

class FailureFixture : public CoreFixture
{
  protected:
    FailureFixture() : mgr(cooling, hierarchy, dc)
    {
        for (const Aisle &aisle : dc.aisles()) {
            designAirflow.push_back(
                cooling.effectiveProvision(aisle.id).value());
        }
        for (const Row &row : dc.rows()) {
            designRowPower.push_back(
                hierarchy.effectiveRowProvision(row.id).value());
        }
    }

    void
    expectDesignCapacities()
    {
        for (const Aisle &aisle : dc.aisles()) {
            EXPECT_DOUBLE_EQ(
                cooling.effectiveProvision(aisle.id).value(),
                designAirflow[aisle.id.index]);
        }
        for (const Row &row : dc.rows()) {
            EXPECT_DOUBLE_EQ(
                hierarchy.effectiveRowProvision(row.id).value(),
                designRowPower[row.id.index]);
        }
        EXPECT_FALSE(cooling.anyFailure());
        EXPECT_FALSE(hierarchy.anyFailure());
        EXPECT_EQ(mgr.active(), EmergencyKind::None);
    }

    FailureManager mgr;
    std::vector<double> designAirflow;
    std::vector<double> designRowPower;
};

TEST_F(FailureFixture, OverlapComposesByMinimum)
{
    mgr.failAisle(AisleId(0), 0.8);
    mgr.triggerThermalEmergency(0.9);
    // The deeper aisle-0 derate survives the shallower plant-wide
    // emergency; aisle 1 takes the emergency derate.
    EXPECT_DOUBLE_EQ(mgr.aisleDerate(AisleId(0)), 0.8);
    EXPECT_DOUBLE_EQ(mgr.aisleDerate(AisleId(1)), 0.9);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.8);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(1)).value(),
                     designAirflow[1] * 0.9);

    // Shallower overlap on an already-deep derate changes nothing.
    mgr.failAisle(AisleId(0), 0.95);
    EXPECT_DOUBLE_EQ(mgr.aisleDerate(AisleId(0)), 0.8);
    EXPECT_EQ(mgr.active(), EmergencyKind::Thermal);
}

TEST_F(FailureFixture, RepeatsAreIdempotentNoCompounding)
{
    mgr.triggerThermalEmergency(0.9);
    const double once =
        cooling.effectiveProvision(AisleId(0)).value();
    mgr.triggerThermalEmergency(0.9);
    mgr.triggerThermalEmergency(0.9);
    // 0.9 applied three times is 0.9, not 0.9^3.
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     once);

    mgr.triggerPowerEmergency(0.75);
    const double row_once =
        hierarchy.effectiveRowProvision(RowId(0)).value();
    mgr.triggerPowerEmergency(0.75);
    EXPECT_DOUBLE_EQ(
        hierarchy.effectiveRowProvision(RowId(0)).value(), row_once);
    EXPECT_EQ(mgr.active(), EmergencyKind::Both);
}

TEST_F(FailureFixture, ClearAllRestoresExactDesignCapacities)
{
    // Stack every kind of failure at mixed severities, twice.
    mgr.failAisle(AisleId(0), 0.7);
    mgr.triggerThermalEmergency(0.9);
    mgr.failAisle(AisleId(1), 0.85);
    mgr.failUps(UpsId(0), 0.6);
    mgr.failUps(UpsId(1), 0.8);
    mgr.triggerPowerEmergency(0.75);
    mgr.clearAll();
    expectDesignCapacities();

    // A second drill after the restore behaves like the first.
    mgr.failAisle(AisleId(0), 0.7);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.7);
    mgr.clearAll();
    expectDesignCapacities();
}

TEST_F(FailureFixture, MixedSeverityUpsFailuresRestoreExactly)
{
    // The historical bug: a global derate scalar could not restore
    // exact budgets after overlapping UPS failures of different
    // severity were cleared one at a time.
    mgr.failUps(UpsId(0), 0.6);
    mgr.failUps(UpsId(1), 0.8);
    EXPECT_DOUBLE_EQ(mgr.upsDerate(UpsId(0)), 0.6);
    EXPECT_DOUBLE_EQ(mgr.upsDerate(UpsId(1)), 0.8);
    // The datacenter-wide budget honors the deepest failed UPS.
    EXPECT_DOUBLE_EQ(hierarchy.datacenterDerate(), 0.6);

    // Repair the deep one first: budgets step to the shallow derate,
    // not to some compounded residue.
    mgr.setUpsDerate(UpsId(0), 1.0);
    EXPECT_DOUBLE_EQ(hierarchy.datacenterDerate(), 0.8);
    mgr.setUpsDerate(UpsId(1), 1.0);
    expectDesignCapacities();
}

TEST_F(FailureFixture, AbsoluteSettersReplaceComposedState)
{
    mgr.failAisle(AisleId(0), 0.7);
    // The engine's absolute entry point replaces the composed state
    // outright (it owns its own overlap bookkeeping).
    mgr.setAisleDerate(AisleId(0), 0.95);
    EXPECT_DOUBLE_EQ(mgr.aisleDerate(AisleId(0)), 0.95);
    EXPECT_DOUBLE_EQ(cooling.effectiveProvision(AisleId(0)).value(),
                     designAirflow[0] * 0.95);
    mgr.setAisleDerate(AisleId(0), 1.0);
    expectDesignCapacities();
}

TEST_F(FailureFixture, EmergencyKindTracksPlantState)
{
    EXPECT_EQ(mgr.active(), EmergencyKind::None);
    mgr.failAisle(AisleId(1), 0.9);
    EXPECT_EQ(mgr.active(), EmergencyKind::Thermal);
    mgr.failUps(UpsId(0), 0.75);
    EXPECT_EQ(mgr.active(), EmergencyKind::Both);
    mgr.setAisleDerate(AisleId(1), 1.0);
    EXPECT_EQ(mgr.active(), EmergencyKind::Power);
    mgr.clearAll();
    EXPECT_EQ(mgr.active(), EmergencyKind::None);
}

} // namespace
} // namespace tapas
